//! Differential fuzz of the packed tag-plane [`CacheArray`] against the
//! scalar [`RefCacheArray`] reference model.
//!
//! The packed array is the simulator's hot path and earns its speed from
//! bit-packed tag/meta planes, branchless probes, and precomputed masks —
//! none of which may change architectural behavior. This test drives both
//! implementations access-for-access with a seeded operation mix (probe,
//! touch + meta mutation, fill, invalidate) over direct-mapped through
//! 8-way geometries crossed with subblock line sizes, comparing every
//! return value and, periodically, the full sorted content snapshots.
//! Over a million accesses total — any divergence names the geometry,
//! operation index, and address that produced it.

use gaas_cache::{CacheArray, CacheGeometry, RefCacheArray};
use gaas_trace::rng::SmallRng;
use gaas_trace::PhysAddr;

/// Accesses per geometry; the suite crosses 8 geometries for >1.2M total.
const OPS_PER_GEOMETRY: usize = 160_000;

/// Full-snapshot comparison interval (snapshots are O(lines · log lines)).
const SNAPSHOT_EVERY: usize = 20_000;

/// (size_words, line_words, assoc): direct-mapped through 8-way, crossed
/// with line sizes from single-word to the 32-word subblock-mask limit.
const GEOMETRIES: [(u64, u32, u32); 8] = [
    (512, 4, 1),   // direct-mapped, short line
    (512, 32, 1),  // direct-mapped, widest subblock mask
    (1024, 8, 2),  // 2-way
    (256, 16, 2),  // 2-way, few sets (heavy conflict)
    (2048, 4, 4),  // 4-way
    (1024, 32, 4), // 4-way, widest line
    (4096, 8, 8),  // 8-way
    (64, 8, 8),    // 8-way single-set (pure LRU stress)
];

/// Addresses are drawn from a window of a few cache sizes so sets and
/// lines collide constantly, with occasional far jumps to roll tags over.
fn pick_addr(rng: &mut SmallRng, size_words: u64) -> PhysAddr {
    let word = if rng.gen_bool(0.02) {
        rng.gen_range(0u64..1 << 30)
    } else {
        rng.gen_range(0u64..size_words * 4)
    };
    PhysAddr::new(word)
}

fn assert_same_snapshot(packed: &CacheArray, reference: &RefCacheArray, ctx: &str) {
    assert_eq!(
        packed.content_snapshot(),
        reference.content_snapshot(),
        "content snapshots diverged {ctx}"
    );
    assert_eq!(
        packed.occupancy(),
        reference.occupancy(),
        "occupancy diverged {ctx}"
    );
}

#[test]
fn packed_array_matches_reference_across_geometries() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    let mut total_ops = 0usize;
    for &(size, line, assoc) in &GEOMETRIES {
        let geom = CacheGeometry::new(size, line, assoc).expect("valid geometry");
        let full_mask = geom.full_subblock_mask();
        let mut packed = CacheArray::new(geom);
        let mut reference = RefCacheArray::new(geom);
        for op in 0..OPS_PER_GEOMETRY {
            let addr = pick_addr(&mut rng, size);
            let ctx = || format!("(geometry {size}w/{line}l/{assoc}a, op {op}, addr {addr:?})");
            match rng.gen_range(0u32..10) {
                // Read-only probes: no state change, results must agree.
                0 => {
                    assert_eq!(packed.contains(addr), reference.contains(addr), "{}", ctx());
                    let p = packed.peek(addr);
                    let r = reference.peek(addr);
                    assert_eq!(p.is_some(), r.is_some(), "peek residency {}", ctx());
                    if let (Some(p), Some(r)) = (p, r) {
                        assert_eq!(
                            (p.base, p.dirty, p.write_only, p.subblock_valid),
                            (r.base, r.dirty, r.write_only, r.subblock_valid),
                            "peeked line state {}",
                            ctx()
                        );
                    }
                }
                // Touch + a random meta mutation through both line handles.
                1..=4 => {
                    let mutation = rng.gen_range(0u32..5);
                    let dirty = rng.gen_bool(0.5);
                    let wo = rng.gen_bool(0.5);
                    let bits = rng.gen_range(0u32..=full_mask);
                    let p = packed.touch(addr);
                    let r = reference.touch(addr);
                    assert_eq!(p.is_some(), r.is_some(), "touch residency {}", ctx());
                    if let (Some(mut p), Some(r)) = (p, r) {
                        assert_eq!(
                            (p.base(), p.dirty(), p.write_only(), p.subblock_valid()),
                            (r.base, r.dirty, r.write_only, r.subblock_valid),
                            "touched line state {}",
                            ctx()
                        );
                        match mutation {
                            0 => {
                                p.set_dirty(dirty);
                                r.dirty = dirty;
                            }
                            1 => {
                                p.set_write_only(wo);
                                r.write_only = wo;
                            }
                            2 => {
                                p.set_subblock_valid(bits);
                                r.subblock_valid = bits;
                            }
                            3 => {
                                p.or_subblock(bits);
                                r.subblock_valid |= bits;
                            }
                            _ => {} // plain LRU touch
                        }
                    }
                }
                // Fill: victim choice and displaced-line state must agree.
                5..=8 => {
                    let p = packed.fill(addr);
                    let r = reference.fill(addr);
                    assert_eq!(p, r, "fill eviction {}", ctx());
                }
                // Invalidate: the removed line must agree.
                _ => {
                    let p = packed.invalidate(addr);
                    let r = reference.invalidate(addr);
                    assert_eq!(p.is_some(), r.is_some(), "invalidate residency {}", ctx());
                    if let (Some(p), Some(r)) = (p, r) {
                        assert_eq!(
                            (p.base, p.dirty, p.write_only, p.subblock_valid),
                            (r.base, r.dirty, r.write_only, r.subblock_valid),
                            "invalidated line state {}",
                            ctx()
                        );
                    }
                }
            }
            if (op + 1) % SNAPSHOT_EVERY == 0 {
                assert_same_snapshot(&packed, &reference, &ctx());
            }
        }
        assert_same_snapshot(
            &packed,
            &reference,
            &format!("(geometry {size}w/{line}l/{assoc}a, final)"),
        );
        total_ops += OPS_PER_GEOMETRY;
    }
    assert!(
        total_ops >= 1_000_000,
        "differential fuzz must cover at least a million accesses, ran {total_ops}"
    );
}
