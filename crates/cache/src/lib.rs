//! # gaas-cache
//!
//! Memory-hierarchy building blocks for the reproduction of *"Implementing
//! a Cache for a High-Performance GaAs Microprocessor"* (Olukotun, Mudge,
//! Brown — ISCA 1991):
//!
//! * [`array`](mod@crate::array) — the generic set-associative [`array::CacheArray`] with
//!   dirty / write-only / subblock-valid line state and LRU replacement;
//! * [`policy`] — the four primary data-cache write policies of §6
//!   (write-back, write-miss-invalidate, the paper's new **write-only**,
//!   and subblock placement) as [`policy::L1DataCache`];
//! * [`write_buffer`] — FIFO write buffers with the paper's streaming
//!   drain-timing model;
//! * [`tlb`] — the PID-tagged 2-way set-associative instruction/data TLBs;
//! * [`paging`] — the page-coloring virtual-to-physical mapper;
//! * [`memory`] — main-memory penalties and the §9 L2 dirty buffer;
//! * [`classify`] — three-C (compulsory/capacity/conflict) miss
//!   classification, measuring the §7 conflict argument;
//! * [`fault`] — deterministic soft-error injection
//!   ([`fault::FaultInjector`]) and parity/ECC protection policies with
//!   their recovery-action table ([`fault::resolve`]).
//!
//! All structures are *functional* models: they answer hit/miss/eviction
//! questions and keep occupancy state; cycle charging lives in the
//! `gaas-sim` crate so one set of structures serves every architecture
//! variant of the study.
//!
//! ## Example
//!
//! ```
//! use gaas_cache::array::CacheGeometry;
//! use gaas_cache::policy::{L1DataCache, WritePolicy};
//! use gaas_trace::PhysAddr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's 4 KW direct-mapped L1-D with the new write-only policy.
//! let geom = CacheGeometry::new(4096, 4, 1)?;
//! let mut l1d = L1DataCache::new(geom, WritePolicy::WriteOnly);
//!
//! let miss = l1d.store(PhysAddr::new(0x1000), false);
//! assert!(!miss.hit, "first touch misses but adopts the line");
//! let hit = l1d.store(PhysAddr::new(0x1001), false);
//! assert!(hit.hit, "subsequent writes to the write-only line hit");
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod classify;
pub mod fault;
pub mod memory;
pub mod paging;
pub mod policy;
pub mod tlb;
pub mod write_buffer;

pub use array::reference::RefCacheArray;
pub use array::{
    line_member_mask, CacheArray, CacheGeometry, Evicted, GeometryError, Line, LineRef,
};
pub use classify::{MissClass, ThreeCClassifier, ThreeCCounts};
pub use fault::{
    resolve, FaultEffect, FaultEvent, FaultInjector, FaultRates, Protection, ProtectionMap,
    Structure, TargetedFault,
};
pub use memory::{MainMemory, MemorySystem, MissService};
pub use paging::PageMapper;
pub use policy::{L1DataCache, LoadOutcome, StoreOutcome, WritePolicy};
pub use tlb::Tlb;
pub use write_buffer::{WbEntry, WriteBuffer};
