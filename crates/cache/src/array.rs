//! Generic set-associative cache array over a bit-packed tag plane.
//!
//! [`CacheArray`] is the structural core shared by every cache in the study:
//! the 4 KW direct-mapped primary caches, the 16 KW–1024 KW unified/split
//! secondary caches, and the 2-way associative variants. It tracks tags,
//! validity, dirtiness, the write-only mark of the paper's new write policy,
//! and per-word subblock valid bits; replacement is LRU (trivial for
//! direct-mapped). Timing is deliberately *not* modelled here — the
//! simulator charges cycles; the array answers pure hit/miss/eviction
//! questions.
//!
//! # Memory layout
//!
//! The array stores no per-line structs. Each set owns one contiguous
//! stripe of the tag `plane`, `2 * assoc` words long:
//!
//! ```text
//! plane[set*stride ..] = [ tag w0 | tag w1 | .. | lru w0 | lru w1 | .. ]
//! ```
//!
//! so an N-way probe reads `assoc` adjacent words and the hit's LRU
//! promotion writes into the *same* stripe — for the study's geometries
//! (`assoc <= 4`) a hit plus promote touches a single 64-byte host cache
//! line. Tags hold the line-aligned base word address directly
//! ([`INVALID_TAG`] marks an empty way; real physical word addresses
//! never reach it), so no tag reconstruction is needed on hit.
//!
//! The rarely-written payload bits (dirty / write-only / subblock valid)
//! live in a separate per-line `meta` word, only pulled in when a policy
//! actually inspects or mutates them via [`LineRef`].
//!
//! The probe itself is branchless in the way dimension: each way's tag
//! compare contributes one bit to a hit mask
//! (`mask |= (tag == base) << way`) and `trailing_zeros` selects the
//! matching way, in the style of bit-sliced address decoders. Invalid
//! ways keep an LRU stamp of 0, below every live timestamp (the clock
//! starts at 1), so victim selection is a single min-scan with no
//! validity branch: "first invalid way, else LRU way" falls out of
//! "first minimum".
//!
//! The pre-PR scalar implementation is preserved unchanged as
//! [`reference::RefCacheArray`] and the two are cross-checked
//! access-for-access by the `packed_vs_reference` differential fuzz test.

use std::fmt;

use gaas_trace::PhysAddr;

pub mod reference;

/// Tag value of an empty way. Line base addresses are word addresses of
/// the simulated 32-bit machine (`< 2^40` even with the PID prefix), so
/// they can never collide with it.
const INVALID_TAG: u64 = u64::MAX;

/// Meta-word bit holding the dirty flag.
const META_DIRTY: u64 = 1 << 32;
/// Meta-word bit holding the write-only mark.
const META_WRITE_ONLY: u64 = 1 << 33;
/// Meta-word bits holding the 32 subblock valid bits.
const META_SUBBLOCK: u64 = (1 << 32) - 1;

/// Validated geometry of a cache: total size, line length, associativity
/// (all in words, all powers of two).
///
/// The constructor precomputes the shift/mask forms of every per-access
/// derivation (set index, line base, word-in-line, subblock mask) so the
/// simulator's hot path performs no divisions: all sizes are powers of
/// two, so `set_of` is one shift and one mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_words: u64,
    line_words: u32,
    assoc: u32,
    /// log2(line_words): shifts a word address down to a line number.
    line_shift: u32,
    /// `line_words - 1`: masks the word offset within a line.
    line_mask: u64,
    /// `n_sets - 1`: masks a line number down to a set index.
    set_mask: u64,
    /// All subblock valid bits set for this line length.
    full_subblock_mask: u32,
}

/// Error returned for inconsistent cache geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryError(String);

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache geometry: {}", self.0)
    }
}

impl std::error::Error for GeometryError {}

impl CacheGeometry {
    /// Builds a geometry, validating that sizes are powers of two and that
    /// the cache holds at least one set.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] when `size_words`, `line_words` or `assoc`
    /// is zero or not a power of two, or when
    /// `size_words < line_words * assoc`.
    pub fn new(size_words: u64, line_words: u32, assoc: u32) -> Result<Self, GeometryError> {
        if size_words == 0 || !size_words.is_power_of_two() {
            return Err(GeometryError(format!(
                "size {size_words} not a power of two"
            )));
        }
        if line_words == 0 || !line_words.is_power_of_two() {
            return Err(GeometryError(format!(
                "line {line_words} not a power of two"
            )));
        }
        if line_words > 32 {
            return Err(GeometryError(format!(
                "line {line_words} exceeds the 32-word subblock mask"
            )));
        }
        if assoc == 0 || !assoc.is_power_of_two() {
            return Err(GeometryError(format!(
                "associativity {assoc} not a power of two"
            )));
        }
        if size_words < line_words as u64 * assoc as u64 {
            return Err(GeometryError(format!(
                "size {size_words} smaller than one set ({line_words} x {assoc})"
            )));
        }
        let n_sets = size_words / (line_words as u64 * assoc as u64);
        Ok(CacheGeometry {
            size_words,
            line_words,
            assoc,
            line_shift: line_words.trailing_zeros(),
            line_mask: line_words as u64 - 1,
            set_mask: n_sets - 1,
            full_subblock_mask: if line_words == 32 {
                u32::MAX
            } else {
                (1u32 << line_words) - 1
            },
        })
    }

    /// Total capacity in words.
    pub fn size_words(&self) -> u64 {
        self.size_words
    }

    /// Line length in words.
    pub fn line_words(&self) -> u32 {
        self.line_words
    }

    /// Degree of associativity (1 = direct-mapped).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    #[inline]
    pub fn n_sets(&self) -> u64 {
        self.set_mask + 1
    }

    /// Set index for a physical word address.
    #[inline]
    pub fn set_of(&self, addr: PhysAddr) -> u64 {
        (addr.word() >> self.line_shift) & self.set_mask
    }

    /// Line-aligned base address of the line containing `addr`.
    #[inline]
    pub fn line_base(&self, addr: PhysAddr) -> PhysAddr {
        PhysAddr::new(addr.word() & !self.line_mask)
    }

    /// Word index of `addr` within its line (for subblock valid bits).
    #[inline]
    pub fn word_in_line(&self, addr: PhysAddr) -> u32 {
        (addr.word() & self.line_mask) as u32
    }

    /// The subblock valid mask with every word bit of a line set.
    #[inline]
    pub fn full_subblock_mask(&self) -> u32 {
        self.full_subblock_mask
    }
}

/// Architectural snapshot of one resident cache line.
///
/// Returned by value from [`CacheArray::peek`], [`CacheArray::peek_set`],
/// [`CacheArray::iter`] and [`CacheArray::invalidate`]; the packed array
/// has no per-line struct to hand out references to. In-place mutation
/// goes through [`LineRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Line-aligned base word address of the cached line.
    pub base: PhysAddr,
    /// Line modified relative to the next level (write-back), or — for
    /// write-through policies with the dirty-bit bypass scheme (§9) — "this
    /// line has been written since allocation".
    pub dirty: bool,
    /// The paper's write-only mark: the line was allocated by a write miss
    /// under the write-only policy and must not service reads.
    pub write_only: bool,
    /// Per-word valid bits for subblock placement (bit *i* = word *i*).
    pub subblock_valid: u32,
}

/// Mutable handle onto one resident line's payload bits.
///
/// Handed out by [`CacheArray::touch`] and [`CacheArray::peek_mut`];
/// reads and writes go straight to the line's packed meta word.
#[derive(Debug)]
pub struct LineRef<'a> {
    base: PhysAddr,
    meta: &'a mut u64,
}

impl LineRef<'_> {
    /// Line-aligned base word address of the cached line.
    #[inline]
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// The dirty/written flag (see [`Line::dirty`]).
    #[inline]
    pub fn dirty(&self) -> bool {
        *self.meta & META_DIRTY != 0
    }

    /// Sets or clears the dirty/written flag.
    #[inline]
    pub fn set_dirty(&mut self, v: bool) {
        if v {
            *self.meta |= META_DIRTY;
        } else {
            *self.meta &= !META_DIRTY;
        }
    }

    /// The write-only mark (see [`Line::write_only`]).
    #[inline]
    pub fn write_only(&self) -> bool {
        *self.meta & META_WRITE_ONLY != 0
    }

    /// Sets or clears the write-only mark.
    #[inline]
    pub fn set_write_only(&mut self, v: bool) {
        if v {
            *self.meta |= META_WRITE_ONLY;
        } else {
            *self.meta &= !META_WRITE_ONLY;
        }
    }

    /// The per-word subblock valid bits (see [`Line::subblock_valid`]).
    #[inline]
    pub fn subblock_valid(&self) -> u32 {
        (*self.meta & META_SUBBLOCK) as u32
    }

    /// Replaces the subblock valid bits.
    #[inline]
    pub fn set_subblock_valid(&mut self, v: u32) {
        *self.meta = (*self.meta & !META_SUBBLOCK) | v as u64;
    }

    /// ORs `bits` into the subblock valid bits.
    #[inline]
    pub fn or_subblock(&mut self, bits: u32) {
        *self.meta |= bits as u64;
    }

    /// Copies the line out as a [`Line`] snapshot.
    #[inline]
    pub fn snapshot(&self) -> Line {
        Line {
            base: self.base,
            dirty: self.dirty(),
            write_only: self.write_only(),
            subblock_valid: self.subblock_valid(),
        }
    }
}

/// Description of a line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Base address of the displaced line.
    pub base: PhysAddr,
    /// It was dirty/written (see [`Line::dirty`]).
    pub dirty: bool,
    /// It carried the write-only mark.
    pub write_only: bool,
}

/// Builds the hit-way bitmask for one set's tag stripe: bit *w* is set
/// iff way *w* holds `base`. Specialized per associativity so the
/// compiler fully unrolls the study's 1-, 2- and 4-way shapes into
/// straight-line compare/or code with no loop or early-out branch.
#[inline(always)]
fn hit_mask(tags: &[u64], base: u64) -> u32 {
    match tags.len() {
        1 => (tags[0] == base) as u32,
        2 => (tags[0] == base) as u32 | ((tags[1] == base) as u32) << 1,
        4 => {
            (tags[0] == base) as u32
                | ((tags[1] == base) as u32) << 1
                | ((tags[2] == base) as u32) << 2
                | ((tags[3] == base) as u32) << 3
        }
        8 => {
            (tags[0] == base) as u32
                | ((tags[1] == base) as u32) << 1
                | ((tags[2] == base) as u32) << 2
                | ((tags[3] == base) as u32) << 3
                | ((tags[4] == base) as u32) << 4
                | ((tags[5] == base) as u32) << 5
                | ((tags[6] == base) as u32) << 6
                | ((tags[7] == base) as u32) << 7
        }
        _ => {
            let mut m = 0u32;
            for (w, &t) in tags.iter().enumerate() {
                m |= ((t == base) as u32) << w;
            }
            m
        }
    }
}

/// Multi-lane line-membership probe over a packed word plane: bit *i*
/// of the result is set iff `words[i]` lies inside the
/// `line_mask + 1`-word line starting at `base`. `base` must be
/// line-aligned and `line_mask` must be `line_words - 1` for a
/// power-of-two line, so membership reduces to one XOR/mask/compare per
/// word — no per-slot branching, no subtraction-with-carry range check:
///
/// ```text
/// bit i = ((words[i] ^ base) & !line_mask) == 0
/// ```
///
/// The multi-variant co-pricer lays N lanes' write-buffer slots out as
/// one flat plane (`lane * stride + slot`) and scans a whole lane window
/// — or several — with a single call; callers mask the result against
/// their own occupancy bits. Slices longer than 64 words are rejected
/// (the mask would overflow).
#[inline(always)]
#[must_use]
pub fn line_member_mask(words: &[u64], base: u64, line_mask: u64) -> u64 {
    debug_assert!(words.len() <= 64, "mask overflows past 64 slots");
    debug_assert_eq!(base & line_mask, 0, "base must be line-aligned");
    debug_assert!((line_mask.wrapping_add(1)).is_power_of_two());
    let keep = !line_mask;
    let mut m = 0u64;
    for (i, &w) in words.iter().enumerate() {
        m |= u64::from((w ^ base) & keep == 0) << i;
    }
    m
}

/// Index of the minimum element of `lru` (first minimum on ties),
/// matching `Iterator::min_by_key` over way order. Invalid ways hold 0,
/// below every live timestamp, so this is also the "first invalid way,
/// else LRU way" victim rule in one scan.
#[inline(always)]
fn min_lru_way(lru: &[u64]) -> usize {
    let mut victim = 0usize;
    let mut best = lru[0];
    for (w, &ts) in lru.iter().enumerate().skip(1) {
        if ts < best {
            best = ts;
            victim = w;
        }
    }
    victim
}

/// A set-associative cache array with LRU replacement over a bit-packed
/// tag plane (see the module docs for the layout).
///
/// # Examples
///
/// ```
/// use gaas_cache::{CacheArray, CacheGeometry};
/// use gaas_trace::PhysAddr;
///
/// # fn main() -> Result<(), gaas_cache::GeometryError> {
/// // The paper's 4 KW direct-mapped L1 with 4 W lines.
/// let mut l1 = CacheArray::new(CacheGeometry::new(4096, 4, 1)?);
/// assert!(l1.touch(PhysAddr::new(0x40)).is_none(), "cold miss");
/// l1.fill(PhysAddr::new(0x40));
/// assert!(l1.touch(PhysAddr::new(0x42)).is_some(), "same line hits");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    geom: CacheGeometry,
    /// `geom.assoc()` as usize, kept flat for hot-path indexing.
    assoc: usize,
    /// Interleaved per-set stripes: `[tags[assoc] | lru[assoc]]`.
    plane: Vec<u64>,
    /// One payload word per line (`set * assoc + way`): subblock valid
    /// bits in the low half, dirty and write-only flags above them.
    meta: Vec<u64>,
    clock: u64,
}

impl CacheArray {
    /// Creates an empty (all-invalid) array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let assoc = geom.assoc() as usize;
        let n_lines = geom.n_sets() as usize * assoc;
        let mut plane = vec![0u64; 2 * n_lines];
        for set in 0..geom.n_sets() as usize {
            let s = set * 2 * assoc;
            plane[s..s + assoc].fill(INVALID_TAG);
        }
        CacheArray {
            geom,
            assoc,
            plane,
            meta: vec![0u64; n_lines],
            clock: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Offset of `set`'s stripe in the tag plane.
    #[inline(always)]
    fn stripe(&self, set: usize) -> usize {
        set * 2 * self.assoc
    }

    /// Looks up `addr` without updating LRU state; returns `(set, way)`.
    #[inline(always)]
    fn probe_pos(&self, addr: PhysAddr) -> Option<(usize, usize)> {
        let base = addr.word() & !self.geom.line_mask;
        debug_assert_ne!(base, INVALID_TAG, "address collides with the tag sentinel");
        let set = ((addr.word() >> self.geom.line_shift) & self.geom.set_mask) as usize;
        let s = self.stripe(set);
        if self.assoc == 1 {
            // Direct-mapped fast path: exactly one candidate way.
            return (self.plane[s] == base).then_some((set, 0));
        }
        let m = hit_mask(&self.plane[s..s + self.assoc], base);
        if m == 0 {
            None
        } else {
            Some((set, m.trailing_zeros() as usize))
        }
    }

    /// Copies `(set, way)` out as a [`Line`] snapshot.
    #[inline]
    fn line_at(&self, set: usize, way: usize) -> Line {
        let s = self.stripe(set);
        let meta = self.meta[set * self.assoc + way];
        Line {
            base: PhysAddr::new(self.plane[s + way]),
            dirty: meta & META_DIRTY != 0,
            write_only: meta & META_WRITE_ONLY != 0,
            subblock_valid: (meta & META_SUBBLOCK) as u32,
        }
    }

    /// True when `addr`'s line is resident (tag match, valid), regardless of
    /// write-only or subblock state. Does not update LRU.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        self.probe_pos(addr).is_some()
    }

    /// Returns a copy of the resident line for `addr`, if any. Does not
    /// update LRU.
    pub fn peek(&self, addr: PhysAddr) -> Option<Line> {
        self.probe_pos(addr)
            .map(|(set, way)| self.line_at(set, way))
    }

    /// Looks up `addr`; on a tag match, marks the line most-recently-used
    /// and returns a mutable handle onto it.
    #[inline]
    pub fn touch(&mut self, addr: PhysAddr) -> Option<LineRef<'_>> {
        let (set, way) = self.probe_pos(addr)?;
        self.clock += 1;
        let s = self.stripe(set);
        self.plane[s + self.assoc + way] = self.clock;
        Some(LineRef {
            base: PhysAddr::new(self.plane[s + way]),
            meta: &mut self.meta[set * self.assoc + way],
        })
    }

    /// Allocates a line for `addr` (replacing the LRU way if the set is
    /// full) and returns the displaced line, if any. The new line is valid,
    /// clean, not write-only, with all subblock bits set, and is marked
    /// most-recently-used.
    ///
    /// If `addr`'s line is already resident, the resident line is reset to
    /// that same state and no eviction occurs.
    pub fn fill(&mut self, addr: PhysAddr) -> Option<Evicted> {
        let base = addr.word() & !self.geom.line_mask;
        let full = self.geom.full_subblock_mask() as u64;
        self.clock += 1;
        let clock = self.clock;
        let set = ((addr.word() >> self.geom.line_shift) & self.geom.set_mask) as usize;
        let s = self.stripe(set);
        let a = self.assoc;

        let m = hit_mask(&self.plane[s..s + a], base);
        if m != 0 {
            let way = m.trailing_zeros() as usize;
            self.plane[s + a + way] = clock;
            self.meta[set * a + way] = full;
            return None;
        }

        let victim = min_lru_way(&self.plane[s + a..s + 2 * a]);
        let old_tag = self.plane[s + victim];
        let old_meta = self.meta[set * a + victim];
        let evicted = (old_tag != INVALID_TAG).then_some(Evicted {
            base: PhysAddr::new(old_tag),
            dirty: old_meta & META_DIRTY != 0,
            write_only: old_meta & META_WRITE_ONLY != 0,
        });
        self.plane[s + victim] = base;
        self.plane[s + a + victim] = clock;
        self.meta[set * a + victim] = full;
        evicted
    }

    /// Invalidates `addr`'s line if resident; returns the line that was
    /// invalidated.
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<Line> {
        let (set, way) = self.probe_pos(addr)?;
        let old = self.line_at(set, way);
        let s = self.stripe(set);
        self.plane[s + way] = INVALID_TAG;
        self.plane[s + self.assoc + way] = 0;
        self.meta[set * self.assoc + way] = 0;
        Some(old)
    }

    /// Invalidates every line (not used by the architecture — PID tags make
    /// flushes unnecessary — but provided for experiments and tests).
    pub fn invalidate_all(&mut self) {
        let a = self.assoc;
        for set in 0..self.geom.n_sets() as usize {
            let s = set * 2 * a;
            self.plane[s..s + a].fill(INVALID_TAG);
            self.plane[s + a..s + 2 * a].fill(0);
        }
        self.meta.fill(0);
    }

    /// Iterates over the valid lines of the set that `addr` indexes
    /// (at most `assoc` lines), as snapshots.
    pub fn peek_set(&self, addr: PhysAddr) -> impl Iterator<Item = Line> + '_ {
        let set = self.geom.set_of(addr) as usize;
        let s = self.stripe(set);
        (0..self.assoc)
            .filter(move |&w| self.plane[s + w] != INVALID_TAG)
            .map(move |w| self.line_at(set, w))
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        let a = self.assoc;
        (0..self.geom.n_sets() as usize)
            .map(|set| {
                let s = set * 2 * a;
                self.plane[s..s + a]
                    .iter()
                    .filter(|&&t| t != INVALID_TAG)
                    .count()
            })
            .sum()
    }

    /// Iterates over all valid lines (unspecified order), as snapshots.
    pub fn iter(&self) -> impl Iterator<Item = Line> + '_ {
        let a = self.assoc;
        (0..self.geom.n_sets() as usize).flat_map(move |set| {
            let s = set * 2 * a;
            (0..a)
                .filter(move |&w| self.plane[s + w] != INVALID_TAG)
                .map(move |w| self.line_at(set, w))
        })
    }

    /// Mutable lookup of `addr`'s resident line *without* touching LRU
    /// state.
    ///
    /// This exists for the differential oracle's seeded-bug canary (flip
    /// a dirty bit in place and assert the oracle notices) and for
    /// invariant-checking tools; normal cache operation always goes
    /// through [`CacheArray::touch`] / [`CacheArray::fill`].
    pub fn peek_mut(&mut self, addr: PhysAddr) -> Option<LineRef<'_>> {
        let (set, way) = self.probe_pos(addr)?;
        let s = self.stripe(set);
        Some(LineRef {
            base: PhysAddr::new(self.plane[s + way]),
            meta: &mut self.meta[set * self.assoc + way],
        })
    }

    /// Snapshot of every valid line's architectural state — `(base word,
    /// dirty, write_only, subblock_valid)` sorted by base address — for
    /// structural equivalence checks against a reference model. LRU
    /// ordering is deliberately excluded: it is compared indirectly,
    /// through the evictions it causes.
    pub fn content_snapshot(&self) -> Vec<(u64, bool, bool, u32)> {
        let mut v: Vec<_> = self
            .iter()
            .map(|l| (l.base.word(), l.dirty, l.write_only, l.subblock_valid))
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(w: u64) -> PhysAddr {
        PhysAddr::new(w)
    }

    fn dm_16w_4l() -> CacheArray {
        // 16-word direct-mapped cache, 4-word lines, 4 sets.
        CacheArray::new(CacheGeometry::new(16, 4, 1).expect("valid"))
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheGeometry::new(4096, 4, 1).is_ok());
        assert!(CacheGeometry::new(0, 4, 1).is_err());
        assert!(CacheGeometry::new(4095, 4, 1).is_err());
        assert!(CacheGeometry::new(4096, 3, 1).is_err());
        assert!(CacheGeometry::new(4096, 64, 1).is_err(), "line > 32 words");
        assert!(CacheGeometry::new(4096, 4, 3).is_err());
        assert!(CacheGeometry::new(4, 4, 2).is_err(), "smaller than one set");
    }

    #[test]
    fn geometry_derived_values() {
        let g = CacheGeometry::new(4096, 4, 1).expect("valid");
        assert_eq!(g.n_sets(), 1024);
        assert_eq!(g.set_of(pa(0)), 0);
        assert_eq!(g.set_of(pa(4)), 1);
        assert_eq!(g.set_of(pa(4096)), 0, "wraps at cache size");
        assert_eq!(g.line_base(pa(7)).word(), 4);
        assert_eq!(g.word_in_line(pa(7)), 3);
    }

    #[test]
    fn shift_mask_forms_match_arithmetic_definitions() {
        // The precomputed shift/mask fast path must agree with the
        // division/modulo definitions for every geometry the study uses.
        for (size, line, assoc) in [
            (4096u64, 4u32, 1u32),
            (4096, 8, 1),
            (4096, 16, 2),
            (262_144, 32, 1),
            (262_144, 32, 2),
            (1_048_576, 32, 2),
            (64, 32, 1),
        ] {
            let g = CacheGeometry::new(size, line, assoc).expect("valid");
            assert_eq!(g.n_sets(), size / (line as u64 * assoc as u64));
            for w in [0u64, 1, 7, 31, 63, 4095, 4096, 999_999, 1 << 29] {
                let a = pa(w);
                assert_eq!(g.set_of(a), (w / line as u64) & (g.n_sets() - 1));
                assert_eq!(g.line_base(a), a.block_base(line as u64));
                assert_eq!(g.word_in_line(a), (w & (line as u64 - 1)) as u32);
            }
            let full = if line == 32 {
                u32::MAX
            } else {
                (1u32 << line) - 1
            };
            assert_eq!(g.full_subblock_mask(), full);
        }
    }

    #[test]
    fn line_member_mask_matches_scalar_containment() {
        // Cross-check the SWAR form against the obvious range check for
        // every line length the study uses and a grab-bag of addresses.
        for line_words in [1u64, 2, 4, 8, 16, 32] {
            let line_mask = line_words - 1;
            let words: Vec<u64> =
                [0u64, 3, 7, 8, 31, 32, 33, 63, 64, 100, 4095, 4096, 1 << 29].to_vec();
            for base_word in [0u64, 32, 64, 4096] {
                let base = base_word & !line_mask;
                let mask = line_member_mask(&words, base, line_mask);
                for (i, &w) in words.iter().enumerate() {
                    let inside = w >= base && w < base + line_words;
                    assert_eq!(
                        mask >> i & 1 == 1,
                        inside,
                        "line_words {line_words} base {base} word {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn line_member_mask_lane_windows() {
        // Two 4-slot lanes packed in one plane: each lane's window is
        // probed independently and the bit positions stay lane-local.
        let plane = [8u64, 9, 100, 11, 200, 10, 8, 300];
        let m0 = line_member_mask(&plane[0..4], 8, 3);
        let m1 = line_member_mask(&plane[4..8], 8, 3);
        assert_eq!(m0, 0b1011);
        assert_eq!(m1, 0b0110);
    }

    #[test]
    fn fill_then_contains() {
        let mut c = dm_16w_4l();
        assert!(!c.contains(pa(8)));
        assert_eq!(c.fill(pa(8)), None);
        assert!(c.contains(pa(8)));
        assert!(c.contains(pa(11)), "same line");
        assert!(!c.contains(pa(12)), "next line");
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm_16w_4l();
        c.fill(pa(0));
        let ev = c.fill(pa(16)); // maps to the same set 0
        assert_eq!(
            ev,
            Some(Evicted {
                base: pa(0),
                dirty: false,
                write_only: false
            })
        );
        assert!(!c.contains(pa(0)));
        assert!(c.contains(pa(16)));
    }

    #[test]
    fn two_way_lru_replacement() {
        // 2-way, 4W lines, 2 sets (16 words total).
        let mut c = CacheArray::new(CacheGeometry::new(16, 4, 2).expect("valid"));
        c.fill(pa(0)); // set 0
        c.fill(pa(8)); // set 0 (stride = 8 with 2 sets)
        assert!(c.contains(pa(0)) && c.contains(pa(8)));
        c.touch(pa(0)); // make line 0 MRU
        let ev = c.fill(pa(16)); // set 0 again: evicts LRU = line 8
        assert_eq!(ev.expect("eviction").base, pa(8));
        assert!(c.contains(pa(0)));
        assert!(c.contains(pa(16)));
    }

    #[test]
    fn fill_resident_line_resets_state_without_eviction() {
        let mut c = dm_16w_4l();
        c.fill(pa(0));
        c.touch(pa(0)).expect("resident").set_dirty(true);
        assert_eq!(c.fill(pa(2)), None, "same line refill");
        assert!(!c.peek(pa(0)).expect("resident").dirty);
    }

    #[test]
    fn eviction_reports_dirty_and_write_only() {
        let mut c = dm_16w_4l();
        c.fill(pa(0));
        {
            let mut l = c.touch(pa(0)).expect("resident");
            l.set_dirty(true);
            l.set_write_only(true);
        }
        let ev = c.fill(pa(16)).expect("eviction");
        assert!(ev.dirty && ev.write_only);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = dm_16w_4l();
        c.fill(pa(4));
        let old = c.invalidate(pa(5)).expect("was resident");
        assert_eq!(old.base, pa(4));
        assert!(!c.contains(pa(4)));
        assert_eq!(c.invalidate(pa(4)), None);
    }

    #[test]
    fn occupancy_and_iter() {
        let mut c = dm_16w_4l();
        assert_eq!(c.occupancy(), 0);
        c.fill(pa(0));
        c.fill(pa(4));
        assert_eq!(c.occupancy(), 2);
        assert_eq!(c.iter().count(), 2);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn subblock_mask_full_on_fill() {
        let mut c = CacheArray::new(CacheGeometry::new(64, 32, 1).expect("valid"));
        c.fill(pa(0));
        assert_eq!(c.peek(pa(0)).expect("resident").subblock_valid, u32::MAX);
        let mut c4 = dm_16w_4l();
        c4.fill(pa(0));
        assert_eq!(c4.peek(pa(0)).expect("resident").subblock_valid, 0b1111);
    }

    #[test]
    fn touch_updates_mru_only_on_hit() {
        let mut c = dm_16w_4l();
        assert!(c.touch(pa(0)).is_none());
        c.fill(pa(0));
        assert!(c.touch(pa(0)).is_some());
    }

    #[test]
    fn line_ref_accessors_round_trip() {
        let mut c = dm_16w_4l();
        c.fill(pa(8));
        {
            let mut l = c.peek_mut(pa(8)).expect("resident");
            assert_eq!(l.base(), pa(8));
            assert!(!l.dirty() && !l.write_only());
            assert_eq!(l.subblock_valid(), 0b1111);
            l.set_dirty(true);
            l.set_write_only(true);
            l.set_subblock_valid(0b0010);
            l.or_subblock(0b0100);
            assert_eq!(l.snapshot().subblock_valid, 0b0110);
        }
        let snap = c.peek(pa(8)).expect("resident");
        assert!(snap.dirty && snap.write_only);
        assert_eq!(snap.subblock_valid, 0b0110);
        // Clearing flags never disturbs the subblock bits.
        {
            let mut l = c.peek_mut(pa(8)).expect("resident");
            l.set_dirty(false);
            l.set_write_only(false);
        }
        let snap = c.peek(pa(8)).expect("resident");
        assert!(!snap.dirty && !snap.write_only);
        assert_eq!(snap.subblock_valid, 0b0110);
    }

    #[test]
    fn peek_set_yields_resident_lines() {
        let mut c = CacheArray::new(CacheGeometry::new(16, 4, 2).expect("valid"));
        c.fill(pa(0));
        c.fill(pa(8)); // same set
        let mut bases: Vec<u64> = c.peek_set(pa(0)).map(|l| l.base.word()).collect();
        bases.sort_unstable();
        assert_eq!(bases, vec![0, 8]);
    }

    #[test]
    fn geometry_error_display() {
        let e = CacheGeometry::new(0, 4, 1).unwrap_err();
        assert!(e.to_string().contains("invalid cache geometry"));
    }
}
