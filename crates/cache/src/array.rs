//! Generic set-associative cache array.
//!
//! [`CacheArray`] is the structural core shared by every cache in the study:
//! the 4 KW direct-mapped primary caches, the 16 KW–1024 KW unified/split
//! secondary caches, and the 2-way associative variants. It tracks tags,
//! validity, dirtiness, the write-only mark of the paper's new write policy,
//! and per-word subblock valid bits; replacement is LRU (trivial for
//! direct-mapped). Timing is deliberately *not* modelled here — the
//! simulator charges cycles; the array answers pure hit/miss/eviction
//! questions.

use std::fmt;

use gaas_trace::PhysAddr;

/// Validated geometry of a cache: total size, line length, associativity
/// (all in words, all powers of two).
///
/// The constructor precomputes the shift/mask forms of every per-access
/// derivation (set index, line base, word-in-line, subblock mask) so the
/// simulator's hot path performs no divisions: all sizes are powers of
/// two, so `set_of` is one shift and one mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_words: u64,
    line_words: u32,
    assoc: u32,
    /// log2(line_words): shifts a word address down to a line number.
    line_shift: u32,
    /// `line_words - 1`: masks the word offset within a line.
    line_mask: u64,
    /// `n_sets - 1`: masks a line number down to a set index.
    set_mask: u64,
    /// All subblock valid bits set for this line length.
    full_subblock_mask: u32,
}

/// Error returned for inconsistent cache geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryError(String);

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache geometry: {}", self.0)
    }
}

impl std::error::Error for GeometryError {}

impl CacheGeometry {
    /// Builds a geometry, validating that sizes are powers of two and that
    /// the cache holds at least one set.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] when `size_words`, `line_words` or `assoc`
    /// is zero or not a power of two, or when
    /// `size_words < line_words * assoc`.
    pub fn new(size_words: u64, line_words: u32, assoc: u32) -> Result<Self, GeometryError> {
        if size_words == 0 || !size_words.is_power_of_two() {
            return Err(GeometryError(format!(
                "size {size_words} not a power of two"
            )));
        }
        if line_words == 0 || !line_words.is_power_of_two() {
            return Err(GeometryError(format!(
                "line {line_words} not a power of two"
            )));
        }
        if line_words > 32 {
            return Err(GeometryError(format!(
                "line {line_words} exceeds the 32-word subblock mask"
            )));
        }
        if assoc == 0 || !assoc.is_power_of_two() {
            return Err(GeometryError(format!(
                "associativity {assoc} not a power of two"
            )));
        }
        if size_words < line_words as u64 * assoc as u64 {
            return Err(GeometryError(format!(
                "size {size_words} smaller than one set ({line_words} x {assoc})"
            )));
        }
        let n_sets = size_words / (line_words as u64 * assoc as u64);
        Ok(CacheGeometry {
            size_words,
            line_words,
            assoc,
            line_shift: line_words.trailing_zeros(),
            line_mask: line_words as u64 - 1,
            set_mask: n_sets - 1,
            full_subblock_mask: if line_words == 32 {
                u32::MAX
            } else {
                (1u32 << line_words) - 1
            },
        })
    }

    /// Total capacity in words.
    pub fn size_words(&self) -> u64 {
        self.size_words
    }

    /// Line length in words.
    pub fn line_words(&self) -> u32 {
        self.line_words
    }

    /// Degree of associativity (1 = direct-mapped).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    #[inline]
    pub fn n_sets(&self) -> u64 {
        self.set_mask + 1
    }

    /// Set index for a physical word address.
    #[inline]
    pub fn set_of(&self, addr: PhysAddr) -> u64 {
        (addr.word() >> self.line_shift) & self.set_mask
    }

    /// Line-aligned base address of the line containing `addr`.
    #[inline]
    pub fn line_base(&self, addr: PhysAddr) -> PhysAddr {
        PhysAddr::new(addr.word() & !self.line_mask)
    }

    /// Word index of `addr` within its line (for subblock valid bits).
    #[inline]
    pub fn word_in_line(&self, addr: PhysAddr) -> u32 {
        (addr.word() & self.line_mask) as u32
    }

    /// The subblock valid mask with every word bit of a line set.
    #[inline]
    pub fn full_subblock_mask(&self) -> u32 {
        self.full_subblock_mask
    }
}

/// State of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Line-aligned base word address of the cached line.
    pub base: PhysAddr,
    /// Tag/data valid.
    pub valid: bool,
    /// Line modified relative to the next level (write-back), or — for
    /// write-through policies with the dirty-bit bypass scheme (§9) — "this
    /// line has been written since allocation".
    pub dirty: bool,
    /// The paper's write-only mark: the line was allocated by a write miss
    /// under the write-only policy and must not service reads.
    pub write_only: bool,
    /// Per-word valid bits for subblock placement (bit *i* = word *i*).
    pub subblock_valid: u32,
    /// LRU timestamp (larger = more recently used).
    lru: u64,
}

impl Line {
    fn invalid() -> Self {
        Line {
            base: PhysAddr::new(0),
            valid: false,
            dirty: false,
            write_only: false,
            subblock_valid: 0,
            lru: 0,
        }
    }
}

/// Description of a line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Base address of the displaced line.
    pub base: PhysAddr,
    /// It was dirty/written (see [`Line::dirty`]).
    pub dirty: bool,
    /// It carried the write-only mark.
    pub write_only: bool,
}

/// A set-associative cache array with LRU replacement.
///
/// # Examples
///
/// ```
/// use gaas_cache::{CacheArray, CacheGeometry};
/// use gaas_trace::PhysAddr;
///
/// # fn main() -> Result<(), gaas_cache::GeometryError> {
/// // The paper's 4 KW direct-mapped L1 with 4 W lines.
/// let mut l1 = CacheArray::new(CacheGeometry::new(4096, 4, 1)?);
/// assert!(l1.touch(PhysAddr::new(0x40)).is_none(), "cold miss");
/// l1.fill(PhysAddr::new(0x40));
/// assert!(l1.touch(PhysAddr::new(0x42)).is_some(), "same line hits");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    geom: CacheGeometry,
    lines: Vec<Line>,
    clock: u64,
}

impl CacheArray {
    /// Creates an empty (all-invalid) array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let n = (geom.n_sets() * geom.assoc() as u64) as usize;
        CacheArray {
            geom,
            lines: vec![Line::invalid(); n],
            clock: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    #[inline]
    fn set_range(&self, set: u64) -> std::ops::Range<usize> {
        let a = self.geom.assoc() as usize;
        let start = set as usize * a;
        start..start + a
    }

    /// Looks up `addr` without updating LRU state. Returns the index of the
    /// matching line in the internal array.
    #[inline]
    fn probe_idx(&self, addr: PhysAddr) -> Option<usize> {
        let base = self.geom.line_base(addr);
        let set = self.geom.set_of(addr);
        if self.geom.assoc() == 1 {
            // Direct-mapped fast path: exactly one candidate way.
            let i = set as usize;
            let l = &self.lines[i];
            return (l.valid && l.base == base).then_some(i);
        }
        self.set_range(set)
            .find(|&i| self.lines[i].valid && self.lines[i].base == base)
    }

    /// True when `addr`'s line is resident (tag match, valid), regardless of
    /// write-only or subblock state. Does not update LRU.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        self.probe_idx(addr).is_some()
    }

    /// Returns a copy of the resident line for `addr`, if any. Does not
    /// update LRU.
    pub fn peek(&self, addr: PhysAddr) -> Option<Line> {
        self.probe_idx(addr).map(|i| self.lines[i])
    }

    /// Looks up `addr`; on a tag match, marks the line most-recently-used
    /// and returns a mutable reference to it.
    #[inline]
    pub fn touch(&mut self, addr: PhysAddr) -> Option<&mut Line> {
        let idx = self.probe_idx(addr)?;
        self.clock += 1;
        self.lines[idx].lru = self.clock;
        Some(&mut self.lines[idx])
    }

    /// Allocates a line for `addr` (replacing the LRU way if the set is
    /// full) and returns the displaced line, if any. The new line is valid,
    /// clean, not write-only, with all subblock bits set, and is marked
    /// most-recently-used.
    ///
    /// If `addr`'s line is already resident, the resident line is reset to
    /// that same state and no eviction occurs.
    pub fn fill(&mut self, addr: PhysAddr) -> Option<Evicted> {
        let base = self.geom.line_base(addr);
        let full_mask = self.geom.full_subblock_mask();
        self.clock += 1;
        let clock = self.clock;

        if let Some(idx) = self.probe_idx(addr) {
            let line = &mut self.lines[idx];
            line.dirty = false;
            line.write_only = false;
            line.subblock_valid = full_mask;
            line.lru = clock;
            return None;
        }

        let set = self.geom.set_of(addr);
        let range = self.set_range(set);
        // Prefer an invalid way; otherwise evict the LRU way.
        let victim = range
            .clone()
            .find(|&i| !self.lines[i].valid)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].lru)
                    .expect("set has at least one way")
            });

        let old = self.lines[victim];
        let evicted = old.valid.then_some(Evicted {
            base: old.base,
            dirty: old.dirty,
            write_only: old.write_only,
        });
        self.lines[victim] = Line {
            base,
            valid: true,
            dirty: false,
            write_only: false,
            subblock_valid: full_mask,
            lru: clock,
        };
        evicted
    }

    /// Invalidates `addr`'s line if resident; returns the line that was
    /// invalidated.
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<Line> {
        let idx = self.probe_idx(addr)?;
        let old = self.lines[idx];
        self.lines[idx] = Line::invalid();
        Some(old)
    }

    /// Invalidates every line (not used by the architecture — PID tags make
    /// flushes unnecessary — but provided for experiments and tests).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            *l = Line::invalid();
        }
    }

    /// Iterates over the valid lines of the set that `addr` indexes
    /// (at most `assoc` lines).
    pub fn peek_set(&self, addr: PhysAddr) -> impl Iterator<Item = &Line> {
        let set = self.geom.set_of(addr);
        self.lines[self.set_range(set)].iter().filter(|l| l.valid)
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Iterates over all valid lines (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Line> {
        self.lines.iter().filter(|l| l.valid)
    }

    /// Mutable lookup of `addr`'s resident line *without* touching LRU
    /// state.
    ///
    /// This exists for the differential oracle's seeded-bug canary (flip
    /// a dirty bit in place and assert the oracle notices) and for
    /// invariant-checking tools; normal cache operation always goes
    /// through [`CacheArray::touch`] / [`CacheArray::fill`].
    pub fn peek_mut(&mut self, addr: PhysAddr) -> Option<&mut Line> {
        let idx = self.probe_idx(addr)?;
        Some(&mut self.lines[idx])
    }

    /// Snapshot of every valid line's architectural state — `(base word,
    /// dirty, write_only, subblock_valid)` sorted by base address — for
    /// structural equivalence checks against a reference model. LRU
    /// ordering is deliberately excluded: it is compared indirectly,
    /// through the evictions it causes.
    pub fn content_snapshot(&self) -> Vec<(u64, bool, bool, u32)> {
        let mut v: Vec<_> = self
            .iter()
            .map(|l| (l.base.word(), l.dirty, l.write_only, l.subblock_valid))
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(w: u64) -> PhysAddr {
        PhysAddr::new(w)
    }

    fn dm_16w_4l() -> CacheArray {
        // 16-word direct-mapped cache, 4-word lines, 4 sets.
        CacheArray::new(CacheGeometry::new(16, 4, 1).expect("valid"))
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheGeometry::new(4096, 4, 1).is_ok());
        assert!(CacheGeometry::new(0, 4, 1).is_err());
        assert!(CacheGeometry::new(4095, 4, 1).is_err());
        assert!(CacheGeometry::new(4096, 3, 1).is_err());
        assert!(CacheGeometry::new(4096, 64, 1).is_err(), "line > 32 words");
        assert!(CacheGeometry::new(4096, 4, 3).is_err());
        assert!(CacheGeometry::new(4, 4, 2).is_err(), "smaller than one set");
    }

    #[test]
    fn geometry_derived_values() {
        let g = CacheGeometry::new(4096, 4, 1).expect("valid");
        assert_eq!(g.n_sets(), 1024);
        assert_eq!(g.set_of(pa(0)), 0);
        assert_eq!(g.set_of(pa(4)), 1);
        assert_eq!(g.set_of(pa(4096)), 0, "wraps at cache size");
        assert_eq!(g.line_base(pa(7)).word(), 4);
        assert_eq!(g.word_in_line(pa(7)), 3);
    }

    #[test]
    fn shift_mask_forms_match_arithmetic_definitions() {
        // The precomputed shift/mask fast path must agree with the
        // division/modulo definitions for every geometry the study uses.
        for (size, line, assoc) in [
            (4096u64, 4u32, 1u32),
            (4096, 8, 1),
            (4096, 16, 2),
            (262_144, 32, 1),
            (262_144, 32, 2),
            (1_048_576, 32, 2),
            (64, 32, 1),
        ] {
            let g = CacheGeometry::new(size, line, assoc).expect("valid");
            assert_eq!(g.n_sets(), size / (line as u64 * assoc as u64));
            for w in [0u64, 1, 7, 31, 63, 4095, 4096, 999_999, 1 << 29] {
                let a = pa(w);
                assert_eq!(g.set_of(a), (w / line as u64) & (g.n_sets() - 1));
                assert_eq!(g.line_base(a), a.block_base(line as u64));
                assert_eq!(g.word_in_line(a), (w & (line as u64 - 1)) as u32);
            }
            let full = if line == 32 {
                u32::MAX
            } else {
                (1u32 << line) - 1
            };
            assert_eq!(g.full_subblock_mask(), full);
        }
    }

    #[test]
    fn fill_then_contains() {
        let mut c = dm_16w_4l();
        assert!(!c.contains(pa(8)));
        assert_eq!(c.fill(pa(8)), None);
        assert!(c.contains(pa(8)));
        assert!(c.contains(pa(11)), "same line");
        assert!(!c.contains(pa(12)), "next line");
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm_16w_4l();
        c.fill(pa(0));
        let ev = c.fill(pa(16)); // maps to the same set 0
        assert_eq!(
            ev,
            Some(Evicted {
                base: pa(0),
                dirty: false,
                write_only: false
            })
        );
        assert!(!c.contains(pa(0)));
        assert!(c.contains(pa(16)));
    }

    #[test]
    fn two_way_lru_replacement() {
        // 2-way, 4W lines, 2 sets (16 words total).
        let mut c = CacheArray::new(CacheGeometry::new(16, 4, 2).expect("valid"));
        c.fill(pa(0)); // set 0
        c.fill(pa(8)); // set 0 (stride = 8 with 2 sets)
        assert!(c.contains(pa(0)) && c.contains(pa(8)));
        c.touch(pa(0)); // make line 0 MRU
        let ev = c.fill(pa(16)); // set 0 again: evicts LRU = line 8
        assert_eq!(ev.expect("eviction").base, pa(8));
        assert!(c.contains(pa(0)));
        assert!(c.contains(pa(16)));
    }

    #[test]
    fn fill_resident_line_resets_state_without_eviction() {
        let mut c = dm_16w_4l();
        c.fill(pa(0));
        c.touch(pa(0)).expect("resident").dirty = true;
        assert_eq!(c.fill(pa(2)), None, "same line refill");
        assert!(!c.peek(pa(0)).expect("resident").dirty);
    }

    #[test]
    fn eviction_reports_dirty_and_write_only() {
        let mut c = dm_16w_4l();
        c.fill(pa(0));
        {
            let l = c.touch(pa(0)).expect("resident");
            l.dirty = true;
            l.write_only = true;
        }
        let ev = c.fill(pa(16)).expect("eviction");
        assert!(ev.dirty && ev.write_only);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = dm_16w_4l();
        c.fill(pa(4));
        let old = c.invalidate(pa(5)).expect("was resident");
        assert_eq!(old.base, pa(4));
        assert!(!c.contains(pa(4)));
        assert_eq!(c.invalidate(pa(4)), None);
    }

    #[test]
    fn occupancy_and_iter() {
        let mut c = dm_16w_4l();
        assert_eq!(c.occupancy(), 0);
        c.fill(pa(0));
        c.fill(pa(4));
        assert_eq!(c.occupancy(), 2);
        assert_eq!(c.iter().count(), 2);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn subblock_mask_full_on_fill() {
        let mut c = CacheArray::new(CacheGeometry::new(64, 32, 1).expect("valid"));
        c.fill(pa(0));
        assert_eq!(c.peek(pa(0)).expect("resident").subblock_valid, u32::MAX);
        let mut c4 = dm_16w_4l();
        c4.fill(pa(0));
        assert_eq!(c4.peek(pa(0)).expect("resident").subblock_valid, 0b1111);
    }

    #[test]
    fn touch_updates_mru_only_on_hit() {
        let mut c = dm_16w_4l();
        assert!(c.touch(pa(0)).is_none());
        c.fill(pa(0));
        assert!(c.touch(pa(0)).is_some());
    }

    #[test]
    fn geometry_error_display() {
        let e = CacheGeometry::new(0, 4, 1).unwrap_err();
        assert!(e.to_string().contains("invalid cache geometry"));
    }
}
