//! Write buffers with drain timing (§2, §6, §9 of the paper).
//!
//! Two configurations appear in the study:
//!
//! * the base write-back architecture uses a **4-deep, 4 W-wide** buffer
//!   holding replaced dirty lines;
//! * the write-through policies use an **8-deep, 1 W-wide** buffer holding
//!   individual written words (which shrinks the I/O requirement fourfold
//!   and lets the buffer move inside the MMU chip, §6).
//!
//! The buffer drains autonomously into L2. Drain timing follows the paper's
//! L2 access model: a single write takes the full access time `T`, but a
//! *stream* of back-to-back writes overlaps the two latency cycles, so a
//! queued entry completes at `max(enqueue + T, previous + (T − 2))`. Entry
//! completion times are therefore fixed at enqueue time; the simulator asks
//! the buffer "when is there a free slot?" / "when are you empty?" /
//! "when has the entry matching this line drained?" and charges stall
//! cycles accordingly.

use std::collections::VecDeque;

use gaas_trace::PhysAddr;

/// One queued write with its precomputed drain-completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbEntry {
    /// The written word (write-through) or the victim line base
    /// (write-back).
    pub addr: PhysAddr,
    /// Cycle at which the entry has fully drained into L2.
    pub completes_at: u64,
}

/// A FIFO write buffer that drains into the secondary cache.
///
/// # Examples
///
/// ```
/// use gaas_cache::WriteBuffer;
/// use gaas_trace::PhysAddr;
///
/// // The write-through configuration: 8 slots, 6-cycle L2 writes that
/// // stream at 4 cycles back-to-back.
/// let mut wb = WriteBuffer::new(8);
/// let first = wb.enqueue(0, PhysAddr::new(0x10), 6, 4, 0);
/// let second = wb.enqueue(1, PhysAddr::new(0x11), 6, 4, 0);
/// assert_eq!(first, 6, "isolated write takes the full access time");
/// assert_eq!(second, 10, "streamed write overlaps the 2-cycle latency");
/// assert_eq!(wb.empty_at(0), 10);
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    depth: usize,
    entries: VecDeque<WbEntry>,
    /// Completion time of the most recently enqueued entry (streaming
    /// overlap reference), persisting after the queue empties.
    last_completion: u64,
    /// Total entries ever enqueued (for stats).
    enqueued: u64,
    /// High-water mark of queued entries (for stats).
    peak: usize,
}

impl WriteBuffer {
    /// Creates an empty buffer with `depth` slots.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "write buffer needs at least one slot");
        WriteBuffer {
            depth,
            entries: VecDeque::with_capacity(depth),
            last_completion: 0,
            enqueued: 0,
            peak: 0,
        }
    }

    /// Buffer capacity in entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Retires entries whose drain completed by `now`.
    #[inline]
    pub fn advance(&mut self, now: u64) {
        while let Some(front) = self.entries.front() {
            if front.completes_at <= now {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }

    /// Entries still queued at `now` (after retirement).
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.advance(now);
        self.entries.len()
    }

    /// Cycle by which a slot is free, i.e. the earliest time an enqueue can
    /// be accepted. Equals `now` when the buffer is not full.
    #[inline]
    pub fn slot_free_at(&mut self, now: u64) -> u64 {
        self.advance(now);
        if self.entries.len() < self.depth {
            now
        } else {
            self.entries[self.entries.len() - self.depth].completes_at
        }
    }

    /// Cycle by which the buffer is completely empty (≥ `now`).
    #[inline]
    pub fn empty_at(&mut self, now: u64) -> u64 {
        self.advance(now);
        self.entries.back().map_or(now, |e| e.completes_at.max(now))
    }

    /// Enqueues a write at `enq_time` with a drain occupancy given by
    /// `access_time` (full L2 access for an isolated write) and
    /// `stream_occupancy` (back-to-back occupancy, `access_time − 2` in the
    /// paper's model). `extra_penalty` charges an L2 write miss that must
    /// allocate from main memory before the drain can complete.
    ///
    /// The caller must have resolved slot availability first (via
    /// [`WriteBuffer::slot_free_at`]) — `enq_time` is assumed to be a legal
    /// enqueue time.
    ///
    /// Returns the completion time of the new entry.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the buffer is full at `enq_time`.
    #[inline]
    pub fn enqueue(
        &mut self,
        enq_time: u64,
        addr: PhysAddr,
        access_time: u32,
        stream_occupancy: u32,
        extra_penalty: u32,
    ) -> u64 {
        self.advance(enq_time);
        debug_assert!(
            self.entries.len() < self.depth,
            "enqueue into full write buffer"
        );
        let isolated = enq_time + access_time as u64;
        let streamed = self.last_completion + stream_occupancy as u64;
        let completes_at = isolated.max(streamed) + extra_penalty as u64;
        self.entries.push_back(WbEntry { addr, completes_at });
        self.last_completion = completes_at;
        self.enqueued += 1;
        self.peak = self.peak.max(self.entries.len());
        completes_at
    }

    /// Associative lookup (§9 bypass with matching): the completion time of
    /// the *youngest* entry whose address falls in the line starting at
    /// `line_base` of length `line_words`. Flushing "all entries ahead,
    /// including the matched entry" means waiting exactly until that entry
    /// completes.
    pub fn match_line(&mut self, now: u64, line_base: PhysAddr, line_words: u32) -> Option<u64> {
        self.advance(now);
        let lo = line_base.word();
        let hi = lo + line_words as u64;
        self.entries
            .iter()
            .rev()
            .find(|e| (lo..hi).contains(&e.addr.word()))
            .map(|e| e.completes_at)
    }

    /// Total entries ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// High-water mark of simultaneously queued entries over the
    /// buffer's lifetime (how close the workload came to filling it).
    pub fn peak_depth(&self) -> usize {
        self.peak
    }

    /// Completion time of the most recently enqueued entry (0 before any
    /// enqueue). With the enqueue time, this bounds the L2 occupancy of
    /// the next drain: `busy = completion − max(enqueue, last_completion)`.
    #[inline]
    pub fn last_completion(&self) -> u64 {
        self.last_completion
    }

    /// True when no entries remain at `now`.
    pub fn is_empty(&mut self, now: u64) -> bool {
        self.occupancy(now) == 0
    }

    /// Iterates over the queued entries in FIFO order (oldest first),
    /// *without* retiring drained entries first. Because retirement is
    /// lazy, the live queue is always a suffix of the enqueue history —
    /// the invariant the differential oracle checks.
    pub fn entries(&self) -> impl Iterator<Item = &WbEntry> {
        self.entries.iter()
    }

    /// Removes and returns the most recently enqueued entry, if any.
    ///
    /// This is a *deliberate-corruption hook* for the differential
    /// oracle's seeded-bug canary (drop a pending write, assert the
    /// oracle notices); the architecture itself never loses buffer
    /// entries.
    pub fn drop_youngest(&mut self) -> Option<WbEntry> {
        self.entries.pop_back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(w: u64) -> PhysAddr {
        PhysAddr::new(w)
    }

    #[test]
    fn isolated_write_takes_full_access_time() {
        let mut wb = WriteBuffer::new(8);
        let done = wb.enqueue(100, pa(1), 6, 4, 0);
        assert_eq!(done, 106);
        assert_eq!(wb.empty_at(100), 106);
        assert!(wb.is_empty(106));
    }

    #[test]
    fn streamed_writes_overlap_latency() {
        let mut wb = WriteBuffer::new(8);
        let d1 = wb.enqueue(0, pa(1), 6, 4, 0);
        let d2 = wb.enqueue(1, pa(2), 6, 4, 0);
        let d3 = wb.enqueue(2, pa(3), 6, 4, 0);
        assert_eq!(d1, 6);
        assert_eq!(d2, 10, "streams at T-2 = 4 per entry");
        assert_eq!(d3, 14);
    }

    #[test]
    fn gap_resets_streaming() {
        let mut wb = WriteBuffer::new(8);
        let d1 = wb.enqueue(0, pa(1), 6, 4, 0);
        assert_eq!(d1, 6);
        // Enqueue long after the first drained: isolated timing again.
        let d2 = wb.enqueue(50, pa(2), 6, 4, 0);
        assert_eq!(d2, 56);
    }

    #[test]
    fn extra_penalty_models_l2_write_miss() {
        let mut wb = WriteBuffer::new(8);
        let done = wb.enqueue(0, pa(1), 6, 4, 143);
        assert_eq!(done, 149);
    }

    #[test]
    fn slot_free_when_not_full_is_now() {
        let mut wb = WriteBuffer::new(2);
        wb.enqueue(0, pa(1), 6, 4, 0);
        assert_eq!(wb.slot_free_at(0), 0);
    }

    #[test]
    fn slot_free_when_full_waits_for_front() {
        let mut wb = WriteBuffer::new(2);
        wb.enqueue(0, pa(1), 6, 4, 0); // completes 6
        wb.enqueue(0, pa(2), 6, 4, 0); // completes 10
        assert_eq!(wb.slot_free_at(0), 6, "front entry frees the slot");
        // After the front drains the slot is immediately available.
        assert_eq!(wb.slot_free_at(6), 6);
        assert_eq!(wb.occupancy(6), 1);
    }

    #[test]
    fn fifo_retirement_order() {
        let mut wb = WriteBuffer::new(4);
        wb.enqueue(0, pa(1), 6, 4, 0); // 6
        wb.enqueue(0, pa(2), 6, 4, 0); // 10
        wb.enqueue(0, pa(3), 6, 4, 0); // 14
        assert_eq!(wb.occupancy(5), 3);
        assert_eq!(wb.occupancy(9), 2);
        assert_eq!(wb.occupancy(13), 1);
        assert_eq!(wb.occupancy(14), 0);
    }

    #[test]
    fn empty_at_is_monotone_with_now() {
        let mut wb = WriteBuffer::new(4);
        wb.enqueue(0, pa(1), 6, 4, 0);
        assert_eq!(wb.empty_at(0), 6);
        assert_eq!(wb.empty_at(20), 20, "already empty: now");
    }

    #[test]
    fn match_line_finds_youngest_in_line() {
        let mut wb = WriteBuffer::new(8);
        wb.enqueue(0, pa(100), 6, 4, 0); // 6
        wb.enqueue(0, pa(101), 6, 4, 0); // 10 — same 4W line (100..104)
        wb.enqueue(0, pa(200), 6, 4, 0); // 14
        let m = wb.match_line(0, pa(100), 4).expect("match");
        assert_eq!(m, 10, "youngest matching entry");
        assert!(wb.match_line(0, pa(104), 4).is_none());
    }

    #[test]
    fn match_line_ignores_drained_entries() {
        let mut wb = WriteBuffer::new(8);
        wb.enqueue(0, pa(100), 6, 4, 0); // completes 6
        assert!(wb.match_line(10, pa(100), 4).is_none());
    }

    #[test]
    fn total_enqueued_counts() {
        let mut wb = WriteBuffer::new(2);
        wb.enqueue(0, pa(1), 6, 4, 0);
        wb.enqueue(100, pa(2), 6, 4, 0);
        assert_eq!(wb.total_enqueued(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_depth_rejected() {
        let _ = WriteBuffer::new(0);
    }
}
