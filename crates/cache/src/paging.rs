//! Page-coloring virtual-to-physical mapper (§3, \[TDF90\]).
//!
//! "The virtual to physical mapping of addresses is performed using page
//! coloring." Page coloring assigns each virtual page a physical page whose
//! low page-number bits (its *color*) match the virtual page's, so the
//! untranslated bits that index a physically-indexed cache are identical in
//! the virtual and physical address. That keeps cache indexing consistent
//! across processes while still spreading distinct address spaces over
//! distinct physical pages (the PID prefix feeds the hash).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use gaas_trace::{PhysAddr, VirtAddr, PAGE_SHIFT};

/// Default number of colors: enough for a 1024 KW (4 MB) cache with 4 KW
/// pages.
pub const DEFAULT_COLORS: u64 = 256;

/// Slots in the direct-mapped translation cache fronting the page table.
/// A software TLB, in effect: `translate` sits on the per-event hot path
/// of the simulator, and page working sets are far smaller than 4096.
const XLATE_CACHE_SLOTS: usize = 4096;

/// Single-`u64` hasher for the page table (Fibonacci multiplicative hash).
///
/// The std default (SipHash) costs more than the rest of `translate`
/// combined. Frame assignment depends only on *insertion order* — the
/// per-color sequence counters — never on hash values, so swapping the
/// hasher cannot change any translation.
#[derive(Debug, Default, Clone)]
struct PageKeyHasher(u64);

impl Hasher for PageKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A demand-allocating, page-coloring page table covering every process
/// (the PID is part of the key).
///
/// # Examples
///
/// ```
/// use gaas_cache::PageMapper;
/// use gaas_trace::{Pid, VirtAddr, PAGE_WORDS};
///
/// let mut mapper = PageMapper::new(64);
/// let va = VirtAddr::new(Pid::new(1), 5 * PAGE_WORDS + 17);
/// let pa = mapper.translate(va);
/// assert_eq!(pa.page_offset(), 17, "offsets pass through");
/// assert_eq!(pa.ppn() % 64, 5 % 64, "page color preserved");
/// ```
#[derive(Debug, Clone)]
pub struct PageMapper {
    colors: u64,
    /// Next allocation sequence number per color.
    next_seq: Vec<u64>,
    /// `(pid << 52 | vpn) -> ppn`.
    map: HashMap<u64, u64, BuildHasherDefault<PageKeyHasher>>,
    /// Direct-mapped `(key, ppn)` cache over `map`. Mappings are immutable
    /// once allocated, so entries never need invalidation.
    xlate: Vec<(u64, u64)>,
}

impl PageMapper {
    /// Creates a mapper with `colors` page colors.
    ///
    /// # Panics
    ///
    /// Panics if `colors` is zero or not a power of two.
    pub fn new(colors: u64) -> Self {
        assert!(
            colors > 0 && colors.is_power_of_two(),
            "colors must be a power of two"
        );
        PageMapper {
            colors,
            next_seq: vec![0; colors as usize],
            map: HashMap::default(),
            xlate: vec![(u64::MAX, 0); XLATE_CACHE_SLOTS],
        }
    }

    /// Number of page colors.
    pub fn colors(&self) -> u64 {
        self.colors
    }

    /// Translates a virtual address, allocating a physical page with the
    /// matching color on first touch.
    pub fn translate(&mut self, addr: VirtAddr) -> PhysAddr {
        let vpn = addr.vpn();
        let key = ((addr.pid().raw() as u64) << 52) | vpn;
        // Fast path: the direct-mapped cache. PID bits are folded down so
        // processes with identical layouts don't all collide per slot.
        let slot = ((key ^ (key >> 49)) as usize) & (XLATE_CACHE_SLOTS - 1);
        let (ckey, cppn) = self.xlate[slot];
        let ppn = if ckey == key {
            cppn
        } else {
            let color = vpn & (self.colors - 1);
            let colors = self.colors;
            let next_seq = &mut self.next_seq[color as usize];
            let ppn = *self.map.entry(key).or_insert_with(|| {
                let ppn = *next_seq * colors + color;
                *next_seq += 1;
                ppn
            });
            self.xlate[slot] = (key, ppn);
            ppn
        };
        PhysAddr::new((ppn << PAGE_SHIFT) | addr.page_offset())
    }

    /// Physical pages allocated so far.
    pub fn allocated_pages(&self) -> usize {
        self.map.len()
    }
}

impl Default for PageMapper {
    fn default() -> Self {
        PageMapper::new(DEFAULT_COLORS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaas_trace::{Pid, PAGE_WORDS};

    fn va(pid: u8, word: u64) -> VirtAddr {
        VirtAddr::new(Pid::new(pid), word)
    }

    #[test]
    fn translation_is_stable() {
        let mut m = PageMapper::default();
        let a = m.translate(va(1, 5 * PAGE_WORDS + 3));
        let b = m.translate(va(1, 5 * PAGE_WORDS + 900));
        assert_eq!(a.ppn(), b.ppn(), "same page, same frame");
        assert_eq!(a.page_offset(), 3);
        assert_eq!(b.page_offset(), 900);
    }

    #[test]
    fn color_bits_are_preserved() {
        let mut m = PageMapper::new(64);
        for pid in 0..4u8 {
            for vpn in [0u64, 1, 63, 64, 65, 200] {
                let p = m.translate(va(pid, vpn * PAGE_WORDS));
                assert_eq!(p.ppn() % 64, vpn % 64, "pid {pid} vpn {vpn}");
            }
        }
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut m = PageMapper::default();
        let mut seen = std::collections::HashSet::new();
        for pid in 0..8u8 {
            for vpn in 0..64u64 {
                let p = m.translate(va(pid, vpn * PAGE_WORDS));
                assert!(seen.insert(p.ppn()), "frame reused: {}", p.ppn());
            }
        }
        assert_eq!(m.allocated_pages(), 8 * 64);
    }

    #[test]
    fn offsets_pass_through() {
        let mut m = PageMapper::default();
        for off in [0u64, 1, PAGE_WORDS - 1] {
            let p = m.translate(va(0, 7 * PAGE_WORDS + off));
            assert_eq!(p.page_offset(), off);
        }
    }

    #[test]
    fn same_color_pages_stack_by_sequence() {
        let mut m = PageMapper::new(4);
        let p0 = m.translate(va(0, 0)); // vpn 0, color 0
        let p1 = m.translate(va(0, 4 * PAGE_WORDS)); // vpn 4, color 0
        let p2 = m.translate(va(1, 0)); // pid 1 vpn 0, color 0
        assert_eq!(p0.ppn(), 0);
        assert_eq!(p1.ppn(), 4);
        assert_eq!(p2.ppn(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_colors_rejected() {
        let _ = PageMapper::new(3);
    }
}
