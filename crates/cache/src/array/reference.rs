//! Scalar reference implementation of the set-associative cache array.
//!
//! [`RefCacheArray`] is the pre-tag-plane `CacheArray` preserved verbatim:
//! one `RefLine` struct per way, per-way linear probe, explicit
//! first-invalid-else-LRU victim scan. It is deliberately the *simple*
//! formulation of the semantics — every behavior of the packed
//! [`CacheArray`](super::CacheArray) (hit/miss, victim choice, dirty and
//! write-only propagation, subblock valid bits, resident-refill reset)
//! must be reproducible here, and the `packed_vs_reference` differential
//! fuzz test drives both implementations access-for-access to prove it.
//! It is not used on any simulation path.

use gaas_trace::PhysAddr;

use super::{CacheGeometry, Evicted};

/// State of one cache line in the reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefLine {
    /// Line-aligned base word address of the cached line.
    pub base: PhysAddr,
    /// Tag/data valid.
    pub valid: bool,
    /// Dirty/written flag (see [`super::Line::dirty`]).
    pub dirty: bool,
    /// The paper's write-only mark.
    pub write_only: bool,
    /// Per-word subblock valid bits.
    pub subblock_valid: u32,
    /// LRU timestamp (larger = more recently used).
    lru: u64,
}

impl RefLine {
    fn invalid() -> Self {
        RefLine {
            base: PhysAddr::new(0),
            valid: false,
            dirty: false,
            write_only: false,
            subblock_valid: 0,
            lru: 0,
        }
    }
}

/// The scalar reference cache array (see the module docs).
#[derive(Debug, Clone)]
pub struct RefCacheArray {
    geom: CacheGeometry,
    lines: Vec<RefLine>,
    clock: u64,
}

impl RefCacheArray {
    /// Creates an empty (all-invalid) array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let n = (geom.n_sets() * geom.assoc() as u64) as usize;
        RefCacheArray {
            geom,
            lines: vec![RefLine::invalid(); n],
            clock: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    fn set_range(&self, set: u64) -> std::ops::Range<usize> {
        let a = self.geom.assoc() as usize;
        let start = set as usize * a;
        start..start + a
    }

    fn probe_idx(&self, addr: PhysAddr) -> Option<usize> {
        let base = self.geom.line_base(addr);
        let set = self.geom.set_of(addr);
        if self.geom.assoc() == 1 {
            let i = set as usize;
            let l = &self.lines[i];
            return (l.valid && l.base == base).then_some(i);
        }
        self.set_range(set)
            .find(|&i| self.lines[i].valid && self.lines[i].base == base)
    }

    /// True when `addr`'s line is resident. Does not update LRU.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        self.probe_idx(addr).is_some()
    }

    /// Returns a copy of the resident line for `addr`, if any. Does not
    /// update LRU.
    pub fn peek(&self, addr: PhysAddr) -> Option<RefLine> {
        self.probe_idx(addr).map(|i| self.lines[i])
    }

    /// Looks up `addr`; on a tag match, marks the line most-recently-used
    /// and returns a mutable reference to it.
    pub fn touch(&mut self, addr: PhysAddr) -> Option<&mut RefLine> {
        let idx = self.probe_idx(addr)?;
        self.clock += 1;
        self.lines[idx].lru = self.clock;
        Some(&mut self.lines[idx])
    }

    /// Allocates a line for `addr` exactly as
    /// [`CacheArray::fill`](super::CacheArray::fill) specifies, returning
    /// the displaced line, if any.
    pub fn fill(&mut self, addr: PhysAddr) -> Option<Evicted> {
        let base = self.geom.line_base(addr);
        let full_mask = self.geom.full_subblock_mask();
        self.clock += 1;
        let clock = self.clock;

        if let Some(idx) = self.probe_idx(addr) {
            let line = &mut self.lines[idx];
            line.dirty = false;
            line.write_only = false;
            line.subblock_valid = full_mask;
            line.lru = clock;
            return None;
        }

        let set = self.geom.set_of(addr);
        let range = self.set_range(set);
        // Prefer an invalid way; otherwise evict the LRU way.
        let victim = range
            .clone()
            .find(|&i| !self.lines[i].valid)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].lru)
                    .expect("set has at least one way")
            });

        let old = self.lines[victim];
        let evicted = old.valid.then_some(Evicted {
            base: old.base,
            dirty: old.dirty,
            write_only: old.write_only,
        });
        self.lines[victim] = RefLine {
            base,
            valid: true,
            dirty: false,
            write_only: false,
            subblock_valid: full_mask,
            lru: clock,
        };
        evicted
    }

    /// Invalidates `addr`'s line if resident; returns the line that was
    /// invalidated.
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<RefLine> {
        let idx = self.probe_idx(addr)?;
        let old = self.lines[idx];
        self.lines[idx] = RefLine::invalid();
        Some(old)
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Snapshot of every valid line's architectural state, sorted,
    /// directly comparable with
    /// [`CacheArray::content_snapshot`](super::CacheArray::content_snapshot).
    pub fn content_snapshot(&self) -> Vec<(u64, bool, bool, u32)> {
        let mut v: Vec<_> = self
            .lines
            .iter()
            .filter(|l| l.valid)
            .map(|l| (l.base.word(), l.dirty, l.write_only, l.subblock_valid))
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(w: u64) -> PhysAddr {
        PhysAddr::new(w)
    }

    /// The reference model reproduces the documented legacy behaviors the
    /// packed array is checked against.
    #[test]
    fn reference_semantics_smoke() {
        let mut c = RefCacheArray::new(CacheGeometry::new(16, 4, 2).expect("valid"));
        assert!(!c.contains(pa(0)));
        assert_eq!(c.fill(pa(0)), None);
        c.fill(pa(8)); // same set
        c.touch(pa(0)); // MRU
        let ev = c.fill(pa(16)).expect("evicts LRU way");
        assert_eq!(ev.base, pa(8));
        c.touch(pa(0)).expect("resident").dirty = true;
        assert!(c.peek(pa(0)).expect("resident").dirty);
        assert_eq!(c.fill(pa(1)), None, "resident refill resets, no evict");
        assert!(!c.peek(pa(0)).expect("resident").dirty);
        assert_eq!(c.occupancy(), 2);
        assert_eq!(c.invalidate(pa(0)).expect("resident").base, pa(0));
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.content_snapshot().len(), 1);
    }
}
