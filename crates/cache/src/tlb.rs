//! Translation-lookaside buffers (§2 of the paper).
//!
//! The MMU chip holds a 2-way set-associative, 32-entry instruction TLB and
//! a 2-way set-associative, 64-entry data TLB. Entries are tagged with the
//! 8-bit PID, so — like the caches — the TLBs are never flushed on a
//! context switch (§3, \[Aga88\]).
//!
//! The paper does not charge cycles for TLB misses (tag lookup proceeds in
//! parallel with translation thanks to the page-size-bounded L1 index), so
//! the simulator defaults the TLB miss penalty to zero; the structure is
//! still simulated faithfully and its miss counts are reported.

use gaas_trace::{Pid, VirtAddr, PAGE_SHIFT, PID_SHIFT};

/// Bits a per-process VPN can occupy (the word address space below the PID
/// prefix, minus the page offset).
const VPN_BITS: u32 = PID_SHIFT - PAGE_SHIFT;

/// Mask selecting the VPN part of a packed entry key.
const VPN_MASK: u64 = (1 << VPN_BITS) - 1;

/// Key of an invalid entry. Real keys are `raw >> PAGE_SHIFT` with the PID
/// packed directly above [`VPN_BITS`] bits of VPN, so they never reach this.
const INVALID_KEY: u64 = u64::MAX;

/// A PID-tagged, set-associative TLB with LRU replacement.
///
/// Entries live in a bit-packed plane laid out like the cache tag plane:
/// each set owns one stripe `[keys[assoc] | lru[assoc]]`, where a key
/// packs the PID above the VPN exactly as [`VirtAddr::raw`] does above
/// the page offset. The 2-way hit path is branchless in the way
/// dimension — both compares feed one hit mask, `trailing_zeros` picks
/// the way — and a hit plus its LRU promotion touch one 32-byte stripe.
///
/// # Examples
///
/// ```
/// use gaas_cache::Tlb;
/// use gaas_trace::{Pid, VirtAddr, PAGE_WORDS};
///
/// let mut dtlb = Tlb::data(); // 2-way, 64 entries
/// let page = VirtAddr::new(Pid::new(3), 7 * PAGE_WORDS);
/// assert!(!dtlb.access(page), "first touch misses and installs");
/// assert!(dtlb.access(page), "re-translation hits");
/// assert_eq!(dtlb.misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    n_sets: u64,
    assoc: u32,
    /// Interleaved per-set stripes: `[keys[assoc] | lru[assoc]]`. Invalid
    /// ways hold [`INVALID_KEY`] with `lru == 0`, below every live
    /// timestamp, so replacement prefers them without a validity scan.
    plane: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `assoc` with a
    /// power-of-two set count, or `assoc` is zero.
    pub fn new(entries: u32, assoc: u32) -> Self {
        assert!(assoc > 0, "associativity must be positive");
        assert!(
            entries > 0 && entries % assoc == 0,
            "entries must divide by ways"
        );
        let n_sets = (entries / assoc) as u64;
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        let a = assoc as usize;
        let mut plane = vec![0u64; 2 * entries as usize];
        for set in 0..n_sets as usize {
            plane[set * 2 * a..set * 2 * a + a].fill(INVALID_KEY);
        }
        Tlb {
            n_sets,
            assoc,
            plane,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The instruction TLB of the paper: 2-way, 32 entries.
    pub fn instruction() -> Self {
        Tlb::new(32, 2)
    }

    /// The data TLB of the paper: 2-way, 64 entries.
    pub fn data() -> Self {
        Tlb::new(64, 2)
    }

    /// Stripe offset for the set a packed key indexes (the VPN part alone
    /// selects the set, matching the hardware's untranslated index).
    #[inline(always)]
    fn stripe(&self, key: u64) -> usize {
        let set = (key & VPN_MASK & (self.n_sets - 1)) as usize;
        set * 2 * self.assoc as usize
    }

    /// Translates `(pid, vpn)`; returns `true` on a hit. On a miss the
    /// mapping is installed, evicting the set's LRU entry.
    #[inline]
    pub fn access(&mut self, addr: VirtAddr) -> bool {
        let key = addr.raw() >> PAGE_SHIFT;
        self.clock += 1;
        let clock = self.clock;
        let s = self.stripe(key);
        let a = self.assoc as usize;
        let ways = &mut self.plane[s..s + 2 * a];

        // Branchless hit mask over the key stripe (2-way in hardware and
        // in every study configuration; the generic arm keeps odd test
        // geometries honest).
        let m = match a {
            1 => (ways[0] == key) as u32,
            2 => (ways[0] == key) as u32 | ((ways[1] == key) as u32) << 1,
            _ => {
                let mut m = 0u32;
                for (w, &k) in ways[..a].iter().enumerate() {
                    m |= ((k == key) as u32) << w;
                }
                m
            }
        };
        if m != 0 {
            ways[a + m.trailing_zeros() as usize] = clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Invalid ways keep `lru == 0`, below every live timestamp, so the
        // minimum-lru way is "first invalid, else LRU" in one scan.
        let mut victim = 0usize;
        let mut best = ways[a];
        for w in 1..a {
            if ways[a + w] < best {
                best = ways[a + w];
                victim = w;
            }
        }
        ways[victim] = key;
        ways[a + victim] = clock;
        false
    }

    /// True when `(pid, vpn)` is currently mapped (no state change).
    pub fn contains(&self, pid: Pid, vpn: u64) -> bool {
        if vpn > VPN_MASK {
            return false; // outside the packable VPN space: never installed
        }
        let key = (u64::from(pid.raw()) << VPN_BITS) | vpn;
        let s = self.stripe(key);
        let a = self.assoc as usize;
        self.plane[s..s + a].contains(&key)
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// All accesses recorded so far (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio over all accesses (0 when unused).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaas_trace::PAGE_WORDS;

    fn va(pid: u8, vpn: u64) -> VirtAddr {
        VirtAddr::new(Pid::new(pid), vpn * PAGE_WORDS)
    }

    #[test]
    fn paper_configurations() {
        let i = Tlb::instruction();
        assert_eq!(i.n_sets, 16);
        let d = Tlb::data();
        assert_eq!(d.n_sets, 32);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut t = Tlb::instruction();
        assert!(!t.access(va(0, 5)));
        assert!(t.access(va(0, 5)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
        assert!((t.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pid_distinguishes_identical_vpns() {
        let mut t = Tlb::instruction();
        t.access(va(1, 5));
        assert!(!t.access(va(2, 5)), "same vpn, different PID misses");
        assert!(t.access(va(1, 5)), "both coexist (2-way set)");
        assert!(t.access(va(2, 5)));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut t = Tlb::new(4, 2); // 2 sets x 2 ways
                                    // Three vpns mapping to set 0 (vpn % 2 == 0): 0, 2, 4.
        t.access(va(0, 0));
        t.access(va(0, 2));
        t.access(va(0, 0)); // make vpn 0 MRU
        t.access(va(0, 4)); // evicts vpn 2
        assert!(t.contains(Pid::new(0), 0));
        assert!(!t.contains(Pid::new(0), 2));
        assert!(t.contains(Pid::new(0), 4));
    }

    #[test]
    fn no_flush_across_pids_preserves_entries() {
        let mut t = Tlb::data();
        t.access(va(1, 7));
        // A burst from another process in other sets leaves pid1's entry.
        for vpn in 0..8 {
            t.access(va(2, vpn * 2 + 1)); // odd vpns -> different sets mostly
        }
        assert!(t.contains(Pid::new(1), 7));
    }

    #[test]
    fn miss_ratio_zero_when_unused() {
        assert_eq!(Tlb::instruction().miss_ratio(), 0.0);
    }

    #[test]
    fn direct_mapped_and_wide_sets_behave() {
        // Exercise the generic (non-2-way) mask arm.
        let mut t1 = Tlb::new(4, 1);
        assert!(!t1.access(va(0, 1)));
        assert!(t1.access(va(0, 1)));
        let mut t4 = Tlb::new(16, 4);
        for vpn in [0u64, 4, 8, 12] {
            assert!(!t4.access(va(0, vpn))); // all land in set 0
        }
        for vpn in [0u64, 4, 8, 12] {
            assert!(t4.access(va(0, vpn)), "4 ways hold all four");
        }
        assert!(!t4.access(va(0, 16)), "fifth mapping evicts LRU (vpn 0)");
        assert!(!t4.contains(Pid::new(0), 0));
    }

    #[test]
    #[should_panic(expected = "entries must divide")]
    fn bad_geometry_rejected() {
        let _ = Tlb::new(33, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = Tlb::new(24, 2); // 12 sets
    }
}
