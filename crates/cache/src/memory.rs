//! Main-memory model and the L2 dirty buffer (§2, §9).
//!
//! The base architecture charges the miss penalties of the ECL MIPS
//! RC6230's R6020 system bus: **143 cycles** for a clean L2 miss and
//! **237 cycles** for a dirty one (read after writing the victim back).
//!
//! §9 adds a single 32 W **dirty buffer** to the L2 data cache: on a dirty
//! miss the requested line is read *first* and the victim is written back
//! from the buffer afterwards, hiding the write-back unless a second miss
//! arrives while the buffer is still busy.

/// Timing model of main memory as seen by the secondary cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MainMemory {
    /// Cycles to service an L2 miss with a clean victim.
    pub clean_miss_cycles: u32,
    /// Cycles to service an L2 miss with a dirty victim (write-back then
    /// read), without a dirty buffer.
    pub dirty_miss_cycles: u32,
}

impl MainMemory {
    /// The base-architecture penalties (143 / 237 cycles).
    pub fn base() -> Self {
        MainMemory {
            clean_miss_cycles: 143,
            dirty_miss_cycles: 237,
        }
    }

    /// Cycles the victim write-back adds on a dirty miss.
    pub fn writeback_cycles(&self) -> u32 {
        self.dirty_miss_cycles - self.clean_miss_cycles
    }
}

impl Default for MainMemory {
    fn default() -> Self {
        MainMemory::base()
    }
}

/// Outcome of one L2 miss serviced by [`MemorySystem::service_miss`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissService {
    /// Total cycles the requester stalls (including any wait for a busy
    /// dirty buffer).
    pub stall_cycles: u64,
    /// Portion of the stall spent waiting for the dirty buffer.
    pub dirty_buffer_wait: u64,
}

/// Main memory plus the optional single-line dirty buffer.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    timing: MainMemory,
    /// `Some(busy_until)` when the dirty buffer is enabled.
    dirty_buffer: Option<u64>,
    dirty_buffer_enabled: bool,
    /// Counts for reports.
    clean_misses: u64,
    dirty_misses: u64,
}

impl MemorySystem {
    /// Creates a memory system; `dirty_buffer` enables the §9 optimization.
    pub fn new(timing: MainMemory, dirty_buffer: bool) -> Self {
        MemorySystem {
            timing,
            dirty_buffer: dirty_buffer.then_some(0),
            dirty_buffer_enabled: dirty_buffer,
            clean_misses: 0,
            dirty_misses: 0,
        }
    }

    /// The configured timing.
    pub fn timing(&self) -> MainMemory {
        self.timing
    }

    /// Whether the dirty buffer is enabled.
    pub fn has_dirty_buffer(&self) -> bool {
        self.dirty_buffer_enabled
    }

    /// Services an L2 miss beginning at cycle `now`; `dirty_victim` says
    /// whether the displaced L2 line must be written back.
    pub fn service_miss(&mut self, now: u64, dirty_victim: bool) -> MissService {
        if dirty_victim {
            self.dirty_misses += 1;
        } else {
            self.clean_misses += 1;
        }
        match &mut self.dirty_buffer {
            Some(busy_until) => {
                // Read-first: wait for the buffer if a previous write-back
                // is still in flight, then fetch at the clean penalty; the
                // victim drains in the background afterwards.
                let wait = busy_until.saturating_sub(now);
                let fetch_done = now + wait + self.timing.clean_miss_cycles as u64;
                if dirty_victim {
                    *busy_until = fetch_done + self.timing.writeback_cycles() as u64;
                }
                MissService {
                    stall_cycles: wait + self.timing.clean_miss_cycles as u64,
                    dirty_buffer_wait: wait,
                }
            }
            None => MissService {
                stall_cycles: if dirty_victim {
                    self.timing.dirty_miss_cycles as u64
                } else {
                    self.timing.clean_miss_cycles as u64
                },
                dirty_buffer_wait: 0,
            },
        }
    }

    /// Services a miss at the raw penalties, without engaging the dirty
    /// buffer. Used for background write-buffer drains: they do not compete
    /// for the single line buffer, which serves demand misses.
    pub fn service_miss_raw(&mut self, dirty_victim: bool) -> MissService {
        if dirty_victim {
            self.dirty_misses += 1;
        } else {
            self.clean_misses += 1;
        }
        MissService {
            stall_cycles: if dirty_victim {
                self.timing.dirty_miss_cycles as u64
            } else {
                self.timing.clean_miss_cycles as u64
            },
            dirty_buffer_wait: 0,
        }
    }

    /// Clean misses serviced so far.
    pub fn clean_misses(&self) -> u64 {
        self.clean_misses
    }

    /// Dirty misses serviced so far.
    pub fn dirty_misses(&self) -> u64 {
        self.dirty_misses
    }

    /// All demand misses serviced so far (clean + dirty).
    pub fn total_misses(&self) -> u64 {
        self.clean_misses + self.dirty_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_penalties_match_paper() {
        let m = MainMemory::base();
        assert_eq!(m.clean_miss_cycles, 143);
        assert_eq!(m.dirty_miss_cycles, 237);
        assert_eq!(m.writeback_cycles(), 94);
        assert_eq!(MainMemory::default(), m);
    }

    #[test]
    fn without_dirty_buffer_full_penalties() {
        let mut ms = MemorySystem::new(MainMemory::base(), false);
        assert_eq!(ms.service_miss(0, false).stall_cycles, 143);
        assert_eq!(ms.service_miss(0, true).stall_cycles, 237);
        assert_eq!(ms.clean_misses(), 1);
        assert_eq!(ms.dirty_misses(), 1);
    }

    #[test]
    fn dirty_buffer_hides_writeback() {
        let mut ms = MemorySystem::new(MainMemory::base(), true);
        let s = ms.service_miss(1000, true);
        assert_eq!(s.stall_cycles, 143, "read first");
        assert_eq!(s.dirty_buffer_wait, 0);
    }

    #[test]
    fn dirty_buffer_busy_stalls_next_miss() {
        let mut ms = MemorySystem::new(MainMemory::base(), true);
        ms.service_miss(0, true); // fetch done 143, buffer busy until 237
        let s = ms.service_miss(150, false);
        assert_eq!(s.dirty_buffer_wait, 87, "waits for write-back drain");
        assert_eq!(s.stall_cycles, 87 + 143);
    }

    #[test]
    fn dirty_buffer_idle_after_drain() {
        let mut ms = MemorySystem::new(MainMemory::base(), true);
        ms.service_miss(0, true); // busy until 237
        let s = ms.service_miss(500, true);
        assert_eq!(s.dirty_buffer_wait, 0);
        assert_eq!(s.stall_cycles, 143);
    }

    #[test]
    fn clean_misses_never_touch_buffer_busy_time() {
        let mut ms = MemorySystem::new(MainMemory::base(), true);
        ms.service_miss(0, false); // clean: buffer stays free
        let s = ms.service_miss(10, true);
        assert_eq!(s.dirty_buffer_wait, 0);
    }
}
