//! Primary data-cache write policies (§6 of the paper).
//!
//! Four policies are modelled:
//!
//! * **write-back** (base architecture): write-allocate; write hits take two
//!   cycles (tag check before commit); replaced dirty lines go to a 4-deep,
//!   4 W-wide write buffer.
//! * **write-miss-invalidate**: write-through; data is written while the tag
//!   is checked, so hits take one cycle; a miss spends a second cycle
//!   invalidating the corrupted line; every write is sent to an 8-deep,
//!   1 W-wide write buffer.
//! * **write-only** (the paper's new policy): write-miss-invalidate, except
//!   a write miss *updates the tag* and marks the line write-only, so
//!   subsequent writes to the line hit in one cycle. Reads that map to a
//!   write-only line miss and reallocate the line.
//! * **subblock placement**: each tag carries one valid bit per word; a
//!   word-write miss updates the tag (second cycle), sets its own valid bit
//!   and clears the others; later word writes hit; reads need the word's
//!   valid bit.
//!
//! [`L1DataCache`] exposes `load`/`store` operations that return *what
//! happened* ([`LoadOutcome`], [`StoreOutcome`]); the simulator converts
//! outcomes into cycles, write-buffer traffic and L2 accesses.

use gaas_trace::PhysAddr;

use crate::array::{CacheArray, CacheGeometry};

/// The write policy of the primary data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write-back, write-allocate (base architecture).
    WriteBack,
    /// Write-through; a write miss invalidates the corrupted line.
    WriteMissInvalidate,
    /// Write-through; a write miss adopts the line as write-only (new).
    WriteOnly,
    /// Write-through with per-word valid bits.
    Subblock,
}

impl WritePolicy {
    /// True for the three write-through variants.
    pub fn is_write_through(self) -> bool {
        !matches!(self, WritePolicy::WriteBack)
    }

    /// All four policies, in the order Fig. 5 presents them.
    pub fn all() -> [WritePolicy; 4] {
        [
            WritePolicy::WriteBack,
            WritePolicy::WriteMissInvalidate,
            WritePolicy::WriteOnly,
            WritePolicy::Subblock,
        ]
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            WritePolicy::WriteBack => "write-back",
            WritePolicy::WriteMissInvalidate => "write-miss-inv",
            WritePolicy::WriteOnly => "write-only",
            WritePolicy::Subblock => "subblock",
        }
    }
}

/// What a load did in the L1 data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOutcome {
    /// The load was satisfied by the cache.
    pub hit: bool,
    /// A line must be fetched from the next level (base address).
    pub fetch: Option<PhysAddr>,
    /// A dirty victim line must be written back (write-back policy only).
    pub writeback_victim: Option<PhysAddr>,
    /// A written (dirty-bit) line was displaced — the trigger for the §9
    /// dirty-bit write-buffer flush scheme.
    pub replaced_written_line: bool,
}

/// What a store did in the L1 data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOutcome {
    /// The store hit (one-cycle completion for write-through policies).
    pub hit: bool,
    /// The store needs a second cycle (write-back hit; write-through miss).
    pub extra_cycle: bool,
    /// The written word must be queued to the write-through write buffer.
    pub wb_word: Option<PhysAddr>,
    /// A line must be fetched from the next level (write-back allocate).
    pub fetch: Option<PhysAddr>,
    /// A dirty victim line must be written back (write-back policy only).
    pub writeback_victim: Option<PhysAddr>,
    /// A written (dirty-bit) line was displaced (§9 flush trigger).
    pub replaced_written_line: bool,
}

/// The primary data cache: a [`CacheArray`] plus write-policy semantics.
#[derive(Debug, Clone)]
pub struct L1DataCache {
    array: CacheArray,
    policy: WritePolicy,
}

impl L1DataCache {
    /// Creates an empty L1-D cache with the given geometry and policy.
    pub fn new(geom: CacheGeometry, policy: WritePolicy) -> Self {
        L1DataCache {
            array: CacheArray::new(geom),
            policy,
        }
    }

    /// The configured write policy.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// The underlying array (read-only), for inspection in tests/reports.
    pub fn array(&self) -> &CacheArray {
        &self.array
    }

    /// The underlying array, mutably. Exists for deliberate state
    /// corruption in the differential oracle's seeded-bug canary; the
    /// policy methods are the only legitimate mutation path.
    pub fn array_mut(&mut self) -> &mut CacheArray {
        &mut self.array
    }

    /// Performs a load.
    ///
    /// A tag match does not suffice for a hit: under write-only, lines
    /// marked write-only never service reads; under subblock placement the
    /// word's valid bit must be set. On a miss the caller must fetch the
    /// line from L2 (the outcome's `fetch` field) — the refill is applied
    /// here immediately (trace-driven simulation has no outstanding-miss
    /// window).
    #[inline]
    pub fn load(&mut self, addr: PhysAddr) -> LoadOutcome {
        let word = self.array.geometry().word_in_line(addr);
        let hit = match self.array.touch(addr) {
            Some(line) => match self.policy {
                WritePolicy::WriteBack | WritePolicy::WriteMissInvalidate => true,
                WritePolicy::WriteOnly => !line.write_only(),
                WritePolicy::Subblock => line.subblock_valid() & (1 << word) != 0,
            },
            None => false,
        };
        if hit {
            return LoadOutcome {
                hit: true,
                fetch: None,
                writeback_victim: None,
                replaced_written_line: false,
            };
        }

        // Miss: fetch and fill. A read miss may displace either the very
        // line it re-reads (in-place reallocation of a write-only /
        // invalid-word line — the §6 "reallocate") or an unrelated victim;
        // both count as "a written line was replaced" for the §9 dirty-bit
        // flush trigger.
        let base = self.array.geometry().line_base(addr);
        let inplace_dirty = self.array.peek(addr).map(|l| l.dirty);
        let evicted = self.array.fill(addr);
        let (victim, victim_dirty) = match (inplace_dirty, evicted) {
            (Some(dirty), _) => (None, dirty),
            (None, Some(e)) => (Some(e.base), e.dirty),
            (None, None) => (None, false),
        };
        let wb_victim = if self.policy == WritePolicy::WriteBack && victim_dirty {
            victim
        } else {
            None
        };
        LoadOutcome {
            hit: false,
            fetch: Some(base),
            writeback_victim: wb_victim,
            replaced_written_line: victim_dirty && self.policy.is_write_through(),
        }
    }

    /// Performs a store. `partial_word` marks a sub-word write (§6: these
    /// do not set subblock valid bits).
    #[inline]
    pub fn store(&mut self, addr: PhysAddr, partial_word: bool) -> StoreOutcome {
        match self.policy {
            WritePolicy::WriteBack => self.store_write_back(addr),
            WritePolicy::WriteMissInvalidate => self.store_wmi(addr),
            WritePolicy::WriteOnly => self.store_write_only(addr),
            WritePolicy::Subblock => self.store_subblock(addr, partial_word),
        }
    }

    #[inline]
    fn store_write_back(&mut self, addr: PhysAddr) -> StoreOutcome {
        if let Some(mut line) = self.array.touch(addr) {
            line.set_dirty(true);
            // Write hit: 2 cycles (tag checked before the write commits).
            return StoreOutcome {
                hit: true,
                extra_cycle: true,
                wb_word: None,
                fetch: None,
                writeback_victim: None,
                replaced_written_line: false,
            };
        }
        // Write miss: 1 cycle in the cache + write-allocate.
        let base = self.array.geometry().line_base(addr);
        let evicted = self.array.fill(addr);
        if let Some(mut line) = self.array.touch(addr) {
            line.set_dirty(true);
        }
        StoreOutcome {
            hit: false,
            extra_cycle: false,
            wb_word: None,
            fetch: Some(base),
            writeback_victim: evicted.filter(|e| e.dirty).map(|e| e.base),
            replaced_written_line: false,
        }
    }

    #[inline]
    fn store_wmi(&mut self, addr: PhysAddr) -> StoreOutcome {
        let word_addr = addr;
        if let Some(mut line) = self.array.touch(addr) {
            line.set_dirty(true); // "written" mark for the §9 dirty-bit scheme
            return StoreOutcome {
                hit: true,
                extra_cycle: false,
                wb_word: Some(word_addr),
                fetch: None,
                writeback_victim: None,
                replaced_written_line: false,
            };
        }
        // Miss: the data RAM was written while the tag was checked; spend a
        // second cycle invalidating the corrupted line. (Direct-mapped L1-D:
        // the corrupted way is the one the address indexes.)
        let displaced = self.invalidate_indexed_line(addr);
        StoreOutcome {
            hit: false,
            extra_cycle: true,
            wb_word: Some(word_addr),
            fetch: None,
            writeback_victim: None,
            replaced_written_line: displaced,
        }
    }

    #[inline]
    fn store_write_only(&mut self, addr: PhysAddr) -> StoreOutcome {
        if let Some(mut line) = self.array.touch(addr) {
            line.set_dirty(true);
            // Hits complete in one cycle whether or not the line is
            // write-only (subsequent writes to a write-only line hit).
            return StoreOutcome {
                hit: true,
                extra_cycle: false,
                wb_word: Some(addr),
                fetch: None,
                writeback_victim: None,
                replaced_written_line: false,
            };
        }
        // Miss: update the tag and mark the line write-only (second cycle).
        let evicted = self.array.fill(addr);
        let mut line = self.array.touch(addr).expect("line was just filled");
        line.set_write_only(true);
        line.set_dirty(true);
        StoreOutcome {
            hit: false,
            extra_cycle: true,
            wb_word: Some(addr),
            fetch: None,
            writeback_victim: None,
            replaced_written_line: evicted.is_some_and(|e| e.dirty),
        }
    }

    fn store_subblock(&mut self, addr: PhysAddr, partial_word: bool) -> StoreOutcome {
        let word = self.array.geometry().word_in_line(addr);
        if let Some(mut line) = self.array.touch(addr) {
            // Tag hit: one cycle; word writes set their valid bit,
            // partial-word writes leave the bits unchanged.
            if !partial_word {
                line.or_subblock(1 << word);
            }
            line.set_dirty(true);
            return StoreOutcome {
                hit: true,
                extra_cycle: false,
                wb_word: Some(addr),
                fetch: None,
                writeback_victim: None,
                replaced_written_line: false,
            };
        }
        // Tag miss: update the address portion of the tag in the next
        // cycle; a word-write turns on its own valid bit and clears the
        // rest, a partial-word write leaves the line wholly invalid.
        let evicted = self.array.fill(addr);
        let mut line = self.array.touch(addr).expect("line was just filled");
        line.set_subblock_valid(if partial_word { 0 } else { 1 << word });
        line.set_dirty(true);
        StoreOutcome {
            hit: false,
            extra_cycle: true,
            wb_word: Some(addr),
            fetch: None,
            writeback_victim: None,
            replaced_written_line: evicted.is_some_and(|e| e.dirty),
        }
    }

    /// Invalidates whatever valid line occupies `addr`'s set (direct-mapped
    /// corruption semantics of write-miss-invalidate). Returns true when a
    /// written line was displaced.
    fn invalidate_indexed_line(&mut self, addr: PhysAddr) -> bool {
        // For the direct-mapped L1-D there is exactly one candidate way:
        // any valid line in the indexed set is the corrupted one.
        let victim = self.array.peek_set(addr).next().map(|l| (l.base, l.dirty));
        match victim {
            Some((base, dirty)) => {
                self.array.invalidate(base);
                dirty
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(w: u64) -> PhysAddr {
        PhysAddr::new(w)
    }

    fn cache(policy: WritePolicy) -> L1DataCache {
        // 64-word direct-mapped, 4W lines, 16 sets.
        L1DataCache::new(CacheGeometry::new(64, 4, 1).expect("valid"), policy)
    }

    #[test]
    fn policy_labels_and_classes() {
        assert!(!WritePolicy::WriteBack.is_write_through());
        for p in [
            WritePolicy::WriteMissInvalidate,
            WritePolicy::WriteOnly,
            WritePolicy::Subblock,
        ] {
            assert!(p.is_write_through());
        }
        assert_eq!(WritePolicy::all().len(), 4);
        for p in WritePolicy::all() {
            assert!(!p.label().is_empty());
        }
    }

    // ---- write-back ----

    #[test]
    fn wb_store_hit_takes_two_cycles_and_dirties() {
        let mut c = cache(WritePolicy::WriteBack);
        c.load(pa(0));
        let s = c.store(pa(1), false);
        assert!(s.hit && s.extra_cycle);
        assert!(s.wb_word.is_none(), "write-back does not stream words");
        assert!(c.array().peek(pa(0)).expect("resident").dirty);
    }

    #[test]
    fn wb_store_miss_allocates_and_fetches() {
        let mut c = cache(WritePolicy::WriteBack);
        let s = c.store(pa(8), false);
        assert!(!s.hit && !s.extra_cycle);
        assert_eq!(s.fetch, Some(pa(8)));
        assert!(c.array().peek(pa(8)).expect("allocated").dirty);
    }

    #[test]
    fn wb_dirty_victim_goes_to_write_buffer() {
        let mut c = cache(WritePolicy::WriteBack);
        c.store(pa(0), false); // dirty line at set 0
        let s = c.store(pa(64), false); // conflicts with set 0
        assert_eq!(s.writeback_victim, Some(pa(0)));
        // Clean victim produces no writeback:
        let mut c2 = cache(WritePolicy::WriteBack);
        c2.load(pa(0));
        let s2 = c2.store(pa(64), false);
        assert_eq!(s2.writeback_victim, None);
    }

    #[test]
    fn wb_load_miss_evicting_dirty_line_writes_back() {
        let mut c = cache(WritePolicy::WriteBack);
        c.store(pa(0), false);
        let l = c.load(pa(64));
        assert!(!l.hit);
        assert_eq!(l.writeback_victim, Some(pa(0)));
    }

    // ---- write-miss-invalidate ----

    #[test]
    fn wmi_store_hit_one_cycle_streams_word() {
        let mut c = cache(WritePolicy::WriteMissInvalidate);
        c.load(pa(0));
        let s = c.store(pa(2), false);
        assert!(s.hit && !s.extra_cycle);
        assert_eq!(s.wb_word, Some(pa(2)));
        assert!(s.fetch.is_none());
    }

    #[test]
    fn wmi_store_miss_invalidates_corrupted_line() {
        let mut c = cache(WritePolicy::WriteMissInvalidate);
        c.load(pa(0)); // resident line at set 0
        let s = c.store(pa(64), false); // same set, different tag
        assert!(!s.hit && s.extra_cycle);
        assert_eq!(s.wb_word, Some(pa(64)));
        assert!(!c.array().contains(pa(0)), "corrupted line invalidated");
        assert!(!c.array().contains(pa(64)), "no allocation on write miss");
    }

    #[test]
    fn wmi_read_after_write_miss_misses() {
        let mut c = cache(WritePolicy::WriteMissInvalidate);
        c.store(pa(8), false);
        assert!(!c.load(pa(8)).hit, "no allocation under WMI");
    }

    // ---- write-only ----

    #[test]
    fn wo_store_miss_adopts_line_write_only() {
        let mut c = cache(WritePolicy::WriteOnly);
        let s = c.store(pa(8), false);
        assert!(!s.hit && s.extra_cycle);
        let line = c.array().peek(pa(8)).expect("tag updated");
        assert!(line.write_only && line.dirty);
    }

    #[test]
    fn wo_subsequent_stores_hit_in_one_cycle() {
        let mut c = cache(WritePolicy::WriteOnly);
        c.store(pa(8), false);
        let s = c.store(pa(9), false);
        assert!(s.hit && !s.extra_cycle, "same line, one cycle");
    }

    #[test]
    fn wo_reads_to_write_only_lines_miss_and_reallocate() {
        let mut c = cache(WritePolicy::WriteOnly);
        c.store(pa(8), false);
        let l = c.load(pa(8));
        assert!(!l.hit, "write-only lines never service reads");
        assert_eq!(l.fetch, Some(pa(8)));
        assert!(
            l.replaced_written_line,
            "reallocating a written line is the dirty-flush trigger"
        );
        // After reallocation the line is a normal readable line.
        assert!(c.load(pa(8)).hit);
        assert!(!c.array().peek(pa(8)).expect("resident").write_only);
    }

    #[test]
    fn wo_store_replacing_written_line_flags_flush() {
        let mut c = cache(WritePolicy::WriteOnly);
        c.store(pa(0), false); // written line at set 0
        let s = c.store(pa(64), false); // displaces it
        assert!(s.replaced_written_line);
    }

    // ---- subblock placement ----

    #[test]
    fn sb_word_write_miss_validates_own_word_only() {
        let mut c = cache(WritePolicy::Subblock);
        let s = c.store(pa(9), false);
        assert!(!s.hit && s.extra_cycle);
        let line = c.array().peek(pa(9)).expect("tag updated");
        assert_eq!(line.subblock_valid, 0b0010, "only word 1 valid");
        assert!(c.load(pa(9)).hit, "written word readable");
        assert!(!c.load(pa(8)).hit, "other words invalid");
    }

    #[test]
    fn sb_partial_word_miss_validates_nothing() {
        let mut c = cache(WritePolicy::Subblock);
        c.store(pa(8), true);
        let line = c.array().peek(pa(8)).expect("tag updated");
        assert_eq!(line.subblock_valid, 0);
    }

    #[test]
    fn sb_partial_word_hit_leaves_bits() {
        let mut c = cache(WritePolicy::Subblock);
        c.store(pa(8), false); // word 0 valid
        let s = c.store(pa(9), true); // partial write to word 1
        assert!(s.hit && !s.extra_cycle);
        let line = c.array().peek(pa(8)).expect("resident");
        assert_eq!(
            line.subblock_valid, 0b0001,
            "bit unchanged by partial write"
        );
    }

    #[test]
    fn sb_read_miss_on_invalid_word_fills_whole_line() {
        let mut c = cache(WritePolicy::Subblock);
        c.store(pa(8), false);
        let l = c.load(pa(10));
        assert!(!l.hit);
        assert_eq!(l.fetch, Some(pa(8)));
        assert!(l.replaced_written_line, "refetch replaces a written line");
        assert_eq!(
            c.array().peek(pa(8)).expect("resident").subblock_valid,
            0b1111
        );
    }

    #[test]
    fn sb_sequence_matches_paper_example() {
        // Write miss, then three more word writes to the same line: all hit
        // (this is the >80% of subblock's benefit the paper attributes to
        // write misses converting subsequent writes into hits).
        let mut c = cache(WritePolicy::Subblock);
        assert!(!c.store(pa(16), false).hit);
        for w in 17..20 {
            assert!(c.store(pa(w), false).hit);
        }
        // And the written words are readable (the <20% read-hit benefit).
        for w in 16..20 {
            assert!(c.load(pa(w)).hit);
        }
    }

    // ---- cross-policy ----

    #[test]
    fn load_hit_common_case() {
        for p in WritePolicy::all() {
            let mut c = cache(p);
            assert!(!c.load(pa(32)).hit);
            assert!(c.load(pa(33)).hit, "{p:?}: second load hits");
        }
    }

    #[test]
    fn write_through_policies_always_stream_the_word() {
        for p in [
            WritePolicy::WriteMissInvalidate,
            WritePolicy::WriteOnly,
            WritePolicy::Subblock,
        ] {
            let mut c = cache(p);
            assert!(
                c.store(pa(40), false).wb_word.is_some(),
                "{p:?} miss streams"
            );
            assert!(
                c.store(pa(40), false).wb_word.is_some() || p == WritePolicy::WriteMissInvalidate,
                "{p:?} hit streams"
            );
        }
    }

    #[test]
    fn write_through_policies_never_fetch_on_store() {
        for p in [
            WritePolicy::WriteMissInvalidate,
            WritePolicy::WriteOnly,
            WritePolicy::Subblock,
        ] {
            let mut c = cache(p);
            assert!(c.store(pa(44), false).fetch.is_none(), "{p:?}");
        }
    }
}

#[cfg(test)]
mod prop_tests {
    //! Randomized-history properties, driven by the vendored deterministic
    //! PRNG: each test replays many independent seeded op sequences, so
    //! failures reproduce exactly by seed.
    use super::*;
    use gaas_trace::rng::SmallRng;

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Load(u64),
        Store(u64, bool),
    }

    fn random_ops(rng: &mut SmallRng, max_len: usize) -> Vec<Op> {
        let len = rng.gen_range(0..=max_len);
        (0..len)
            .map(|_| {
                if rng.gen::<bool>() {
                    Op::Load(rng.gen_range(0u64..512))
                } else {
                    Op::Store(rng.gen_range(0u64..512), rng.gen::<bool>())
                }
            })
            .collect()
    }

    fn apply(c: &mut L1DataCache, ops: &[Op]) {
        for op in ops {
            match *op {
                Op::Load(a) => {
                    c.load(PhysAddr::new(a));
                }
                Op::Store(a, p) => {
                    c.store(PhysAddr::new(a), p);
                }
            }
        }
    }

    /// Write-only invariant: a load immediately after a load to the same
    /// word always hits (the reallocation made the line readable), under
    /// any history.
    #[test]
    fn wo_reload_after_load_hits() {
        let mut rng = SmallRng::seed_from_u64(0xA0);
        for _ in 0..48 {
            let ops = random_ops(&mut rng, 200);
            let probe = rng.gen_range(0u64..512);
            let mut c = L1DataCache::new(
                CacheGeometry::new(64, 4, 1).expect("valid"),
                WritePolicy::WriteOnly,
            );
            apply(&mut c, &ops);
            c.load(PhysAddr::new(probe));
            assert!(c.load(PhysAddr::new(probe)).hit);
        }
    }

    /// Write-miss-invalidate never allocates on stores: a store-miss
    /// followed immediately by a load of the same address must miss.
    #[test]
    fn wmi_store_never_allocates() {
        let mut rng = SmallRng::seed_from_u64(0xA1);
        for _ in 0..48 {
            let ops = random_ops(&mut rng, 200);
            let probe = rng.gen_range(0u64..512);
            let mut c = L1DataCache::new(
                CacheGeometry::new(64, 4, 1).expect("valid"),
                WritePolicy::WriteMissInvalidate,
            );
            apply(&mut c, &ops);
            let s = c.store(PhysAddr::new(probe), false);
            if !s.hit {
                assert!(!c.array().contains(PhysAddr::new(probe)));
            }
        }
    }

    /// Under every policy, a full-word store followed by a load of the
    /// same word hits (write-back/subblock/write-only all make the
    /// word readable... except write-only and WMI, whose semantics
    /// forbid it). This pins down exactly which policies serve reads
    /// from written lines.
    #[test]
    fn store_then_load_semantics() {
        let mut rng = SmallRng::seed_from_u64(0xA2);
        for _ in 0..48 {
            let addr = rng.gen_range(0u64..512);
            for (policy, expect_hit) in [
                (WritePolicy::WriteBack, true),            // allocated + readable
                (WritePolicy::WriteMissInvalidate, false), // never allocated
                (WritePolicy::WriteOnly, false),           // allocated write-only
                (WritePolicy::Subblock, true),             // own word valid
            ] {
                let mut c = L1DataCache::new(CacheGeometry::new(64, 4, 1).expect("valid"), policy);
                c.store(PhysAddr::new(addr), false);
                assert_eq!(c.load(PhysAddr::new(addr)).hit, expect_hit, "{policy:?}");
            }
        }
    }

    /// Subblock valid bits are always a subset of the line mask, and a
    /// valid bit implies the tag matches.
    #[test]
    fn subblock_valid_bits_bounded() {
        let mut rng = SmallRng::seed_from_u64(0xA3);
        for _ in 0..48 {
            let ops = random_ops(&mut rng, 300);
            let geom = CacheGeometry::new(64, 4, 1).expect("valid");
            let mut c = L1DataCache::new(geom, WritePolicy::Subblock);
            for op in &ops {
                match *op {
                    Op::Load(a) => {
                        c.load(PhysAddr::new(a));
                    }
                    Op::Store(a, p) => {
                        c.store(PhysAddr::new(a), p);
                    }
                }
                for line in c.array().iter() {
                    assert_eq!(line.subblock_valid & !0b1111, 0, "stray valid bits");
                }
            }
        }
    }

    /// The write-through policies report every store to the write
    /// buffer, exactly once, hit or miss.
    #[test]
    fn write_through_streams_every_store() {
        let mut rng = SmallRng::seed_from_u64(0xA4);
        for _ in 0..48 {
            let len = rng.gen_range(1usize..100);
            let ops: Vec<(u64, bool)> = (0..len)
                .map(|_| (rng.gen_range(0u64..512), rng.gen::<bool>()))
                .collect();
            for policy in [
                WritePolicy::WriteMissInvalidate,
                WritePolicy::WriteOnly,
                WritePolicy::Subblock,
            ] {
                let mut c = L1DataCache::new(CacheGeometry::new(64, 4, 1).expect("valid"), policy);
                for &(a, p) in &ops {
                    let out = c.store(PhysAddr::new(a), p);
                    assert_eq!(out.wb_word, Some(PhysAddr::new(a)), "{policy:?}");
                    assert!(out.fetch.is_none(), "{policy:?} fetched on store");
                }
            }
        }
    }
}
