//! Soft-error fault injection and protection policies.
//!
//! The paper's cache is built from GaAs and SRAM dies on a multi-chip
//! module — exactly the technology where transient bit flips (alpha
//! particles, marginal GaAs noise) are a first-order design concern. This
//! module supplies the *mechanism* half of the reliability study:
//!
//! * [`FaultInjector`] — a deterministic, seeded source of fault events,
//!   with independent per-structure rates (L1-I, L1-D, L2, TLB, write
//!   buffer) plus targeted "flip bit *N* of set *S* at access *K*"
//!   campaigns for directed testing;
//! * [`Protection`] — the per-structure protection scheme (none, parity,
//!   ECC SEC-DED);
//! * [`resolve`] — the recovery-action table combining a fault, the struck
//!   structure's protection, and whether the line held dirty data.
//!
//! The *policy* half — charging recovery cycles, raising machine checks,
//! restarting from checkpoints — lives in the simulator (`gaas-sim`),
//! which owns cycle accounting. The split mirrors the rest of the crate:
//! structures answer questions, the simulator charges time.
//!
//! # Interaction with the paper's write policies
//!
//! Whether parity suffices or ECC is required depends on the §6 write
//! policy. Under the write-through family (write-miss-invalidate,
//! **write-only**, subblock) every L1-D line is clean by construction —
//! the write buffer holds the only modified data — so a detected parity
//! error can always be repaired by invalidate-and-refetch from L2. Under
//! write-back, a struck dirty line is the *only* copy, so parity can
//! detect but not recover: that raises a machine check, and only ECC
//! correction keeps the machine running.
//!
//! # Determinism
//!
//! Same seed + same rates + same access sequence ⇒ the identical fault
//! sites, every run. All randomness flows from one
//! [`SmallRng`](gaas_trace::rng::SmallRng) owned by the injector.
//!
//! # Examples
//!
//! ```
//! use gaas_cache::fault::{FaultInjector, FaultRates, Protection, Structure, resolve, FaultEffect};
//!
//! // One fault per ~1000 L1-D accesses, nothing else.
//! let rates = FaultRates { l1d: 1e-3, ..FaultRates::default() };
//! let mut inj = FaultInjector::new(7, rates, 0.0, Vec::new());
//! let mut faults = 0;
//! for _ in 0..100_000 {
//!     if inj.check(Structure::L1D, 1024).is_some() {
//!         faults += 1;
//!     }
//! }
//! assert!(faults > 50 && faults < 200, "rate respected: {faults}");
//!
//! // Parity on a clean line recovers by refetch; on a dirty line it
//! // cannot.
//! assert_eq!(resolve(Protection::Parity, false, false), FaultEffect::Refetch);
//! assert_eq!(resolve(Protection::Parity, true, false), FaultEffect::MachineCheck);
//! ```

use std::fmt;

use gaas_trace::rng::SmallRng;

/// The protected (or unprotected) storage structures faults can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// Primary instruction cache.
    L1I,
    /// Primary data cache.
    L1D,
    /// Secondary cache (either side).
    L2,
    /// Instruction or data TLB.
    Tlb,
    /// Write buffer entries (data in flight to L2).
    WriteBuffer,
}

impl Structure {
    /// Every structure, in a fixed order (index order).
    pub const ALL: [Structure; 5] = [
        Structure::L1I,
        Structure::L1D,
        Structure::L2,
        Structure::Tlb,
        Structure::WriteBuffer,
    ];

    /// Dense index for per-structure arrays.
    pub fn index(self) -> usize {
        match self {
            Structure::L1I => 0,
            Structure::L1D => 1,
            Structure::L2 => 2,
            Structure::Tlb => 3,
            Structure::WriteBuffer => 4,
        }
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Structure::L1I => "L1-I",
            Structure::L1D => "L1-D",
            Structure::L2 => "L2",
            Structure::Tlb => "TLB",
            Structure::WriteBuffer => "WB",
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-structure protection scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protection {
    /// No checking: faults corrupt silently.
    #[default]
    None,
    /// Single parity bit per entry: detects any odd number of flipped
    /// bits but corrects nothing.
    Parity,
    /// SEC-DED ECC: corrects single-bit flips in place, detects (but
    /// cannot correct) double-bit flips.
    Ecc,
}

impl Protection {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Protection::None => "none",
            Protection::Parity => "parity",
            Protection::Ecc => "ECC",
        }
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Protection scheme per structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtectionMap {
    /// Primary instruction cache.
    pub l1i: Protection,
    /// Primary data cache.
    pub l1d: Protection,
    /// Secondary cache.
    pub l2: Protection,
    /// TLBs.
    pub tlb: Protection,
    /// Write buffer.
    pub write_buffer: Protection,
}

impl ProtectionMap {
    /// The same scheme on every structure.
    pub fn uniform(p: Protection) -> Self {
        ProtectionMap {
            l1i: p,
            l1d: p,
            l2: p,
            tlb: p,
            write_buffer: p,
        }
    }

    /// The scheme protecting `s`.
    pub fn get(&self, s: Structure) -> Protection {
        match s {
            Structure::L1I => self.l1i,
            Structure::L1D => self.l1d,
            Structure::L2 => self.l2,
            Structure::Tlb => self.tlb,
            Structure::WriteBuffer => self.write_buffer,
        }
    }
}

/// Per-access fault probability for each structure (0.0 = never).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Primary instruction cache.
    pub l1i: f64,
    /// Primary data cache.
    pub l1d: f64,
    /// Secondary cache.
    pub l2: f64,
    /// TLBs.
    pub tlb: f64,
    /// Write buffer.
    pub write_buffer: f64,
}

impl FaultRates {
    /// The same rate on every structure.
    pub fn uniform(p: f64) -> Self {
        FaultRates {
            l1i: p,
            l1d: p,
            l2: p,
            tlb: p,
            write_buffer: p,
        }
    }

    /// The rate for `s`.
    pub fn get(&self, s: Structure) -> f64 {
        match s {
            Structure::L1I => self.l1i,
            Structure::L1D => self.l1d,
            Structure::L2 => self.l2,
            Structure::Tlb => self.tlb,
            Structure::WriteBuffer => self.write_buffer,
        }
    }

    /// True when any structure has a nonzero rate.
    pub fn any_nonzero(&self) -> bool {
        Structure::ALL.iter().any(|&s| self.get(s) > 0.0)
    }

    /// True when every rate is a probability (finite, in `[0, 1]`).
    pub fn is_valid(&self) -> bool {
        Structure::ALL.iter().all(|&s| {
            let r = self.get(s);
            r.is_finite() && (0.0..=1.0).contains(&r)
        })
    }
}

/// A directed fault: flip bit `bit` of set `set` on access number
/// `access` (0-based, counted per structure) to `structure`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetedFault {
    /// The structure to strike.
    pub structure: Structure,
    /// The access ordinal (0-based within the structure) at which to fire.
    pub access: u64,
    /// The set index to strike.
    pub set: u64,
    /// The bit position to flip.
    pub bit: u32,
}

/// One injected fault, fully located.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The structure struck.
    pub structure: Structure,
    /// The access ordinal (per structure) at which the fault fired.
    pub access: u64,
    /// The struck set index.
    pub set: u64,
    /// The flipped bit position.
    pub bit: u32,
    /// True for a double-bit upset (uncorrectable by SEC-DED ECC,
    /// undetectable by parity).
    pub multi_bit: bool,
    /// True when the fault came from a targeted campaign rather than the
    /// random process.
    pub targeted: bool,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault at access {} (set {}, bit {}{}{})",
            self.structure,
            self.access,
            self.set,
            self.bit,
            if self.multi_bit { ", double-bit" } else { "" },
            if self.targeted { ", targeted" } else { "" },
        )
    }
}

/// What happens when a fault meets a protection scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// Undetected: the data is silently corrupt; simulation continues
    /// (the harness counts these — a real machine would compute wrong
    /// answers).
    Silent,
    /// ECC corrected the flip in place for a fixed cycle penalty.
    Correct,
    /// Parity detected the flip on a clean entry: invalidate and refetch
    /// the data from the next level, charging the real refill cycles.
    Refetch,
    /// Detected but unrecoverable: dirty data under parity, or a
    /// double-bit flip under ECC. The machine raises a machine check.
    MachineCheck,
}

/// The recovery-action table: combines the struck structure's protection,
/// whether the entry held the only (dirty) copy of its data, and whether
/// the upset flipped one bit or two.
///
/// | protection | single-bit, clean | single-bit, dirty | double-bit |
/// |------------|-------------------|-------------------|------------|
/// | none       | silent            | silent            | silent     |
/// | parity     | refetch           | machine check     | silent*    |
/// | ECC        | correct           | correct           | machine check |
///
/// \* a double-bit flip leaves parity unchanged — the classic parity
/// escape that motivates ECC on large arrays.
pub fn resolve(protection: Protection, dirty: bool, multi_bit: bool) -> FaultEffect {
    match protection {
        Protection::None => FaultEffect::Silent,
        Protection::Parity => {
            if multi_bit {
                FaultEffect::Silent
            } else if dirty {
                FaultEffect::MachineCheck
            } else {
                FaultEffect::Refetch
            }
        }
        Protection::Ecc => {
            if multi_bit {
                FaultEffect::MachineCheck
            } else {
                FaultEffect::Correct
            }
        }
    }
}

/// Deterministic, seeded source of fault events.
///
/// The injector is consulted once per access to each protected structure
/// ([`FaultInjector::check`]); it keeps a per-structure access counter, so
/// targeted campaigns address accesses by ordinal. All randomness comes
/// from the seed — the same seed and access sequence reproduce the same
/// fault sites exactly.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SmallRng,
    rates: FaultRates,
    /// Probability that an injected upset flips two bits (escapes parity,
    /// defeats SEC correction).
    multi_bit_frac: f64,
    /// Pending targeted faults (unordered; matched by structure+access).
    targeted: Vec<TargetedFault>,
    /// Per-structure access ordinals.
    accesses: [u64; 5],
    /// Per-structure injected-fault counts.
    injected: [u64; 5],
}

impl FaultInjector {
    /// Creates an injector.
    ///
    /// `multi_bit_frac` is the probability that a random fault is a
    /// double-bit upset; targeted faults are always single-bit.
    pub fn new(
        seed: u64,
        rates: FaultRates,
        multi_bit_frac: f64,
        targeted: Vec<TargetedFault>,
    ) -> Self {
        FaultInjector {
            rng: SmallRng::seed_from_u64(seed),
            rates,
            multi_bit_frac: multi_bit_frac.clamp(0.0, 1.0),
            targeted,
            accesses: [0; 5],
            injected: [0; 5],
        }
    }

    /// True when this injector can ever produce a fault.
    pub fn enabled(&self) -> bool {
        self.rates.any_nonzero() || !self.targeted.is_empty()
    }

    /// Consults the injector for one access to `s`, whose array has
    /// `n_sets` sets. Returns the fault striking this access, if any.
    /// Targeted faults take precedence over the random process.
    pub fn check(&mut self, s: Structure, n_sets: u64) -> Option<FaultEvent> {
        let idx = s.index();
        let ordinal = self.accesses[idx];
        self.accesses[idx] += 1;

        if let Some(pos) = self
            .targeted
            .iter()
            .position(|t| t.structure == s && t.access == ordinal)
        {
            let t = self.targeted.swap_remove(pos);
            self.injected[idx] += 1;
            return Some(FaultEvent {
                structure: s,
                access: ordinal,
                set: t.set,
                bit: t.bit,
                multi_bit: false,
                targeted: true,
            });
        }

        let rate = self.rates.get(s);
        if rate > 0.0 && self.rng.gen_bool(rate) {
            self.injected[idx] += 1;
            let set = if n_sets > 1 {
                self.rng.gen_range(0..n_sets)
            } else {
                0
            };
            let bit = self.rng.gen_range(0u32..64);
            let multi_bit = self.multi_bit_frac > 0.0 && self.rng.gen_bool(self.multi_bit_frac);
            return Some(FaultEvent {
                structure: s,
                access: ordinal,
                set,
                bit,
                multi_bit,
                targeted: false,
            });
        }
        None
    }

    /// Accesses observed so far for `s`.
    pub fn accesses(&self, s: Structure) -> u64 {
        self.accesses[s.index()]
    }

    /// Faults injected so far into `s`.
    pub fn injected(&self, s: Structure) -> u64 {
        self.injected[s.index()]
    }

    /// Total faults injected across all structures.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = FaultInjector::new(1, FaultRates::default(), 0.0, Vec::new());
        assert!(!inj.enabled());
        for s in Structure::ALL {
            for _ in 0..10_000 {
                assert!(inj.check(s, 64).is_none());
            }
        }
        assert_eq!(inj.total_injected(), 0);
        assert_eq!(inj.accesses(Structure::L1D), 10_000);
    }

    #[test]
    fn same_seed_same_fault_sites() {
        let rates = FaultRates::uniform(0.01);
        let mut a = FaultInjector::new(42, rates, 0.1, Vec::new());
        let mut b = FaultInjector::new(42, rates, 0.1, Vec::new());
        for i in 0..50_000u64 {
            let s = Structure::ALL[(i % 5) as usize];
            assert_eq!(a.check(s, 128), b.check(s, 128));
        }
        assert!(a.total_injected() > 0, "rate high enough to fire");
        assert_eq!(a.total_injected(), b.total_injected());
    }

    #[test]
    fn different_seeds_diverge() {
        let rates = FaultRates::uniform(0.05);
        let mut a = FaultInjector::new(1, rates, 0.0, Vec::new());
        let mut b = FaultInjector::new(2, rates, 0.0, Vec::new());
        let fa: Vec<_> = (0..5000)
            .filter_map(|_| a.check(Structure::L2, 4096))
            .collect();
        let fb: Vec<_> = (0..5000)
            .filter_map(|_| b.check(Structure::L2, 4096))
            .collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn rate_zero_structure_is_immune() {
        let rates = FaultRates {
            l1d: 0.5,
            ..FaultRates::default()
        };
        let mut inj = FaultInjector::new(3, rates, 0.0, Vec::new());
        for _ in 0..1000 {
            assert!(inj.check(Structure::L1I, 64).is_none());
        }
        let hits = (0..1000)
            .filter(|_| inj.check(Structure::L1D, 64).is_some())
            .count();
        assert!(hits > 350, "L1-D rate applies: {hits}");
        assert_eq!(inj.injected(Structure::L1I), 0);
    }

    #[test]
    fn targeted_fault_fires_at_exact_access() {
        let t = TargetedFault {
            structure: Structure::L1I,
            access: 7,
            set: 3,
            bit: 21,
        };
        let mut inj = FaultInjector::new(0, FaultRates::default(), 0.0, vec![t]);
        assert!(inj.enabled());
        for i in 0..20u64 {
            match inj.check(Structure::L1I, 64) {
                Some(ev) => {
                    assert_eq!(i, 7);
                    assert_eq!(ev.set, 3);
                    assert_eq!(ev.bit, 21);
                    assert!(ev.targeted);
                    assert!(!ev.multi_bit);
                }
                None => assert_ne!(i, 7),
            }
        }
        assert_eq!(inj.total_injected(), 1);
    }

    #[test]
    fn targeted_access_counts_are_per_structure() {
        let t = TargetedFault {
            structure: Structure::Tlb,
            access: 2,
            set: 0,
            bit: 0,
        };
        let mut inj = FaultInjector::new(0, FaultRates::default(), 0.0, vec![t]);
        // Accesses to other structures do not advance the TLB ordinal.
        for _ in 0..10 {
            assert!(inj.check(Structure::L1D, 64).is_none());
        }
        assert!(inj.check(Structure::Tlb, 8).is_none()); // ordinal 0
        assert!(inj.check(Structure::Tlb, 8).is_none()); // ordinal 1
        assert!(inj.check(Structure::Tlb, 8).is_some()); // ordinal 2: fires
    }

    #[test]
    fn random_sites_stay_in_bounds() {
        let mut inj = FaultInjector::new(9, FaultRates::uniform(0.2), 0.5, Vec::new());
        let mut saw_multi = false;
        let mut saw_single = false;
        for _ in 0..5000 {
            if let Some(ev) = inj.check(Structure::L2, 512) {
                assert!(ev.set < 512);
                assert!(ev.bit < 64);
                saw_multi |= ev.multi_bit;
                saw_single |= !ev.multi_bit;
            }
        }
        assert!(saw_multi && saw_single, "multi_bit_frac=0.5 produces both");
    }

    #[test]
    fn resolve_table_matches_doc() {
        use FaultEffect::*;
        use Protection::*;
        // (protection, dirty, multi_bit) -> effect
        assert_eq!(resolve(None, false, false), Silent);
        assert_eq!(resolve(None, true, true), Silent);
        assert_eq!(resolve(Parity, false, false), Refetch);
        assert_eq!(resolve(Parity, true, false), MachineCheck);
        assert_eq!(resolve(Parity, false, true), Silent, "parity escape");
        assert_eq!(resolve(Parity, true, true), Silent, "parity escape");
        assert_eq!(resolve(Ecc, false, false), Correct);
        assert_eq!(resolve(Ecc, true, false), Correct);
        assert_eq!(resolve(Ecc, false, true), MachineCheck);
        assert_eq!(resolve(Ecc, true, true), MachineCheck);
    }

    #[test]
    fn rates_validation() {
        assert!(FaultRates::default().is_valid());
        assert!(FaultRates::uniform(1.0).is_valid());
        assert!(!FaultRates::uniform(1.5).is_valid());
        assert!(!FaultRates {
            tlb: -0.1,
            ..FaultRates::default()
        }
        .is_valid());
        assert!(!FaultRates {
            l2: f64::NAN,
            ..FaultRates::default()
        }
        .is_valid());
        assert!(!FaultRates::default().any_nonzero());
        assert!(FaultRates {
            write_buffer: 1e-9,
            ..FaultRates::default()
        }
        .any_nonzero());
    }

    #[test]
    fn protection_map_lookup() {
        let m = ProtectionMap {
            l1i: Protection::Parity,
            l1d: Protection::Ecc,
            ..ProtectionMap::default()
        };
        assert_eq!(m.get(Structure::L1I), Protection::Parity);
        assert_eq!(m.get(Structure::L1D), Protection::Ecc);
        assert_eq!(m.get(Structure::L2), Protection::None);
        let u = ProtectionMap::uniform(Protection::Ecc);
        for s in Structure::ALL {
            assert_eq!(u.get(s), Protection::Ecc);
        }
    }

    #[test]
    fn labels_and_display() {
        for s in Structure::ALL {
            assert!(!s.label().is_empty());
            assert_eq!(s.to_string(), s.label());
        }
        for p in [Protection::None, Protection::Parity, Protection::Ecc] {
            assert_eq!(p.to_string(), p.label());
        }
        let ev = FaultEvent {
            structure: Structure::L2,
            access: 5,
            set: 9,
            bit: 3,
            multi_bit: true,
            targeted: false,
        };
        let s = ev.to_string();
        assert!(s.contains("L2") && s.contains("double-bit"));
    }
}
