//! Three-C miss classification (compulsory / capacity / conflict).
//!
//! The paper's §7 argument for splitting the secondary cache is a *conflict*
//! argument: "Two processes access the secondary cache: instruction fetching
//! and data accessing. These two processes never share address space, but in
//! a direct-mapped cache, they can interfere with one another because of
//! mapping conflicts." This module implements Hill's classic decomposition
//! so that claim can be measured rather than asserted:
//!
//! * **compulsory** — the line was never referenced before;
//! * **capacity** — a fully-associative LRU cache of the same capacity
//!   would also have missed;
//! * **conflict** — the fully-associative shadow would have hit: the miss
//!   is an artifact of the mapping.

use std::collections::{HashMap, HashSet};

use gaas_trace::PhysAddr;

use crate::array::{CacheArray, CacheGeometry};

/// The class of one cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First-ever reference to the line.
    Compulsory,
    /// A fully-associative cache of equal capacity would also miss.
    Capacity,
    /// Pure mapping conflict: full associativity would have hit.
    Conflict,
}

/// Counts of classified accesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreeCCounts {
    /// Hits in the cache under test.
    pub hits: u64,
    /// Compulsory misses.
    pub compulsory: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Conflict misses.
    pub conflict: u64,
}

impl ThreeCCounts {
    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Miss ratio (0 when unused).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Fraction of misses that are conflicts (0 when no misses).
    pub fn conflict_share(&self) -> f64 {
        if self.misses() == 0 {
            0.0
        } else {
            self.conflict as f64 / self.misses() as f64
        }
    }
}

/// A fully-associative LRU shadow of a given line capacity.
#[derive(Debug)]
struct FullyAssocShadow {
    capacity: usize,
    /// line base -> LRU timestamp.
    lines: HashMap<u64, u64>,
    clock: u64,
}

impl FullyAssocShadow {
    fn new(capacity: usize) -> Self {
        FullyAssocShadow {
            capacity,
            lines: HashMap::with_capacity(capacity + 1),
            clock: 0,
        }
    }

    /// Returns hit/miss and installs the line.
    fn access(&mut self, base: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(ts) = self.lines.get_mut(&base) {
            *ts = clock;
            return true;
        }
        if self.lines.len() == self.capacity {
            // Evict the LRU entry. O(n) scan; the classifier is an analysis
            // tool, not a hot simulation path.
            let (&victim, _) = self
                .lines
                .iter()
                .min_by_key(|(_, &ts)| ts)
                .expect("shadow is nonempty at capacity");
            self.lines.remove(&victim);
        }
        self.lines.insert(base, clock);
        false
    }
}

/// Classifies the misses of a cache under test against a same-capacity
/// fully-associative LRU shadow.
///
/// # Examples
///
/// ```
/// use gaas_cache::{CacheGeometry, MissClass, ThreeCClassifier};
/// use gaas_trace::PhysAddr;
///
/// # fn main() -> Result<(), gaas_cache::GeometryError> {
/// let mut c = ThreeCClassifier::new(CacheGeometry::new(16, 4, 1)?);
/// c.access(PhysAddr::new(0));   // compulsory
/// c.access(PhysAddr::new(16));  // compulsory (same set, different line)
/// // Ping-pong between the two: the fully-associative shadow holds both,
/// // so these misses are pure mapping conflicts.
/// assert_eq!(c.access(PhysAddr::new(0)), Some(MissClass::Conflict));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ThreeCClassifier {
    dut: CacheArray,
    shadow: FullyAssocShadow,
    seen: HashSet<u64>,
    counts: ThreeCCounts,
}

impl ThreeCClassifier {
    /// Creates a classifier for the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let capacity = (geom.size_words() / geom.line_words() as u64) as usize;
        ThreeCClassifier {
            dut: CacheArray::new(geom),
            shadow: FullyAssocShadow::new(capacity),
            seen: HashSet::new(),
            counts: ThreeCCounts::default(),
        }
    }

    /// Processes one reference; returns `None` on a hit, or the class of
    /// the miss.
    pub fn access(&mut self, addr: PhysAddr) -> Option<MissClass> {
        let base = self.dut.geometry().line_base(addr).word();
        let dut_hit = self.dut.touch(addr).is_some();
        if !dut_hit {
            self.dut.fill(addr);
        }
        let shadow_hit = self.shadow.access(base);
        let first_touch = self.seen.insert(base);

        if dut_hit {
            self.counts.hits += 1;
            return None;
        }
        let class = if first_touch {
            MissClass::Compulsory
        } else if shadow_hit {
            MissClass::Conflict
        } else {
            MissClass::Capacity
        };
        match class {
            MissClass::Compulsory => self.counts.compulsory += 1,
            MissClass::Capacity => self.counts.capacity += 1,
            MissClass::Conflict => self.counts.conflict += 1,
        }
        Some(class)
    }

    /// The accumulated classification.
    pub fn counts(&self) -> ThreeCCounts {
        self.counts
    }

    /// The geometry under test.
    pub fn geometry(&self) -> &CacheGeometry {
        self.dut.geometry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(w: u64) -> PhysAddr {
        PhysAddr::new(w)
    }

    fn classifier() -> ThreeCClassifier {
        // 16 words, 4W lines, direct-mapped: 4 lines.
        ThreeCClassifier::new(CacheGeometry::new(16, 4, 1).expect("valid"))
    }

    #[test]
    fn first_touch_is_compulsory() {
        let mut c = classifier();
        assert_eq!(c.access(pa(0)), Some(MissClass::Compulsory));
        assert_eq!(c.access(pa(1)), None, "same line hits");
        assert_eq!(c.counts().compulsory, 1);
        assert_eq!(c.counts().hits, 1);
    }

    #[test]
    fn mapping_pingpong_is_conflict() {
        let mut c = classifier();
        c.access(pa(0)); // compulsory
        c.access(pa(16)); // same set, compulsory
                          // Ping-pong: both fit in a 4-line fully-associative cache, so these
                          // are pure conflicts.
        assert_eq!(c.access(pa(0)), Some(MissClass::Conflict));
        assert_eq!(c.access(pa(16)), Some(MissClass::Conflict));
        assert_eq!(c.counts().conflict, 2);
        assert!(c.counts().conflict_share() > 0.49);
    }

    #[test]
    fn working_set_overflow_is_capacity() {
        let mut c = classifier();
        // Touch 8 distinct lines (twice the capacity), then re-touch the
        // first: even a fully-associative cache would have evicted it.
        for i in 0..8 {
            c.access(pa(i * 4));
        }
        assert_eq!(c.access(pa(0)), Some(MissClass::Capacity));
    }

    #[test]
    fn associativity_converts_conflicts_to_hits() {
        // The same ping-pong pattern in a 2-way cache of equal capacity
        // hits after warmup.
        let mut c = ThreeCClassifier::new(CacheGeometry::new(16, 4, 2).expect("valid"));
        c.access(pa(0));
        c.access(pa(16));
        assert_eq!(c.access(pa(0)), None);
        assert_eq!(c.access(pa(16)), None);
        assert_eq!(c.counts().conflict, 0);
    }

    #[test]
    fn counts_are_consistent() {
        let mut c = classifier();
        for i in 0..1000u64 {
            // Mix a hot resident word with a cold sweep.
            let addr = if i % 3 == 0 { (i * 7) % 256 } else { i % 4 };
            c.access(pa(addr));
        }
        let t = c.counts();
        assert_eq!(t.accesses(), 1000);
        assert_eq!(t.hits + t.misses(), 1000);
        assert!(
            t.miss_ratio() > 0.0 && t.miss_ratio() < 1.0,
            "ratio {}",
            t.miss_ratio()
        );
    }
}
