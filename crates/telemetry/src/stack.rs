//! Windowed CPI stacks.
//!
//! A [`WindowRow`] is one fixed-size instruction window's cycle
//! accounting: total cycles plus a per-component split that sums to the
//! total *exactly* (everything is integer simulated cycles; CPI values
//! are derived by division only at presentation time). That integer
//! discipline is what lets the cycle-weighted average of the windows
//! reproduce the end-of-run CPI to within ordinary f64 rounding.

use std::fmt::Write as _;

/// One instruction window's cycle attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRow {
    /// Zero-based window index in run order.
    pub index: usize,
    /// Instructions retired in this window.
    pub instructions: u64,
    /// Total cycles consumed by this window.
    pub cycles: u64,
    /// Per-component cycle split; components sum to `cycles`.
    pub components: Vec<(&'static str, u64)>,
}

impl WindowRow {
    /// Window CPI: `cycles / instructions`.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instructions as f64
    }

    /// Sum of the per-component cycles (equals `cycles` when the split
    /// is complete; exposed so exporters and tests can assert it).
    pub fn component_cycles(&self) -> u64 {
        self.components.iter().map(|&(_, c)| c).sum()
    }
}

/// Cycle-weighted average CPI over a set of windows:
/// `Σ cycles / Σ instructions`. Because both sums are integers, this is
/// the exact CPI of the union of the windows.
pub fn weighted_cpi(rows: &[WindowRow]) -> f64 {
    let cycles: u64 = rows.iter().map(|r| r.cycles).sum();
    let instructions: u64 = rows.iter().map(|r| r.instructions).sum();
    cycles as f64 / instructions as f64
}

/// Render windows as CSV. Columns: `window,instructions,cycles,cpi`,
/// then one integer cycle column per component (taken from the first
/// row's component labels; all rows must share the same layout). A
/// component's CPI contribution is its cycle column divided by the
/// `instructions` column, so contributions sum to `cpi` exactly.
pub fn stack_csv(rows: &[WindowRow]) -> String {
    let mut out = String::new();
    out.push_str("window,instructions,cycles,cpi");
    if let Some(first) = rows.first() {
        for (name, _) in &first.components {
            let _ = write!(out, ",{}", name.replace(',', ";"));
        }
    }
    out.push('\n');
    for r in rows {
        let _ = write!(
            out,
            "{},{},{},{}",
            r.index,
            r.instructions,
            r.cycles,
            r.cpi()
        );
        for &(_, c) in &r.components {
            let _ = write!(out, ",{c}");
        }
        out.push('\n');
    }
    out
}

/// Render windows as a JSON array of objects mirroring [`stack_csv`]:
/// each object has `window`, `instructions`, `cycles`, `cpi`, and a
/// `components` object of integer cycle counts.
pub fn stack_json(rows: &[WindowRow]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"window\":{},\"instructions\":{},\"cycles\":{},\"cpi\":{},\
             \"components\":{{",
            r.index,
            r.instructions,
            r.cycles,
            r.cpi()
        );
        for (j, &(name, c)) in r.components.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", name.replace('"', ""), c);
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: usize, instructions: u64, split: &[(&'static str, u64)]) -> WindowRow {
        WindowRow {
            index,
            instructions,
            cycles: split.iter().map(|&(_, c)| c).sum(),
            components: split.to_vec(),
        }
    }

    #[test]
    fn weighted_average_is_exact_union_cpi() {
        let rows = vec![
            row(0, 100, &[("base", 100), ("l1i", 37)]),
            row(1, 100, &[("base", 100), ("l1i", 3)]),
            row(2, 50, &[("base", 50), ("l1i", 10)]),
        ];
        // 300 cycles over 250 instructions.
        assert_eq!(weighted_cpi(&rows), 300.0 / 250.0);
        for r in &rows {
            assert_eq!(r.component_cycles(), r.cycles);
        }
    }

    #[test]
    fn csv_roundtrips_integers() {
        let rows = vec![row(0, 1000, &[("base", 1000), ("wb", 234)])];
        let csv = stack_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "window,instructions,cycles,cpi,base,wb"
        );
        let data: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(data[1], "1000");
        assert_eq!(data[2], "1234");
        assert_eq!(data[4], "1000");
        assert_eq!(data[5], "234");
        let cpi: f64 = data[3].parse().unwrap();
        assert!((cpi - 1.234).abs() < 1e-12);
    }

    #[test]
    fn json_shape() {
        let rows = vec![row(3, 10, &[("base", 10)])];
        let json = stack_json(&rows);
        assert!(json.starts_with('['));
        assert!(json.contains("\"window\":3"));
        assert!(json.contains("\"components\":{\"base\":10}"));
    }
}
