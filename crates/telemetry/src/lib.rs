//! Low-overhead instrumentation for the GaAs cache design-study simulator.
//!
//! The paper's argument is a CPI *breakdown* — every design phase is
//! justified by which stall component shrank — so the telemetry layer is
//! organized around attributing simulated cycles to hierarchy components
//! and exposing how that attribution evolves over a run:
//!
//! * [`registry`] — a fixed-slot counter/histogram [`Registry`]. Plain
//!   `u64` slots, no atomics: the simulator kernel is single-threaded,
//!   and the experiment pool merges per-worker registries by *name*
//!   ([`Registry::merge_from`]) so totals are deterministic regardless
//!   of worker interleaving.
//! * [`spans`] — a bounded ring-buffer [`SpanRecorder`] of begin/end
//!   scopes (refills, write-buffer drains, TLB walks, context switches)
//!   stamped with the *functional clock* (simulated cycles), never wall
//!   time, so recorded timelines are bit-reproducible across hosts.
//! * [`stack`] — windowed CPI stacks: per-window component rows whose
//!   parts sum to the window CPI and whose cycle-weighted average equals
//!   the end-of-run CPI exactly (integer cycle arithmetic throughout).
//! * [`chrome`] — a Chrome `trace_event` JSON exporter (Perfetto /
//!   `chrome://tracing` loadable) mapping one simulated cycle to one
//!   microsecond of trace time and one component to one track.
//!
//! Everything here is passive: recording never charges simulated cycles
//! and never touches simulator RNG state, which is what makes the
//! disabled-mode byte-identity contract (see DESIGN.md §11) trivially
//! auditable from this crate's side.

pub mod chrome;
pub mod registry;
pub mod spans;
pub mod stack;

pub use chrome::chrome_trace_json;
pub use registry::{CounterId, Histogram, Registry};
pub use spans::{Span, SpanRecorder};
pub use stack::{stack_csv, stack_json, weighted_cpi, WindowRow};

/// Hierarchy component a span or stall cycle is attributed to.
///
/// Components double as Chrome-trace track ids (`tid`), so the explicit
/// discriminants are stable export identifiers, not just enum order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Component {
    /// Processor-core activity that is not a memory stall (scheduler
    /// slices, syscall handling).
    Cpu = 0,
    /// Level-1 instruction cache.
    L1I = 1,
    /// Level-1 data cache.
    L1D = 2,
    /// Level-2 cache (either side of a split L2, or the unified array).
    L2 = 3,
    /// Write buffer between the L1 data side and the L2.
    Wb = 4,
    /// Translation lookaside buffer walks.
    Tlb = 5,
    /// Main-memory (MCM off-module) accesses.
    Memory = 6,
    /// Scheduler events: context switches, syscall-driven yields.
    Sched = 7,
    /// Injected soft-error events and recovery.
    Fault = 8,
    /// Golden-model oracle divergences.
    Oracle = 9,
}

impl Component {
    /// All components, in track order.
    pub const ALL: [Component; 10] = [
        Component::Cpu,
        Component::L1I,
        Component::L1D,
        Component::L2,
        Component::Wb,
        Component::Tlb,
        Component::Memory,
        Component::Sched,
        Component::Fault,
        Component::Oracle,
    ];

    /// Human-readable track name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Component::Cpu => "cpu",
            Component::L1I => "l1i",
            Component::L1D => "l1d",
            Component::L2 => "l2",
            Component::Wb => "write-buffer",
            Component::Tlb => "tlb",
            Component::Memory => "memory",
            Component::Sched => "sched",
            Component::Fault => "fault",
            Component::Oracle => "oracle",
        }
    }

    /// Chrome-trace thread (track) id for this component.
    pub fn tid(self) -> u32 {
        self as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_tids_are_distinct_and_ordered() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.tid() as usize, i);
        }
    }

    #[test]
    fn component_names_are_distinct() {
        let mut names: Vec<&str> = Component::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Component::ALL.len());
    }
}
