//! Fixed-slot counter and histogram registry.
//!
//! Counters are plain `u64` slots addressed by a [`CounterId`] handle
//! obtained once at registration time, so the hot-path cost of a bump is
//! one indexed add — no hashing, no locking, no atomics. The simulator
//! kernel is single-threaded; parallel sweeps give each pool worker its
//! own `Registry` and merge them *by name* at the end, which makes the
//! merged totals independent of worker scheduling.

use std::fmt::Write as _;

/// Handle to a registered counter; index into the registry's slot array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Log2-bucketed histogram of `u64` samples (bucket `i` holds values `v`
/// with `bit_length(v) == i`, i.e. bucket 0 is exactly `0`, bucket 1 is
/// `1`, bucket 2 is `2..=3`, and so on). 65 buckets cover the full
/// `u64` range; min/max/sum/count are tracked exactly.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum as f64 / self.count as f64)
    }

    /// Occupied buckets as `(bucket_floor, count)` pairs, ascending.
    /// `bucket_floor` is the smallest value the bucket can hold.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            .collect()
    }

    /// Fold another histogram into this one.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Fixed-slot registry of named counters and histograms.
///
/// Registration order is the iteration order, so two registries built by
/// the same code path (e.g. two pool workers running the same
/// instrumented kernel) have identical layouts and can be merged slot
/// by slot; [`Registry::merge_from`] nevertheless matches *by name* so
/// that merging registries with different registration histories is
/// still deterministic.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    names: Vec<&'static str>,
    values: Vec<u64>,
    hist_names: Vec<&'static str>,
    hists: Vec<Histogram>,
}

impl Registry {
    /// Create an empty registry (const, so a registry can live in a
    /// `static Mutex` without lazy initialization).
    pub const fn new() -> Self {
        Registry {
            names: Vec::new(),
            values: Vec::new(),
            hist_names: Vec::new(),
            hists: Vec::new(),
        }
    }

    /// Register (or look up) a counter by name and return its handle.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.names.iter().position(|&n| n == name) {
            return CounterId(i);
        }
        self.names.push(name);
        self.values.push(0);
        CounterId(self.names.len() - 1)
    }

    /// Add `delta` to a counter. One indexed add — safe for hot paths.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.values[id.0] += delta;
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.values[id.0] += 1;
    }

    /// Current value of a counter.
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id.0]
    }

    /// Look up a counter's value by name.
    pub fn value_of(&self, name: &str) -> Option<u64> {
        self.names
            .iter()
            .position(|&n| n == name)
            .map(|i| self.values[i])
    }

    /// All counters as `(name, value)` in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names.iter().copied().zip(self.values.iter().copied())
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Register (or look up) a histogram by name and record one sample.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        let i = match self.hist_names.iter().position(|&n| n == name) {
            Some(i) => i,
            None => {
                self.hist_names.push(name);
                self.hists.push(Histogram::default());
                self.hist_names.len() - 1
            }
        };
        self.hists[i].record(v);
    }

    /// All histograms as `(name, histogram)` in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hist_names.iter().copied().zip(self.hists.iter())
    }

    /// Fold another registry into this one, matching counters and
    /// histograms by name (names unknown here are appended). Because
    /// addition commutes, merging any permutation of worker registries
    /// yields the same totals.
    pub fn merge_from(&mut self, other: &Registry) {
        for (name, v) in other.counters() {
            let id = self.counter(name);
            self.values[id.0] += v;
        }
        for (name, h) in other.histograms() {
            let i = match self.hist_names.iter().position(|&n| n == name) {
                Some(i) => i,
                None => {
                    self.hist_names.push(name);
                    self.hists.push(Histogram::default());
                    self.hist_names.len() - 1
                }
            };
            self.hists[i].merge_from(h);
        }
    }

    /// Render all counters (and histogram summaries) as an aligned
    /// two-column text table, one row per counter, sorted by name.
    pub fn summary_table(&self) -> String {
        let mut rows: Vec<(String, String)> = self
            .counters()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect();
        for (n, h) in self.histograms() {
            rows.push((
                format!("{n} (hist)"),
                match (h.min(), h.max()) {
                    (Some(lo), Some(hi)) => format!(
                        "n={} sum={} min={} max={} mean={:.2}",
                        h.count(),
                        h.sum(),
                        lo,
                        hi,
                        h.mean().unwrap_or(0.0)
                    ),
                    _ => "n=0".to_string(),
                },
            ));
        }
        rows.sort();
        let w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (n, v) in rows {
            let _ = writeln!(out, "{n:<w$}  {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let mut r = Registry::new();
        let a = r.counter("a");
        let b = r.counter("b");
        r.inc(a);
        r.add(b, 41);
        r.inc(b);
        assert_eq!(r.get(a), 1);
        assert_eq!(r.get(b), 42);
        assert_eq!(r.value_of("b"), Some(42));
        assert_eq!(r.value_of("missing"), None);
        // Re-registering the same name returns the same slot.
        assert_eq!(r.counter("a"), a);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn merge_is_by_name_and_commutative() {
        let mut x = Registry::new();
        let xa = x.counter("a");
        x.add(xa, 5);
        x.observe("lat", 3);

        let mut y = Registry::new();
        // Different registration order on purpose.
        let yb = y.counter("b");
        let ya = y.counter("a");
        y.add(yb, 7);
        y.add(ya, 10);
        y.observe("lat", 9);

        let mut m1 = Registry::new();
        m1.merge_from(&x);
        m1.merge_from(&y);
        let mut m2 = Registry::new();
        m2.merge_from(&y);
        m2.merge_from(&x);

        for m in [&m1, &m2] {
            assert_eq!(m.value_of("a"), Some(15));
            assert_eq!(m.value_of("b"), Some(7));
            let (_, h) = m.histograms().next().unwrap();
            assert_eq!(h.count(), 2);
            assert_eq!(h.sum(), 12);
            assert_eq!(h.min(), Some(3));
            assert_eq!(h.max(), Some(9));
        }
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(
            h.buckets(),
            vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (1024, 1)]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
    }

    #[test]
    fn summary_table_is_sorted_and_aligned() {
        let mut r = Registry::new();
        let z = r.counter("zeta");
        let a = r.counter("alpha");
        r.add(z, 1);
        r.add(a, 2);
        let t = r.summary_table();
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("alpha"));
        assert!(lines[1].starts_with("zeta"));
    }
}
