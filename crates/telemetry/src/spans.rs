//! Bounded ring-buffer span recorder.
//!
//! Spans are stamped with the *functional clock* — simulated cycles —
//! so a recorded timeline is a deterministic function of the simulated
//! program, not of host speed. The buffer is bounded: once full, the
//! oldest spans are overwritten and a drop counter is bumped, so
//! recording cost stays O(1) per span and memory stays fixed no matter
//! how long the run is.

use crate::Component;

/// One recorded scope: `[start, start + dur)` in simulated cycles on a
/// component's track. Instant events are spans with `dur == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Static label (e.g. `"refill.l1i"`, `"wb.drain"`).
    pub name: &'static str,
    /// Track the span belongs to.
    pub component: Component,
    /// Start time in simulated cycles.
    pub start: u64,
    /// Duration in simulated cycles (0 for instant events).
    pub dur: u64,
}

/// Fixed-capacity ring buffer of [`Span`]s, oldest-evicted.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    buf: Vec<Span>,
    capacity: usize,
    /// Next write position when the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl SpanRecorder {
    /// Create a recorder holding at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        SpanRecorder {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Record a scope of `dur` cycles starting at `start`.
    #[inline]
    pub fn record(&mut self, name: &'static str, component: Component, start: u64, dur: u64) {
        let span = Span {
            name,
            component,
            start,
            dur,
        };
        if self.buf.len() < self.capacity {
            self.buf.push(span);
        } else {
            self.buf[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Record an instant event (zero-duration span) at `at`.
    #[inline]
    pub fn instant(&mut self, name: &'static str, component: Component, at: u64) {
        self.record(name, component, at, 0);
    }

    /// Number of spans evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Retained spans in recording order (oldest retained first).
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Clears the recorder back to its post-construction state (same
    /// capacity, no spans, zero drop count). Long-lived processes roll
    /// the recorder at job boundaries so one job's spans never leak into
    /// the next job's export.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_until_full() {
        let mut r = SpanRecorder::new(4);
        for i in 0..3u64 {
            r.record("s", Component::L2, i * 10, 5);
        }
        assert_eq!(r.dropped(), 0);
        let spans = r.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].start, 0);
        assert_eq!(spans[2].start, 20);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut r = SpanRecorder::new(3);
        for i in 0..5u64 {
            r.record("s", Component::Wb, i, 1);
        }
        assert_eq!(r.dropped(), 2);
        let starts: Vec<u64> = r.spans().iter().map(|s| s.start).collect();
        assert_eq!(starts, vec![2, 3, 4]);
    }

    #[test]
    fn reset_restores_fresh_state_with_same_capacity() {
        let mut r = SpanRecorder::new(3);
        for i in 0..5u64 {
            r.record("s", Component::L2, i, 1);
        }
        assert_eq!(r.dropped(), 2);
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        // Capacity survives: the 4th span evicts again.
        for i in 0..4u64 {
            r.record("s", Component::L2, i, 1);
        }
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn instant_is_zero_duration() {
        let mut r = SpanRecorder::new(2);
        r.instant("fault", Component::Fault, 99);
        let s = r.spans()[0];
        assert_eq!(s.dur, 0);
        assert_eq!(s.start, 99);
    }
}
