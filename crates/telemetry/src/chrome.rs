//! Chrome `trace_event` JSON exporter.
//!
//! Emits the "JSON Object Format" understood by `chrome://tracing` and
//! Perfetto: a `traceEvents` array of complete (`"ph":"X"`) events plus
//! metadata (`"ph":"M"`) events naming one track per [`Component`].
//! Timestamps are microseconds by convention; we map one simulated
//! cycle to one microsecond, so a Perfetto "second" reads as one
//! million cycles (4 ms of wall time at the paper's 250 MHz clock).

use std::fmt::Write as _;

use crate::{Component, Span};

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize spans into Chrome `trace_event` JSON.
///
/// `process_name` labels the single process (`pid` 0) the tracks live
/// under — typically the experiment cell's config summary. Tracks are
/// emitted for every [`Component`] so the timeline layout is stable
/// across runs even when some components recorded nothing.
pub fn chrome_trace_json(process_name: &str, spans: &[Span]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, item: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&item);
    };
    push(
        &mut out,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(process_name)
        ),
    );
    for c in Component::ALL {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                c.tid(),
                c.name()
            ),
        );
    }
    for s in spans {
        push(
            &mut out,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\
                 \"dur\":{},\"pid\":0,\"tid\":{}}}",
                escape(s.name),
                s.component.name(),
                s.start,
                s.dur,
                s.component.tid()
            ),
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_metadata_and_events() {
        let spans = [
            Span {
                name: "refill.l1i",
                component: Component::L2,
                start: 10,
                dur: 6,
            },
            Span {
                name: "fault",
                component: Component::Fault,
                start: 20,
                dur: 0,
            },
        ];
        let json = chrome_trace_json("fig7 cell", &spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"refill.l1i\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":6"));
        // One thread_name entry per component.
        assert_eq!(
            json.matches("\"thread_name\"").count(),
            Component::ALL.len()
        );
    }

    #[test]
    fn escapes_special_characters() {
        let json = chrome_trace_json("a\"b\\c\nd", &[]);
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }
}
