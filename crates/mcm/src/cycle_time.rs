//! System cycle-time derivation (§2).
//!
//! "The CPU has a critical path that limits the cycle time to just under
//! 4 nanoseconds" — the 250 MHz target. The memory access paths to the L1
//! caches can stretch this cycle if their access time exceeds it; the
//! design study's premise is to *hold the 4 ns cycle* and take cache
//! reorganizations only when they do not lengthen it.

use crate::access_time::L1Access;

/// The CPU-core critical path (ns): just under 4 ns.
pub const CPU_CYCLE_NS: f64 = 3.95;

/// The resulting clock frequency target in MHz.
pub const CPU_MHZ: f64 = 1000.0 / CPU_CYCLE_NS;

/// System cycle time when the L1 access path must fit in a single cycle:
/// the maximum of the core critical path and the cache access.
pub fn system_cycle_ns(l1: &L1Access) -> f64 {
    CPU_CYCLE_NS.max(l1.total_ns())
}

/// Converts a latency in nanoseconds to whole CPU cycles (rounded up) at a
/// given cycle time.
///
/// # Panics
///
/// Panics if `cycle_ns` is not positive.
pub fn cycles(latency_ns: f64, cycle_ns: f64) -> u32 {
    assert!(cycle_ns > 0.0, "cycle time must be positive");
    (latency_ns / cycle_ns).ceil().max(1.0) as u32
}

/// Relative slowdown of every instruction when the system cycle stretches
/// beyond the CPU critical path (≥ 1.0).
pub fn cycle_stretch(l1: &L1Access) -> f64 {
    system_cycle_ns(l1) / CPU_CYCLE_NS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_time::{l1_access, TagPlacement};

    #[test]
    fn target_frequency_is_about_250mhz() {
        assert!((CPU_MHZ - 253.2).abs() < 1.0, "{CPU_MHZ}");
    }

    #[test]
    fn base_cache_does_not_stretch_cycle() {
        let a = l1_access(4096, TagPlacement::OnMmu);
        assert_eq!(system_cycle_ns(&a), CPU_CYCLE_NS);
        assert_eq!(cycle_stretch(&a), 1.0);
    }

    #[test]
    fn oversized_cache_stretches_cycle() {
        let a = l1_access(16384, TagPlacement::VirtualOnMcm);
        assert!(system_cycle_ns(&a) > CPU_CYCLE_NS);
        assert!(cycle_stretch(&a) > 1.0);
    }

    #[test]
    fn cycles_round_up() {
        assert_eq!(cycles(3.0, 3.95), 1);
        assert_eq!(cycles(10.0, 3.95), 3);
        assert_eq!(cycles(0.1, 3.95), 1, "minimum one cycle");
    }

    #[test]
    fn l2_srams_cost_the_paper_cycle_counts() {
        // The 10 ns BiCMOS L2 data SRAM plus ~2 cycles of latency gives the
        // 6-cycle L2 access of the base architecture.
        let sram_cycles = cycles(10.0, CPU_CYCLE_NS);
        assert_eq!(sram_cycles, 3);
        assert!(sram_cycles + 2 <= 6);
    }

    #[test]
    #[should_panic(expected = "cycle time must be positive")]
    fn bad_cycle_rejected() {
        let _ = cycles(1.0, 0.0);
    }
}
