//! First-order MCM interconnect timing (§2 of the paper, \[Mud+91\]).
//!
//! The paper's circuit-level work (Vitesse HGaAs III SPICE decks) is
//! proprietary; this module reproduces its *conclusions* from first-order
//! physics: time-of-flight over the MCM substrate plus an RC driver model
//! whose load grows with line length and fanout. The constants below are
//! chosen to land on the paper's headline facts — a just-under-4 ns CPU
//! critical path, and inter-chip propagation plus loading contributing "as
//! much as 50%" of the L1 access time.

/// Propagation velocity over MCM interconnect, in picoseconds per
/// millimetre. Signal speed is `c / sqrt(εr)`; polyimide MCM dielectrics
/// (εr ≈ 3.5) give ≈ 6.2 ps/mm.
pub const MCM_PROP_PS_PER_MM: f64 = 6.2;

/// Propagation velocity over conventional PCB (εr ≈ 4.7, longer routed
/// paths folded in), for the PCB-vs-MCM comparison of §2.
pub const PCB_PROP_PS_PER_MM: f64 = 7.2;

/// MCM line capacitance per millimetre (pF). 10–20 µm lines over a thin
/// dielectric: ≈ 0.10 pF/mm.
pub const MCM_LINE_PF_PER_MM: f64 = 0.10;

/// PCB trace capacitance per millimetre (pF): wider traces, thicker
/// dielectric — roughly 1 pF/cm.
pub const PCB_LINE_PF_PER_MM: f64 = 0.12;

/// Input capacitance of one receiving die pad (pF). Bare-die bonding on an
/// MCM avoids package parasitics.
pub const MCM_LOAD_PF: f64 = 1.0;

/// Input capacitance of a packaged receiver on PCB (pF), including package
/// lead parasitics.
pub const PCB_LOAD_PF: f64 = 5.0;

/// Effective output resistance of a small GaAs off-chip driver (Ω). MCMs
/// permit "smaller, lower-power off-chip drivers" (§2).
pub const MCM_DRIVER_OHMS: f64 = 60.0;

/// Effective output resistance of a PCB-class driver (Ω); bigger drivers
/// for bigger loads, but slower predrivers — net effective R is similar.
pub const PCB_DRIVER_OHMS: f64 = 55.0;

/// The packaging substrate a signal crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Substrate {
    /// Multichip module: bare dies, fine-pitch interconnect.
    Mcm,
    /// Conventional printed-circuit board with packaged parts.
    Pcb,
}

impl Substrate {
    fn params(self) -> (f64, f64, f64, f64) {
        match self {
            Substrate::Mcm => (
                MCM_PROP_PS_PER_MM,
                MCM_LINE_PF_PER_MM,
                MCM_LOAD_PF,
                MCM_DRIVER_OHMS,
            ),
            Substrate::Pcb => (
                PCB_PROP_PS_PER_MM,
                PCB_LINE_PF_PER_MM,
                PCB_LOAD_PF,
                PCB_DRIVER_OHMS,
            ),
        }
    }
}

/// One point-to-multipoint chip-crossing net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Net {
    /// Substrate the net is routed on.
    pub substrate: Substrate,
    /// Electrical length in millimetres.
    pub length_mm: f64,
    /// Number of receiving chips on the net.
    pub fanout: u32,
}

impl Net {
    /// A point-to-point MCM net of `length_mm`.
    pub fn mcm(length_mm: f64, fanout: u32) -> Self {
        Net {
            substrate: Substrate::Mcm,
            length_mm,
            fanout,
        }
    }

    /// A point-to-point PCB net of `length_mm`.
    pub fn pcb(length_mm: f64, fanout: u32) -> Self {
        Net {
            substrate: Substrate::Pcb,
            length_mm,
            fanout,
        }
    }

    /// Time-of-flight component in nanoseconds.
    pub fn flight_ns(&self) -> f64 {
        let (prop, ..) = self.substrate.params();
        prop * self.length_mm / 1000.0
    }

    /// RC driver/loading component in nanoseconds (0.69·R·C to 50%).
    pub fn drive_ns(&self) -> f64 {
        let (_, line_pf, load_pf, r) = self.substrate.params();
        let c_total = line_pf * self.length_mm + load_pf * self.fanout as f64;
        0.69 * r * c_total / 1000.0
    }

    /// Total one-way crossing delay in nanoseconds.
    pub fn delay_ns(&self) -> f64 {
        self.flight_ns() + self.drive_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcm_beats_pcb_for_same_topology() {
        let mcm = Net::mcm(30.0, 2);
        let pcb = Net::pcb(30.0, 2);
        assert!(mcm.delay_ns() < pcb.delay_ns());
    }

    #[test]
    fn pcb_crossing_dominates_a_4ns_cycle() {
        // §2: on a PCB, two chip crossings dominate the cycle time.
        let crossing = Net::pcb(80.0, 4);
        assert!(
            2.0 * crossing.delay_ns() > 3.0,
            "two crossings = {:.2} ns",
            2.0 * crossing.delay_ns()
        );
    }

    #[test]
    fn short_mcm_crossing_is_sub_nanosecond() {
        let n = Net::mcm(15.0, 1);
        assert!(n.delay_ns() < 1.0, "delay {:.2}", n.delay_ns());
    }

    #[test]
    fn delay_grows_with_length_and_fanout() {
        let base = Net::mcm(10.0, 1).delay_ns();
        assert!(Net::mcm(20.0, 1).delay_ns() > base);
        assert!(Net::mcm(10.0, 4).delay_ns() > base);
    }

    #[test]
    fn delay_decomposes_into_flight_and_drive() {
        let n = Net::mcm(25.0, 3);
        assert!((n.delay_ns() - (n.flight_ns() + n.drive_ns())).abs() < 1e-12);
    }

    #[test]
    fn zero_length_has_only_load_delay() {
        let n = Net::mcm(0.0, 1);
        assert_eq!(n.flight_ns(), 0.0);
        assert!(n.drive_ns() > 0.0);
    }
}
