//! MCM area and pin budget (§2).
//!
//! "In systems using MCM packaging, partitioning must address not only
//! which functions go on each chip, but also, which chips go on the MCM."
//! This module accounts for that partitioning decision: die area, substrate
//! area at a realistic packing density, and signal-pin demand, for the
//! paper's base (Fig. 1) and optimized (Fig. 11) MCM populations. It also
//! encodes the two §6 packaging facts: the 4 W refill path is a connector
//! bandwidth limit, and moving to a 1 W-wide write buffer cuts its I/O from
//! 256 to 64 pins — small enough to fold the buffer into the MMU chip.

/// One kind of die mounted on the MCM.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Number of identical dies.
    pub count: u32,
    /// Die edge lengths in millimetres.
    pub die_mm: (f64, f64),
    /// Signal pins per die (power/ground excluded).
    pub signal_pins: u32,
}

impl Component {
    /// Total die area of all instances (mm²).
    pub fn area_mm2(&self) -> f64 {
        self.count as f64 * self.die_mm.0 * self.die_mm.1
    }

    /// Total signal pins of all instances.
    pub fn pins(&self) -> u32 {
        self.count * self.signal_pins
    }
}

/// Fraction of the substrate usable for dies (routing channels, bond
/// shelves and decoupling take the rest).
pub const PACKING_DENSITY: f64 = 0.35;

/// Largest substrate edge the process can build (mm).
pub const MAX_SUBSTRATE_MM: f64 = 100.0;

/// Signal pins of the 4-deep × 4 W write-buffer *chip* of the base
/// architecture (128-bit data in + 128-bit out).
pub const WB_CHIP_PINS_4W: u32 = 256;

/// Signal pins the 8-deep × 1 W write-buffer path needs (32-bit in + out) —
/// the §6 "factor of four reduction ... from 256 pins to 64 pins".
pub const WB_PATH_PINS_1W: u32 = 64;

/// An MCM population and its budget.
#[derive(Debug, Clone, PartialEq)]
pub struct McmBudget {
    /// Human-readable configuration name.
    pub name: &'static str,
    /// Dies on the substrate.
    pub components: Vec<Component>,
}

impl McmBudget {
    /// The base architecture's MCM population (Fig. 1): CPU, MMU, the two
    /// 4 KW L1 caches (four 1 K × 32 SRAMs each), the L2 tag SRAMs, and
    /// the discrete 4 W write-buffer chip.
    pub fn base() -> Self {
        McmBudget {
            name: "base (Fig. 1)",
            components: vec![
                Component {
                    name: "CPU+FPA",
                    count: 1,
                    die_mm: (12.0, 12.0),
                    signal_pins: 280,
                },
                Component {
                    name: "MMU",
                    count: 1,
                    die_mm: (10.0, 10.0),
                    signal_pins: 220,
                },
                Component {
                    name: "L1-I SRAM 1Kx32",
                    count: 4,
                    die_mm: (6.0, 6.0),
                    signal_pins: 60,
                },
                Component {
                    name: "L1-D SRAM 1Kx32",
                    count: 4,
                    die_mm: (6.0, 6.0),
                    signal_pins: 60,
                },
                Component {
                    name: "L2 tag SRAM 1Kx32",
                    count: 2,
                    die_mm: (6.0, 6.0),
                    signal_pins: 60,
                },
                Component {
                    name: "WB chip 4x4W",
                    count: 1,
                    die_mm: (8.0, 8.0),
                    signal_pins: WB_CHIP_PINS_4W,
                },
            ],
        }
    }

    /// The optimized architecture's MCM population (Fig. 11): the 1 W
    /// write buffer is inside the MMU (no discrete WB chip) and the 32 KW
    /// L2-I joins the substrate as 32 fast SRAMs.
    pub fn optimized() -> Self {
        McmBudget {
            name: "optimized (Fig. 11)",
            components: vec![
                Component {
                    name: "CPU+FPA",
                    count: 1,
                    die_mm: (12.0, 12.0),
                    signal_pins: 280,
                },
                Component {
                    name: "MMU (+WB 8x1W)",
                    count: 1,
                    die_mm: (10.5, 10.5),
                    signal_pins: 220 + WB_PATH_PINS_1W,
                },
                Component {
                    name: "L1-I SRAM 1Kx32",
                    count: 4,
                    die_mm: (6.0, 6.0),
                    signal_pins: 60,
                },
                Component {
                    name: "L1-D SRAM 1Kx32",
                    count: 4,
                    die_mm: (6.0, 6.0),
                    signal_pins: 60,
                },
                Component {
                    name: "L2 tag SRAM 1Kx32",
                    count: 2,
                    die_mm: (6.0, 6.0),
                    signal_pins: 60,
                },
                Component {
                    name: "L2-I SRAM 1Kx32",
                    count: 32,
                    die_mm: (6.0, 6.0),
                    signal_pins: 60,
                },
            ],
        }
    }

    /// Total die area (mm²).
    pub fn die_area_mm2(&self) -> f64 {
        self.components.iter().map(Component::area_mm2).sum()
    }

    /// Required substrate area at [`PACKING_DENSITY`] (mm²).
    pub fn substrate_area_mm2(&self) -> f64 {
        self.die_area_mm2() / PACKING_DENSITY
    }

    /// Edge of the (square) substrate (mm).
    pub fn substrate_edge_mm(&self) -> f64 {
        self.substrate_area_mm2().sqrt()
    }

    /// Total signal pins bonded on the substrate.
    pub fn total_pins(&self) -> u32 {
        self.components.iter().map(Component::pins).sum()
    }

    /// Whether the population fits the largest buildable substrate.
    pub fn fits(&self) -> bool {
        self.substrate_edge_mm() <= MAX_SUBSTRATE_MM
    }

    /// Number of dies on the substrate.
    pub fn die_count(&self) -> u32 {
        self.components.iter().map(|c| c.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_population_matches_fig1() {
        let b = McmBudget::base();
        assert_eq!(b.die_count(), 13);
        assert!(b.components.iter().any(|c| c.name.contains("WB chip")));
        assert!(
            b.fits(),
            "base substrate {:.0} mm edge",
            b.substrate_edge_mm()
        );
    }

    #[test]
    fn optimized_population_matches_fig11() {
        let o = McmBudget::optimized();
        // The discrete WB chip is gone; 32 L2-I SRAMs are added.
        assert!(!o.components.iter().any(|c| c.name.contains("WB chip")));
        let l2i = o
            .components
            .iter()
            .find(|c| c.name.contains("L2-I"))
            .expect("L2-I present");
        assert_eq!(l2i.count, 32, "32 KW from 1Kx32 chips");
        assert!(
            o.fits(),
            "optimized substrate {:.0} mm edge",
            o.substrate_edge_mm()
        );
    }

    #[test]
    fn write_buffer_pin_reduction_is_4x() {
        // §6: "from 256 pins to 64 pins".
        assert_eq!(WB_CHIP_PINS_4W / WB_PATH_PINS_1W, 4);
    }

    #[test]
    fn optimized_is_bigger_but_buildable() {
        let (b, o) = (McmBudget::base(), McmBudget::optimized());
        assert!(o.die_area_mm2() > b.die_area_mm2());
        assert!(o.substrate_edge_mm() < MAX_SUBSTRATE_MM);
    }

    #[test]
    fn component_arithmetic() {
        let c = Component {
            name: "x",
            count: 3,
            die_mm: (2.0, 5.0),
            signal_pins: 10,
        };
        assert!((c.area_mm2() - 30.0).abs() < 1e-12);
        assert_eq!(c.pins(), 30);
    }
}
