//! Snoop-bus occupancy timing for the CMP frontier (ROADMAP item 3).
//!
//! When 2–8 cores share the L2 over the MCM substrate, every coherence
//! transaction (invalidation round, cache-to-cache transfer probe) must
//! cross the shared interconnect. This module models that contention
//! point the same way `gaas-cache::memory` models the dirty buffer: a
//! single resource with a busy-until horizon, charging requesters only
//! for *other* cores' occupancy.
//!
//! The electrical grounding comes from [`crate::interconnect`]: a snoop
//! net spans every die on the module, so its fanout (and hence RC load)
//! grows with core count — [`snoop_net`] exposes that net so experiment
//! code can sanity-check that the configured per-transaction cycle cost
//! is achievable at the paper's 4 ns cycle.

use crate::interconnect::Net;

/// A point-to-multipoint MCM snoop net visiting `cores` dies plus the
/// shared L2 controller. Used to sanity-check snoop cycle budgets, not
/// for per-transaction timing (the simulator charges whole cycles).
pub fn snoop_net(cores: u32) -> Net {
    // ~12 mm of substrate per die visited on a serpentine broadcast net.
    Net::mcm(12.0 * (cores + 1) as f64, cores + 1)
}

/// Result of one bus acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// Cycles the requester stalled waiting for other cores' traffic.
    pub wait: u64,
    /// Absolute cycle at which the transaction completes and the bus
    /// frees.
    pub done_at: u64,
}

/// The shared snoop/invalidation bus: one transaction at a time, each
/// occupying a fixed number of cycles.
///
/// Cores run on private timing clocks that are not mutually monotonic,
/// so the busy horizon is compared with `saturating_sub` (the same
/// convention as `MemorySystem::service_miss`). A requester is never
/// charged for *its own* previous occupancy — its private clock already
/// serialized that — so a single-core configuration that never shares a
/// line sees zero transactions and zero waits by construction.
#[derive(Debug, Clone)]
pub struct SnoopBus {
    cycles_per_txn: u32,
    busy_until: u64,
    owner: Option<u32>,
    transactions: u64,
    wait_cycles: u64,
    busy_cycles: u64,
}

impl SnoopBus {
    /// Creates a bus whose transactions each occupy `cycles_per_txn`
    /// bus cycles.
    pub fn new(cycles_per_txn: u32) -> Self {
        SnoopBus {
            cycles_per_txn,
            busy_until: 0,
            owner: None,
            transactions: 0,
            wait_cycles: 0,
            busy_cycles: 0,
        }
    }

    /// Acquires the bus for one transaction issued by `core` at absolute
    /// cycle `now`, returning the stall charged to the requester.
    pub fn transact(&mut self, core: u32, now: u64) -> BusGrant {
        let wait = if self.owner == Some(core) {
            0
        } else {
            self.busy_until.saturating_sub(now)
        };
        let start = now + wait;
        let done_at = start + self.cycles_per_txn as u64;
        self.busy_until = done_at;
        self.owner = Some(core);
        self.transactions += 1;
        self.wait_cycles += wait;
        self.busy_cycles += self.cycles_per_txn as u64;
        BusGrant { wait, done_at }
    }

    /// Total transactions granted.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total cycles requesters spent waiting on other cores' traffic.
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }

    /// Total cycles the bus was occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_grants_immediately() {
        let mut bus = SnoopBus::new(3);
        let g = bus.transact(0, 100);
        assert_eq!(g.wait, 0);
        assert_eq!(g.done_at, 103);
        assert_eq!(bus.transactions(), 1);
        assert_eq!(bus.wait_cycles(), 0);
        assert_eq!(bus.busy_cycles(), 3);
    }

    #[test]
    fn contending_core_waits_for_other_traffic() {
        let mut bus = SnoopBus::new(3);
        bus.transact(0, 100); // occupies 100..103
        let g = bus.transact(1, 101);
        assert_eq!(g.wait, 2);
        assert_eq!(g.done_at, 106);
        assert_eq!(bus.wait_cycles(), 2);
    }

    #[test]
    fn own_occupancy_is_never_charged() {
        let mut bus = SnoopBus::new(5);
        bus.transact(0, 100); // occupies 100..105
                              // The same core re-requesting (its clock advanced less than the
                              // occupancy) is not charged for its own transaction.
        let g = bus.transact(0, 101);
        assert_eq!(g.wait, 0);
    }

    #[test]
    fn non_monotonic_clocks_are_safe() {
        let mut bus = SnoopBus::new(3);
        bus.transact(0, 1000); // occupies 1000..1003
                               // A core far behind in absolute time waits up to the horizon.
        let g = bus.transact(1, 10);
        assert_eq!(g.wait, 993);
        assert_eq!(g.done_at, 1006);
    }

    #[test]
    fn snoop_net_delay_grows_with_cores() {
        let two = snoop_net(2).delay_ns();
        let eight = snoop_net(8).delay_ns();
        assert!(eight > two);
        // An 8-core broadcast still fits a small number of 4 ns cycles.
        assert!(eight < 3.0 * 4.0, "8-core snoop net {eight:.2} ns");
    }
}
