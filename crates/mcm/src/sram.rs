//! SRAM access-time model anchored on the paper's parts (§2).
//!
//! Two anchor devices appear in the paper:
//!
//! * the L1 / L2-tag SRAM: **1 K × 32-bit, 3 ns** access;
//! * the L2 data SRAM: **8 K × 8-bit BiCMOS, 10 ns** access.
//!
//! Access time grows roughly logarithmically with capacity (decoder depth,
//! word/bit-line RC); we fit `t = t0 + k·log2(bits / bits0)` through each
//! family's anchor with slopes typical of the era.

/// An SRAM family characterized by an anchor point and a log-capacity slope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramFamily {
    /// Anchor capacity in bits.
    pub anchor_bits: u64,
    /// Access time at the anchor capacity (ns).
    pub anchor_ns: f64,
    /// Added access time per doubling of capacity (ns).
    pub ns_per_doubling: f64,
}

impl SramFamily {
    /// The GaAs-compatible 1 K × 32 (32 Kb) 3 ns SRAM used for L1 and the
    /// L2 tags.
    pub fn fast_32kb() -> Self {
        SramFamily {
            anchor_bits: 32 * 1024,
            anchor_ns: 3.0,
            ns_per_doubling: 0.55,
        }
    }

    /// The 8 K × 8 (64 Kb) 10 ns BiCMOS SRAM used for the L2 data array.
    pub fn bicmos_64kb() -> Self {
        SramFamily {
            anchor_bits: 64 * 1024,
            anchor_ns: 10.0,
            ns_per_doubling: 1.2,
        }
    }

    /// Access time for a device of `bits` capacity in this family (ns).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn access_ns(&self, bits: u64) -> f64 {
        assert!(bits > 0, "capacity must be positive");
        let doublings = (bits as f64 / self.anchor_bits as f64).log2();
        (self.anchor_ns + self.ns_per_doubling * doublings).max(0.5)
    }

    /// Number of anchor-sized chips needed to hold `words` 32-bit words.
    pub fn chips_for(&self, words: u64) -> u64 {
        let bits = words * 32;
        bits.div_ceil(self.anchor_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper_parts() {
        assert!((SramFamily::fast_32kb().access_ns(32 * 1024) - 3.0).abs() < 1e-12);
        assert!((SramFamily::bicmos_64kb().access_ns(64 * 1024) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn access_grows_with_capacity() {
        let f = SramFamily::fast_32kb();
        assert!(f.access_ns(64 * 1024) > f.access_ns(32 * 1024));
        assert!(f.access_ns(16 * 1024) < f.access_ns(32 * 1024));
    }

    #[test]
    fn access_never_below_floor() {
        let f = SramFamily::fast_32kb();
        assert!(f.access_ns(1) >= 0.5);
    }

    #[test]
    fn chips_for_l1_cache() {
        // A 4 KW (16 KB = 128 Kb) L1 needs four 1Kx32 chips.
        assert_eq!(SramFamily::fast_32kb().chips_for(4096), 4);
        // 8 KW needs eight (the paper: "4 more for memory" over the 4 KW
        // cache's four, plus tag chips).
        assert_eq!(SramFamily::fast_32kb().chips_for(8192), 8);
    }

    #[test]
    fn chips_round_up() {
        assert_eq!(SramFamily::fast_32kb().chips_for(1), 1);
        assert_eq!(SramFamily::fast_32kb().chips_for(1025), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_bits_rejected() {
        let _ = SramFamily::fast_32kb().access_ns(0);
    }
}
