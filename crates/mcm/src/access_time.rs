//! L1 access time as a function of cache size and organization (§2, §5).
//!
//! "Increasing primary cache size increases its area on the MCM and,
//! consequently, inter-chip propagation delays. Furthermore, larger caches
//! result in more loading for driver circuits. Both of these facts cause
//! primary caches to have an access time that grows markedly with size."
//!
//! The model composes an address-distribution net (CPU → SRAM bank, fanout
//! = chip count), the (constant, per-chip) SRAM access, and a data-return
//! net, plus the tag-compare path. It reproduces the §5 conclusions:
//!
//! * a 4 KW cache (four 1 K × 32 chips) fits the just-under-4 ns cycle;
//! * an 8 KW virtually-tagged L1-I (4 more data chips + 2 tag chips, plus
//!   address translation in series) exceeds the cycle and nullifies its
//!   miss-ratio advantage;
//! * a set-associative L1-D forces the tags off the MMU chip, and the
//!   serialized tag access + compare "almost doubles system cycle time";
//! * interconnect contributes up to ~50 % of access time for large caches.

use crate::interconnect::Net;
use crate::sram::SramFamily;

/// Fixed tag-comparison time inside the MMU (ns).
pub const COMPARE_NS: f64 = 0.30;

/// Extra serial delay when tags are *virtual* and translation must complete
/// before the physical tag compare (the 8 KW L1-I case, §5).
pub const VIRTUAL_TAG_NS: f64 = 0.50;

/// Where the cache tags live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagPlacement {
    /// Physical tags inside the MMU chip, checked in parallel with the
    /// SRAM data access (the base architecture).
    OnMmu,
    /// Virtual tags in dedicated SRAM chips on the MCM (needed when the
    /// cache exceeds the page size): adds tag chips and a translation step.
    VirtualOnMcm,
    /// Off-MMU physical tags accessed *before* the data (the
    /// set-associative L1-D case): tag SRAM access serializes with compare.
    SerializedOffMmu,
}

/// Breakdown of a primary-cache access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L1Access {
    /// SRAM-array component (ns).
    pub sram_ns: f64,
    /// Interconnect (flight + drive, both directions) component (ns).
    pub interconnect_ns: f64,
    /// Tag path (compare, translation, serialized tag SRAM) component (ns).
    pub tag_ns: f64,
    /// Number of 1 K × 32 SRAM chips on the MCM for this cache.
    pub chips: u64,
}

impl L1Access {
    /// Total access time (ns).
    pub fn total_ns(&self) -> f64 {
        self.sram_ns + self.interconnect_ns + self.tag_ns
    }

    /// Fraction of the access spent in interconnect.
    pub fn interconnect_fraction(&self) -> f64 {
        self.interconnect_ns / self.total_ns()
    }
}

/// Models the access time of a primary cache of `size_words` with the given
/// tag placement.
///
/// # Panics
///
/// Panics if `size_words` is zero.
pub fn l1_access(size_words: u64, tags: TagPlacement) -> L1Access {
    assert!(size_words > 0, "cache size must be positive");
    let fast = SramFamily::fast_32kb();
    let data_chips = fast.chips_for(size_words);
    let tag_chips = match tags {
        TagPlacement::OnMmu => 0,
        // Two 1Kx32 chips of virtual tags (the paper's 8 KW I-cache: "4
        // more for memory and 2 more for virtual tags").
        TagPlacement::VirtualOnMcm => (data_chips / 4).max(2),
        TagPlacement::SerializedOffMmu => (data_chips / 4).max(1),
    };
    let chips = data_chips + tag_chips;

    // Bank span grows with the square root of the occupied MCM area.
    let length_mm = 10.0 + 3.0 * (chips as f64).sqrt();
    let addr_net = Net::mcm(length_mm, chips as u32);
    let data_net = Net::mcm(length_mm, 2);
    let interconnect_ns = addr_net.delay_ns() + data_net.delay_ns();

    let sram_ns = fast.access_ns(fast.anchor_bits);
    let tag_ns = match tags {
        TagPlacement::OnMmu => COMPARE_NS, // checked in parallel with data
        TagPlacement::VirtualOnMcm => COMPARE_NS + VIRTUAL_TAG_NS,
        // Tag SRAM read completes before the compare can begin.
        TagPlacement::SerializedOffMmu => sram_ns + COMPARE_NS,
    };

    L1Access {
        sram_ns,
        interconnect_ns,
        tag_ns,
        chips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_time::CPU_CYCLE_NS;

    #[test]
    fn base_4kw_fits_the_cycle() {
        let a = l1_access(4096, TagPlacement::OnMmu);
        assert_eq!(a.chips, 4);
        assert!(
            a.total_ns() <= CPU_CYCLE_NS,
            "4 KW access {:.2} ns",
            a.total_ns()
        );
    }

    #[test]
    fn virtually_tagged_8kw_exceeds_the_cycle() {
        // §5: the larger I-cache's access time "nullifies the positive
        // effects of a lower miss ratio".
        let a = l1_access(8192, TagPlacement::VirtualOnMcm);
        assert!(
            a.chips >= 10,
            "8 data chips + ≥2 tag chips, got {}",
            a.chips
        );
        assert!(
            a.total_ns() > CPU_CYCLE_NS,
            "8 KW access {:.2} ns",
            a.total_ns()
        );
    }

    #[test]
    fn serialized_tags_almost_double_cycle_time() {
        // §5: a set-associative L1-D forces tags off the MMU; the serial
        // tag access + compare "almost doubles system cycle time".
        let a = l1_access(4096, TagPlacement::SerializedOffMmu);
        assert!(
            a.total_ns() > 1.6 * CPU_CYCLE_NS,
            "serialized access {:.2} ns vs cycle {CPU_CYCLE_NS}",
            a.total_ns()
        );
    }

    #[test]
    fn interconnect_reaches_half_for_large_caches() {
        // §2: interconnect "can contribute as much as 50% to the overall
        // access time".
        let a = l1_access(65536, TagPlacement::OnMmu);
        assert!(
            a.interconnect_fraction() > 0.45,
            "fraction {:.2}",
            a.interconnect_fraction()
        );
    }

    #[test]
    fn access_time_monotone_in_size() {
        let mut prev = 0.0;
        for size in [1024u64, 2048, 4096, 8192, 16384, 32768] {
            let t = l1_access(size, TagPlacement::OnMmu).total_ns();
            assert!(t >= prev, "size {size}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let a = l1_access(4096, TagPlacement::OnMmu);
        assert!((a.total_ns() - (a.sram_ns + a.interconnect_ns + a.tag_ns)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cache size must be positive")]
    fn zero_size_rejected() {
        let _ = l1_access(0, TagPlacement::OnMmu);
    }
}
