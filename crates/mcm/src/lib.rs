//! # gaas-mcm
//!
//! First-order MCM / GaAs technology timing model for the reproduction of
//! *"Implementing a Cache for a High-Performance GaAs Microprocessor"*
//! (Olukotun, Mudge, Brown — ISCA 1991).
//!
//! The paper's architecture study leans on circuit-level facts established
//! with proprietary Vitesse HGaAs III models: a just-under-4 ns CPU cycle,
//! L1 access time that grows markedly with cache size (interconnect and
//! loading contributing up to ~50 %), and the infeasibility of L1 caches
//! beyond 4 KW. This crate reproduces those *conclusions* from first-order
//! physics so the architecture experiments (notably the §5 primary-cache
//! size study) can cite a model instead of magic constants:
//!
//! * [`interconnect`] — time-of-flight + RC driver/loading delays for MCM
//!   and PCB nets;
//! * [`sram`] — access time vs. capacity anchored on the paper's 3 ns
//!   1 K × 32 and 10 ns 8 K × 8 parts;
//! * [`access_time`] — the L1 access-time-vs-size/organization curve;
//! * [`cycle_time`] — system cycle derivation and ns→cycle conversion;
//! * [`budget`] — MCM die-area/pin budgets for the Fig. 1 and Fig. 11
//!   substrate populations;
//! * [`snoop`] — shared snoop/invalidation bus occupancy timing for the
//!   CMP configurations (per-core L1s over the shared L2).
//!
//! ## Example
//!
//! ```
//! use gaas_mcm::access_time::{l1_access, TagPlacement};
//! use gaas_mcm::cycle_time::{cycle_stretch, CPU_CYCLE_NS};
//!
//! // The base 4 KW L1 fits the 4 ns cycle...
//! let base = l1_access(4096, TagPlacement::OnMmu);
//! assert!(base.total_ns() <= CPU_CYCLE_NS);
//!
//! // ...but a virtually-tagged 8 KW L1-I would stretch every cycle.
//! let big = l1_access(8192, TagPlacement::VirtualOnMcm);
//! assert!(cycle_stretch(&big) > 1.0);
//! ```

pub mod access_time;
pub mod budget;
pub mod cycle_time;
pub mod interconnect;
pub mod snoop;
pub mod sram;

pub use access_time::{l1_access, L1Access, TagPlacement};
pub use budget::{Component, McmBudget};
pub use cycle_time::{cycle_stretch, cycles, system_cycle_ns, CPU_CYCLE_NS, CPU_MHZ};
pub use interconnect::{Net, Substrate};
pub use snoop::{snoop_net, BusGrant, SnoopBus};
pub use sram::SramFamily;
