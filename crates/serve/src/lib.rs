//! Sweep-as-a-service: a fault-tolerant campaign daemon.
//!
//! `gaas-serve` wraps the campaign engine
//! ([`gaas_experiments::campaign`]) in a long-lived service: clients
//! submit sweep requests (JSON specs over a local TCP socket, one line
//! per message), the daemon runs them on the worker pool, and results
//! are durable table artifacts addressed by job handle.
//!
//! The crate splits into four layers:
//!
//! - [`spec`] — the strict wire format of a sweep request.
//! - [`jobs`] — the durable jobs journal (`GAASSRV1`) that makes
//!   admission acknowledgements and terminal outcomes crash-safe.
//! - [`engine`] — [`engine::ServerCore`]: bounded admission with
//!   backpressure, the supervised executor, per-request deadlines,
//!   cooperative cancellation, crash recovery, and the degradation
//!   ladder (shed cache, then admission, then work — in that order).
//! - [`net`] — the line-JSON TCP front end and the one-shot client.
//!
//! Robustness posture is inherited from the rest of the repo: every
//! durable write is atomic and fsync-gated through
//! [`gaas_experiments::durability`], every journal uses checksummed
//! framing with per-record salvage, and the whole stack runs under the
//! storage-chaos shim — `serve_soak` kills the daemon mid-request and
//! requires byte-identical results or journaled failures, never silence.

pub mod engine;
pub mod jobs;
pub mod net;
pub mod spec;
