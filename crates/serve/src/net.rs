//! The line-JSON TCP front end.
//!
//! One request per line, one response per line, loopback only. The
//! server binds `127.0.0.1` (an OS-assigned port by default), commits
//! the bound address atomically to `<dir>/serve.addr` so clients can
//! discover it, and serves each connection on its own thread. The
//! accept loop polls at ~50 ms so shutdown (API call, SIGINT/SIGTERM
//! via [`gaas_experiments::interrupt`]) is observed promptly.
//!
//! ## Protocol
//!
//! Requests are JSON objects with an `"op"` field:
//!
//! | op | request fields | response |
//! |----|----------------|----------|
//! | `submit` | `spec` (a sweep spec object) | `{"ok":true,"job":"j0001","position":1}` or `{"ok":false,"error":"…","retry_after_ms":1200}` |
//! | `status` | `job` | `{"ok":true,"job":…,"state":"queued|running|done|failed|cancelled","detail":…,"cells":N}` |
//! | `result` | `job` | `{"ok":true,"table":"cell00 1.721340\n…"}` |
//! | `cancel` | `job` | `{"ok":true,"state":"cancelled"}` |
//! | `stats` | — | `{"ok":true,"accepted":…,"cache":{…},"copricing":{…}}` |
//! | `ping` | — | `{"ok":true}` |
//! | `shutdown` | — | `{"ok":true}`, then the daemon exits |
//!
//! `retry_after_ms` is present exactly when a refusal is retryable
//! backpressure; its absence means the request itself is invalid.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use gaas_experiments::json::{self, Json};
use gaas_experiments::{durability, interrupt};

use crate::engine::{JobInfo, ServerCore, StatsSnapshot, Submission};

/// Runs the accept loop until [`ServerCore`] shutdown is requested via
/// the `shutdown` op or a process interrupt. Returns once the listener
/// is drained; the caller still owns (and drops/shuts down) `core`.
///
/// # Errors
///
/// Propagates listener-bind and address-file I/O errors.
pub fn serve(core: &Arc<ServerCore>, dir: &Path, port: u16) -> std::io::Result<()> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let addr_file = dir.join("serve.addr");
    durability::retrying("serve.addr commit", || {
        durability::write_atomic(&addr_file, format!("{addr}\n").as_bytes())
    })?;
    eprintln!(
        "[gaas-serve] listening on {addr} (addr file: {})",
        addr_file.display()
    );
    let stop = Arc::new(AtomicBool::new(false));
    loop {
        if stop.load(Ordering::SeqCst) || interrupt::interrupted() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let core = Arc::clone(core);
                let stop = Arc::clone(&stop);
                // Connection threads are detached; a hung client cannot
                // wedge the accept loop, and the process exits via the
                // stop flag regardless.
                let _ = thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(stream, &core, &stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(50));
            }
            Err(_) => thread::sleep(Duration::from_millis(50)),
        }
    }
    let _ = std::fs::remove_file(&addr_file);
    Ok(())
}

fn handle_connection(stream: TcpStream, core: &ServerCore, stop: &AtomicBool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_request(line.trim(), core);
        let mut text = response.to_text();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Dispatches one request line to the core. Returns the response and
/// whether the daemon should stop accepting.
pub fn handle_request(line: &str, core: &ServerCore) -> (Json, bool) {
    let parsed = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                err_response(&format!("request is not valid JSON: {e}")),
                false,
            )
        }
    };
    let Some(op) = parsed.get("op").and_then(Json::as_str) else {
        return (
            err_response("request must carry a string 'op' field"),
            false,
        );
    };
    match op {
        "ping" => (ok_response(vec![]), false),
        "submit" => {
            let Some(spec) = parsed.get("spec") else {
                return (err_response("submit requires a 'spec' object"), false);
            };
            (submit_response(core.submit(&spec.to_text())), false)
        }
        "status" => match require_job(&parsed) {
            Err(resp) => (resp, false),
            Ok(job) => match core.status(job) {
                Some(info) => (job_response(&info), false),
                None => (err_response(&format!("unknown job '{job}'")), false),
            },
        },
        "result" => match require_job(&parsed) {
            Err(resp) => (resp, false),
            Ok(job) => match core.result(job) {
                Ok(bytes) => (
                    ok_response(vec![(
                        "table".into(),
                        Json::Str(String::from_utf8_lossy(&bytes).into_owned()),
                    )]),
                    false,
                ),
                Err(e) => (err_response(&e), false),
            },
        },
        "cancel" => match require_job(&parsed) {
            Err(resp) => (resp, false),
            Ok(job) => match core.cancel(job) {
                Ok(state) => (
                    ok_response(vec![("state".into(), Json::Str(state.to_string()))]),
                    false,
                ),
                Err(e) => (err_response(&e), false),
            },
        },
        "stats" => (stats_response(&core.stats()), false),
        "shutdown" => (ok_response(vec![]), true),
        other => (err_response(&format!("unknown op '{other}'")), false),
    }
}

fn require_job(req: &Json) -> Result<&str, Json> {
    req.get("job")
        .and_then(Json::as_str)
        .ok_or_else(|| err_response("request must carry a string 'job' field"))
}

fn ok_response(mut extra: Vec<(String, Json)>) -> Json {
    let mut fields = vec![("ok".to_string(), Json::Bool(true))];
    fields.append(&mut extra);
    Json::Obj(fields)
}

fn err_response(message: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(message.to_string())),
    ])
}

fn submit_response(sub: Submission) -> Json {
    match sub {
        Submission::Accepted { job, position } => ok_response(vec![
            ("job".into(), Json::Str(job)),
            ("position".into(), Json::Int(position as u64)),
        ]),
        Submission::Rejected {
            error,
            retry_after_ms,
        } => {
            let mut fields = vec![
                ("ok".to_string(), Json::Bool(false)),
                ("error".to_string(), Json::Str(error)),
            ];
            if let Some(ms) = retry_after_ms {
                fields.push(("retry_after_ms".into(), Json::Int(ms)));
            }
            Json::Obj(fields)
        }
    }
}

fn job_response(info: &JobInfo) -> Json {
    ok_response(vec![
        ("job".into(), Json::Str(info.id.clone())),
        ("name".into(), Json::Str(info.name.clone())),
        ("state".into(), Json::Str(info.state.name().to_string())),
        ("detail".into(), Json::Str(info.detail.clone())),
        ("cells".into(), Json::Int(info.cells as u64)),
    ])
}

fn stats_response(stats: &StatsSnapshot) -> Json {
    let mut fields = vec![
        ("accepted".to_string(), Json::Int(stats.accepted)),
        ("rejected_busy".to_string(), Json::Int(stats.rejected_busy)),
        (
            "rejected_invalid".to_string(),
            Json::Int(stats.rejected_invalid),
        ),
        ("completed".to_string(), Json::Int(stats.completed)),
        ("failed".to_string(), Json::Int(stats.failed)),
        ("cancelled".to_string(), Json::Int(stats.cancelled)),
        ("replayed".to_string(), Json::Int(stats.replayed)),
        (
            "worker_restarts".to_string(),
            Json::Int(stats.worker_restarts),
        ),
        (
            "telemetry_leaks".to_string(),
            Json::Int(stats.telemetry_leaks),
        ),
        ("queue_len".to_string(), Json::Int(stats.queue_len as u64)),
        ("avg_job_ms".to_string(), Json::Int(stats.avg_job_ms)),
    ];
    if let Some(cache) = &stats.cache {
        fields.push((
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Int(cache.stats.hits)),
                ("misses".into(), Json::Int(cache.stats.misses)),
                ("insertions".into(), Json::Int(cache.stats.insertions)),
                ("evictions".into(), Json::Int(cache.stats.evictions)),
                (
                    "oversize_rejects".into(),
                    Json::Int(cache.stats.oversize_rejects),
                ),
                ("entries".into(), Json::Int(cache.entries as u64)),
                ("bytes".into(), Json::Int(cache.bytes as u64)),
                ("budget_bytes".into(), Json::Int(cache.budget_bytes as u64)),
            ]),
        ));
    }
    fields.push((
        "copricing".into(),
        Json::Obj(vec![
            (
                "copriced_groups".into(),
                Json::Int(stats.memo.copriced_groups),
            ),
            (
                "copriced_lanes".into(),
                Json::Int(stats.memo.copriced_lanes),
            ),
            (
                "replay_passes_saved".into(),
                Json::Int(stats.memo.replay_passes_saved),
            ),
            (
                "copricer_fallbacks".into(),
                Json::Int(stats.memo.copricer_fallbacks),
            ),
        ]),
    ));
    fields.push((
        "coherence".into(),
        Json::Obj(vec![
            ("runs".into(), Json::Int(stats.coherence.runs)),
            (
                "invalidations".into(),
                Json::Int(stats.coherence.invalidations),
            ),
            (
                "c2c_transfers".into(),
                Json::Int(stats.coherence.c2c_transfers),
            ),
            (
                "upgrade_misses".into(),
                Json::Int(stats.coherence.upgrade_misses),
            ),
            (
                "coherence_stall_cycles".into(),
                Json::Int(stats.coherence.coherence_stall_cycles),
            ),
            (
                "snoop_transactions".into(),
                Json::Int(stats.coherence.snoop_transactions),
            ),
            (
                "snoop_wait_cycles".into(),
                Json::Int(stats.coherence.snoop_wait_cycles),
            ),
        ]),
    ));
    ok_response(fields)
}

/// One-shot client: connect to `addr`, send `request` as one line, read
/// one response line back.
///
/// # Errors
///
/// Propagates connect/write/read errors as human-readable strings.
pub fn client_roundtrip(addr: &str, request: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    writer
        .write_all(format!("{}\n", request.trim()).as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("receive: {e}"))?;
    Ok(line.trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_requests_get_structured_errors() {
        // handle_request's error paths need no live core; exercise the
        // pre-dispatch validation with a dangling reference is not
        // possible, so spin a minimal core in a temp dir.
        let dir = std::env::temp_dir().join(format!("gaas-serve-net-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let prev = durability::set_durable_sync(false);
        let core = ServerCore::open(crate::engine::ServeConfig {
            start_paused: true,
            ..crate::engine::ServeConfig::new(&dir)
        })
        .expect("open core");
        let (resp, stop) = handle_request("not json", &core);
        assert!(!stop);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        let (resp, _) = handle_request(r#"{"op":"status"}"#, &core);
        assert!(resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("job"));
        let (resp, _) = handle_request(r#"{"op":"warp"}"#, &core);
        assert!(resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown op"));
        let (_, stop) = handle_request(r#"{"op":"shutdown"}"#, &core);
        assert!(stop);
        core.shutdown();
        durability::set_durable_sync(prev);
    }
}
