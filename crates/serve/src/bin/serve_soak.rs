//! `serve_soak` — seeded kill/recover soak of the sweep service.
//!
//! ```text
//! serve_soak [SEED]    (default seed 1)
//! ```
//!
//! Three phases, each an acceptance criterion of the service's
//! robustness contract:
//!
//! 1. **Backpressure.** A paused core with a 2-slot queue must reject
//!    the third submit with `retry_after_ms` guidance (bounded memory,
//!    no hang), reject an invalid spec permanently (no retry hint),
//!    absorb an injected executor panic as a journaled `failed` job
//!    while the next job still completes, and report zero cross-job
//!    telemetry leaks.
//! 2. **Degradation.** With a generous cache budget, two jobs sharing
//!    functional geometry must produce cross-request memo hits; with a
//!    budget smaller than one profile, the cache must shed (oversize
//!    rejects — the first rung of the degradation ladder) while every
//!    table stays byte-identical to the reference.
//! 3. **Kill/recover.** Under the seeded storage-chaos schedule —
//!    simulated daemon crashes, torn writes, bit flips, failed renames,
//!    failed fsyncs, short reads — every session reopens the service
//!    over the survived journals and recovery re-enqueues in-flight
//!    jobs. PASS requires every accepted job to end **byte-identical**
//!    to its undisturbed reference table or terminally `failed` with a
//!    journaled reason — never silent loss, never a corrupt artifact.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gaas_experiments::campaign::{self, CellOptions, CellResult};
use gaas_experiments::chaos::{self, ChaosConfig};
use gaas_experiments::profile_cache;
use gaas_serve::engine::{JobState, ServeConfig, ServerCore, Submission};
use gaas_serve::jobs::{JobEvent, JobsLog};
use gaas_serve::spec;
use gaas_sim::config_fingerprint;
use gaas_trace::rng::SmallRng;

const SCALE: f64 = 5e-5;
const MIN_EVENTS: u64 = 20;
const MAX_SESSIONS: u64 = 200;
const IDLE_WAIT: Duration = Duration::from_secs(120);

/// The two sweep specs of the soak. They share functional geometry
/// (cells differ only in the L2 access-time knob), so the second job's
/// cells hit the cross-request profile cache; `alpha` also carries one
/// write-only cell the harness poisons (its worker panics every
/// attempt), exercising the FAILED-row path end to end.
fn specs() -> Vec<(&'static str, String)> {
    vec![
        (
            "alpha",
            format!(
                r#"{{"name":"alpha","scale":{SCALE},
                    "cells":[{{"l2_access":2}},{{"l2_access":4}},{{"l2_access":6}},
                             {{"policy":"write_only","l2_drain_access":8}}]}}"#
            ),
        ),
        (
            "beta",
            format!(
                r#"{{"name":"beta","scale":{SCALE},
                    "cells":[{{"l2_access":3}},{{"l2_access":5}},{{"l2_access":7}}]}}"#
            ),
        ),
    ]
}

/// A one-cell churn job (same functional geometry as the main specs).
/// Phase 3 keeps submitting these while the fault quota is unmet, so
/// the daemon is always doing journaled work when the chaos schedule
/// rolls — an idle daemon would starve the soak of injection points.
fn churn_spec(n: u64) -> String {
    format!(r#"{{"name":"churn{n}","scale":{SCALE},"cells":[{{"l2_access":9}}]}}"#)
}

/// Renders a reference table the exact way the engine does.
fn render(results: &[CellResult]) -> String {
    results
        .iter()
        .enumerate()
        .map(|(i, r)| match r {
            CellResult::Done(res) => format!("cell{i:02} {:.6}\n", res.cpi()),
            CellResult::Failed { .. } => format!("cell{i:02} FAILED\n"),
        })
        .collect()
}

/// Silences the expected poison panics and the injected supervisor
/// panic; everything else keeps the default report.
fn quiet_expected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        if !msg.contains(chaos::POISON_PANIC) && !msg.contains("injected executor panic") {
            default_hook(info);
        }
    }));
}

/// Polls until the core is idle (every job terminal) or a simulated
/// crash killed the session; panics after `IDLE_WAIT` of no progress.
fn wait_idle(core: &ServerCore) -> bool {
    let t0 = Instant::now();
    loop {
        if core.idle() {
            return true;
        }
        if chaos::crashed() {
            return false;
        }
        assert!(
            t0.elapsed() < IDLE_WAIT,
            "service did not drain within {IDLE_WAIT:?} — backpressure must never hang"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn expect_accept(sub: Submission, what: &str) -> String {
    match sub {
        Submission::Accepted { job, .. } => job,
        Submission::Rejected { error, .. } => panic!("{what} was rejected: {error}"),
    }
}

/// Phase 1: admission control and supervision, no storage faults.
fn phase_backpressure(dir: &std::path::Path) {
    println!("serve_soak: phase 1 — backpressure + supervision");
    let tiny = format!(r#"{{"name":"bp","scale":{SCALE},"cells":[{{}}]}}"#);
    let core = ServerCore::open(ServeConfig {
        queue_cap: 2,
        start_paused: true,
        ..ServeConfig::new(dir.join("bp"))
    })
    .expect("open bp core");
    let j1 = expect_accept(core.submit(&tiny), "first submit");
    let _j2 = expect_accept(core.submit(&tiny), "second submit");
    match core.submit(&tiny) {
        Submission::Rejected {
            error,
            retry_after_ms: Some(ms),
        } => {
            assert!(error.contains("queue full"), "wrong refusal: {error}");
            assert!(
                (250..=60_000).contains(&ms),
                "retry-after out of range: {ms}"
            );
        }
        other => panic!("third submit must hit backpressure, got {other:?}"),
    }
    match core.submit(r#"{"scale":0.1,"cells":[{"l2_szie":1}]}"#) {
        Submission::Rejected {
            retry_after_ms: None,
            ..
        } => {}
        other => panic!("an invalid spec must be a permanent refusal, got {other:?}"),
    }
    // Arm the supervisor seam: the first job panics inside the executor;
    // the service must journal it failed and keep serving.
    core.inject_worker_panics(1);
    core.resume();
    assert!(wait_idle(&core), "bp core must drain");
    let s1 = core.status(&j1).expect("j1 known");
    assert_eq!(s1.state, JobState::Failed, "panicked job must end failed");
    assert!(
        s1.detail.contains("worker panicked"),
        "failure reason must name the panic: {}",
        s1.detail
    );
    let j4 = expect_accept(core.submit(&tiny), "post-restart submit");
    assert!(wait_idle(&core), "bp core must drain again");
    assert_eq!(core.status(&j4).expect("j4 known").state, JobState::Done);
    let stats = core.stats();
    assert_eq!(stats.worker_restarts, 1, "exactly one supervised restart");
    assert_eq!(stats.rejected_busy, 1);
    assert_eq!(stats.rejected_invalid, 1);
    assert_eq!(
        stats.telemetry_leaks, 0,
        "cross-job telemetry must not leak"
    );
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 1);
    core.shutdown();
    println!("serve_soak: phase 1 OK (1 restart absorbed, retry-after delivered)");
}

/// Phase 2: the degradation ladder's first rung, no storage faults.
fn phase_degradation(dir: &std::path::Path, reference: &HashMap<String, String>) {
    println!("serve_soak: phase 2 — memo-cache degradation");
    // Generous budget: beta's cells must hit alpha's cached profile.
    let core = ServerCore::open(ServeConfig {
        cache_budget_bytes: 64 << 20,
        ..ServeConfig::new(dir.join("cache-big"))
    })
    .expect("open big-cache core");
    let mut ids = Vec::new();
    for (name, text) in specs() {
        ids.push((name, expect_accept(core.submit(&text), name)));
    }
    assert!(wait_idle(&core), "big-cache core must drain");
    let stats = core.stats();
    let big_cache = stats.cache.expect("cache enabled");
    assert!(
        big_cache.stats.hits > 0,
        "overlapping geometry must produce cross-request memo hits: {:?}",
        big_cache.stats
    );
    for (name, id) in &ids {
        let table = core.result(id).expect("table");
        assert_eq!(
            String::from_utf8_lossy(&table),
            reference[*name].as_str(),
            "{name} (cached) must match the reference"
        );
    }
    assert_eq!(core.stats().telemetry_leaks, 0);
    core.shutdown();

    // Starvation budget: smaller than any one profile, so every insert
    // is an oversize reject — the service sheds its cache and every run
    // degrades to the unmemoized path with identical results.
    let core = ServerCore::open(ServeConfig {
        cache_budget_bytes: 512,
        ..ServeConfig::new(dir.join("cache-tiny"))
    })
    .expect("open tiny-cache core");
    let mut ids = Vec::new();
    for (name, text) in specs() {
        ids.push((name, expect_accept(core.submit(&text), name)));
    }
    assert!(wait_idle(&core), "tiny-cache core must drain");
    let stats = core.stats();
    let cache = stats.cache.expect("cache enabled");
    assert!(
        cache.stats.oversize_rejects > 0,
        "a starvation budget must shed profiles: {:?}",
        cache.stats
    );
    assert_eq!(cache.stats.hits, 0, "nothing fits, so nothing can hit");
    for (name, id) in &ids {
        let table = core.result(id).expect("table");
        assert_eq!(
            String::from_utf8_lossy(&table),
            reference[*name].as_str(),
            "{name} (degraded) must match the reference"
        );
    }
    core.shutdown();
    println!(
        "serve_soak: phase 2 OK ({} hits with budget, {} oversize rejects without)",
        big_cache.stats.hits, cache.stats.oversize_rejects
    );
}

/// Phase 3: the kill/recover gauntlet.
fn phase_chaos(dir: &std::path::Path, seed: u64, reference: &HashMap<String, String>) {
    println!("serve_soak: phase 3 — kill/recover under chaos (seed {seed})");
    let chaos_dir = dir.join("chaos");
    std::fs::create_dir_all(&chaos_dir).expect("chaos dir");
    chaos::install(ChaosConfig {
        seed,
        fail_rename_pct: 15,
        fail_fsync_pct: 5,
        bit_flip_pct: 8,
        short_read_pct: 5,
        defer_append_pct: 0,
        crash_after_ops: None,
        scope: Some(chaos_dir.clone()),
    });
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut sessions = 0u64;
    let mut recovered_sessions = 0u64;
    let mut churn = 0u64;
    loop {
        sessions += 1;
        assert!(
            sessions <= MAX_SESSIONS,
            "soak did not converge in {MAX_SESSIONS} sessions"
        );
        let budget = rng.gen_range(6u64..20);
        chaos::clear_crash(Some(budget));
        let mut drained = false;
        match ServerCore::open(ServeConfig {
            cell_timeout: Duration::from_secs(60),
            ..ServeConfig::new(&chaos_dir)
        }) {
            Ok(core) => {
                if core.stats().replayed > 0 {
                    recovered_sessions += 1;
                }
                // Self-healing admission: any spec with no live job (its
                // accepted record crashed out, or a read-path flip hid it
                // this session) is resubmitted — a real client retries an
                // unacknowledged submit the same way.
                let present: Vec<String> = core.jobs().into_iter().map(|j| j.name).collect();
                for (name, text) in specs() {
                    if !present.iter().any(|n| n == name) {
                        let _ = core.submit(&text);
                    }
                }
                if chaos::faults().total() < MIN_EVENTS {
                    churn += 1;
                    let _ = core.submit(&churn_spec(churn));
                }
                drained = wait_idle(&core);
                core.shutdown();
            }
            // The scheduled crash landed inside open's journal read.
            Err(e) => eprintln!("serve_soak: session {sessions}: open failed: {e}"),
        }
        let events = chaos::faults().total();
        println!(
            "serve_soak: session {sessions}: crash budget {budget} ops, \
             {events} cumulative events"
        );
        if events >= MIN_EVENTS && !chaos::crashed() && drained {
            break;
        }
    }
    let counts = chaos::uninstall();
    assert!(
        counts.total() >= MIN_EVENTS,
        "only {} events injected",
        counts.total()
    );
    assert!(counts.crashes >= 1, "no crash was ever delivered");
    assert!(
        recovered_sessions >= 1,
        "no session ever recovered in-flight jobs from the journal"
    );

    // Final clean session: recovery replays anything still in flight and
    // runs it undisturbed; then every job must satisfy the contract —
    // byte-identical table, or journaled terminal failure.
    let core = ServerCore::open(ServeConfig::new(&chaos_dir)).expect("final open");
    assert!(wait_idle(&core), "final session must drain");
    let jobs = core.jobs();
    assert!(!jobs.is_empty(), "at least the two specs must have jobs");
    let (_, replay) = JobsLog::open(chaos_dir.join("jobs.journal")).expect("inspect journal");
    let expected = |name: &str| -> &str {
        if name.starts_with("churn") {
            reference["churn"].as_str()
        } else {
            reference[name].as_str()
        }
    };
    let mut done = 0u64;
    let mut failed = 0u64;
    for job in &jobs {
        match job.state {
            JobState::Done => {
                let table = core.result(&job.id).expect("committed table");
                assert_eq!(
                    String::from_utf8_lossy(&table),
                    expected(&job.name),
                    "job {} ({}) must be byte-identical to the undisturbed reference",
                    job.id,
                    job.name
                );
                done += 1;
            }
            JobState::Failed => {
                // The failure must be journaled with its reason, not
                // just held in memory.
                let journaled = replay.records.iter().any(|r| {
                    r.job == job.id
                        && matches!(&r.event, JobEvent::Failed { reason } if !reason.is_empty())
                });
                assert!(
                    journaled,
                    "job {} failed without a journaled reason",
                    job.id
                );
                failed += 1;
            }
            other => panic!("job {} ended non-terminal: {other:?}", job.id),
        }
    }
    assert!(
        done >= 1,
        "at least one job must complete despite the chaos"
    );
    for (name, _) in specs() {
        assert!(
            jobs.iter()
                .any(|j| j.name == name && j.state == JobState::Done),
            "spec '{name}' never completed byte-identically"
        );
    }
    assert_eq!(core.stats().telemetry_leaks, 0);
    core.shutdown();
    println!(
        "serve_soak: phase 3 OK — {sessions} sessions ({recovered_sessions} recovered), \
         {} jobs done, {failed} journaled failures; {} crashes, {} torn writes, \
         {} bit flips, {} failed renames, {} failed fsyncs, {} short reads",
        done,
        counts.crashes,
        counts.torn_writes,
        counts.bit_flips,
        counts.failed_renames,
        counts.fsync_failures,
        counts.short_reads
    );
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("SEED must be a u64"))
        .unwrap_or(1);
    quiet_expected_panics();

    let dir = std::env::temp_dir().join(format!("gaas-serve-soak-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("soak dir");

    // Poison alpha's write-only cell in every phase: the reference and
    // every service run must fail it identically (FAILED row).
    let alpha = spec::parse(&specs()[0].1).expect("alpha parses");
    chaos::set_poison(vec![config_fingerprint(&alpha.cfgs[3])]);

    // Undisturbed references, straight through the campaign engine with
    // the cache off — the service must reproduce these bytes exactly.
    println!("serve_soak: seed {seed} — building reference tables");
    profile_cache::disable();
    let mut reference = HashMap::new();
    let mut ref_specs: Vec<(String, String)> = specs()
        .into_iter()
        .map(|(n, t)| (n.to_string(), t))
        .collect();
    // All churn jobs share one spec shape, so one reference covers them.
    ref_specs.push(("churn".to_string(), churn_spec(0)));
    for (name, text) in ref_specs {
        let parsed = spec::parse(&text).expect("spec parses");
        let journal = dir.join(format!("reference-{name}.journal"));
        campaign::activate(&journal, false, CellOptions::default()).expect("reference campaign");
        let table = render(&campaign::run_cells(&parsed.cfgs, parsed.scale));
        let _ = campaign::deactivate();
        reference.insert(name, table);
    }

    phase_backpressure(&dir);
    phase_degradation(&dir, &reference);
    phase_chaos(&dir, seed, &reference);

    println!("\nserve_soak: PASS (seed {seed})");
    let _ = std::fs::remove_dir_all(PathBuf::from(&dir));
}
