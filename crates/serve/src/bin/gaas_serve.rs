//! `gaas-serve` — the sweep-service daemon (and its one-shot client).
//!
//! Daemon mode (the default, also reachable as `repro serve …`):
//!
//! ```text
//! gaas-serve [--dir DIR] [--port N] [--queue-cap N] [--jobs N]
//!            [--cache-budget-mb N] [--cell-timeout-secs N]
//!            [--default-deadline-ms N]
//! ```
//!
//! Binds 127.0.0.1 (OS-assigned port unless `--port`), writes the bound
//! address to `DIR/serve.addr`, replays `DIR/jobs.journal`, and serves
//! until a `shutdown` op or SIGINT/SIGTERM. See [`gaas_serve::net`] for
//! the protocol.
//!
//! Client mode (used by CI's serve-smoke job):
//!
//! ```text
//! gaas-serve client ADDR JSON-REQUEST
//! ```
//!
//! sends one request line to `ADDR` (either `host:port` or a path to a
//! `serve.addr` file) and prints the one response line to stdout.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use gaas_experiments::{interrupt, pool};
use gaas_serve::engine::{ServeConfig, ServerCore};
use gaas_serve::net;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gaas-serve [--dir DIR] [--port N] [--queue-cap N] [--jobs N]\n\
         \x20                 [--cache-budget-mb N] [--cell-timeout-secs N]\n\
         \x20                 [--default-deadline-ms N]\n\
         \x20      gaas-serve client ADDR JSON-REQUEST"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "client") {
        return run_client(&args[1..]);
    }
    run_daemon(&args)
}

fn run_client(args: &[String]) -> ExitCode {
    let [addr, request] = args else {
        return usage();
    };
    // Accept a serve.addr file path in place of a literal address.
    let addr = match std::fs::read_to_string(addr) {
        Ok(text) => text.trim().to_string(),
        Err(_) => addr.clone(),
    };
    match net::client_roundtrip(&addr, request) {
        Ok(response) => {
            println!("{response}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gaas-serve client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_daemon(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig::new("serve-data");
    let mut port = 0u16;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("gaas-serve: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--dir" => match value("--dir") {
                Ok(v) => cfg.dir = v.into(),
                Err(code) => return code,
            },
            "--port" => match value("--port").map(|v| v.parse::<u16>()) {
                Ok(Ok(v)) => port = v,
                _ => return usage(),
            },
            "--queue-cap" => match value("--queue-cap").map(|v| v.parse::<usize>()) {
                Ok(Ok(v)) if v > 0 => cfg.queue_cap = v,
                _ => return usage(),
            },
            "--jobs" => match value("--jobs").map(|v| v.parse::<usize>()) {
                Ok(Ok(v)) if v > 0 => pool::set_jobs(v),
                _ => return usage(),
            },
            "--cache-budget-mb" => match value("--cache-budget-mb").map(|v| v.parse::<usize>()) {
                Ok(Ok(v)) => cfg.cache_budget_bytes = v << 20,
                _ => return usage(),
            },
            "--cell-timeout-secs" => match value("--cell-timeout-secs").map(|v| v.parse::<u64>()) {
                Ok(Ok(v)) if v > 0 => cfg.cell_timeout = Duration::from_secs(v),
                _ => return usage(),
            },
            "--default-deadline-ms" => {
                match value("--default-deadline-ms").map(|v| v.parse::<u64>()) {
                    Ok(Ok(v)) => cfg.default_deadline_ms = Some(v),
                    _ => return usage(),
                }
            }
            _ => return usage(),
        }
    }
    interrupt::install();
    let dir = cfg.dir.clone();
    let core = match ServerCore::open(cfg) {
        Ok(core) => Arc::new(core),
        Err(e) => {
            eprintln!("gaas-serve: cannot open service state: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = core.stats();
    if stats.replayed > 0 {
        eprintln!(
            "[gaas-serve] recovery: re-enqueued {} in-flight job(s) from the journal",
            stats.replayed
        );
    }
    let result = net::serve(&core, &dir, port);
    // Graceful stop: finish (or wind down) the in-flight job, flush
    // journals, then exit.
    eprintln!("[gaas-serve] shutting down (draining in-flight job)");
    core.shutdown();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gaas-serve: listener error: {e}");
            ExitCode::FAILURE
        }
    }
}
