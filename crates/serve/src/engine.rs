//! The sweep-service core: admission, execution, supervision, recovery.
//!
//! [`ServerCore`] owns a bounded admission queue, one supervised
//! executor thread, the durable jobs journal, and the degradation
//! knobs. The design follows a strict resource-pressure ladder
//! (DESIGN §13):
//!
//! 1. **Shed cache first.** The cross-request
//!    [`profile_cache`](gaas_experiments::profile_cache) holds a byte
//!    budget and evicts LRU profiles (or refuses oversize ones) before
//!    anything client-visible degrades — a cache miss costs wall-clock,
//!    never correctness.
//! 2. **Shed admission second.** The queue is a hard bound: a submit
//!    against a full queue is rejected with explicit `retry_after_ms`
//!    guidance (computed from the observed mean job time), never
//!    buffered into unbounded memory.
//! 3. **Shed work last.** A job that exceeds its deadline winds down
//!    cooperatively (the campaign skips not-yet-started groups and
//!    clamps running cells' timeouts) and is reported `failed` with a
//!    journaled reason — completed cells stay journaled, so a resubmit
//!    resumes rather than restarts.
//!
//! **Supervision**: the executor wraps every job in `catch_unwind`; a
//! panicking job is journaled `failed` and the executor keeps serving
//! (the restart counter is client-visible in `stats`). **Recovery**: on
//! open, the jobs journal is replayed — jobs accepted but not terminal
//! are re-enqueued in acceptance order and their per-job cell journals
//! turn the re-run into a resume. Every artifact commit is atomic, so a
//! crash can cost recomputation, never a half-written table.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use gaas_experiments::campaign::{self, CellOptions, CellResult};
use gaas_experiments::{chaos, durability, pool, profile_cache};
use gaas_telemetry::Registry;

use crate::jobs::{JobEvent, JobRecord, JobsLog};
use crate::spec::{self, SweepSpec};

/// Server configuration (every knob has a serving-friendly default).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory for the jobs journal, per-job cell journals, and table
    /// artifacts.
    pub dir: PathBuf,
    /// Maximum queued (not yet running) jobs before submits are
    /// rejected with backpressure.
    pub queue_cap: usize,
    /// Byte budget of the cross-request profile cache (0 disables it).
    pub cache_budget_bytes: usize,
    /// Per-cell wall-clock budget inside a job.
    pub cell_timeout: Duration,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Start with the executor paused (tests and the soak use this to
    /// fill the queue deterministically before any job runs).
    pub start_paused: bool,
}

impl ServeConfig {
    /// Defaults rooted at `dir`: queue of 16, 64 MB cache, 10-minute
    /// cells, no default deadline, running (not paused).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            dir: dir.into(),
            queue_cap: 16,
            cache_budget_bytes: 64 << 20,
            cell_timeout: Duration::from_secs(600),
            default_deadline_ms: None,
            start_paused: false,
        }
    }
}

/// Lifecycle state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the queue.
    Queued,
    /// Currently executing on the worker pool.
    Running,
    /// Completed; the table artifact is committed.
    Done,
    /// Terminal failure; `detail` carries the journaled reason.
    Failed,
    /// Cancelled by request; `detail` carries the trigger.
    Cancelled,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True once no further transitions can happen.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Client-visible snapshot of one job.
#[derive(Debug, Clone)]
pub struct JobInfo {
    /// Job id (`j0001`, …).
    pub id: String,
    /// Client-chosen spec name.
    pub name: String,
    /// Current state.
    pub state: JobState,
    /// Failure/cancellation reason ("" otherwise).
    pub detail: String,
    /// Cells in the job.
    pub cells: usize,
}

/// Outcome of a submit.
#[derive(Debug, Clone)]
pub enum Submission {
    /// Admitted: the job id and its 1-based queue position.
    Accepted {
        /// Assigned job id.
        job: String,
        /// 1-based position in the admission queue.
        position: usize,
    },
    /// Refused. `retry_after_ms` is present exactly when the refusal is
    /// backpressure (queue full) — retry later; a spec error is
    /// permanent and retrying the same bytes will never succeed.
    Rejected {
        /// Human-readable refusal.
        error: String,
        /// Backoff guidance for backpressure refusals.
        retry_after_ms: Option<u64>,
    },
}

/// Counters exposed by the `stats` op.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Jobs admitted (including replayed ones).
    pub accepted: u64,
    /// Submits refused by backpressure.
    pub rejected_busy: u64,
    /// Submits refused by spec validation.
    pub rejected_invalid: u64,
    /// Jobs finished `done`.
    pub completed: u64,
    /// Jobs finished `failed`.
    pub failed: u64,
    /// Jobs finished `cancelled`.
    pub cancelled: u64,
    /// Jobs re-enqueued by crash recovery at open.
    pub replayed: u64,
    /// Executor panics absorbed by the supervisor.
    pub worker_restarts: u64,
    /// Job boundaries where the telemetry drain found residue (must
    /// stay 0: the zero-cross-job-leakage invariant).
    pub telemetry_leaks: u64,
    /// Currently queued jobs.
    pub queue_len: usize,
    /// Observed mean job wall-clock in milliseconds (0 before the
    /// first completion).
    pub avg_job_ms: u64,
    /// Cross-request profile cache state (None when disabled).
    pub cache: Option<profile_cache::CacheSnapshot>,
    /// Memoized-sweep work counters, including the multi-variant
    /// co-pricer's lane/replay-pass savings (process-wide totals across
    /// this daemon's jobs).
    pub memo: campaign::MemoStats,
    /// CMP coherence activity (invalidations, cache-to-cache transfers,
    /// snoop-bus occupancy) across this daemon's multi-core jobs.
    pub coherence: gaas_coherence::CoherenceTotals,
}

struct JobSlot {
    seq: u64,
    name: String,
    spec_text: String,
    cells: usize,
    deadline_ms: Option<u64>,
    deadline: Option<Instant>,
    state: JobState,
    detail: String,
    cancel_requested: bool,
}

struct State {
    queue: VecDeque<String>,
    jobs: BTreeMap<String, JobSlot>,
    next_seq: u64,
    avg_job_ms: f64,
}

struct Inner {
    cfg: ServeConfig,
    log: Mutex<JobsLog>,
    state: Mutex<State>,
    wake: Condvar,
    shutdown: AtomicBool,
    paused: AtomicBool,
    accepted: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_invalid: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    replayed: AtomicU64,
    worker_restarts: AtomicU64,
    telemetry_leaks: AtomicU64,
    /// Test/soak seam: the next N jobs panic inside the executor, so the
    /// supervisor's absorb-and-continue path can be exercised on demand
    /// (the storage analogue is the chaos shim's poison list).
    inject_panics: AtomicU64,
    telemetry: Mutex<Registry>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The running service core. Dropping it performs a best-effort
/// graceful shutdown (finish the in-flight job, stop).
pub struct ServerCore {
    inner: Arc<Inner>,
    executor: Mutex<Option<thread::JoinHandle<()>>>,
}

impl ServerCore {
    /// Opens (or creates) the service state under `cfg.dir`, replays the
    /// jobs journal — re-enqueueing in-flight jobs in acceptance order —
    /// enables the profile cache per the byte budget, and starts the
    /// executor.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the directory or reading the
    /// journal (journal *damage* is salvaged, not an error).
    pub fn open(cfg: ServeConfig) -> std::io::Result<ServerCore> {
        std::fs::create_dir_all(&cfg.dir)?;
        let (log, replay) = JobsLog::open(cfg.dir.join("jobs.journal"))?;
        if replay.dropped > 0 {
            pool::telemetry_count("serve.jobs_records_salvaged", replay.dropped);
        }
        // Fold the event log into per-job final states.
        let mut jobs: BTreeMap<String, JobSlot> = BTreeMap::new();
        let mut next_seq = 1u64;
        for rec in replay.records {
            next_seq = next_seq.max(rec.seq + 1);
            match rec.event {
                JobEvent::Accepted { spec: text } => {
                    let (name, cells, deadline_ms) = match spec::parse(&text) {
                        Ok(s) => (s.name, s.cfgs.len(), s.deadline_ms),
                        Err(_) => continue, // an unparseable replayed spec is dropped
                    };
                    jobs.insert(
                        rec.job,
                        JobSlot {
                            seq: rec.seq,
                            name,
                            spec_text: text,
                            cells,
                            deadline_ms,
                            deadline: None,
                            state: JobState::Queued,
                            detail: String::new(),
                            cancel_requested: false,
                        },
                    );
                }
                JobEvent::Done => {
                    if let Some(slot) = jobs.get_mut(&rec.job) {
                        slot.state = JobState::Done;
                    }
                }
                JobEvent::Failed { reason } => {
                    if let Some(slot) = jobs.get_mut(&rec.job) {
                        slot.state = JobState::Failed;
                        slot.detail = reason;
                    }
                }
                JobEvent::Cancelled { reason } => {
                    if let Some(slot) = jobs.get_mut(&rec.job) {
                        slot.state = JobState::Cancelled;
                        slot.detail = reason;
                    }
                }
            }
        }
        // Re-enqueue in-flight jobs in acceptance (seq) order; their
        // deadline clock restarts now — the original wall-clock epoch
        // did not survive the crash, and a fresh budget is the
        // conservative reading of "deadline from acceptance".
        let mut inflight: Vec<(u64, String)> = jobs
            .iter()
            .filter(|(_, s)| s.state == JobState::Queued)
            .map(|(id, s)| (s.seq, id.clone()))
            .collect();
        inflight.sort_unstable();
        let mut queue = VecDeque::new();
        for (_, id) in inflight {
            if let Some(slot) = jobs.get_mut(&id) {
                slot.deadline = slot.deadline_ms.map(now_plus_ms);
            }
            queue.push_back(id);
        }
        let replayed = queue.len() as u64;
        profile_cache::enable(cfg.cache_budget_bytes);
        let paused = cfg.start_paused;
        let inner = Arc::new(Inner {
            cfg,
            log: Mutex::new(log),
            state: Mutex::new(State {
                queue,
                jobs,
                next_seq,
                avg_job_ms: 0.0,
            }),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(paused),
            accepted: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            replayed: AtomicU64::new(replayed),
            worker_restarts: AtomicU64::new(0),
            telemetry_leaks: AtomicU64::new(0),
            inject_panics: AtomicU64::new(0),
            telemetry: Mutex::new(Registry::default()),
        });
        let worker = Arc::clone(&inner);
        let executor = thread::Builder::new()
            .name("serve-executor".into())
            .spawn(move || executor_loop(&worker))
            .map_err(std::io::Error::other)?;
        Ok(ServerCore {
            inner,
            executor: Mutex::new(Some(executor)),
        })
    }

    /// Submits one spec (raw JSON text). See [`Submission`] for the
    /// admission contract.
    pub fn submit(&self, text: &str) -> Submission {
        let parsed = match spec::parse(text) {
            Ok(s) => s,
            Err(e) => {
                self.inner.rejected_invalid.fetch_add(1, Ordering::Relaxed);
                return Submission::Rejected {
                    error: e,
                    retry_after_ms: None,
                };
            }
        };
        let inner = &self.inner;
        let mut st = lock(&inner.state);
        if st.queue.len() >= inner.cfg.queue_cap {
            inner.rejected_busy.fetch_add(1, Ordering::Relaxed);
            let per_job = st.avg_job_ms.max(50.0);
            let eta = ((st.queue.len() as f64 + 1.0) * per_job) as u64;
            return Submission::Rejected {
                error: format!(
                    "queue full ({} jobs, cap {})",
                    st.queue.len(),
                    inner.cfg.queue_cap
                ),
                retry_after_ms: Some(eta.clamp(250, 60_000)),
            };
        }
        let seq = st.next_seq;
        let id = format!("j{seq:04}");
        let record = JobRecord {
            seq,
            job: id.clone(),
            event: JobEvent::Accepted {
                spec: parsed.canonical.clone(),
            },
        };
        // Durable admission: the accepted record must be on media before
        // the client hears "accepted" — otherwise a crash could silently
        // forget an acknowledged job, the one loss class the soak's
        // no-silent-loss check would catch.
        if let Err(e) = lock(&inner.log).append(&record) {
            inner.rejected_busy.fetch_add(1, Ordering::Relaxed);
            return Submission::Rejected {
                error: format!("admission journal write failed: {e}"),
                retry_after_ms: Some(1000),
            };
        }
        st.next_seq += 1;
        let deadline_ms = parsed.deadline_ms.or(inner.cfg.default_deadline_ms);
        st.jobs.insert(
            id.clone(),
            JobSlot {
                seq,
                name: parsed.name.clone(),
                spec_text: parsed.canonical,
                cells: parsed.cfgs.len(),
                deadline_ms,
                deadline: deadline_ms.map(now_plus_ms),
                state: JobState::Queued,
                detail: String::new(),
                cancel_requested: false,
            },
        );
        st.queue.push_back(id.clone());
        let position = st.queue.len();
        inner.accepted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        inner.wake.notify_all();
        Submission::Accepted { job: id, position }
    }

    /// Snapshot of one job, or `None` for an unknown id.
    pub fn status(&self, id: &str) -> Option<JobInfo> {
        let st = lock(&self.inner.state);
        st.jobs.get(id).map(|slot| JobInfo {
            id: id.to_string(),
            name: slot.name.clone(),
            state: slot.state,
            detail: slot.detail.clone(),
            cells: slot.cells,
        })
    }

    /// Snapshot of every known job, in id order.
    pub fn jobs(&self) -> Vec<JobInfo> {
        let st = lock(&self.inner.state);
        st.jobs
            .iter()
            .map(|(id, slot)| JobInfo {
                id: id.clone(),
                name: slot.name.clone(),
                state: slot.state,
                detail: slot.detail.clone(),
                cells: slot.cells,
            })
            .collect()
    }

    /// The committed table artifact of a `done` job.
    ///
    /// # Errors
    ///
    /// A human-readable reason: unknown job, not terminal yet, failed
    /// (with its journaled reason), or an artifact read error.
    pub fn result(&self, id: &str) -> Result<Vec<u8>, String> {
        let (state, detail) = {
            let st = lock(&self.inner.state);
            let slot = st
                .jobs
                .get(id)
                .ok_or_else(|| format!("unknown job '{id}'"))?;
            (slot.state, slot.detail.clone())
        };
        match state {
            JobState::Done => durability::read(&table_path(&self.inner.cfg.dir, id))
                .map_err(|e| format!("artifact read failed: {e}")),
            JobState::Failed => Err(format!("job failed: {detail}")),
            JobState::Cancelled => Err(format!("job cancelled: {detail}")),
            JobState::Queued | JobState::Running => {
                Err(format!("job is {} — not finished yet", state.name()))
            }
        }
    }

    /// Cancels a queued job immediately, or requests cooperative
    /// wind-down of the running one. Returns the resulting state name.
    ///
    /// # Errors
    ///
    /// A reason when the job is unknown or already terminal.
    pub fn cancel(&self, id: &str) -> Result<&'static str, String> {
        let inner = &self.inner;
        let mut st = lock(&inner.state);
        let slot = st
            .jobs
            .get_mut(id)
            .ok_or_else(|| format!("unknown job '{id}'"))?;
        match slot.state {
            JobState::Queued => {
                slot.state = JobState::Cancelled;
                slot.detail = "cancelled while queued".into();
                slot.cancel_requested = true;
                let rec = JobRecord {
                    seq: slot.seq,
                    job: id.to_string(),
                    event: JobEvent::Cancelled {
                        reason: slot.detail.clone(),
                    },
                };
                st.queue.retain(|qid| qid != id);
                drop(st);
                inner.cancelled.fetch_add(1, Ordering::Relaxed);
                let _ = lock(&inner.log).append(&rec);
                Ok("cancelled")
            }
            JobState::Running => {
                slot.cancel_requested = true;
                drop(st);
                // Cooperative: expire the sweep deadline now; the
                // campaign skips remaining groups and the executor
                // classifies the wind-down as a cancellation.
                campaign::set_sweep_deadline(Some(Instant::now()));
                Ok("running")
            }
            terminal => Err(format!("job is already {}", terminal.name())),
        }
    }

    /// Current service counters.
    pub fn stats(&self) -> StatsSnapshot {
        let inner = &self.inner;
        let (queue_len, avg_job_ms) = {
            let st = lock(&inner.state);
            (st.queue.len(), st.avg_job_ms as u64)
        };
        StatsSnapshot {
            accepted: inner.accepted.load(Ordering::Relaxed),
            rejected_busy: inner.rejected_busy.load(Ordering::Relaxed),
            rejected_invalid: inner.rejected_invalid.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            failed: inner.failed.load(Ordering::Relaxed),
            cancelled: inner.cancelled.load(Ordering::Relaxed),
            replayed: inner.replayed.load(Ordering::Relaxed),
            worker_restarts: inner.worker_restarts.load(Ordering::Relaxed),
            telemetry_leaks: inner.telemetry_leaks.load(Ordering::Relaxed),
            queue_len,
            avg_job_ms,
            cache: profile_cache::snapshot(),
            memo: campaign::memo_stats(),
            coherence: gaas_coherence::coherence_totals(),
        }
    }

    /// Resumes a paused executor (see [`ServeConfig::start_paused`]).
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        self.inner.wake.notify_all();
    }

    /// Arms the supervisor test seam: the next `n` jobs panic inside
    /// the executor instead of running.
    pub fn inject_worker_panics(&self, n: u64) {
        self.inner.inject_panics.store(n, Ordering::SeqCst);
    }

    /// True once every known job is terminal and the queue is empty.
    pub fn idle(&self) -> bool {
        let st = lock(&self.inner.state);
        st.queue.is_empty() && st.jobs.values().all(|s| s.state.is_terminal())
    }

    /// Graceful shutdown: stop admitting, finish (or wind down) the
    /// in-flight job, join the executor. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.wake.notify_all();
        if let Some(handle) = lock(&self.executor).take() {
            let _ = handle.join();
        }
    }

    /// The artifact path of a job's table (exists once `done`).
    pub fn table_path(&self, id: &str) -> PathBuf {
        table_path(&self.inner.cfg.dir, id)
    }
}

impl Drop for ServerCore {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn now_plus_ms(ms: u64) -> Instant {
    Instant::now() + Duration::from_millis(ms)
}

fn table_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{id}.table.txt"))
}

/// Renders a job's deterministic table artifact: one line per cell, CPI
/// to six decimals, a bare `FAILED` marker for gaps (failure *text* is
/// journaled, not rendered — a resumed quarantined cell reports a
/// "quarantined:" prefix a fresh failure lacks, and byte-identity is
/// about results).
fn render_table(results: &[CellResult]) -> String {
    results
        .iter()
        .enumerate()
        .map(|(i, r)| match r {
            CellResult::Done(res) => format!("cell{i:02} {:.6}\n", res.cpi()),
            CellResult::Failed { .. } => format!("cell{i:02} FAILED\n"),
        })
        .collect()
}

/// How one job ended, from the executor's point of view.
enum JobOutcome {
    Done,
    Failed(String),
    Cancelled(String),
}

fn executor_loop(inner: &Arc<Inner>) {
    loop {
        // Pick the next job (or exit). The wait is time-bounded so
        // shutdown and unpause flags are always observed promptly.
        let job_id = {
            let mut st = lock(&inner.state);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A simulated chaos crash means this "process" is dead:
                // stop executing so the soak's next session replays the
                // journal (a real crash simply kills the process).
                let dead = chaos::crashed();
                if !dead && !inner.paused.load(Ordering::SeqCst) {
                    if let Some(id) = st.queue.pop_front() {
                        break id;
                    }
                }
                let (guard, _) = inner
                    .wake
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(|e| {
                        let (g, t) = e.into_inner();
                        (g, t)
                    });
                st = guard;
            }
        };
        let (spec_text, deadline, seq) = {
            let mut st = lock(&inner.state);
            let Some(slot) = st.jobs.get_mut(&job_id) else {
                continue;
            };
            if slot.state != JobState::Queued {
                continue; // cancelled between pop and here
            }
            slot.state = JobState::Running;
            (slot.spec_text.clone(), slot.deadline, slot.seq)
        };
        let t0 = Instant::now();
        let injected = inner
            .inject_panics
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        let run = panic::catch_unwind(AssertUnwindSafe(|| {
            if injected {
                panic!("serve: injected executor panic (supervisor test seam)");
            }
            run_job(inner, &job_id, &spec_text, deadline)
        }));
        // Global cleanup no matter how the job ended: the sweep deadline
        // and active campaign must never leak into the next job.
        campaign::set_sweep_deadline(None);
        let _ = campaign::deactivate();
        drain_job_telemetry(inner);
        let cancel_requested = {
            let st = lock(&inner.state);
            st.jobs
                .get(&job_id)
                .map(|s| s.cancel_requested)
                .unwrap_or(false)
        };
        let outcome = match run {
            Ok(Ok(())) => JobOutcome::Done,
            Ok(Err(reason)) if cancel_requested => JobOutcome::Cancelled(reason),
            Ok(Err(reason)) => JobOutcome::Failed(reason),
            Err(payload) => {
                inner.worker_restarts.fetch_add(1, Ordering::Relaxed);
                pool::telemetry_count("serve.worker_restarts", 1);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                JobOutcome::Failed(format!("worker panicked: {msg}"))
            }
        };
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (event, state, detail, counter) = match outcome {
            JobOutcome::Done => (
                JobEvent::Done,
                JobState::Done,
                String::new(),
                &inner.completed,
            ),
            JobOutcome::Failed(reason) => (
                JobEvent::Failed {
                    reason: reason.clone(),
                },
                JobState::Failed,
                reason,
                &inner.failed,
            ),
            JobOutcome::Cancelled(reason) => (
                JobEvent::Cancelled {
                    reason: reason.clone(),
                },
                JobState::Cancelled,
                reason,
                &inner.cancelled,
            ),
        };
        // Journal the terminal record first; only a durably recorded
        // outcome updates the in-memory state. If the append fails (a
        // chaos crash, a dead disk) the job stays non-terminal and is
        // replayed on the next open — recomputation over silent loss.
        let journaled = lock(&inner.log)
            .append(&JobRecord {
                seq,
                job: job_id.clone(),
                event,
            })
            .is_ok();
        if journaled {
            counter.fetch_add(1, Ordering::Relaxed);
            let mut st = lock(&inner.state);
            if let Some(slot) = st.jobs.get_mut(&job_id) {
                slot.state = state;
                slot.detail = detail;
            }
            // EMA over completed jobs steers the retry-after guidance.
            st.avg_job_ms = if st.avg_job_ms == 0.0 {
                elapsed_ms
            } else {
                0.7 * st.avg_job_ms + 0.3 * elapsed_ms
            };
        }
    }
}

/// Drains per-job telemetry into the service accumulator and verifies
/// the zero-cross-job-leakage invariant: after the drain, a second take
/// must come back empty.
fn drain_job_telemetry(inner: &Inner) {
    let taken = pool::take_telemetry();
    lock(&inner.telemetry).merge_from(&taken);
    let residue = pool::take_telemetry();
    if !residue.is_empty() {
        inner.telemetry_leaks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs one job body: activate the per-job cell journal (resume mode),
/// arm the sweep deadline, run the cells, commit the rendered table
/// atomically.
fn run_job(
    inner: &Inner,
    id: &str,
    spec_text: &str,
    deadline: Option<Instant>,
) -> Result<(), String> {
    let parsed: SweepSpec = spec::parse(spec_text)?;
    if let Some(d) = deadline {
        if Instant::now() >= d {
            return Err("deadline exceeded before start".into());
        }
    }
    let cells_path = inner.cfg.dir.join(format!("{id}.cells.journal"));
    let opts = CellOptions {
        timeout: inner.cfg.cell_timeout,
        attempts: 2,
    };
    campaign::activate(&cells_path, true, opts)
        .map_err(|e| format!("cannot open cell journal: {e}"))?;
    campaign::set_sweep_deadline(deadline);
    let results = campaign::run_cells(&parsed.cfgs, parsed.scale);
    campaign::set_sweep_deadline(None);
    let _ = campaign::deactivate();
    if results.iter().any(campaign::is_transient_skip) {
        return Err(
            "deadline exceeded: the sweep wound down before completing (finished cells \
             stay journaled; a resubmit resumes)"
                .into(),
        );
    }
    let table = render_table(&results);
    let path = table_path(&inner.cfg.dir, id);
    durability::retrying("table commit", || {
        durability::write_atomic(&path, table.as_bytes())?;
        // Read-back verification: the journals are CRC-framed, but the
        // table is raw bytes — a storage fault that flips a bit on the
        // write path would otherwise turn into a silently corrupt "done"
        // artifact. A mismatch burns one retry and rewrites.
        if durability::read(&path)? != table.as_bytes() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "committed table bytes differ from the rendered table",
            ));
        }
        Ok(())
    })
    .map_err(|e| format!("cannot commit table artifact: {e}"))?;
    Ok(())
}
