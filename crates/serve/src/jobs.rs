//! The daemon's durable jobs journal (`GAASSRV1`).
//!
//! One append-only file records every job's lifecycle on the same
//! checksummed framing as the campaign cell journal
//! ([`gaas_experiments::frames`]): an `accepted` record carrying the
//! canonical spec, then exactly one terminal record — `done`, `failed`
//! (with its reason), or `cancelled`. Restart replays the file: jobs
//! with an `accepted` record and no terminal record were in flight when
//! the process died and are re-enqueued in acceptance order; their
//! per-job cell journals make the re-run resume instead of restart.
//!
//! Framing damage is salvaged per record, exactly like the cell
//! journal: a torn tail or flipped bit loses one record, never the
//! file. A lost `accepted` record loses that job (the client sees an
//! unknown id and resubmits — admission was never acknowledged durably);
//! a lost terminal record re-runs the job, which is idempotent because
//! results are deterministic and artifacts commit atomically.

use std::io;
use std::path::{Path, PathBuf};

use gaas_experiments::json::{self, Json};
use gaas_experiments::{durability, frames};

/// Header line of a jobs journal.
pub const JOBS_HEADER: &str = "GAASSRV1\n";

/// One lifecycle event of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job passed admission; `spec` is the canonical spec JSON.
    Accepted {
        /// Canonical spec text (re-parsed on replay).
        spec: String,
    },
    /// The job completed and its table artifact is committed.
    Done,
    /// The job failed; the reason is the client-visible explanation.
    Failed {
        /// Why the job failed (panic text, deadline, spec-level error).
        reason: String,
    },
    /// The job was cancelled before or during execution.
    Cancelled {
        /// What triggered the cancellation.
        reason: String,
    },
}

impl JobEvent {
    /// True for the three terminal events.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobEvent::Accepted { .. })
    }

    fn tag(&self) -> &'static str {
        match self {
            JobEvent::Accepted { .. } => "accepted",
            JobEvent::Done => "done",
            JobEvent::Failed { .. } => "failed",
            JobEvent::Cancelled { .. } => "cancelled",
        }
    }
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Monotone sequence number (acceptance order across restarts).
    pub seq: u64,
    /// Job id (`j0001`, `j0002`, …).
    pub job: String,
    /// The event.
    pub event: JobEvent,
}

fn record_payload(rec: &JobRecord) -> String {
    let mut fields = vec![
        ("seq".to_string(), Json::Int(rec.seq)),
        ("job".to_string(), Json::Str(rec.job.clone())),
        ("event".to_string(), Json::Str(rec.event.tag().to_string())),
    ];
    match &rec.event {
        JobEvent::Accepted { spec } => {
            // The spec is embedded as a JSON *value*, not a string, so
            // the journal stays greppable and the replay parse is the
            // same code path as the wire parse.
            let spec_json = json::parse(spec).unwrap_or(Json::Null);
            fields.push(("spec".into(), spec_json));
        }
        JobEvent::Done => {}
        JobEvent::Failed { reason } | JobEvent::Cancelled { reason } => {
            fields.push(("reason".into(), Json::Str(reason.clone())));
        }
    }
    Json::Obj(fields).to_text()
}

fn parse_payload(payload: &str) -> Option<JobRecord> {
    let v = json::parse(payload).ok()?;
    let seq = v.get("seq")?.as_u64()?;
    let job = v.get("job")?.as_str()?.to_string();
    let event = match v.get("event")?.as_str()? {
        "accepted" => JobEvent::Accepted {
            spec: v.get("spec")?.to_text(),
        },
        "done" => JobEvent::Done,
        "failed" => JobEvent::Failed {
            reason: v.get("reason")?.as_str()?.to_string(),
        },
        "cancelled" => JobEvent::Cancelled {
            reason: v.get("reason")?.as_str()?.to_string(),
        },
        _ => return None,
    };
    Some(JobRecord { seq, job, event })
}

/// The result of opening (and salvage-replaying) a jobs journal.
#[derive(Debug)]
pub struct Replay {
    /// Every surviving record in file order.
    pub records: Vec<JobRecord>,
    /// Records dropped by a failed framing check.
    pub dropped: u64,
}

/// The append handle for a jobs journal.
#[derive(Debug)]
pub struct JobsLog {
    path: PathBuf,
}

impl JobsLog {
    /// Opens (creating if absent) the journal at `path` and replays its
    /// surviving records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading or creating the file. Framing
    /// damage is *not* an error — damaged records are dropped and
    /// counted.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(JobsLog, Replay)> {
        let path = path.as_ref().to_path_buf();
        let mut records = Vec::new();
        let mut dropped = 0u64;
        match durability::read(&path) {
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                let body = match text.strip_prefix(JOBS_HEADER.trim_end()) {
                    Some(rest) => rest,
                    None => {
                        // Unrecognized header: treat the whole file as
                        // damaged body — per-record salvage recovers
                        // nothing framed differently, by design.
                        dropped += 1;
                        &text
                    }
                };
                let salvage = frames::salvage(body);
                dropped += salvage.dropped;
                for payload in salvage.payloads {
                    match parse_payload(payload) {
                        Some(rec) => records.push(rec),
                        None => dropped += 1,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                durability::retrying("jobs journal header", || {
                    durability::append(&path, JOBS_HEADER.as_bytes())
                })?;
            }
            Err(e) => return Err(e),
        }
        Ok((JobsLog { path }, Replay { records, dropped }))
    }

    /// Appends one record durably (fsync'd, bounded retry).
    ///
    /// # Errors
    ///
    /// The last I/O error once the retry budget is exhausted (an
    /// injected chaos crash is terminal immediately).
    pub fn append(&self, rec: &JobRecord) -> io::Result<()> {
        let line = frames::frame_line(&record_payload(rec));
        durability::retrying("jobs journal append", || {
            durability::append(&self.path, line.as_bytes())
        })
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gaas-serve-jobs-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("jobs.journal")
    }

    fn sample_records() -> Vec<JobRecord> {
        vec![
            JobRecord {
                seq: 1,
                job: "j0001".into(),
                event: JobEvent::Accepted {
                    spec: r#"{"scale":0.001,"cells":[{}]}"#.into(),
                },
            },
            JobRecord {
                seq: 2,
                job: "j0002".into(),
                event: JobEvent::Accepted {
                    spec: r#"{"scale":0.002,"cells":[{},{}]}"#.into(),
                },
            },
            JobRecord {
                seq: 3,
                job: "j0001".into(),
                event: JobEvent::Done,
            },
            JobRecord {
                seq: 4,
                job: "j0002".into(),
                event: JobEvent::Failed {
                    reason: "deadline exceeded".into(),
                },
            },
        ]
    }

    #[test]
    fn records_round_trip_through_the_journal() {
        let prev = durability::set_durable_sync(false);
        let path = tmp("roundtrip");
        let (log, replay) = JobsLog::open(&path).expect("open fresh");
        assert!(replay.records.is_empty());
        assert_eq!(replay.dropped, 0);
        for rec in &sample_records() {
            log.append(rec).expect("append");
        }
        let (_, replay) = JobsLog::open(&path).expect("reopen");
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.dropped, 0);
        durability::set_durable_sync(prev);
    }

    #[test]
    fn a_torn_tail_loses_one_record_only() {
        let prev = durability::set_durable_sync(false);
        let path = tmp("torn");
        let (log, _) = JobsLog::open(&path).expect("open");
        for rec in &sample_records() {
            log.append(rec).expect("append");
        }
        // Tear the last record's tail, as a crash mid-append would.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, bytes).unwrap();
        let (_, replay) = JobsLog::open(&path).expect("reopen");
        assert_eq!(replay.records, sample_records()[..3].to_vec());
        assert_eq!(replay.dropped, 1);
        durability::set_durable_sync(prev);
    }

    #[test]
    fn accepted_spec_survives_verbatim_enough_to_reparse() {
        let spec = r#"{"name":"x","scale":0.5,"cells":[{"l2_access":4}]}"#;
        let rec = JobRecord {
            seq: 9,
            job: "j0009".into(),
            event: JobEvent::Accepted { spec: spec.into() },
        };
        let payload = record_payload(&rec);
        let back = parse_payload(&payload).expect("parses");
        let JobEvent::Accepted { spec: back_spec } = &back.event else {
            panic!("wrong event");
        };
        let a = crate::spec::parse(spec).expect("original parses");
        let b = crate::spec::parse(back_spec).expect("replayed parses");
        assert_eq!(a.cfgs, b.cfgs);
        assert_eq!(a.scale, b.scale);
    }
}
