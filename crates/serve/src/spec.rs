//! Sweep-request specs: the wire format a client submits.
//!
//! A spec is one JSON object describing a config-space sweep in the
//! campaign cell vocabulary — the same knobs `repro`'s figure sweeps
//! turn, so a request like "fig7's 64 KW column" is a handful of cells:
//!
//! ```json
//! {"name":"l2i-64kw","scale":0.0001,"deadline_ms":60000,
//!  "cells":[{"l2_split":true,"l2_size":65536,"l2_access":2},
//!           {"l2_split":true,"l2_size":65536,"l2_access":4}]}
//! ```
//!
//! Parsing is **strict**: unknown fields are rejected (a typoed knob
//! must fail loudly, not silently simulate the baseline), `scale` must
//! be in `(0, 1]`, and the cell count is capped at [`MAX_CELLS`] — the
//! admission queue bounds jobs, this bounds the memory one job can pin.

use gaas_experiments::json::{self, Json};
use gaas_sim::config::{L2Config, L2Side, SimConfig};
use gaas_sim::WritePolicy;

/// Upper bound on cells per request (keeps one request's parsed spec,
/// journal entry, and result table all small and bounded).
pub const MAX_CELLS: usize = 1024;

/// A parsed, validated sweep request.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Client-chosen label (shows up in status output; not unique).
    pub name: String,
    /// Workload scale in `(0, 1]` (1.0 = the paper's ~2.4G references).
    pub scale: f64,
    /// Per-request deadline in milliseconds from acceptance, if any.
    pub deadline_ms: Option<u64>,
    /// The simulation configuration of each cell, in request order.
    pub cfgs: Vec<SimConfig>,
    /// Canonical compact JSON of the spec, as journaled for replay.
    pub canonical: String,
}

/// Parses and validates a spec from its JSON text.
///
/// # Errors
///
/// Returns a human-readable description of the first violation: syntax,
/// unknown field, missing/invalid `scale` or `cells`, or an invalid
/// simulation configuration.
pub fn parse(text: &str) -> Result<SweepSpec, String> {
    let v = json::parse(text).map_err(|e| format!("spec is not valid JSON: {e}"))?;
    from_json(&v)
}

/// Parses and validates a spec from an already-decoded JSON value.
///
/// # Errors
///
/// Same contract as [`parse`].
pub fn from_json(v: &Json) -> Result<SweepSpec, String> {
    let fields = v.as_obj().ok_or("spec must be a JSON object")?;
    let mut name = "sweep".to_string();
    let mut scale = None;
    let mut deadline_ms = None;
    let mut cells = None;
    for (key, value) in fields {
        match key.as_str() {
            "name" => {
                name = value
                    .as_str()
                    .ok_or("spec field 'name' must be a string")?
                    .to_string();
            }
            "scale" => {
                let s = value
                    .as_f64()
                    .ok_or("spec field 'scale' must be a number")?;
                if !(s.is_finite() && s > 0.0 && s <= 1.0) {
                    return Err(format!("spec field 'scale' must be in (0, 1], got {s}"));
                }
                scale = Some(s);
            }
            "deadline_ms" => {
                deadline_ms = Some(
                    value
                        .as_u64()
                        .ok_or("spec field 'deadline_ms' must be a non-negative integer")?,
                );
            }
            "cells" => {
                cells = Some(
                    value
                        .as_arr()
                        .ok_or("spec field 'cells' must be an array")?,
                );
            }
            other => return Err(format!("unknown spec field '{other}'")),
        }
    }
    let scale = scale.ok_or("spec field 'scale' is required")?;
    let cells = cells.ok_or("spec field 'cells' is required")?;
    if cells.is_empty() {
        return Err("spec field 'cells' must not be empty".into());
    }
    if cells.len() > MAX_CELLS {
        return Err(format!(
            "spec has {} cells; the per-request limit is {MAX_CELLS}",
            cells.len()
        ));
    }
    let cfgs = cells
        .iter()
        .enumerate()
        .map(|(i, cell)| parse_cell(cell).map_err(|e| format!("cells[{i}]: {e}")))
        .collect::<Result<Vec<SimConfig>, String>>()?;
    let mut canon = Json::Obj(vec![
        ("name".into(), Json::Str(name.clone())),
        ("scale".into(), Json::Num(scale)),
    ]);
    if let (Json::Obj(out), Some(ms)) = (&mut canon, deadline_ms) {
        out.push(("deadline_ms".into(), Json::Int(ms)));
    }
    if let Json::Obj(out) = &mut canon {
        // Cells are re-emitted verbatim (already validated above), so
        // the canonical form round-trips through the journal exactly.
        out.push((
            "cells".into(),
            Json::Arr(cells.iter().map(reencode).collect()),
        ));
    }
    Ok(SweepSpec {
        name,
        scale,
        deadline_ms,
        cfgs,
        canonical: canon.to_text(),
    })
}

/// Re-encodes a parsed JSON value structurally (used to canonicalize the
/// journaled spec: insertion order and lexical integers are preserved by
/// the tiny JSON module, so parse → reencode is stable).
fn reencode(v: &Json) -> Json {
    match v {
        Json::Null => Json::Null,
        Json::Bool(b) => Json::Bool(*b),
        Json::Int(n) => Json::Int(*n),
        Json::Num(x) => Json::Num(*x),
        Json::Str(s) => Json::Str(s.clone()),
        Json::Arr(items) => Json::Arr(items.iter().map(reencode).collect()),
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(k, val)| (k.clone(), reencode(val)))
                .collect(),
        ),
    }
}

fn as_u64_field(value: &Json, name: &str) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("field '{name}' must be a non-negative integer"))
}

fn as_u32_field(value: &Json, name: &str) -> Result<u32, String> {
    let n = as_u64_field(value, name)?;
    u32::try_from(n).map_err(|_| format!("field '{name}' is out of range"))
}

/// Builds one cell's [`SimConfig`] from its JSON object. Every field is
/// optional; omitted knobs keep the base-architecture defaults.
fn parse_cell(cell: &Json) -> Result<SimConfig, String> {
    let fields = cell.as_obj().ok_or("each cell must be a JSON object")?;
    let mut b = SimConfig::builder();
    // L2 geometry is assembled from its parts after the scan.
    let mut l2_size: Option<u64> = None;
    let mut l2_assoc: Option<u32> = None;
    let mut l2_access: Option<u32> = None;
    let mut l2_split = false;
    for (key, value) in fields {
        match key.as_str() {
            "policy" => {
                let p = value.as_str().ok_or("field 'policy' must be a string")?;
                b.policy(match p {
                    "write_back" => WritePolicy::WriteBack,
                    "write_miss_invalidate" => WritePolicy::WriteMissInvalidate,
                    "write_only" => WritePolicy::WriteOnly,
                    "subblock" => WritePolicy::Subblock,
                    other => {
                        return Err(format!(
                            "unknown policy '{other}' (expected write_back, \
                             write_miss_invalidate, write_only, or subblock)"
                        ))
                    }
                });
            }
            "l1_size" => {
                b.l1_size(as_u64_field(value, key)?);
            }
            "l1_line" => {
                b.l1_line(as_u32_field(value, key)?);
            }
            "l1_assoc" => {
                b.l1_assoc(as_u32_field(value, key)?);
            }
            "l2_size" => l2_size = Some(as_u64_field(value, key)?),
            "l2_assoc" => l2_assoc = Some(as_u32_field(value, key)?),
            "l2_access" => l2_access = Some(as_u32_field(value, key)?),
            "l2_split" => {
                l2_split = value
                    .as_bool()
                    .ok_or("field 'l2_split' must be a boolean")?;
            }
            "l2_drain_access" => {
                b.l2_drain_access(as_u32_field(value, key)?);
            }
            "mp_level" => {
                let n = as_u64_field(value, key)?;
                b.mp_level(usize::try_from(n).map_err(|_| "field 'mp_level' is out of range")?);
            }
            "time_slice" => {
                b.time_slice(as_u64_field(value, key)?);
            }
            "tlb_miss_penalty" => {
                b.tlb_miss_penalty(as_u32_field(value, key)?);
            }
            "page_colors" => {
                b.page_colors(as_u64_field(value, key)?);
            }
            other => return Err(format!("unknown cell field '{other}'")),
        }
    }
    if l2_size.is_some() || l2_assoc.is_some() || l2_access.is_some() || l2_split {
        let size = l2_size.unwrap_or(262_144);
        let assoc = l2_assoc.unwrap_or(1);
        let access = l2_access.unwrap_or(6);
        let l2 = if l2_split {
            L2Config::split_even(size, assoc, access)
        } else {
            L2Config::Unified(L2Side {
                size_words: size,
                assoc,
                line_words: 32,
                access_cycles: access,
            })
        };
        b.l2(l2);
    }
    b.build().map_err(|e| format!("invalid configuration: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = parse(r#"{"scale":0.001,"cells":[{}]}"#).expect("parses");
        assert_eq!(spec.name, "sweep");
        assert_eq!(spec.cfgs.len(), 1);
        assert_eq!(spec.cfgs[0], SimConfig::baseline());
        assert!(spec.deadline_ms.is_none());
    }

    #[test]
    fn knobs_reach_the_config() {
        let spec = parse(
            r#"{"name":"x","scale":0.5,"deadline_ms":1000,
                "cells":[{"policy":"write_only","l2_split":true,"l2_size":65536,
                          "l2_access":4,"mp_level":2}]}"#,
        )
        .expect("parses");
        let cfg = &spec.cfgs[0];
        assert_eq!(cfg.policy, WritePolicy::WriteOnly);
        assert!(cfg.l2.is_split());
        assert_eq!(cfg.l2.i_side().size_words, 32_768);
        assert_eq!(cfg.l2.i_side().access_cycles, 4);
        assert_eq!(spec.deadline_ms, Some(1000));
    }

    #[test]
    fn unknown_fields_are_rejected_loudly() {
        let err = parse(r#"{"scale":0.1,"cells":[{"l2_szie":1024}]}"#).unwrap_err();
        assert!(err.contains("unknown cell field 'l2_szie'"), "{err}");
        let err = parse(r#"{"scale":0.1,"cells":[{}],"priority":9}"#).unwrap_err();
        assert!(err.contains("unknown spec field 'priority'"), "{err}");
    }

    #[test]
    fn scale_and_cells_are_validated() {
        assert!(parse(r#"{"cells":[{}]}"#).unwrap_err().contains("scale"));
        assert!(parse(r#"{"scale":0.0,"cells":[{}]}"#)
            .unwrap_err()
            .contains("(0, 1]"));
        assert!(parse(r#"{"scale":1.5,"cells":[{}]}"#)
            .unwrap_err()
            .contains("(0, 1]"));
        assert!(parse(r#"{"scale":0.1,"cells":[]}"#)
            .unwrap_err()
            .contains("empty"));
        assert!(parse(r#"{"scale":0.1}"#).unwrap_err().contains("cells"));
    }

    #[test]
    fn canonical_form_round_trips() {
        let text = r#"{"scale":0.001,"cells":[{"l2_drain_access":8},{}]}"#;
        let spec = parse(text).expect("parses");
        let again = parse(&spec.canonical).expect("canonical re-parses");
        assert_eq!(
            again.canonical, spec.canonical,
            "canonicalization is stable"
        );
        assert_eq!(again.cfgs, spec.cfgs);
        assert_eq!(again.scale, spec.scale);
    }
}
