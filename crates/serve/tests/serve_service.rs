//! End-to-end service tests: the TCP protocol, deadlines, cancellation,
//! and crash recovery.
//!
//! The engine drives the process-global campaign/profile-cache state, so
//! every test serializes on one lock — two live cores must never execute
//! jobs concurrently in one process.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use gaas_experiments::durability;
use gaas_experiments::json::{self, Json};
use gaas_serve::engine::{JobState, ServeConfig, ServerCore, Submission};
use gaas_serve::net;

const SPEC: &str = r#"{"name":"t","scale":0.00005,"cells":[{"l2_access":2},{"l2_access":4}]}"#;

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gaas-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn accept(sub: Submission) -> String {
    match sub {
        Submission::Accepted { job, .. } => job,
        Submission::Rejected { error, .. } => panic!("unexpected rejection: {error}"),
    }
}

fn wait_idle(core: &ServerCore) {
    let t0 = Instant::now();
    while !core.idle() {
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "service never drained"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn submit_status_result_roundtrip_over_tcp() {
    let _guard = serial();
    durability::set_durable_sync(false);
    let dir = fresh_dir("tcp");
    let core = std::sync::Arc::new(ServerCore::open(ServeConfig::new(&dir)).expect("open core"));
    let server = {
        let core = std::sync::Arc::clone(&core);
        let dir = dir.clone();
        std::thread::spawn(move || net::serve(&core, &dir, 0))
    };
    // The addr file is committed atomically once the listener is up.
    let addr_file = dir.join("serve.addr");
    let t0 = Instant::now();
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            break text.trim().to_string();
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "listener never came up"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let ping = net::client_roundtrip(&addr, r#"{"op":"ping"}"#).expect("ping");
    assert_eq!(
        json::parse(&ping)
            .unwrap()
            .get("ok")
            .and_then(Json::as_bool),
        Some(true)
    );

    let resp = net::client_roundtrip(&addr, &format!(r#"{{"op":"submit","spec":{SPEC}}}"#))
        .expect("submit");
    let resp = json::parse(&resp).expect("submit response json");
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "{resp:?}"
    );
    let job = resp
        .get("job")
        .and_then(Json::as_str)
        .expect("job id")
        .to_string();

    // Poll status over the wire until terminal.
    let t0 = Instant::now();
    let state = loop {
        let resp = net::client_roundtrip(&addr, &format!(r#"{{"op":"status","job":"{job}"}}"#))
            .expect("status");
        let resp = json::parse(&resp).unwrap();
        let state = resp
            .get("state")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        if state != "queued" && state != "running" {
            break state;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "job never finished"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(state, "done");

    let resp = net::client_roundtrip(&addr, &format!(r#"{{"op":"result","job":"{job}"}}"#))
        .expect("result");
    let resp = json::parse(&resp).unwrap();
    let table = resp.get("table").and_then(Json::as_str).expect("table");
    assert_eq!(table.lines().count(), 2, "one row per cell: {table:?}");
    assert!(table.starts_with("cell00 "), "{table:?}");

    let resp = net::client_roundtrip(&addr, r#"{"op":"stats"}"#).expect("stats");
    let resp = json::parse(&resp).unwrap();
    assert_eq!(resp.get("completed").and_then(Json::as_u64), Some(1));
    assert_eq!(resp.get("telemetry_leaks").and_then(Json::as_u64), Some(0));

    let resp = net::client_roundtrip(&addr, r#"{"op":"shutdown"}"#).expect("shutdown");
    assert_eq!(
        json::parse(&resp)
            .unwrap()
            .get("ok")
            .and_then(Json::as_bool),
        Some(true)
    );
    server.join().expect("server thread").expect("serve ok");
    core.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_expired_deadline_fails_the_job_with_a_reason() {
    let _guard = serial();
    durability::set_durable_sync(false);
    let dir = fresh_dir("deadline");
    let core = ServerCore::open(ServeConfig::new(&dir)).expect("open core");
    let spec = r#"{"name":"dl","scale":0.00005,"deadline_ms":0,"cells":[{}]}"#;
    let job = accept(core.submit(spec));
    wait_idle(&core);
    let info = core.status(&job).expect("known job");
    assert_eq!(info.state, JobState::Failed);
    assert!(info.detail.contains("deadline"), "detail: {}", info.detail);
    let err = core.result(&job).expect_err("no table for a failed job");
    assert!(err.contains("deadline"), "{err}");
    core.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_queued_job_cancels_immediately() {
    let _guard = serial();
    durability::set_durable_sync(false);
    let dir = fresh_dir("cancel");
    let core = ServerCore::open(ServeConfig {
        start_paused: true,
        ..ServeConfig::new(&dir)
    })
    .expect("open core");
    let job = accept(core.submit(SPEC));
    assert_eq!(core.cancel(&job).expect("cancel"), "cancelled");
    assert!(
        core.cancel(&job).is_err(),
        "a terminal job cannot cancel again"
    );
    core.resume();
    wait_idle(&core);
    assert_eq!(core.status(&job).unwrap().state, JobState::Cancelled);
    assert!(core
        .result(&job)
        .expect_err("no result")
        .contains("cancelled"));
    assert_eq!(core.stats().cancelled, 1);
    core.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_replays_inflight_jobs_to_completion() {
    let _guard = serial();
    durability::set_durable_sync(false);
    let dir = fresh_dir("recovery");
    // First lifetime: accept two jobs but never run them (paused), then
    // shut down — exactly what a crash after admission looks like in the
    // journal.
    let core = ServerCore::open(ServeConfig {
        start_paused: true,
        ..ServeConfig::new(&dir)
    })
    .expect("open first lifetime");
    let j1 = accept(core.submit(SPEC));
    let j2 = accept(core.submit(SPEC));
    core.shutdown();
    drop(core);

    // Second lifetime: both jobs must be replayed and run to completion.
    let core = ServerCore::open(ServeConfig::new(&dir)).expect("open second lifetime");
    assert_eq!(core.stats().replayed, 2, "both in-flight jobs replay");
    wait_idle(&core);
    for id in [&j1, &j2] {
        assert_eq!(core.status(id).expect("known").state, JobState::Done);
        let table = core.result(id).expect("table");
        assert!(!table.is_empty());
    }
    // Identical specs must produce identical bytes across the restart.
    assert_eq!(core.result(&j1).unwrap(), core.result(&j2).unwrap());
    core.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_sweeps_hit_the_cross_request_cache() {
    let _guard = serial();
    durability::set_durable_sync(false);
    let dir = fresh_dir("memo");
    let core = ServerCore::open(ServeConfig::new(&dir)).expect("open core");
    let j1 = accept(core.submit(SPEC));
    wait_idle(&core);
    let j2 = accept(core.submit(SPEC));
    wait_idle(&core);
    let stats = core.stats();
    let cache = stats.cache.expect("cache enabled by default");
    assert!(
        cache.stats.hits > 0,
        "second job must hit: {:?}",
        cache.stats
    );
    assert_eq!(core.result(&j1).unwrap(), core.result(&j2).unwrap());
    core.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
