//! Prints an FNV fingerprint of the first events of every suite benchmark
//! (cross-version determinism check; not part of the test suite).

use gaas_trace::bench_model::suite;
use gaas_trace::gen::TraceGenerator;
use gaas_trace::Pid;

fn main() {
    for spec in &suite() {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fnv = |v: u64| {
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
        };
        let mut n = 0u64;
        for ev in TraceGenerator::new(spec, Pid::new(3), 2e-3) {
            fnv(ev.addr.raw());
            fnv(ev.kind as u64);
            fnv(u64::from(ev.stall_cycles));
            fnv(u64::from(ev.partial_word) | (u64::from(ev.syscall) << 1));
            n += 1;
        }
        println!("{} {} {:016x}", spec.name, n, h);
    }
}
