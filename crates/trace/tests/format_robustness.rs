//! Property-style robustness tests for the checksummed GTRC format.
//!
//! The invariant under test: corruption of a version-3 trace is always
//! *detected*, never misparsed — and beyond detection, [`salvage_trace`]
//! recovers everything except the damaged block. We drive it with
//! exhaustive truncation (every byte boundary) and exhaustive single-bit
//! mutation (every bit of every byte) on a single-block file, seeded
//! multi-byte mutations from the vendored PRNG, and seeded bit flips /
//! truncations on a multi-block file for the salvage properties — no
//! external property-testing dependency.

use gaas_trace::codec::{self, BLOCK_EVENTS};
use gaas_trace::file::{read_trace, salvage_trace, write_trace, ReadTraceError, TraceReader};
use gaas_trace::rng::SmallRng;
use gaas_trace::{Pid, TraceEvent, VirtAddr};

/// Fixed header size: magic + version + event count.
const HEADER: usize = 16;

/// A deterministic event mix exercising every tag bit, stall values, and
/// high address bits (so checksum coverage spans the whole record).
fn sample_events(seed: u64, n: usize) -> Vec<TraceEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let addr = VirtAddr::new(
                Pid::new(rng.gen_range(0u8..16)),
                rng.gen_range(0u64..1 << 30),
            );
            let stall = rng.gen_range(0u8..=255);
            match rng.gen_range(0u32..4) {
                0 => TraceEvent::ifetch(addr, stall),
                1 => TraceEvent::load(addr),
                2 => TraceEvent::store(addr),
                _ => TraceEvent::partial_store(addr).with_syscall(),
            }
        })
        .collect()
}

fn encoded(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(&mut buf, events).expect("in-memory write cannot fail");
    buf
}

/// Byte offsets where each encoded block starts, plus the end of the
/// block region (= start of the tail index).
fn block_boundaries(buf: &[u8], n_events: usize) -> (Vec<usize>, usize) {
    let mut starts = Vec::new();
    let mut off = HEADER;
    let mut seen = 0usize;
    while seen < n_events {
        starts.push(off);
        let (frame, count) = codec::block_extent(&buf[off..]).expect("intact block");
        off += frame;
        seen += count;
    }
    (starts, off)
}

#[test]
fn every_truncation_is_detected() {
    let events = sample_events(11, 32);
    let buf = encoded(&events);
    for cut in 0..buf.len() {
        match read_trace(&buf[..cut]) {
            Err(_) => {}
            Ok(back) => panic!(
                "truncation to {cut}/{} bytes misparsed as a clean {}-event trace",
                buf.len(),
                back.len()
            ),
        }
    }
    // The untruncated buffer still reads cleanly (sanity).
    assert_eq!(read_trace(buf.as_slice()).expect("clean"), events);
}

#[test]
fn every_single_bit_flip_is_detected() {
    let events = sample_events(12, 24);
    let buf = encoded(&events);
    let mut copy = buf.clone();
    for i in 0..copy.len() {
        for bit in 0..8 {
            copy[i] ^= 1 << bit;
            match read_trace(copy.as_slice()) {
                Err(_) => {}
                Ok(back) => {
                    // The one benign mutation would be parsing back the
                    // exact original events — impossible after a flip,
                    // so any Ok here is a silent misparse.
                    panic!(
                        "bit {bit} of byte {i} flipped: misparsed as {} clean events",
                        back.len()
                    );
                }
            }
            copy[i] ^= 1 << bit;
        }
    }
    assert_eq!(copy, buf, "mutation loop must restore the buffer");
}

#[test]
fn seeded_multi_byte_mutations_are_detected() {
    let events = sample_events(13, 48);
    let buf = encoded(&events);
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..500 {
        let mut copy = buf.clone();
        let edits = rng.gen_range(1usize..=4);
        for _ in 0..edits {
            let i = rng.gen_range(0usize..copy.len());
            let b = rng.gen_range(1u8..=255);
            copy[i] ^= b;
        }
        if copy == buf {
            continue; // the edits cancelled out; nothing to detect
        }
        assert!(
            read_trace(copy.as_slice()).is_err(),
            "a mutated trace must never read cleanly"
        );
    }
}

#[test]
fn streaming_reader_stops_at_the_corrupt_block() {
    // Version 3 verifies each block's CRC *before* yielding any of its
    // events, so corruption in block 2 surfaces with block 1 streamed
    // intact and nothing from the damaged block leaked.
    let events = sample_events(14, BLOCK_EVENTS + 100);
    let mut buf = encoded(&events);
    let (starts, _) = block_boundaries(&buf, events.len());
    buf[starts[1] + 20] ^= 0x40; // inside block 2's payload
    let mut r = TraceReader::new(buf.as_slice()).expect("header is intact");
    let streamed: Vec<TraceEvent> = r.by_ref().collect();
    assert_eq!(streamed, events[..BLOCK_EVENTS]);
    assert!(
        matches!(
            r.error(),
            Some(ReadTraceError::BadChecksum { .. } | ReadTraceError::BadBlock(_))
        ),
        "corruption must surface through error(): {:?}",
        r.error()
    );
}

#[test]
fn boundary_truncations_name_the_right_failure() {
    let events = sample_events(15, 2 * BLOCK_EVENTS + 9);
    let buf = encoded(&events);
    let (starts, index_start) = block_boundaries(&buf, events.len());
    // Cut exactly at each block boundary: count now overstates events.
    for (k, &cut) in starts.iter().enumerate().skip(1) {
        assert!(
            matches!(
                read_trace(&buf[..cut]).unwrap_err(),
                ReadTraceError::Truncated
            ),
            "cut at block boundary {k}"
        );
    }
    // Cut exactly before the tail index: events all read, index missing.
    assert!(matches!(
        read_trace(&buf[..index_start]).unwrap_err(),
        ReadTraceError::Truncated
    ));
    // Cut exactly before the file CRC: index reads, footer missing.
    let cut = buf.len() - 4;
    assert!(matches!(
        read_trace(&buf[..cut]).unwrap_err(),
        ReadTraceError::Truncated
    ));
}

/// Splits `events` into encoded-block-sized chunks.
fn blocks_of(events: &[TraceEvent]) -> Vec<&[TraceEvent]> {
    events.chunks(BLOCK_EVENTS).collect()
}

/// True when `recovered` equals `events` with at most one whole block
/// removed.
fn is_original_minus_at_most_one_block(recovered: &[TraceEvent], events: &[TraceEvent]) -> bool {
    if recovered == events {
        return true;
    }
    let blocks = blocks_of(events);
    (0..blocks.len()).any(|skip| {
        let mut candidate = Vec::with_capacity(events.len());
        for (i, b) in blocks.iter().enumerate() {
            if i != skip {
                candidate.extend_from_slice(b);
            }
        }
        recovered == candidate.as_slice()
    })
}

#[test]
fn salvage_after_any_single_bit_flip_loses_at_most_one_block() {
    let events = sample_events(16, 3 * BLOCK_EVENTS);
    let buf = encoded(&events);
    let mut rng = SmallRng::seed_from_u64(0x5A17A6E);
    let mut copy = buf.clone();
    for _ in 0..1500 {
        let i = rng.gen_range(0usize..copy.len());
        let bit = rng.gen_range(0u32..8) as u8;
        copy[i] ^= 1 << bit;
        match salvage_trace(&copy) {
            Ok((recovered, report)) => {
                assert!(
                    is_original_minus_at_most_one_block(&recovered, &events),
                    "flip of bit {bit} in byte {i}: salvage lost more than one block \
                     ({} of {} events)",
                    recovered.len(),
                    events.len()
                );
                if report.used_index {
                    assert!(
                        report.blocks_lost <= 1,
                        "flip of bit {bit} in byte {i}: index salvage reported {} lost blocks",
                        report.blocks_lost
                    );
                }
            }
            // Only a flip inside the 8 magic/version bytes may make the
            // image unrecognizable as a v3 trace.
            Err(e) => assert!(i < 8, "flip of bit {bit} in byte {i} errored: {e}"),
        }
        copy[i] ^= 1 << bit;
    }
    assert_eq!(copy, buf, "mutation loop must restore the buffer");
}

#[test]
fn salvage_after_any_truncation_keeps_the_intact_prefix() {
    let events = sample_events(17, 3 * BLOCK_EVENTS);
    let buf = encoded(&events);
    let (starts, index_start) = block_boundaries(&buf, events.len());
    let mut rng = SmallRng::seed_from_u64(0x7A11);
    let mut cuts: Vec<usize> = (0..400).map(|_| rng.gen_range(HEADER..buf.len())).collect();
    cuts.extend(starts.iter().copied());
    cuts.push(index_start);
    cuts.push(buf.len() - 1);
    for cut in cuts {
        let (recovered, report) = salvage_trace(&buf[..cut]).expect("header intact");
        // Whole blocks that fit entirely before the cut must survive.
        let complete = starts
            .iter()
            .enumerate()
            .take_while(|&(k, _)| {
                let end = starts.get(k + 1).copied().unwrap_or(index_start);
                end <= cut.min(index_start)
            })
            .count();
        let expect = (complete * BLOCK_EVENTS).min(events.len());
        assert!(
            recovered.len() >= expect,
            "cut at {cut}: recovered {} events, expected at least {expect}",
            recovered.len()
        );
        assert_eq!(
            &recovered[..expect],
            &events[..expect],
            "cut at {cut}: surviving prefix must replay verbatim"
        );
        assert_eq!(report.events, recovered.len());
    }
    // Sanity: the untruncated image salvages completely through the index.
    let (all, report) = salvage_trace(&buf).expect("intact");
    assert_eq!(all, events);
    assert!(report.used_index);
    assert_eq!(report.blocks_lost, 0);
}
