//! Property-style robustness tests for the checksummed GTRC format.
//!
//! The invariant under test: corruption of a version-2 trace is always
//! *detected*, never misparsed. We drive it with exhaustive truncation
//! (every byte boundary) and exhaustive single-bit mutation (every bit
//! of every byte), plus seeded multi-byte mutations from the vendored
//! PRNG — no external property-testing dependency.

use gaas_trace::file::{read_trace, write_trace, ReadTraceError, TraceReader};
use gaas_trace::rng::SmallRng;
use gaas_trace::{Pid, TraceEvent, VirtAddr};

/// A deterministic event mix exercising every tag bit, stall values, and
/// high address bits (so checksum coverage spans the whole record).
fn sample_events(seed: u64, n: usize) -> Vec<TraceEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let addr = VirtAddr::new(
                Pid::new(rng.gen_range(0u8..16)),
                rng.gen_range(0u64..1 << 30),
            );
            let stall = rng.gen_range(0u8..=255);
            match rng.gen_range(0u32..4) {
                0 => TraceEvent::ifetch(addr, stall),
                1 => TraceEvent::load(addr),
                2 => TraceEvent::store(addr),
                _ => TraceEvent::partial_store(addr).with_syscall(),
            }
        })
        .collect()
}

fn encoded(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(&mut buf, events).expect("in-memory write cannot fail");
    buf
}

#[test]
fn every_truncation_is_detected() {
    let events = sample_events(11, 32);
    let buf = encoded(&events);
    for cut in 0..buf.len() {
        match read_trace(&buf[..cut]) {
            Err(_) => {}
            Ok(back) => panic!(
                "truncation to {cut}/{} bytes misparsed as a clean {}-event trace",
                buf.len(),
                back.len()
            ),
        }
    }
    // The untruncated buffer still reads cleanly (sanity).
    assert_eq!(read_trace(buf.as_slice()).expect("clean"), events);
}

#[test]
fn every_single_bit_flip_is_detected() {
    let events = sample_events(12, 24);
    let buf = encoded(&events);
    let mut copy = buf.clone();
    for i in 0..copy.len() {
        for bit in 0..8 {
            copy[i] ^= 1 << bit;
            match read_trace(copy.as_slice()) {
                Err(_) => {}
                Ok(back) => {
                    // The one benign mutation would be parsing back the
                    // exact original events — impossible after a flip,
                    // so any Ok here is a silent misparse.
                    panic!(
                        "bit {bit} of byte {i} flipped: misparsed as {} clean events",
                        back.len()
                    );
                }
            }
            copy[i] ^= 1 << bit;
        }
    }
    assert_eq!(copy, buf, "mutation loop must restore the buffer");
}

#[test]
fn seeded_multi_byte_mutations_are_detected() {
    let events = sample_events(13, 48);
    let buf = encoded(&events);
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..500 {
        let mut copy = buf.clone();
        let edits = rng.gen_range(1usize..=4);
        for _ in 0..edits {
            let i = rng.gen_range(0usize..copy.len());
            let b = rng.gen_range(1u8..=255);
            copy[i] ^= b;
        }
        if copy == buf {
            continue; // the edits cancelled out; nothing to detect
        }
        assert!(
            read_trace(copy.as_slice()).is_err(),
            "a mutated trace must never read cleanly"
        );
    }
}

#[test]
fn streaming_reader_flags_corruption_after_the_fact() {
    // The streaming reader yields events before it can know the footer
    // is wrong; the contract is that `error()` reports the corruption
    // once the stream is exhausted — callers must check it.
    let events = sample_events(14, 16);
    let mut buf = encoded(&events);
    let mid = 16 + 5 * 10 + 3; // header + five events + into the sixth
    buf[mid] ^= 0x40;
    let mut r = TraceReader::new(buf.as_slice()).expect("header is intact");
    let _streamed: Vec<TraceEvent> = r.by_ref().collect();
    assert!(
        matches!(
            r.error(),
            Some(ReadTraceError::BadChecksum { .. } | ReadTraceError::BadKind(_))
        ),
        "corruption must surface through error(): {:?}",
        r.error()
    );
}

#[test]
fn boundary_truncations_name_the_right_failure() {
    let events = sample_events(15, 8);
    let buf = encoded(&events);
    let header = 16; // magic + version + count
                     // Cut exactly at each event boundary: count now overstates events.
    for k in 0..events.len() {
        let cut = header + k * 10;
        assert!(
            matches!(
                read_trace(&buf[..cut]).unwrap_err(),
                ReadTraceError::Truncated
            ),
            "cut at event boundary {k}"
        );
    }
    // Cut exactly before the footer: events all read, checksum missing.
    let cut = buf.len() - 4;
    assert!(matches!(
        read_trace(&buf[..cut]).unwrap_err(),
        ReadTraceError::Truncated
    ));
}
