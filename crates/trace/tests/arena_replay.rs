//! Arena-replay identity: an [`arena`] cursor must yield an event stream
//! byte-identical to direct streaming generation — events, batch
//! boundaries, CPU-stall annotations, partial-word flags and syscall
//! markers — for every benchmark model at multiple scales.

use gaas_trace::arena;
use gaas_trace::bench_model::suite;
use gaas_trace::gen::TraceGenerator;
use gaas_trace::{Pid, Trace, TraceEvent};

// The larger scale clears gcc's ≈22 k-instruction syscall interval so the
// replay identity also covers syscall markers.
const SCALES: [f64; 2] = [1e-4, 1e-3];

fn drain_per_event(t: &mut dyn Trace) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    while let Some(ev) = <dyn Trace>::next(t) {
        out.push(ev);
    }
    out
}

/// Drains through `next_batch` with a deliberately odd batch size so
/// arena chunk boundaries cannot hide behind generator batch boundaries.
fn drain_batched(t: &mut dyn Trace, batch: usize) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    loop {
        let before = out.len();
        let n = t.next_batch(&mut out, batch);
        assert_eq!(out.len() - before, n, "next_batch must append exactly n");
        if n == 0 {
            break;
        }
    }
    out
}

#[test]
fn arena_cursor_is_byte_identical_to_direct_generation() {
    let mut stalls_seen = false;
    let mut syscalls_seen = false;
    for spec in &suite() {
        for (si, &scale) in SCALES.iter().enumerate() {
            let pid = Pid::new(si as u8);
            let direct = drain_per_event(&mut TraceGenerator::new(spec, pid, scale));
            let replay = drain_per_event(&mut *arena::cursor(spec, pid, scale));
            assert_eq!(
                direct, replay,
                "{} at scale {scale}: per-event replay diverged",
                spec.name
            );
            stalls_seen |= direct.iter().any(|e| e.stall_cycles > 0);
            syscalls_seen |= direct.iter().any(|e| e.syscall);
        }
    }
    // The identity above only proves something about the annotations if
    // the streams actually carry them.
    assert!(
        stalls_seen,
        "suite streams should contain stall annotations"
    );
    assert!(
        syscalls_seen,
        "suite streams should contain syscall markers"
    );
}

#[test]
fn arena_batches_concatenate_identically_to_direct_batches() {
    for spec in &suite() {
        let pid = Pid::new(7);
        let scale = SCALES[0];
        let direct = drain_batched(&mut TraceGenerator::new(spec, pid, scale), 257);
        let replay = drain_batched(&mut *arena::cursor(spec, pid, scale), 257);
        assert_eq!(
            direct, replay,
            "{}: batched replay diverged at batch size 257",
            spec.name
        );
        // Mixed draining (a few single events, then batches) must continue
        // from the same position.
        let mut mixed_src = arena::cursor(spec, pid, scale);
        let mut mixed = Vec::new();
        for _ in 0..3 {
            mixed.extend(mixed_src.next());
        }
        mixed.extend(drain_batched(&mut *mixed_src, 64));
        assert_eq!(direct, mixed, "{}: mixed draining diverged", spec.name);
    }
}

#[test]
fn cursor_names_match_benchmark_names() {
    for spec in &suite() {
        let c = arena::cursor(spec, Pid::new(0), SCALES[0]);
        assert_eq!(c.name(), spec.name);
    }
}
