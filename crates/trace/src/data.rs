//! Synthetic data-reference model.
//!
//! Produces load/store word addresses with three locality mechanisms that
//! together span the behaviours the paper's workload exhibits:
//!
//! * **stack** references — frame-local, very high temporal locality, the
//!   depth random-walks slowly so the footprint is tiny;
//! * **nested working-set levels** — uniform references within levels of
//!   increasing size, with short sequential runs for line-level spatial
//!   locality; the level sizes and weights shape the miss-ratio-vs-size
//!   curve of each benchmark;
//! * **streams** — sequential sweeps over large arrays (FORTRAN kernels
//!   such as matrix300/tomcatv), which is what keeps the L2-D speed–size
//!   curve of Fig. 8 improving out to 512 KW.

use crate::addr::PAGE_WORDS;
use crate::bench_model::DataModel;
use crate::rng::{bernoulli_threshold, SmallRng, F64_DRAW_SHIFT};

/// Word address where the static/heap data segment begins (MIPS convention:
/// byte 0x1000_0000).
pub const DATA_BASE_WORD: u64 = 0x0400_0000;

/// Word address of the top of the stack region.
pub const STACK_TOP_WORD: u64 = 0x1FFF_F000;

/// Words per stack frame in the model.
const FRAME_WORDS: u64 = 64;

/// Maximum modelled stack depth (frames).
const MAX_STACK_FRAMES: u64 = 48;

/// Mean length of a sequential run after a jump within a working-set level.
const MEAN_RUN_WORDS: u32 = 6;

/// Width of a hot-set granule in words. Eight-word granules give the hot
/// set the spatial locality real programs exhibit at record/struct
/// granularity (and what makes the paper's 8 W fetch size win, §8).
pub const GRANULE_WORDS: u64 = 8;

/// Active-window size within a level: cold references land in a window of
/// at most this many words, which *drifts* across the level, so the
/// instantaneous working set is small (L2-resident) while the long-run
/// footprint is the whole level.
const WINDOW_WORDS: u64 = 1024;

/// The window origin advances [`DRIFT_STEP_WORDS`] every
/// [`DRIFT_PERIOD`] cold accesses to the level.
const DRIFT_PERIOD: u32 = 128;

/// Words the window origin advances per drift step.
const DRIFT_STEP_WORDS: u64 = 8;

#[derive(Debug, Clone, Copy)]
enum Region {
    Stack,
    Level(u32),
    Stream(u32),
}

#[derive(Debug, Clone, Copy)]
struct LevelState {
    base: u64,
    words: u64,
    /// Next address of the current sequential run.
    run_addr: u64,
    /// Remaining words in the current sequential run.
    run_left: u32,
    /// Origin (offset within the level) of the drifting active window.
    origin: u64,
    /// Active-window length in words.
    window: u64,
    /// Cold accesses since the last drift step.
    cold_count: u32,
}

#[derive(Debug, Clone, Copy)]
struct StreamState {
    base: u64,
    len: u64,
    pos: u64,
    repeat: u32,
    touched: u32,
}

/// Stateful generator of data-reference word addresses for one process.
#[derive(Debug, Clone)]
pub struct DataStream {
    /// Cumulative region weights as 53-bit draw thresholds.
    regions: Vec<(u64, Region)>,
    levels: Vec<LevelState>,
    streams: Vec<StreamState>,
    stack_depth: u64,
    footprint_words: u64,
    /// True when the model has any hot-set mass (`hot_frac > 0`).
    has_hot: bool,
    /// Hot-set probability for loads (53-bit draw threshold).
    t_hot_load: u64,
    /// Hot-set probability for stores (53-bit draw threshold).
    t_hot_store: u64,
    /// Ring of recently used 4-word granule addresses (the hot set).
    hot: Vec<u64>,
    hot_cap: usize,
    hot_pos: usize,
}

impl DataStream {
    /// Lays out the data segment for a model (levels then streams, each
    /// page-aligned) and initializes region-selection weights.
    pub fn new(model: &DataModel) -> Self {
        let mut next_base = DATA_BASE_WORD;
        let mut page_align = |words: u64| {
            let base = next_base;
            next_base += words.div_ceil(PAGE_WORDS) * PAGE_WORDS;
            base
        };

        let levels: Vec<LevelState> = model
            .levels
            .iter()
            .map(|l| LevelState {
                base: page_align(l.words),
                words: l.words,
                run_addr: 0,
                run_left: 0,
                origin: 0,
                window: l.words.min(WINDOW_WORDS),
                cold_count: 0,
            })
            .collect();
        let streams: Vec<StreamState> = model
            .streams
            .iter()
            .map(|s| StreamState {
                base: page_align(s.len_words),
                len: s.len_words,
                pos: 0,
                repeat: s.repeat.max(1),
                touched: 0,
            })
            .collect();

        let mut regions = Vec::new();
        let mut acc = 0.0;
        if model.stack_weight > 0.0 {
            acc += model.stack_weight;
            regions.push((acc, Region::Stack));
        }
        for (i, l) in model.levels.iter().enumerate() {
            acc += l.weight;
            regions.push((acc, Region::Level(i as u32)));
        }
        for (i, s) in model.streams.iter().enumerate() {
            acc += s.weight;
            regions.push((acc, Region::Stream(i as u32)));
        }
        assert!(
            acc > 0.0,
            "data model must have at least one weighted region"
        );
        let regions = regions
            .into_iter()
            .map(|(w, r)| (bernoulli_threshold(w / acc), r))
            .collect();

        DataStream {
            regions,
            levels,
            streams,
            stack_depth: 4,
            footprint_words: next_base - DATA_BASE_WORD,
            has_hot: model.hot_frac > 0.0,
            t_hot_load: bernoulli_threshold(model.hot_frac),
            // Stores redirect 90 % of their cold mass to the hot set.
            t_hot_store: bernoulli_threshold(1.0 - (1.0 - model.hot_frac) * 0.10),
            hot: Vec::with_capacity(model.hot_lines),
            hot_cap: model.hot_lines.max(1),
            hot_pos: 0,
        }
    }

    /// Total static/heap footprint in words (excludes the stack region).
    pub fn footprint_words(&self) -> u64 {
        self.footprint_words
    }

    /// Produces the next data word address for a load.
    pub fn next_addr(&mut self, rng: &mut SmallRng) -> u64 {
        self.next_addr_kind(rng, false)
    }

    /// Produces the next data word address for a store. Stores are biased
    /// further toward the hot set: programs overwhelmingly write locations
    /// they recently read (the paper's base architecture sees a 98 % write
    /// hit rate in a 4 KW cache).
    pub fn next_store_addr(&mut self, rng: &mut SmallRng) -> u64 {
        self.next_addr_kind(rng, true)
    }

    fn next_addr_kind(&mut self, rng: &mut SmallRng, store: bool) -> u64 {
        // Short-reuse-distance mass: re-touch a recent granule.
        let t_hot = if store {
            self.t_hot_store
        } else {
            self.t_hot_load
        };
        if !self.hot.is_empty() && self.has_hot && (rng.next_u64() >> F64_DRAW_SHIFT) < t_hot {
            let g = self.hot[rng.gen_range(0..self.hot.len())];
            return g * GRANULE_WORDS + rng.gen_range(0..GRANULE_WORDS);
        }

        let m = rng.next_u64() >> F64_DRAW_SHIFT;
        let region = self
            .regions
            .iter()
            .find(|(t, _)| m < *t)
            .map(|(_, r)| *r)
            .unwrap_or(self.regions.last().expect("nonempty regions").1);

        let addr = match region {
            Region::Stack => {
                // Slow random walk of the frame depth; accesses land in the
                // current frame.
                match rng.gen_range(0u32..64) {
                    0 => self.stack_depth = (self.stack_depth + 1).min(MAX_STACK_FRAMES),
                    1 => self.stack_depth = self.stack_depth.saturating_sub(1).max(1),
                    _ => {}
                }
                let frame_base = STACK_TOP_WORD - self.stack_depth * FRAME_WORDS;
                frame_base + rng.gen_range(0..FRAME_WORDS)
            }
            Region::Level(i) => {
                let l = &mut self.levels[i as usize];
                if l.run_left == 0 || l.run_addr >= l.base + l.words {
                    // Jump uniformly within the drifting active window.
                    let off = (l.origin + rng.gen_range(0..l.window)) % l.words;
                    l.run_addr = l.base + off;
                    l.run_left = 1 + rng.gen_range(0..2 * MEAN_RUN_WORDS);
                    l.cold_count += 1;
                    if l.cold_count >= DRIFT_PERIOD {
                        l.cold_count = 0;
                        l.origin = (l.origin + DRIFT_STEP_WORDS) % l.words;
                    }
                }
                let a = l.run_addr;
                l.run_addr += 1;
                l.run_left -= 1;
                a
            }
            Region::Stream(i) => {
                let s = &mut self.streams[i as usize];
                let a = s.base + s.pos;
                s.touched += 1;
                if s.touched >= s.repeat {
                    s.touched = 0;
                    s.pos += 1;
                    if s.pos >= s.len {
                        s.pos = 0;
                    }
                }
                a
            }
        };

        // Cold references refill the hot set.
        let granule = addr / GRANULE_WORDS;
        if self.hot.len() < self.hot_cap {
            self.hot.push(granule);
        } else {
            self.hot[self.hot_pos] = granule;
            self.hot_pos = (self.hot_pos + 1) % self.hot_cap;
        }
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_model::{StreamSpec, WorkingSetLevel};

    fn model() -> DataModel {
        DataModel {
            hot_frac: 0.0,
            hot_lines: 64,
            stack_weight: 0.3,
            levels: vec![
                WorkingSetLevel {
                    words: 1024,
                    weight: 0.3,
                },
                WorkingSetLevel {
                    words: 32768,
                    weight: 0.2,
                },
            ],
            streams: vec![StreamSpec {
                len_words: 8192,
                weight: 0.2,
                repeat: 1,
            }],
            partial_store_frac: 0.1,
        }
    }

    #[test]
    fn addresses_fall_in_known_regions() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut d = DataStream::new(&model());
        let fp = d.footprint_words();
        for _ in 0..100_000 {
            let a = d.next_addr(&mut rng);
            let in_data = (DATA_BASE_WORD..DATA_BASE_WORD + fp).contains(&a);
            let in_stack =
                (STACK_TOP_WORD - MAX_STACK_FRAMES * FRAME_WORDS..STACK_TOP_WORD).contains(&a);
            assert!(in_data || in_stack, "stray address {a:#x}");
        }
    }

    #[test]
    fn regions_are_page_aligned_and_disjoint() {
        let d = DataStream::new(&model());
        let mut prev_end = DATA_BASE_WORD;
        for l in &d.levels {
            assert_eq!(l.base % PAGE_WORDS, 0);
            assert!(l.base >= prev_end);
            prev_end = l.base + l.words;
        }
        for s in &d.streams {
            assert_eq!(s.base % PAGE_WORDS, 0);
            assert!(s.base >= prev_end);
            prev_end = s.base + s.len;
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let run = || {
            let mut rng = SmallRng::seed_from_u64(9);
            let mut d = DataStream::new(&model());
            (0..5_000)
                .map(|_| d.next_addr(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn streams_sweep_sequentially() {
        let m = DataModel {
            hot_frac: 0.0,
            hot_lines: 64,
            stack_weight: 0.0,
            levels: vec![],
            streams: vec![StreamSpec {
                len_words: 100,
                weight: 1.0,
                repeat: 1,
            }],
            partial_store_frac: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let mut d = DataStream::new(&m);
        let first = d.next_addr(&mut rng);
        for i in 1..250 {
            let a = d.next_addr(&mut rng);
            assert_eq!(a, first + (i % 100), "wraps at stream length");
        }
    }

    #[test]
    fn stack_only_model_has_tiny_footprint() {
        let m = DataModel {
            hot_frac: 0.0,
            hot_lines: 64,
            stack_weight: 1.0,
            levels: vec![],
            streams: vec![],
            partial_store_frac: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let mut d = DataStream::new(&m);
        use std::collections::HashSet;
        let uniq: HashSet<u64> = (0..50_000).map(|_| d.next_addr(&mut rng)).collect();
        assert!(uniq.len() as u64 <= MAX_STACK_FRAMES * FRAME_WORDS + FRAME_WORDS);
    }

    #[test]
    #[should_panic(expected = "at least one weighted region")]
    fn empty_model_panics() {
        let m = DataModel {
            hot_frac: 0.0,
            hot_lines: 64,
            stack_weight: 0.0,
            levels: vec![],
            streams: vec![],
            partial_store_frac: 0.0,
        };
        let _ = DataStream::new(&m);
    }

    #[test]
    fn level_runs_stay_inside_level() {
        let m = DataModel {
            hot_frac: 0.0,
            hot_lines: 64,
            stack_weight: 0.0,
            levels: vec![WorkingSetLevel {
                words: 64,
                weight: 1.0,
            }],
            streams: vec![],
            partial_store_frac: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let mut d = DataStream::new(&m);
        for _ in 0..10_000 {
            let a = d.next_addr(&mut rng);
            assert!((DATA_BASE_WORD..DATA_BASE_WORD + 64).contains(&a));
        }
    }
}
