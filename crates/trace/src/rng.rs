//! Self-contained deterministic PRNG (xoshiro256++).
//!
//! The reproduction previously leaned on the external `rand` crate for its
//! `SmallRng`; this module replaces it with a vendored implementation so the
//! workspace builds hermetically (no network, no registry) and so every
//! consumer — trace generators, property tests, and the fault injector —
//! shares one well-specified, seed-stable stream. The generator is David
//! Blackman and Sebastiano Vigna's **xoshiro256++**, seeded through
//! SplitMix64, the same construction `rand`'s 64-bit `SmallRng` uses.
//!
//! Determinism is a hard requirement here, not a convenience: the paper's
//! experiments are only comparable because a `(spec, pid, scale)` triple
//! always produces the identical trace, and the fault-injection campaigns
//! (see `gaas-cache::fault`) promise that one seed reproduces the same
//! fault sites on every run.
//!
//! # Examples
//!
//! ```
//! use gaas_trace::rng::SmallRng;
//!
//! let mut a = SmallRng::seed_from_u64(42);
//! let mut b = SmallRng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x: f64 = a.gen();
//! assert!((0.0..1.0).contains(&x));
//! assert!(a.gen_range(10u64..20) >= 10);
//! ```

/// A small, fast, seedable PRNG (xoshiro256++ with SplitMix64 seeding).
///
/// Not cryptographically secure; intended for simulation workloads where
/// speed and reproducibility matter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample of `T` over its natural domain (`f64` in `[0, 1)`;
    /// integers over their full range; `bool` fair).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample within `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Bits discarded from a raw [`SmallRng::next_u64`] output to form the
/// 53-bit mantissa draw behind `gen::<f64>()`.
pub const F64_DRAW_SHIFT: u32 = 11;

/// Converts a probability into an integer threshold on the 53-bit draw
/// `m = next_u64() >> F64_DRAW_SHIFT` such that
///
/// ```text
/// m < bernoulli_threshold(p)  ⟺  gen::<f64>() < p
/// ```
///
/// **bit-for-bit**, for the same raw draw. `gen::<f64>()` is
/// `m · 2⁻⁵³`, so `m · 2⁻⁵³ < p ⟺ m < p · 2⁵³ ⟺ m < ⌈p · 2⁵³⌉` (`m` is an
/// integer, and `p · 2⁵³` is computed exactly — scaling by a power of two
/// only changes the exponent). Hot paths compare one integer instead of
/// converting to `f64` and comparing floats; the trace streams are
/// unchanged.
pub fn bernoulli_threshold(p: f64) -> u64 {
    const ONE: u64 = 1 << 53;
    let scaled = (p * ONE as f64).ceil();
    if scaled >= ONE as f64 {
        ONE // p ≥ 1: every draw is below the threshold.
    } else if scaled > 0.0 {
        scaled as u64
    } else {
        0 // p ≤ 0 (or NaN): never taken, as the f64 compare would be.
    }
}

/// Types [`SmallRng::gen`] can produce.
pub trait Sample: Sized {
    /// Draws one uniform value.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Sample for f64 {
    fn sample(rng: &mut SmallRng) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize);

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

/// Uniform integer in `[0, span)` via the widening-multiply map (fast, and
/// with a 64-bit source the bias is at most 2⁻⁶⁴ · span — irrelevant for
/// simulation).
fn below(rng: &mut SmallRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn range_stays_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.gen_range(0u64..8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1000 {
            let v = r.gen_range(10u32..=12);
            assert!((10..=12).contains(&v));
        }
        for _ in 0..1000 {
            assert!(r.gen_range(5usize..6) == 5, "single-element range");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(6);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
        let mut r2 = SmallRng::seed_from_u64(6);
        assert!(!(0..1000).any(|_| r2.gen_bool(0.0)));
        let mut r3 = SmallRng::seed_from_u64(6);
        assert!((0..1000).all(|_| r3.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(8);
        let _ = r.gen_range(5u64..5);
    }

    #[test]
    fn bernoulli_threshold_matches_f64_compare_exactly() {
        let ps = [
            0.0,
            -0.5,
            1.0,
            1.5,
            0.25,
            0.1,
            0.3333333333333333,
            0.97,
            1e-9,
            0.9999999999,
        ];
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..20_000 {
            let raw = r.next_u64();
            let m = raw >> F64_DRAW_SHIFT;
            let x = m as f64 * (1.0 / (1u64 << 53) as f64);
            for &p in &ps {
                assert_eq!(
                    m < bernoulli_threshold(p),
                    x < p,
                    "diverged at p={p}, m={m}"
                );
            }
        }
    }

    #[test]
    fn known_first_output_is_stable() {
        // Pin the stream so accidental algorithm changes are caught: these
        // values are what xoshiro256++ seeded via SplitMix64(0) produces.
        let mut r = SmallRng::seed_from_u64(0);
        let first = r.next_u64();
        let mut r2 = SmallRng::seed_from_u64(0);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r.next_u64(), "stream advances");
    }
}
