//! `trace-tool` — generate, capture and inspect GTRC address traces.
//!
//! ```text
//! trace-tool list
//! trace-tool gen <benchmark> [--scale S] [--pid N] [-o FILE]
//! trace-tool info <FILE>
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use gaas_trace::bench_model::suite;
use gaas_trace::file::{write_trace, TraceReader};
use gaas_trace::gen::TraceGenerator;
use gaas_trace::stats::TraceStats;
use gaas_trace::Pid;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!(
                "{:<11} {:>12} {:>7} {:>7} {:>9}",
                "benchmark", "instructions", "loads", "stores", "syscalls"
            );
            for b in suite() {
                println!(
                    "{:<11} {:>12} {:>6.1}% {:>6.1}% {:>9}",
                    b.name,
                    b.instructions,
                    100.0 * b.load_frac,
                    100.0 * b.store_frac,
                    b.syscalls
                );
            }
            ExitCode::SUCCESS
        }
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        _ => {
            eprintln!(
                "usage: trace-tool list\n       trace-tool gen <benchmark> [--scale S] [--pid N] [-o FILE]\n       trace-tool info <FILE>"
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("gen: missing benchmark name (see `trace-tool list`)");
        return ExitCode::from(2);
    };
    let mut scale = 1e-3f64;
    let mut pid = 0u8;
    let mut out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 && v <= 1.0 => scale = v,
                _ => {
                    eprintln!("gen: --scale must be in (0, 1]");
                    return ExitCode::from(2);
                }
            },
            "--pid" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => pid = v,
                None => {
                    eprintln!("gen: bad --pid");
                    return ExitCode::from(2);
                }
            },
            "-o" | "--out" => out = it.next().cloned(),
            other => {
                eprintln!("gen: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(spec) = suite().into_iter().find(|b| b.name == name.as_str()) else {
        eprintln!("gen: unknown benchmark '{name}' (see `trace-tool list`)");
        return ExitCode::from(2);
    };
    let events: Vec<_> = TraceGenerator::new(&spec, Pid::new(pid), scale).collect();
    let stats = TraceStats::from_events(events.iter().copied());
    eprintln!(
        "{}: {} events ({} instr, {:.1}% loads, {:.1}% stores, {} syscalls)",
        spec.name,
        events.len(),
        stats.instructions,
        stats.load_pct(),
        stats.store_pct(),
        stats.syscalls
    );
    let path = out.unwrap_or_else(|| format!("{name}.gtrc"));
    match File::create(&path)
        .map(BufWriter::new)
        .and_then(|w| write_trace(w, &events))
    {
        Ok(()) => {
            eprintln!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gen: cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("info: missing file");
        return ExitCode::from(2);
    };
    let file = match File::open(path) {
        Ok(f) => BufReader::new(f),
        Err(e) => {
            eprintln!("info: cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut reader = match TraceReader::new(file) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("info: {e}");
            return ExitCode::FAILURE;
        }
    };
    let declared = reader.remaining();
    let mut stats = TraceStats::new();
    for ev in reader.by_ref() {
        stats.record(&ev);
    }
    if let Some(e) = reader.error() {
        eprintln!(
            "info: trace damaged after {} events: {e}",
            stats.references()
        );
        return ExitCode::FAILURE;
    }
    println!("{path}: {declared} events");
    println!(
        "  {} instructions, {} loads ({:.1}%), {} stores ({:.1}%), {} partial",
        stats.instructions,
        stats.loads,
        stats.load_pct(),
        stats.stores,
        stats.store_pct(),
        stats.partial_stores
    );
    println!(
        "  {} syscalls, stall CPI {:.3}, {} code pages, {} data pages",
        stats.syscalls,
        stats.stall_cpi(),
        stats.code_page_footprint(),
        stats.data_page_footprint()
    );
    ExitCode::SUCCESS
}
