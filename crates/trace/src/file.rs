//! Compact binary trace file format.
//!
//! Lets workloads be captured once and replayed (the paper pipes `pixie`
//! output through file descriptors; we offer files as the moral
//! equivalent for fixtures and debugging). The format is versioned and
//! self-describing; since version 2 it is also **checksummed**, so bit
//! corruption anywhere in the stream — not just truncation — is detected
//! rather than silently misparsed (cf. the parity/ECC theme of the
//! paper's own SRAM arrays):
//!
//! ```text
//! magic "GTRC" | version u32 LE | event count u64 LE | events... | crc32 u32 LE
//! event: tag u8 | stall u8 | addr u64 LE
//! tag bits: [1:0] kind (0=IFetch, 1=Load, 2=Store), [2] partial, [3] syscall
//! ```
//!
//! The trailing CRC32 ([`crate::crc`]) covers every preceding byte,
//! header included. Version-1 files (no footer) are still read; writers
//! always emit version 2.

use std::fmt;
use std::io::{self, Read, Write};

use crate::addr::VirtAddr;
use crate::crc::Crc32;
use crate::event::{AccessKind, Trace, TraceEvent};

const MAGIC: [u8; 4] = *b"GTRC";
/// Current (written) format version: checksum footer present.
const VERSION: u32 = 2;
/// Legacy format version: no footer; still accepted by readers.
const LEGACY_VERSION: u32 = 1;

/// Error raised when reading a malformed trace file.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// An event record carried an invalid kind tag.
    BadKind(u8),
    /// The stream ended before the declared event count (or the version-2
    /// footer) was read.
    Truncated,
    /// The version-2 checksum footer did not match the stream contents:
    /// the file is bit-corrupt.
    BadChecksum {
        /// CRC32 stored in the footer.
        stored: u32,
        /// CRC32 computed over the bytes actually read.
        computed: u32,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => write!(f, "not a GTRC trace file"),
            ReadTraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::BadKind(k) => write!(f, "invalid event kind tag {k}"),
            ReadTraceError::Truncated => write!(f, "trace file truncated"),
            ReadTraceError::BadChecksum { stored, computed } => write!(
                f,
                "trace checksum mismatch: footer {stored:08x}, stream {computed:08x} (bit corruption)"
            ),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

fn encode_tag(ev: &TraceEvent) -> u8 {
    let kind = match ev.kind {
        AccessKind::IFetch => 0u8,
        AccessKind::Load => 1,
        AccessKind::Store => 2,
    };
    kind | ((ev.partial_word as u8) << 2) | ((ev.syscall as u8) << 3)
}

fn decode_tag(tag: u8) -> Result<(AccessKind, bool, bool), ReadTraceError> {
    let kind = match tag & 0b11 {
        0 => AccessKind::IFetch,
        1 => AccessKind::Load,
        2 => AccessKind::Store,
        k => return Err(ReadTraceError::BadKind(k)),
    };
    Ok((kind, tag & 0b100 != 0, tag & 0b1000 != 0))
}

/// Writes `events` to `writer` in GTRC version-2 format (checksummed).
///
/// A `&mut` reference to a writer can be passed where a writer is expected.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
///
/// # Examples
///
/// ```
/// # use gaas_trace::{file, TraceEvent, VirtAddr, Pid};
/// # fn main() -> std::io::Result<()> {
/// let events = vec![TraceEvent::ifetch(VirtAddr::new(Pid::new(0), 64), 0)];
/// let mut buf = Vec::new();
/// file::write_trace(&mut buf, &events)?;
/// let back = file::read_trace(buf.as_slice()).expect("well-formed");
/// assert_eq!(back, events);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(mut writer: W, events: &[TraceEvent]) -> io::Result<()> {
    let mut crc = Crc32::new();
    let mut put = |writer: &mut W, bytes: &[u8]| -> io::Result<()> {
        crc.update(bytes);
        writer.write_all(bytes)
    };
    put(&mut writer, &MAGIC)?;
    put(&mut writer, &VERSION.to_le_bytes())?;
    put(&mut writer, &(events.len() as u64).to_le_bytes())?;
    for ev in events {
        put(&mut writer, &[encode_tag(ev), ev.stall_cycles])?;
        put(&mut writer, &ev.addr.raw().to_le_bytes())?;
    }
    let digest = crc.finish();
    writer.write_all(&digest.to_le_bytes())
}

/// Reads a complete GTRC trace from `reader` (version 1 or 2; the
/// version-2 checksum footer is verified).
///
/// A `&mut` reference to a reader can be passed where a reader is expected.
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failure, malformed input, or (for
/// version-2 streams) a checksum mismatch.
pub fn read_trace<R: Read>(reader: R) -> Result<Vec<TraceEvent>, ReadTraceError> {
    let mut r = TraceReader::new(reader)?;
    let mut events = Vec::with_capacity(r.remaining().min(1 << 24) as usize);
    events.extend(r.by_ref());
    match r.error.take() {
        Some(e) => Err(e),
        None => Ok(events),
    }
}

fn raw_to_addr(raw: u64) -> VirtAddr {
    use crate::addr::{Pid, PID_SHIFT};
    VirtAddr::new(
        Pid::new((raw >> PID_SHIFT) as u8),
        raw & ((1u64 << PID_SHIFT) - 1),
    )
}

/// A streaming GTRC reader: yields events incrementally without
/// materializing the whole trace (full-scale traces run to billions of
/// events). Malformed records end the stream; check
/// [`TraceReader::error`] after exhaustion to distinguish clean EOF from
/// corruption. For version-2 streams the checksum footer is verified
/// when the final event has been read; a mismatch surfaces as
/// [`ReadTraceError::BadChecksum`] through the same channel.
#[derive(Debug)]
pub struct TraceReader<R> {
    reader: R,
    remaining: u64,
    version: u32,
    crc: Crc32,
    footer_checked: bool,
    error: Option<ReadTraceError>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a GTRC stream, validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] when the header is malformed.
    pub fn new(mut reader: R) -> Result<Self, ReadTraceError> {
        let mut crc = Crc32::new();
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(ReadTraceError::BadMagic);
        }
        crc.update(&magic);
        let mut v = [0u8; 4];
        reader.read_exact(&mut v)?;
        let version = u32::from_le_bytes(v);
        if version != VERSION && version != LEGACY_VERSION {
            return Err(ReadTraceError::BadVersion(version));
        }
        crc.update(&v);
        let mut c = [0u8; 8];
        reader.read_exact(&mut c)?;
        crc.update(&c);
        Ok(TraceReader {
            reader,
            remaining: u64::from_le_bytes(c),
            version,
            crc,
            footer_checked: false,
            error: None,
        })
    }

    /// Events left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The error that terminated the stream early, if any.
    pub fn error(&self) -> Option<&ReadTraceError> {
        self.error.as_ref()
    }

    /// Reads and verifies the version-2 footer once all events are
    /// consumed (no-op for legacy streams).
    fn check_footer(&mut self) {
        if self.footer_checked || self.version == LEGACY_VERSION {
            return;
        }
        self.footer_checked = true;
        let mut f = [0u8; 4];
        if let Err(e) = self.reader.read_exact(&mut f) {
            self.error = Some(if e.kind() == io::ErrorKind::UnexpectedEof {
                ReadTraceError::Truncated
            } else {
                ReadTraceError::Io(e)
            });
            return;
        }
        let stored = u32::from_le_bytes(f);
        let computed = self.crc.finish();
        if stored != computed {
            self.error = Some(ReadTraceError::BadChecksum { stored, computed });
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.error.is_some() {
            return None;
        }
        if self.remaining == 0 {
            self.check_footer();
            return None;
        }
        let mut rec = [0u8; 10];
        if let Err(e) = self.reader.read_exact(&mut rec) {
            self.error = Some(if e.kind() == io::ErrorKind::UnexpectedEof {
                ReadTraceError::Truncated
            } else {
                ReadTraceError::Io(e)
            });
            return None;
        }
        self.crc.update(&rec);
        let (kind, partial_word, syscall) = match decode_tag(rec[0]) {
            Ok(t) => t,
            Err(e) => {
                self.error = Some(e);
                return None;
            }
        };
        self.remaining -= 1;
        let raw = u64::from_le_bytes(rec[2..10].try_into().expect("slice is 8 bytes"));
        Some(TraceEvent {
            kind,
            addr: raw_to_addr(raw),
            stall_cycles: rec[1],
            partial_word,
            syscall,
        })
    }
}

/// A file-backed [`Trace`]: replays an in-memory vector read with
/// [`read_trace`] under a benchmark name.
#[derive(Debug, Clone)]
pub struct FileTrace {
    name: String,
    iter: std::vec::IntoIter<TraceEvent>,
}

impl FileTrace {
    /// Reads a complete trace from `reader` and wraps it as a named trace.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure or malformed input.
    pub fn from_reader<R: Read>(
        name: impl Into<String>,
        reader: R,
    ) -> Result<Self, ReadTraceError> {
        Ok(FileTrace {
            name: name.into(),
            iter: read_trace(reader)?.into_iter(),
        })
    }
}

impl Iterator for FileTrace {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        self.iter.next()
    }
}

impl Trace for FileTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let start = out.len();
        out.extend(self.iter.by_ref().take(max));
        out.len() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pid;

    fn sample_events() -> Vec<TraceEvent> {
        let a = VirtAddr::new(Pid::new(3), 0x1000);
        vec![
            TraceEvent::ifetch(a, 2).with_syscall(),
            TraceEvent::load(a.wrapping_add(4)),
            TraceEvent::partial_store(a.wrapping_add(8)),
            TraceEvent::store(a.wrapping_add(12)),
        ]
    }

    /// Encodes `events` in the legacy (version 1, footer-less) layout.
    fn legacy_bytes(events: &[TraceEvent]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&LEGACY_VERSION.to_le_bytes());
        buf.extend_from_slice(&(events.len() as u64).to_le_bytes());
        for ev in events {
            buf.push(encode_tag(ev));
            buf.push(ev.stall_cycles);
            buf.extend_from_slice(&ev.addr.raw().to_le_bytes());
        }
        buf
    }

    #[test]
    fn round_trip_preserves_events() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(back, events);
    }

    #[test]
    fn legacy_version_still_reads() {
        let events = sample_events();
        let buf = legacy_bytes(&events);
        let back = read_trace(buf.as_slice()).expect("legacy read");
        assert_eq!(back, events);
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        let streamed: Vec<_> = r.by_ref().collect();
        assert_eq!(streamed, events);
        assert!(r.error().is_none(), "legacy streams have no footer");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GTRC");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadVersion(99)));
    }

    #[test]
    fn truncated_rejected() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        buf.truncate(buf.len() - 5);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Truncated));
    }

    #[test]
    fn missing_footer_rejected() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        buf.truncate(buf.len() - 4); // exactly the footer
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Truncated));
    }

    #[test]
    fn flipped_bit_rejected_as_corruption() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        // Flip one address bit in the middle of an event record: the
        // record still decodes, so only the checksum can catch it.
        let idx = 4 + 4 + 8 + 4; // header + one full event + into addr
        buf[idx] ^= 0x10;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, ReadTraceError::BadChecksum { .. }),
            "got {err}"
        );
    }

    #[test]
    fn corrupt_footer_rejected() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadChecksum { .. }));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GTRC");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(0b11); // kind tag 3 is invalid
        buf.push(0);
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadKind(3)));
    }

    #[test]
    fn file_trace_replays_with_name() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let t = FileTrace::from_reader("fixture", buf.as_slice()).expect("read");
        assert_eq!(t.name(), "fixture");
        assert_eq!(t.collect::<Vec<_>>(), events);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).expect("write");
        assert!(read_trace(buf.as_slice()).expect("read").is_empty());
    }

    #[test]
    fn streaming_reader_matches_batch_reader() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        assert_eq!(r.remaining(), events.len() as u64);
        let streamed: Vec<_> = r.by_ref().collect();
        assert_eq!(streamed, events);
        assert!(r.error().is_none(), "clean EOF");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn streaming_reader_reports_truncation() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        buf.truncate(buf.len() - 4 - 5); // footer plus part of the last event
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        let streamed: Vec<_> = r.by_ref().collect();
        assert_eq!(streamed.len(), events.len() - 1);
        assert!(matches!(r.error(), Some(ReadTraceError::Truncated)));
    }

    #[test]
    fn streaming_reader_verifies_footer_exactly_once() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        let n = r.by_ref().count();
        assert_eq!(n, events.len());
        assert!(r.error().is_none());
        // Exhausting again must not re-read or invent errors.
        assert!(r.next().is_none());
        assert!(r.error().is_none());
    }

    #[test]
    fn streaming_reader_rejects_bad_header() {
        assert!(matches!(
            TraceReader::new(&b"XXXX"[..]).unwrap_err(),
            ReadTraceError::BadMagic
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ReadTraceError::BadMagic,
            ReadTraceError::BadVersion(2),
            ReadTraceError::BadKind(3),
            ReadTraceError::Truncated,
            ReadTraceError::BadChecksum {
                stored: 1,
                computed: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
