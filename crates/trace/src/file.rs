//! Compact binary trace file format.
//!
//! Lets workloads be captured once and replayed (the paper pipes `pixie`
//! output through file descriptors; we offer files as the moral
//! equivalent for fixtures and debugging). The format is versioned and
//! self-describing; since version 2 it is **checksummed**, so bit
//! corruption anywhere in the stream — not just truncation — is detected
//! rather than silently misparsed (cf. the parity/ECC theme of the
//! paper's own SRAM arrays). Version 3 moves the event payload onto the
//! [`crate::codec`] block encoding: events are delta-compressed into
//! self-contained checksummed blocks, a tail index records every block's
//! offset, and a whole-file CRC closes the stream:
//!
//! ```text
//! magic "GTRC" | version u32 LE | event count u64 LE     (16-byte header)
//! block*                                                  (codec v3 blocks)
//! index: block offset u64 LE × n | n_blocks u32 LE
//!        | index crc32 u32 LE                             (over offsets + n)
//! file crc32 u32 LE                                       (over all prior bytes)
//! ```
//!
//! The layering buys three properties the flat v2 stream lacked:
//!
//! * **Size** — typical streams shrink 3–4× (delta chains per access
//!   kind; see [`crate::codec`]).
//! * **Localized corruption** — every block carries its own CRC, so a
//!   flipped bit is pinned to one block instead of condemning the file.
//! * **Salvage** — [`salvage_trace`] recovers every intact block through
//!   the tail index (or a sequential scan when the index itself is
//!   damaged), losing at most the corrupted block.
//!
//! Version-2 files (flat 10-byte records, stream CRC footer) and
//! version-1 files (no footer) are still read; writers emit version 3.

use std::fmt;
use std::io::{self, Read, Write};

use crate::addr::VirtAddr;
use crate::codec::{self, BlockError, BLOCK_EVENTS, MAX_EVENT_BYTES};
use crate::crc::{crc32, Crc32};
use crate::event::{AccessKind, Trace, TraceEvent};

const MAGIC: [u8; 4] = *b"GTRC";
/// Current (written) format version: codec blocks + tail index.
const VERSION: u32 = 3;
/// Flat checksummed format: 10-byte records, stream CRC footer.
const V2_VERSION: u32 = 2;
/// Legacy format version: no footer; still accepted by readers.
const LEGACY_VERSION: u32 = 1;
/// Fixed header size (magic + version + count) for every version.
const HEADER_BYTES: usize = 16;
/// Tail bytes after the block offsets: n_blocks + index crc + file crc.
const INDEX_TAIL_BYTES: usize = 12;

/// Error raised when reading a malformed trace file.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// An event record carried an invalid kind tag.
    BadKind(u8),
    /// The stream ended before the declared event count (or the footer)
    /// was read.
    Truncated,
    /// A checksum did not match the stream contents: the file is
    /// bit-corrupt. Raised by the version-2 stream footer, a version-3
    /// block CRC, the index CRC, or the whole-file CRC.
    BadChecksum {
        /// CRC32 stored in the file.
        stored: u32,
        /// CRC32 computed over the bytes actually read.
        computed: u32,
    },
    /// A version-3 event block or the tail index was structurally
    /// malformed (impossible count, oversized frame, offsets that do not
    /// match the blocks actually read).
    BadBlock(BlockError),
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => write!(f, "not a GTRC trace file"),
            ReadTraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::BadKind(k) => write!(f, "invalid event kind tag {k}"),
            ReadTraceError::Truncated => write!(f, "trace file truncated"),
            ReadTraceError::BadChecksum { stored, computed } => write!(
                f,
                "trace checksum mismatch: stored {stored:08x}, computed {computed:08x} (bit corruption)"
            ),
            ReadTraceError::BadBlock(e) => write!(f, "corrupt event block: {e}"),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::BadBlock(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

fn eof_to_truncated(e: io::Error) -> ReadTraceError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        ReadTraceError::Truncated
    } else {
        ReadTraceError::Io(e)
    }
}

/// Maps a codec failure onto the file error space: checksum mismatches
/// keep their identity, everything else is structural.
fn block_to_read_error(e: BlockError) -> ReadTraceError {
    match e {
        BlockError::BadChecksum { stored, computed } => {
            ReadTraceError::BadChecksum { stored, computed }
        }
        other => ReadTraceError::BadBlock(other),
    }
}

/// Flat record tag of the v1/v2 layouts; writers emit v3, so this
/// survives only for test fixtures of the legacy formats.
#[cfg(test)]
fn encode_tag(ev: &TraceEvent) -> u8 {
    let kind = match ev.kind {
        AccessKind::IFetch => 0u8,
        AccessKind::Load => 1,
        AccessKind::Store => 2,
    };
    kind | ((ev.partial_word as u8) << 2) | ((ev.syscall as u8) << 3)
}

fn decode_tag(tag: u8) -> Result<(AccessKind, bool, bool), ReadTraceError> {
    let kind = match tag & 0b11 {
        0 => AccessKind::IFetch,
        1 => AccessKind::Load,
        2 => AccessKind::Store,
        k => return Err(ReadTraceError::BadKind(k)),
    };
    Ok((kind, tag & 0b100 != 0, tag & 0b1000 != 0))
}

/// Writes `events` to `writer` in GTRC version-3 format (delta-compressed
/// checksummed blocks with a tail index and whole-file CRC).
///
/// A `&mut` reference to a writer can be passed where a writer is expected.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
///
/// # Examples
///
/// ```
/// # use gaas_trace::{file, TraceEvent, VirtAddr, Pid};
/// # fn main() -> std::io::Result<()> {
/// let events = vec![TraceEvent::ifetch(VirtAddr::new(Pid::new(0), 64), 0)];
/// let mut buf = Vec::new();
/// file::write_trace(&mut buf, &events)?;
/// let back = file::read_trace(buf.as_slice()).expect("well-formed");
/// assert_eq!(back, events);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(mut writer: W, events: &[TraceEvent]) -> io::Result<()> {
    let mut crc = Crc32::new();
    let mut put = |writer: &mut W, bytes: &[u8]| -> io::Result<()> {
        crc.update(bytes);
        writer.write_all(bytes)
    };
    put(&mut writer, &MAGIC)?;
    put(&mut writer, &VERSION.to_le_bytes())?;
    put(&mut writer, &(events.len() as u64).to_le_bytes())?;
    let mut offsets = Vec::with_capacity(events.len().div_ceil(BLOCK_EVENTS));
    let mut off = HEADER_BYTES as u64;
    let mut addrs = Vec::with_capacity(BLOCK_EVENTS.min(events.len()));
    let mut meta = Vec::with_capacity(BLOCK_EVENTS.min(events.len()));
    let mut block = Vec::new();
    for chunk in events.chunks(BLOCK_EVENTS) {
        addrs.clear();
        meta.clear();
        block.clear();
        for ev in chunk {
            let (a, m) = codec::pack_event(ev);
            addrs.push(a);
            meta.push(m);
        }
        codec::encode_block(&mut block, &addrs, &meta);
        put(&mut writer, &block)?;
        offsets.push(off);
        off += block.len() as u64;
    }
    let mut index = Vec::with_capacity(8 * offsets.len() + 4);
    for &o in &offsets {
        index.extend_from_slice(&o.to_le_bytes());
    }
    index.extend_from_slice(&(offsets.len() as u32).to_le_bytes());
    let index_crc = crc32(&index);
    put(&mut writer, &index)?;
    put(&mut writer, &index_crc.to_le_bytes())?;
    let digest = crc.finish();
    writer.write_all(&digest.to_le_bytes())
}

/// Reads a complete GTRC trace from `reader` (version 1, 2, or 3; every
/// checksum present in the format is verified).
///
/// A `&mut` reference to a reader can be passed where a reader is expected.
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failure, malformed input, or a
/// checksum mismatch.
pub fn read_trace<R: Read>(reader: R) -> Result<Vec<TraceEvent>, ReadTraceError> {
    let mut r = TraceReader::new(reader)?;
    let mut events = Vec::with_capacity(r.remaining().min(1 << 24) as usize);
    events.extend(r.by_ref());
    match r.error.take() {
        Some(e) => Err(e),
        None => Ok(events),
    }
}

fn raw_to_addr(raw: u64) -> VirtAddr {
    use crate::addr::{Pid, PID_SHIFT};
    VirtAddr::new(
        Pid::new((raw >> PID_SHIFT) as u8),
        raw & ((1u64 << PID_SHIFT) - 1),
    )
}

/// A streaming GTRC reader: yields events incrementally without
/// materializing the whole trace (full-scale traces run to billions of
/// events). Malformed records end the stream; check
/// [`TraceReader::error`] after exhaustion to distinguish clean EOF from
/// corruption. Version-3 streams buffer one decoded block at a time and
/// verify each block's CRC before any of its events are yielded; the
/// tail index and whole-file CRC are verified when the final event has
/// been read. Version-2 streams verify the stream footer at the same
/// point. Mismatches surface as [`ReadTraceError::BadChecksum`] through
/// the same channel.
#[derive(Debug)]
pub struct TraceReader<R> {
    reader: R,
    remaining: u64,
    version: u32,
    crc: Crc32,
    footer_checked: bool,
    error: Option<ReadTraceError>,
    /// v3: the current decoded block and the cursor into it.
    block: Vec<TraceEvent>,
    block_pos: usize,
    /// v3: absolute offsets of the blocks read so far, checked against
    /// the tail index at EOF.
    offsets: Vec<u64>,
    /// v3: file offset of the next block.
    next_off: u64,
    /// v3: scratch frame buffer, reused across blocks.
    frame: Vec<u8>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a GTRC stream, validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] when the header is malformed.
    pub fn new(mut reader: R) -> Result<Self, ReadTraceError> {
        let mut crc = Crc32::new();
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(ReadTraceError::BadMagic);
        }
        crc.update(&magic);
        let mut v = [0u8; 4];
        reader.read_exact(&mut v)?;
        let version = u32::from_le_bytes(v);
        if version != VERSION && version != V2_VERSION && version != LEGACY_VERSION {
            return Err(ReadTraceError::BadVersion(version));
        }
        crc.update(&v);
        let mut c = [0u8; 8];
        reader.read_exact(&mut c)?;
        crc.update(&c);
        Ok(TraceReader {
            reader,
            remaining: u64::from_le_bytes(c),
            version,
            crc,
            footer_checked: false,
            error: None,
            block: Vec::new(),
            block_pos: 0,
            offsets: Vec::new(),
            next_off: HEADER_BYTES as u64,
            frame: Vec::new(),
        })
    }

    /// Events left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The error that terminated the stream early, if any.
    pub fn error(&self) -> Option<&ReadTraceError> {
        self.error.as_ref()
    }

    /// Reads and verifies the version-2 footer once all events are
    /// consumed (no-op for legacy streams).
    fn check_footer(&mut self) {
        if self.footer_checked || self.version == LEGACY_VERSION {
            return;
        }
        self.footer_checked = true;
        let mut f = [0u8; 4];
        if let Err(e) = self.reader.read_exact(&mut f) {
            self.error = Some(eof_to_truncated(e));
            return;
        }
        let stored = u32::from_le_bytes(f);
        let computed = self.crc.finish();
        if stored != computed {
            self.error = Some(ReadTraceError::BadChecksum { stored, computed });
        }
    }

    /// Reads the next version-3 block into `self.block`, verifying its
    /// CRC before decoding.
    fn read_block(&mut self) -> Result<(), ReadTraceError> {
        let mut head = [0u8; 8];
        self.reader
            .read_exact(&mut head)
            .map_err(eof_to_truncated)?;
        let count = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as u64;
        let payload_len = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")) as usize;
        // Reject impossible frames before allocating for them: a corrupt
        // length must not drive a multi-gigabyte read.
        if count == 0
            || count > BLOCK_EVENTS as u64
            || count > self.remaining
            || payload_len > BLOCK_EVENTS * MAX_EVENT_BYTES
        {
            return Err(ReadTraceError::BadBlock(BlockError::Malformed));
        }
        self.frame.clear();
        self.frame.resize(8 + payload_len + 4, 0);
        self.frame[..8].copy_from_slice(&head);
        self.reader
            .read_exact(&mut self.frame[8..])
            .map_err(eof_to_truncated)?;
        self.crc.update(&self.frame);
        codec::verify_block(&self.frame).map_err(block_to_read_error)?;
        self.block.clear();
        self.block_pos = 0;
        codec::decode_block_events_unchecked(&self.frame, &mut self.block)
            .map_err(block_to_read_error)?;
        self.offsets.push(self.next_off);
        self.next_off += self.frame.len() as u64;
        Ok(())
    }

    /// Reads and verifies the version-3 tail: the block index (offsets
    /// must match the blocks actually read), the index CRC, and the
    /// whole-file CRC.
    fn check_footer_v3(&mut self) {
        if self.footer_checked {
            return;
        }
        self.footer_checked = true;
        let n = self.offsets.len();
        let mut index = vec![0u8; 8 * n + 4 + 4];
        if let Err(e) = self.reader.read_exact(&mut index) {
            self.error = Some(eof_to_truncated(e));
            return;
        }
        let stored_index_crc = u32::from_le_bytes(index[8 * n + 4..].try_into().expect("4 bytes"));
        let computed_index_crc = crc32(&index[..8 * n + 4]);
        if stored_index_crc != computed_index_crc {
            self.error = Some(ReadTraceError::BadChecksum {
                stored: stored_index_crc,
                computed: computed_index_crc,
            });
            return;
        }
        let stored_n =
            u32::from_le_bytes(index[8 * n..8 * n + 4].try_into().expect("4 bytes")) as usize;
        let offsets_match = stored_n == n
            && self
                .offsets
                .iter()
                .enumerate()
                .all(|(i, &off)| index[8 * i..8 * i + 8] == off.to_le_bytes());
        if !offsets_match {
            self.error = Some(ReadTraceError::BadBlock(BlockError::Malformed));
            return;
        }
        self.crc.update(&index);
        let mut f = [0u8; 4];
        if let Err(e) = self.reader.read_exact(&mut f) {
            self.error = Some(eof_to_truncated(e));
            return;
        }
        let stored = u32::from_le_bytes(f);
        let computed = self.crc.finish();
        if stored != computed {
            self.error = Some(ReadTraceError::BadChecksum { stored, computed });
        }
    }

    fn next_v3(&mut self) -> Option<TraceEvent> {
        loop {
            if self.block_pos < self.block.len() {
                let ev = self.block[self.block_pos];
                self.block_pos += 1;
                self.remaining -= 1;
                return Some(ev);
            }
            if self.remaining == 0 {
                self.check_footer_v3();
                return None;
            }
            if let Err(e) = self.read_block() {
                self.error = Some(e);
                return None;
            }
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.error.is_some() {
            return None;
        }
        if self.version == VERSION {
            return self.next_v3();
        }
        if self.remaining == 0 {
            self.check_footer();
            return None;
        }
        let mut rec = [0u8; 10];
        if let Err(e) = self.reader.read_exact(&mut rec) {
            self.error = Some(eof_to_truncated(e));
            return None;
        }
        self.crc.update(&rec);
        let (kind, partial_word, syscall) = match decode_tag(rec[0]) {
            Ok(t) => t,
            Err(e) => {
                self.error = Some(e);
                return None;
            }
        };
        self.remaining -= 1;
        let raw = u64::from_le_bytes(rec[2..10].try_into().expect("slice is 8 bytes"));
        Some(TraceEvent {
            kind,
            addr: raw_to_addr(raw),
            stall_cycles: rec[1],
            partial_word,
            syscall,
        })
    }
}

/// Outcome summary of [`salvage_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Events recovered.
    pub events: usize,
    /// Blocks that decoded cleanly.
    pub blocks_recovered: usize,
    /// Blocks lost to corruption. Exact when the tail index was usable;
    /// otherwise estimated from the declared event count.
    pub blocks_lost: usize,
    /// Event count the (possibly corrupt) header declares.
    pub declared_events: u64,
    /// Whether the tail index survived and drove recovery. When `false`,
    /// recovery fell back to a sequential scan from the first block and
    /// stops at the first damage.
    pub used_index: bool,
}

/// Parses the tail index of a version-3 byte image, returning the block
/// offsets and the offset where the index region begins. `None` when the
/// index is missing, out of range, or fails its CRC.
fn read_tail_index(bytes: &[u8]) -> Option<(Vec<u64>, usize)> {
    let len = bytes.len();
    if len < HEADER_BYTES + INDEX_TAIL_BYTES {
        return None;
    }
    let n = u32::from_le_bytes(bytes[len - 12..len - 8].try_into().expect("4 bytes")) as usize;
    let index_start = len.checked_sub(INDEX_TAIL_BYTES + 8 * n)?;
    if index_start < HEADER_BYTES {
        return None;
    }
    let stored = u32::from_le_bytes(bytes[len - 8..len - 4].try_into().expect("4 bytes"));
    if crc32(&bytes[index_start..len - 8]) != stored {
        return None;
    }
    let offsets = (0..n)
        .map(|i| {
            u64::from_le_bytes(
                bytes[index_start + 8 * i..index_start + 8 * (i + 1)]
                    .try_into()
                    .expect("8 bytes"),
            )
        })
        .collect();
    Some((offsets, index_start))
}

/// Verifies and decodes the block at `region[0..]` into `events`,
/// rolling back any partially-decoded events on failure. Returns the
/// frame size on success.
fn salvage_block(region: &[u8], events: &mut Vec<TraceEvent>) -> Option<usize> {
    let before = events.len();
    let ok = codec::verify_block(region)
        .and_then(|_| codec::decode_block_events_unchecked(region, events));
    match ok {
        Ok(frame) => Some(frame),
        Err(_) => {
            events.truncate(before);
            None
        }
    }
}

/// Best-effort recovery of a damaged version-3 trace image: returns
/// every event from every block that still verifies, plus a
/// [`SalvageReport`] describing what was lost.
///
/// Strategy: if the tail index survives (its CRC matches), every block
/// is located through it independently, so a single corrupt block costs
/// exactly that block and nothing after it. If the index itself is
/// damaged (e.g. the file was truncated), recovery falls back to a
/// sequential scan from the first block and keeps the intact prefix.
///
/// # Errors
///
/// Returns [`ReadTraceError`] only when `bytes` is not a version-3 GTRC
/// image at all (bad magic, other version, shorter than a header) —
/// anything beyond that is reported through the [`SalvageReport`], not
/// an error.
pub fn salvage_trace(bytes: &[u8]) -> Result<(Vec<TraceEvent>, SalvageReport), ReadTraceError> {
    if bytes.len() < 4 {
        return Err(ReadTraceError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    if bytes.len() < HEADER_BYTES {
        return Err(ReadTraceError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(ReadTraceError::BadVersion(version));
    }
    let declared_events = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let mut events = Vec::new();
    if let Some((offsets, index_start)) = read_tail_index(bytes) {
        let mut recovered = 0usize;
        for &off in &offsets {
            let off = off as usize;
            if off < HEADER_BYTES || off >= index_start {
                continue;
            }
            if salvage_block(&bytes[off..index_start], &mut events).is_some() {
                recovered += 1;
            }
        }
        let report = SalvageReport {
            events: events.len(),
            blocks_recovered: recovered,
            blocks_lost: offsets.len() - recovered,
            declared_events,
            used_index: true,
        };
        return Ok((events, report));
    }
    // Index unusable: sequential scan keeps the intact prefix. Delta
    // chains restart at every block, so each recovered block is
    // self-contained.
    let mut off = HEADER_BYTES;
    let mut recovered = 0usize;
    while off < bytes.len() {
        match salvage_block(&bytes[off..], &mut events) {
            Some(frame) => {
                off += frame;
                recovered += 1;
            }
            None => break,
        }
    }
    let blocks_lost = declared_events
        .saturating_sub(events.len() as u64)
        .div_ceil(BLOCK_EVENTS as u64) as usize;
    let report = SalvageReport {
        events: events.len(),
        blocks_recovered: recovered,
        blocks_lost,
        declared_events,
        used_index: false,
    };
    Ok((events, report))
}

/// A file-backed [`Trace`]: replays an in-memory vector read with
/// [`read_trace`] under a benchmark name.
#[derive(Debug, Clone)]
pub struct FileTrace {
    name: String,
    iter: std::vec::IntoIter<TraceEvent>,
}

impl FileTrace {
    /// Reads a complete trace from `reader` and wraps it as a named trace.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure or malformed input.
    pub fn from_reader<R: Read>(
        name: impl Into<String>,
        reader: R,
    ) -> Result<Self, ReadTraceError> {
        Ok(FileTrace {
            name: name.into(),
            iter: read_trace(reader)?.into_iter(),
        })
    }
}

impl Iterator for FileTrace {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        self.iter.next()
    }
}

impl Trace for FileTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let start = out.len();
        out.extend(self.iter.by_ref().take(max));
        out.len() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pid;

    fn sample_events() -> Vec<TraceEvent> {
        let a = VirtAddr::new(Pid::new(3), 0x1000);
        vec![
            TraceEvent::ifetch(a, 2).with_syscall(),
            TraceEvent::load(a.wrapping_add(4)),
            TraceEvent::partial_store(a.wrapping_add(8)),
            TraceEvent::store(a.wrapping_add(12)),
        ]
    }

    /// A multi-block stream with per-kind locality and occasional jumps.
    fn big_events(n: usize) -> Vec<TraceEvent> {
        let mut rng = crate::rng::SmallRng::seed_from_u64(0xF11E);
        let mut out = Vec::with_capacity(n);
        let code = VirtAddr::new(Pid::new(1), 0x40_0000);
        let data = VirtAddr::new(Pid::new(1), 0x80_0000);
        for i in 0..n {
            let ev = match i % 3 {
                0 => TraceEvent::ifetch(code.wrapping_add((i as u64) * 4), (i % 5) as u8),
                1 => TraceEvent::load(data.wrapping_add(rng.gen_range(0u64..4096) * 4)),
                _ => TraceEvent::store(data.wrapping_add(rng.gen_range(0u64..4096) * 4)),
            };
            out.push(ev);
        }
        out
    }

    /// Encodes `events` in the legacy (version 1, footer-less) layout.
    fn legacy_bytes(events: &[TraceEvent]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&LEGACY_VERSION.to_le_bytes());
        buf.extend_from_slice(&(events.len() as u64).to_le_bytes());
        for ev in events {
            buf.push(encode_tag(ev));
            buf.push(ev.stall_cycles);
            buf.extend_from_slice(&ev.addr.raw().to_le_bytes());
        }
        buf
    }

    /// Encodes `events` in the version-2 (flat records, stream CRC) layout.
    fn v2_bytes(events: &[TraceEvent]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&V2_VERSION.to_le_bytes());
        buf.extend_from_slice(&(events.len() as u64).to_le_bytes());
        for ev in events {
            buf.push(encode_tag(ev));
            buf.push(ev.stall_cycles);
            buf.extend_from_slice(&ev.addr.raw().to_le_bytes());
        }
        let digest = crc32(&buf);
        buf.extend_from_slice(&digest.to_le_bytes());
        buf
    }

    #[test]
    fn round_trip_preserves_events() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(back, events);
    }

    #[test]
    fn multi_block_round_trip_preserves_events() {
        let events = big_events(2 * BLOCK_EVENTS + 177);
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(back, events);
    }

    #[test]
    fn v3_files_are_smaller_than_flat_records() {
        let events = big_events(2 * BLOCK_EVENTS);
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let flat = v2_bytes(&events);
        assert!(
            buf.len() * 2 <= flat.len(),
            "v3 file should be ≤ half the v2 size: {} vs {}",
            buf.len(),
            flat.len()
        );
    }

    #[test]
    fn legacy_version_still_reads() {
        let events = sample_events();
        let buf = legacy_bytes(&events);
        let back = read_trace(buf.as_slice()).expect("legacy read");
        assert_eq!(back, events);
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        let streamed: Vec<_> = r.by_ref().collect();
        assert_eq!(streamed, events);
        assert!(r.error().is_none(), "legacy streams have no footer");
    }

    #[test]
    fn v2_version_still_reads() {
        let events = sample_events();
        let buf = v2_bytes(&events);
        let back = read_trace(buf.as_slice()).expect("v2 read");
        assert_eq!(back, events);
    }

    #[test]
    fn v2_flipped_bit_rejected() {
        let events = sample_events();
        let mut buf = v2_bytes(&events);
        buf[HEADER_BYTES + 3] ^= 0x10; // inside the first record
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadChecksum { .. }));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GTRC");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadVersion(99)));
    }

    #[test]
    fn truncated_rejected() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        buf.truncate(buf.len() - 5);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Truncated));
    }

    #[test]
    fn missing_footer_rejected() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        buf.truncate(buf.len() - 4); // exactly the file CRC
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Truncated));
    }

    #[test]
    fn flipped_bit_rejected_as_corruption() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        // Flip one bit inside the block payload: the block CRC pins it
        // before any event from that block is yielded.
        buf[HEADER_BYTES + 9] ^= 0x10;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, ReadTraceError::BadChecksum { .. }),
            "got {err}"
        );
    }

    #[test]
    fn corrupt_file_footer_rejected() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadChecksum { .. }));
    }

    #[test]
    fn corrupt_index_rejected() {
        let events = big_events(BLOCK_EVENTS + 10);
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        // Flip a bit inside the block-offset table (just before the
        // n_blocks/index-crc/file-crc tail).
        let idx = buf.len() - INDEX_TAIL_BYTES - 8;
        buf[idx] ^= 0x01;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, ReadTraceError::BadChecksum { .. }),
            "got {err}"
        );
    }

    #[test]
    fn bad_kind_rejected_in_v2() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GTRC");
        buf.extend_from_slice(&V2_VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(0b11); // kind tag 3 is invalid
        buf.push(0);
        buf.extend_from_slice(&0u64.to_le_bytes());
        let digest = crc32(&buf);
        buf.extend_from_slice(&digest.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadKind(3)));
    }

    #[test]
    fn file_trace_replays_with_name() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let t = FileTrace::from_reader("fixture", buf.as_slice()).expect("read");
        assert_eq!(t.name(), "fixture");
        assert_eq!(t.collect::<Vec<_>>(), events);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).expect("write");
        assert!(read_trace(buf.as_slice()).expect("read").is_empty());
    }

    #[test]
    fn streaming_reader_matches_batch_reader() {
        let events = big_events(BLOCK_EVENTS + 13);
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        assert_eq!(r.remaining(), events.len() as u64);
        let streamed: Vec<_> = r.by_ref().collect();
        assert_eq!(streamed, events);
        assert!(r.error().is_none(), "clean EOF");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn streaming_reader_reports_truncation_v2() {
        let events = sample_events();
        let mut buf = v2_bytes(&events);
        buf.truncate(buf.len() - 4 - 5); // footer plus part of the last event
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        let streamed: Vec<_> = r.by_ref().collect();
        assert_eq!(streamed.len(), events.len() - 1);
        assert!(matches!(r.error(), Some(ReadTraceError::Truncated)));
    }

    #[test]
    fn streaming_reader_reports_truncation_v3() {
        // Two blocks; cut inside the second. The first block's events
        // stream out intact, then the reader reports truncation.
        let events = big_events(BLOCK_EVENTS + 50);
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let (first_frame, first_count) =
            codec::block_extent(&buf[HEADER_BYTES..]).expect("first block");
        assert_eq!(first_count, BLOCK_EVENTS);
        buf.truncate(HEADER_BYTES + first_frame + 7); // into block 2's frame
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        let streamed: Vec<_> = r.by_ref().collect();
        assert_eq!(streamed, events[..BLOCK_EVENTS]);
        assert!(matches!(r.error(), Some(ReadTraceError::Truncated)));
    }

    #[test]
    fn streaming_reader_verifies_footer_exactly_once() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        let n = r.by_ref().count();
        assert_eq!(n, events.len());
        assert!(r.error().is_none());
        // Exhausting again must not re-read or invent errors.
        assert!(r.next().is_none());
        assert!(r.error().is_none());
    }

    #[test]
    fn streaming_reader_rejects_bad_header() {
        assert!(matches!(
            TraceReader::new(&b"XXXX"[..]).unwrap_err(),
            ReadTraceError::BadMagic
        ));
    }

    #[test]
    fn salvage_of_intact_file_recovers_everything() {
        let events = big_events(3 * BLOCK_EVENTS + 21);
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let (rec, report) = salvage_trace(&buf).expect("v3 image");
        assert_eq!(rec, events);
        assert_eq!(report.blocks_lost, 0);
        assert_eq!(report.blocks_recovered, 4);
        assert_eq!(report.declared_events, events.len() as u64);
        assert!(report.used_index);
    }

    #[test]
    fn salvage_loses_only_the_corrupt_block() {
        let events = big_events(3 * BLOCK_EVENTS);
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        // Corrupt the middle block's payload.
        let (first, _) = codec::block_extent(&buf[HEADER_BYTES..]).expect("b0");
        buf[HEADER_BYTES + first + 20] ^= 0x40;
        let (rec, report) = salvage_trace(&buf).expect("v3 image");
        assert!(report.used_index);
        assert_eq!(report.blocks_recovered, 2);
        assert_eq!(report.blocks_lost, 1);
        assert_eq!(rec.len(), 2 * BLOCK_EVENTS);
        // Blocks 0 and 2 survive verbatim.
        assert_eq!(&rec[..BLOCK_EVENTS], &events[..BLOCK_EVENTS]);
        assert_eq!(&rec[BLOCK_EVENTS..], &events[2 * BLOCK_EVENTS..]);
    }

    #[test]
    fn salvage_of_truncated_file_keeps_the_prefix() {
        let events = big_events(3 * BLOCK_EVENTS);
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let (first, _) = codec::block_extent(&buf[HEADER_BYTES..]).expect("b0");
        let (second, _) = codec::block_extent(&buf[HEADER_BYTES + first..]).expect("b1");
        // Truncation destroys the tail index; the scan keeps blocks 0–1.
        buf.truncate(HEADER_BYTES + first + second + 5);
        let (rec, report) = salvage_trace(&buf).expect("v3 image");
        assert!(!report.used_index);
        assert_eq!(report.blocks_recovered, 2);
        assert_eq!(report.blocks_lost, 1);
        assert_eq!(rec, events[..2 * BLOCK_EVENTS]);
    }

    #[test]
    fn salvage_rejects_non_v3_images() {
        assert!(matches!(
            salvage_trace(b"NOPE").unwrap_err(),
            ReadTraceError::BadMagic
        ));
        let v2 = v2_bytes(&sample_events());
        assert!(matches!(
            salvage_trace(&v2).unwrap_err(),
            ReadTraceError::BadVersion(2)
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ReadTraceError::BadMagic,
            ReadTraceError::BadVersion(2),
            ReadTraceError::BadKind(3),
            ReadTraceError::Truncated,
            ReadTraceError::BadChecksum {
                stored: 1,
                computed: 2,
            },
            ReadTraceError::BadBlock(BlockError::Malformed),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
