//! Trace characterization — regenerates the columns of Table 1.
//!
//! [`TraceStats`] consumes an event stream and accumulates the quantities
//! the paper reports for its workload: instruction count, loads and stores
//! as a fraction of instructions, and the number of voluntary system calls.
//! It additionally tracks the touched-page footprint, which the paper uses
//! implicitly (page coloring, working-set arguments).

use std::collections::HashSet;

use crate::event::{AccessKind, TraceEvent};

/// Accumulated characteristics of a trace (one row of Table 1).
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Executed instructions (IFetch events).
    pub instructions: u64,
    /// Data loads.
    pub loads: u64,
    /// Data stores.
    pub stores: u64,
    /// Stores that wrote less than a full word.
    pub partial_stores: u64,
    /// Voluntary system calls observed.
    pub syscalls: u64,
    /// Total processor stall cycles annotated on instructions.
    pub stall_cycles: u64,
    /// Distinct virtual pages touched by instruction fetches.
    code_pages: HashSet<u64>,
    /// Distinct virtual pages touched by data references.
    data_pages: HashSet<u64>,
}

impl TraceStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TraceStats::default()
    }

    /// Folds one event into the statistics.
    pub fn record(&mut self, ev: &TraceEvent) {
        match ev.kind {
            AccessKind::IFetch => {
                self.instructions += 1;
                self.stall_cycles += ev.stall_cycles as u64;
                if ev.syscall {
                    self.syscalls += 1;
                }
                self.code_pages
                    .insert(ev.addr.raw() >> crate::addr::PAGE_SHIFT);
            }
            AccessKind::Load => {
                self.loads += 1;
                self.data_pages
                    .insert(ev.addr.raw() >> crate::addr::PAGE_SHIFT);
            }
            AccessKind::Store => {
                self.stores += 1;
                if ev.partial_word {
                    self.partial_stores += 1;
                }
                self.data_pages
                    .insert(ev.addr.raw() >> crate::addr::PAGE_SHIFT);
            }
        }
    }

    /// Characterizes an entire event stream.
    pub fn from_events<I: IntoIterator<Item = TraceEvent>>(events: I) -> Self {
        let mut s = TraceStats::new();
        for ev in events {
            s.record(&ev);
        }
        s
    }

    /// Total memory references (fetches + loads + stores).
    pub fn references(&self) -> u64 {
        self.instructions + self.loads + self.stores
    }

    /// Loads as a percentage of instructions (Table 1 column).
    pub fn load_pct(&self) -> f64 {
        percent(self.loads, self.instructions)
    }

    /// Stores as a percentage of instructions (Table 1 column).
    pub fn store_pct(&self) -> f64 {
        percent(self.stores, self.instructions)
    }

    /// Mean processor stall cycles per instruction.
    pub fn stall_cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.instructions as f64
        }
    }

    /// Distinct instruction pages touched.
    pub fn code_page_footprint(&self) -> usize {
        self.code_pages.len()
    }

    /// Distinct data pages touched.
    pub fn data_page_footprint(&self) -> usize {
        self.data_pages.len()
    }

    /// Merges another accumulator into this one (suite totals).
    pub fn merge(&mut self, other: &TraceStats) {
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.partial_stores += other.partial_stores;
        self.syscalls += other.syscalls;
        self.stall_cycles += other.stall_cycles;
        self.code_pages.extend(other.code_pages.iter().copied());
        self.data_pages.extend(other.data_pages.iter().copied());
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Pid, VirtAddr, PAGE_WORDS};

    fn addr(w: u64) -> VirtAddr {
        VirtAddr::new(Pid::new(0), w)
    }

    #[test]
    fn counts_by_kind() {
        let s = TraceStats::from_events(vec![
            TraceEvent::ifetch(addr(0), 1),
            TraceEvent::load(addr(10)),
            TraceEvent::ifetch(addr(1), 0).with_syscall(),
            TraceEvent::partial_store(addr(20)),
        ]);
        assert_eq!(s.instructions, 2);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.partial_stores, 1);
        assert_eq!(s.syscalls, 1);
        assert_eq!(s.stall_cycles, 1);
        assert_eq!(s.references(), 4);
    }

    #[test]
    fn percentages_and_cpi() {
        let mut evs = vec![];
        for i in 0..100 {
            evs.push(TraceEvent::ifetch(addr(i), if i % 2 == 0 { 1 } else { 0 }));
        }
        for i in 0..25 {
            evs.push(TraceEvent::load(addr(1000 + i)));
        }
        for i in 0..10 {
            evs.push(TraceEvent::store(addr(2000 + i)));
        }
        let s = TraceStats::from_events(evs);
        assert!((s.load_pct() - 25.0).abs() < 1e-9);
        assert!((s.store_pct() - 10.0).abs() < 1e-9);
        assert!((s.stall_cpi() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn page_footprints_count_distinct_pages() {
        let s = TraceStats::from_events(vec![
            TraceEvent::ifetch(addr(0), 0),
            TraceEvent::ifetch(addr(1), 0),
            TraceEvent::ifetch(addr(PAGE_WORDS), 0),
            TraceEvent::load(addr(5 * PAGE_WORDS)),
            TraceEvent::load(addr(5 * PAGE_WORDS + 7)),
        ]);
        assert_eq!(s.code_page_footprint(), 2);
        assert_eq!(s.data_page_footprint(), 1);
    }

    #[test]
    fn different_pids_have_distinct_pages() {
        let a = VirtAddr::new(Pid::new(1), 0);
        let b = VirtAddr::new(Pid::new(2), 0);
        let s = TraceStats::from_events(vec![TraceEvent::load(a), TraceEvent::load(b)]);
        assert_eq!(s.data_page_footprint(), 2);
    }

    #[test]
    fn merge_sums_counts() {
        let a = TraceStats::from_events(vec![TraceEvent::ifetch(addr(0), 2)]);
        let b = TraceStats::from_events(vec![TraceEvent::load(addr(9))]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.instructions, 1);
        assert_eq!(m.loads, 1);
        assert_eq!(m.stall_cycles, 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TraceStats::new();
        assert_eq!(s.references(), 0);
        assert_eq!(s.load_pct(), 0.0);
        assert_eq!(s.stall_cpi(), 0.0);
    }
}
