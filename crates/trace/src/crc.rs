//! Vendored CRC32 (IEEE 802.3 polynomial, the `zlib`/`gzip` variant).
//!
//! The durability layer protects every on-disk artifact — GTRC traces,
//! campaign journal records — with a per-record checksum, the software
//! analogue of the paper's parity/ECC protection of fast-but-unreliable
//! GaAs SRAM: a small check on every access buys detection of any
//! single-bit (and overwhelmingly, any multi-byte) corruption. Vendored
//! like [`crate::rng`] so the workspace stays hermetic.
//!
//! # Examples
//!
//! ```
//! use gaas_trace::crc::{crc32, Crc32};
//!
//! // The well-known check value of the IEEE polynomial.
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
//!
//! // Streaming updates match the one-shot digest.
//! let mut h = Crc32::new();
//! h.update(b"1234");
//! h.update(b"56789");
//! assert_eq!(h.finish(), crc32(b"123456789"));
//! ```

/// Reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC32 state for streaming readers/writers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh digest (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The digest of everything folded in so far (the state is not
    /// consumed; more updates may follow).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 7) as u8).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn every_single_bit_flip_changes_the_digest() {
        let data = b"journal record payload under test";
        let clean = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), clean, "flip at byte {i} bit {bit} undetected");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
