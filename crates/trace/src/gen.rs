//! The synthetic trace generator: one [`TraceGenerator`] per process.
//!
//! Combines the instruction-stream model ([`crate::instr`]) and the
//! data-reference model ([`crate::data`]) under the per-benchmark parameters
//! of [`crate::bench_model`], producing the same event stream shape the
//! paper obtains from `pixie`: an instruction fetch per instruction,
//! followed by a data reference for load/store instructions, with voluntary
//! system-call markers and per-instruction processor-stall annotations.

use crate::addr::{Pid, VirtAddr, PAGE_WORDS};
use crate::bench_model::BenchmarkSpec;
use crate::data::DataStream;
use crate::event::{Trace, TraceEvent};
use crate::instr::InstrStream;
use crate::rng::{bernoulli_threshold, SmallRng, F64_DRAW_SHIFT};

/// Streaming, deterministic generator of [`TraceEvent`]s for one benchmark.
///
/// Implements [`Iterator`] and [`Trace`]; the stream ends after the scaled
/// instruction budget is exhausted (the benchmark "terminates", §3). All
/// randomness derives from the spec's seed, so a `(spec, pid, scale)` triple
/// always yields the identical trace.
///
/// # Examples
///
/// ```
/// use gaas_trace::{bench_model, gen::TraceGenerator, Pid};
///
/// let spec = &bench_model::suite()[0];
/// let events: Vec<_> = TraceGenerator::new(spec, Pid::new(0), 1e-5).collect();
/// assert!(!events.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    name: &'static str,
    pid: Pid,
    /// Per-process layout stagger in words (whole pages). Real programs
    /// have distinct virtual layouts; without a stagger every process'
    /// segments would share page colors and collide in the same L2 set
    /// groups under page coloring.
    stagger_words: u64,
    rng: SmallRng,
    instr: InstrStream,
    data: DataStream,
    /// Remaining instructions to emit.
    budget: u64,
    /// Instructions until the next voluntary system call.
    until_syscall: u64,
    syscall_interval: u64,
    /// Data event to emit after the current instruction fetch.
    pending: Option<TraceEvent>,
    /// Classification thresholds on the 53-bit draw (see
    /// [`bernoulli_threshold`]): `m < t_load` ⇒ load,
    /// `m < t_load_or_store` ⇒ load or store.
    t_load: u64,
    t_load_or_store: u64,
    t_partial_store: u64,
    t_branch_stall: u64,
    t_load_use: u64,
    t_fp: u64,
    /// FP stall decomposed as `floor + Bernoulli(frac)`.
    fp_stall_floor: u8,
    t_fp_stall_extra: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec`, tagging every address with `pid`,
    /// with the instruction budget scaled by `scale` (see
    /// [`BenchmarkSpec::scaled_instructions`]).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn new(spec: &BenchmarkSpec, pid: Pid, scale: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ ((pid.raw() as u64) << 56));
        let instr = InstrStream::new(&spec.code, &mut rng);
        let data = DataStream::new(&spec.data);
        let syscall_interval = spec.syscall_interval();
        TraceGenerator {
            name: spec.name,
            pid,
            stagger_words: ((pid.raw() as u64 * 41 + 13) % 199) * PAGE_WORDS,
            rng,
            instr,
            data,
            budget: spec.scaled_instructions(scale),
            until_syscall: syscall_interval,
            syscall_interval,
            pending: None,
            t_load: bernoulli_threshold(spec.load_frac),
            t_load_or_store: bernoulli_threshold(spec.load_frac + spec.store_frac),
            t_partial_store: bernoulli_threshold(spec.data.partial_store_frac),
            t_branch_stall: bernoulli_threshold(
                spec.stalls.branch_frac * spec.stalls.branch_stall_prob,
            ),
            t_load_use: bernoulli_threshold(spec.stalls.load_use_prob),
            t_fp: bernoulli_threshold(spec.stalls.fp_frac),
            fp_stall_floor: spec.stalls.fp_stall_cycles.floor() as u8,
            t_fp_stall_extra: bernoulli_threshold(
                spec.stalls.fp_stall_cycles - spec.stalls.fp_stall_cycles.floor(),
            ),
        }
    }

    /// Remaining instruction budget.
    pub fn remaining_instructions(&self) -> u64 {
        self.budget
    }

    /// The PID this generator stamps on addresses.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Generates the next instruction: its fetch event and, for loads and
    /// stores, the trailing data event. The single hot path shared by
    /// [`Iterator::next`] (which stages the data event in `pending`) and
    /// [`Trace::next_batch`] (which emits both directly).
    #[inline]
    fn step(&mut self) -> (TraceEvent, Option<TraceEvent>) {
        debug_assert!(self.budget > 0);
        self.budget -= 1;

        let iaddr = VirtAddr::new(
            self.pid,
            self.instr.next_addr(&mut self.rng) + self.stagger_words,
        );

        // Classify the instruction. One 53-bit draw, compared exactly as
        // the former `f64` comparison would (see `bernoulli_threshold`).
        let class = self.rng.next_u64() >> F64_DRAW_SHIFT;
        let is_load = class < self.t_load;
        let is_store = !is_load && class < self.t_load_or_store;

        // Processor stalls (the paper's CPU_stall_cycles).
        let mut stall = 0u8;
        if (self.rng.next_u64() >> F64_DRAW_SHIFT) < self.t_branch_stall {
            stall += 1;
        }
        if is_load && (self.rng.next_u64() >> F64_DRAW_SHIFT) < self.t_load_use {
            stall += 1;
        }
        if (self.rng.next_u64() >> F64_DRAW_SHIFT) < self.t_fp {
            stall += self.fp_stall_floor
                + u8::from((self.rng.next_u64() >> F64_DRAW_SHIFT) < self.t_fp_stall_extra);
        }

        // Voluntary syscall marker.
        let mut syscall = false;
        self.until_syscall = self.until_syscall.saturating_sub(1);
        if self.until_syscall == 0 {
            syscall = true;
            self.until_syscall = self.syscall_interval;
        }

        let data = if is_load || is_store {
            let word = if is_store {
                self.data.next_store_addr(&mut self.rng)
            } else {
                self.data.next_addr(&mut self.rng)
            };
            let daddr = VirtAddr::new(self.pid, word + self.stagger_words);
            Some(if is_load {
                TraceEvent::load(daddr)
            } else if (self.rng.next_u64() >> F64_DRAW_SHIFT) < self.t_partial_store {
                TraceEvent::partial_store(daddr)
            } else {
                TraceEvent::store(daddr)
            })
        } else {
            None
        };

        let mut ev = TraceEvent::ifetch(iaddr, stall);
        ev.syscall = syscall;
        (ev, data)
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if let Some(ev) = self.pending.take() {
            return Some(ev);
        }
        if self.budget == 0 {
            return None;
        }
        let (ev, data) = self.step();
        self.pending = data;
        Some(ev)
    }
}

impl Trace for TraceGenerator {
    fn name(&self) -> &str {
        self.name
    }

    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        // One virtual call amortized over the whole chunk, and — unlike
        // per-event iteration — no staging of data events through the
        // `pending` Option: `step()` emits both events of a load/store
        // instruction straight into the buffer. The RNG draws and event
        // sequence are identical to `next()` (determinism invariant).
        let start = out.len();
        out.reserve(max);
        if max == 0 {
            return 0;
        }
        if let Some(ev) = self.pending.take() {
            out.push(ev);
        }
        // A load/store instruction appends two events, so stop one early
        // and stage the overflow in `pending` only at the batch boundary.
        while out.len() - start < max && self.budget > 0 {
            let (ev, data) = self.step();
            out.push(ev);
            if let Some(d) = data {
                if out.len() - start < max {
                    out.push(d);
                } else {
                    self.pending = Some(d);
                }
            }
        }
        out.len() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_model::suite;
    use crate::event::AccessKind;

    fn small(name_idx: usize) -> TraceGenerator {
        TraceGenerator::new(&suite()[name_idx], Pid::new(1), 2e-3)
    }

    #[test]
    fn event_stream_shape_ifetch_then_data() {
        let mut expecting_data = false;
        for ev in small(0).take(50_000) {
            match ev.kind {
                AccessKind::IFetch => {
                    assert!(!expecting_data, "data event skipped");
                    expecting_data = false;
                }
                AccessKind::Load | AccessKind::Store => expecting_data = false,
            }
        }
    }

    #[test]
    fn batched_generation_identical_to_per_event() {
        let serial: Vec<_> = small(2).collect();
        let mut g = small(2);
        let mut batched = Vec::new();
        // 257 is coprime with the ifetch/data pairing, so batch boundaries
        // land mid-instruction as well as between instructions.
        while g.next_batch(&mut batched, 257) != 0 {}
        assert_eq!(batched, serial);
    }

    #[test]
    fn deterministic_per_seed_and_pid() {
        let a: Vec<_> = small(1).take(20_000).collect();
        let b: Vec<_> = small(1).take(20_000).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TraceGenerator::new(&suite()[1], Pid::new(2), 2e-3)
            .take(20_000)
            .collect();
        assert_ne!(a, c, "different PID gives different stream");
    }

    #[test]
    fn mix_matches_spec_within_tolerance() {
        let spec = &suite()[3]; // li
        let gen = TraceGenerator::new(spec, Pid::new(0), 5e-3);
        let (mut ifetch, mut loads, mut stores) = (0u64, 0u64, 0u64);
        for ev in gen {
            match ev.kind {
                AccessKind::IFetch => ifetch += 1,
                AccessKind::Load => loads += 1,
                AccessKind::Store => stores += 1,
            }
        }
        let lf = loads as f64 / ifetch as f64;
        let sf = stores as f64 / ifetch as f64;
        assert!((lf - spec.load_frac).abs() < 0.01, "load frac {lf}");
        assert!((sf - spec.store_frac).abs() < 0.01, "store frac {sf}");
    }

    #[test]
    fn stall_cpi_matches_expected_within_tolerance() {
        let spec = &suite()[0]; // doduc
        let gen = TraceGenerator::new(spec, Pid::new(0), 5e-3);
        let (mut ifetch, mut stalls) = (0u64, 0u64);
        for ev in gen {
            if ev.kind == AccessKind::IFetch {
                ifetch += 1;
                stalls += ev.stall_cycles as u64;
            }
        }
        let mean = stalls as f64 / ifetch as f64;
        let expect = spec.expected_stall_cpi();
        assert!(
            (mean - expect).abs() < 0.02,
            "stall {mean} vs expected {expect}"
        );
    }

    #[test]
    fn syscalls_fire_at_spec_interval() {
        let spec = &suite()[2]; // gcc: syscall every ~21.9k instructions
        let gen = TraceGenerator::new(spec, Pid::new(0), 5e-3);
        let mut ifetch = 0u64;
        let mut syscalls = 0u64;
        for ev in gen {
            if ev.kind == AccessKind::IFetch {
                ifetch += 1;
                if ev.syscall {
                    syscalls += 1;
                }
            }
        }
        let expected = ifetch / spec.syscall_interval();
        assert!(
            syscalls >= expected.saturating_sub(1) && syscalls <= expected + 1,
            "syscalls {syscalls}, expected ~{expected}"
        );
    }

    #[test]
    fn terminates_at_scaled_budget() {
        let spec = &suite()[0];
        let gen = TraceGenerator::new(spec, Pid::new(0), 1e-4);
        let want = spec.scaled_instructions(1e-4);
        let ifetches = gen.filter(|e| e.kind == AccessKind::IFetch).count() as u64;
        assert_eq!(ifetches, want);
    }

    #[test]
    fn all_addresses_carry_generator_pid() {
        for ev in small(4).take(30_000) {
            assert_eq!(ev.addr.pid(), Pid::new(1));
        }
    }

    #[test]
    fn partial_stores_only_on_stores() {
        for ev in small(2).take(50_000) {
            if ev.partial_word {
                assert_eq!(ev.kind, AccessKind::Store);
            }
        }
    }
}
