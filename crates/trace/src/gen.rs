//! The synthetic trace generator: one [`TraceGenerator`] per process.
//!
//! Combines the instruction-stream model ([`crate::instr`]) and the
//! data-reference model ([`crate::data`]) under the per-benchmark parameters
//! of [`crate::bench_model`], producing the same event stream shape the
//! paper obtains from `pixie`: an instruction fetch per instruction,
//! followed by a data reference for load/store instructions, with voluntary
//! system-call markers and per-instruction processor-stall annotations.

use crate::addr::{Pid, VirtAddr, PAGE_WORDS};
use crate::bench_model::BenchmarkSpec;
use crate::data::DataStream;
use crate::event::{Trace, TraceEvent};
use crate::instr::InstrStream;
use crate::rng::SmallRng;

/// Streaming, deterministic generator of [`TraceEvent`]s for one benchmark.
///
/// Implements [`Iterator`] and [`Trace`]; the stream ends after the scaled
/// instruction budget is exhausted (the benchmark "terminates", §3). All
/// randomness derives from the spec's seed, so a `(spec, pid, scale)` triple
/// always yields the identical trace.
///
/// # Examples
///
/// ```
/// use gaas_trace::{bench_model, gen::TraceGenerator, Pid};
///
/// let spec = &bench_model::suite()[0];
/// let events: Vec<_> = TraceGenerator::new(spec, Pid::new(0), 1e-5).collect();
/// assert!(!events.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    name: &'static str,
    pid: Pid,
    /// Per-process layout stagger in words (whole pages). Real programs
    /// have distinct virtual layouts; without a stagger every process'
    /// segments would share page colors and collide in the same L2 set
    /// groups under page coloring.
    stagger_words: u64,
    rng: SmallRng,
    instr: InstrStream,
    data: DataStream,
    /// Remaining instructions to emit.
    budget: u64,
    /// Instructions until the next voluntary system call.
    until_syscall: u64,
    syscall_interval: u64,
    /// Data event to emit after the current instruction fetch.
    pending: Option<TraceEvent>,
    load_frac: f64,
    store_frac: f64,
    partial_store_frac: f64,
    branch_stall_p: f64,
    load_use_prob: f64,
    fp_frac: f64,
    fp_stall_cycles: f64,
}

impl TraceGenerator {
    /// Creates a generator for `spec`, tagging every address with `pid`,
    /// with the instruction budget scaled by `scale` (see
    /// [`BenchmarkSpec::scaled_instructions`]).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn new(spec: &BenchmarkSpec, pid: Pid, scale: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ ((pid.raw() as u64) << 56));
        let instr = InstrStream::new(&spec.code, &mut rng);
        let data = DataStream::new(&spec.data);
        let syscall_interval = spec.syscall_interval();
        TraceGenerator {
            name: spec.name,
            pid,
            stagger_words: ((pid.raw() as u64 * 41 + 13) % 199) * PAGE_WORDS,
            rng,
            instr,
            data,
            budget: spec.scaled_instructions(scale),
            until_syscall: syscall_interval,
            syscall_interval,
            pending: None,
            load_frac: spec.load_frac,
            store_frac: spec.store_frac,
            partial_store_frac: spec.data.partial_store_frac,
            branch_stall_p: spec.stalls.branch_frac * spec.stalls.branch_stall_prob,
            load_use_prob: spec.stalls.load_use_prob,
            fp_frac: spec.stalls.fp_frac,
            fp_stall_cycles: spec.stalls.fp_stall_cycles,
        }
    }

    /// Remaining instruction budget.
    pub fn remaining_instructions(&self) -> u64 {
        self.budget
    }

    /// The PID this generator stamps on addresses.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Samples an integer stall with mean `mean` (floor + Bernoulli on the
    /// fractional part), keeping the expected value exact.
    fn sample_stall(&mut self, mean: f64) -> u8 {
        let floor = mean.floor();
        let frac = mean - floor;
        let extra = if self.rng.gen::<f64>() < frac {
            1.0
        } else {
            0.0
        };
        (floor + extra) as u8
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if let Some(ev) = self.pending.take() {
            return Some(ev);
        }
        if self.budget == 0 {
            return None;
        }
        self.budget -= 1;

        let iaddr = VirtAddr::new(
            self.pid,
            self.instr.next_addr(&mut self.rng) + self.stagger_words,
        );

        // Classify the instruction.
        let class: f64 = self.rng.gen();
        let is_load = class < self.load_frac;
        let is_store = !is_load && class < self.load_frac + self.store_frac;

        // Processor stalls (the paper's CPU_stall_cycles).
        let mut stall = 0u8;
        if self.rng.gen::<f64>() < self.branch_stall_p {
            stall += 1;
        }
        if is_load && self.rng.gen::<f64>() < self.load_use_prob {
            stall += 1;
        }
        if self.rng.gen::<f64>() < self.fp_frac {
            stall += self.sample_stall(self.fp_stall_cycles);
        }

        // Voluntary syscall marker.
        let mut syscall = false;
        self.until_syscall = self.until_syscall.saturating_sub(1);
        if self.until_syscall == 0 {
            syscall = true;
            self.until_syscall = self.syscall_interval;
        }

        if is_load || is_store {
            let word = if is_store {
                self.data.next_store_addr(&mut self.rng)
            } else {
                self.data.next_addr(&mut self.rng)
            };
            let daddr = VirtAddr::new(self.pid, word + self.stagger_words);
            self.pending = Some(if is_load {
                TraceEvent::load(daddr)
            } else if self.rng.gen::<f64>() < self.partial_store_frac {
                TraceEvent::partial_store(daddr)
            } else {
                TraceEvent::store(daddr)
            });
        }

        let mut ev = TraceEvent::ifetch(iaddr, stall);
        ev.syscall = syscall;
        Some(ev)
    }
}

impl Trace for TraceGenerator {
    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_model::suite;
    use crate::event::AccessKind;

    fn small(name_idx: usize) -> TraceGenerator {
        TraceGenerator::new(&suite()[name_idx], Pid::new(1), 2e-3)
    }

    #[test]
    fn event_stream_shape_ifetch_then_data() {
        let mut expecting_data = false;
        for ev in small(0).take(50_000) {
            match ev.kind {
                AccessKind::IFetch => {
                    assert!(!expecting_data, "data event skipped");
                    expecting_data = false;
                }
                AccessKind::Load | AccessKind::Store => expecting_data = false,
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_pid() {
        let a: Vec<_> = small(1).take(20_000).collect();
        let b: Vec<_> = small(1).take(20_000).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TraceGenerator::new(&suite()[1], Pid::new(2), 2e-3)
            .take(20_000)
            .collect();
        assert_ne!(a, c, "different PID gives different stream");
    }

    #[test]
    fn mix_matches_spec_within_tolerance() {
        let spec = &suite()[3]; // li
        let gen = TraceGenerator::new(spec, Pid::new(0), 5e-3);
        let (mut ifetch, mut loads, mut stores) = (0u64, 0u64, 0u64);
        for ev in gen {
            match ev.kind {
                AccessKind::IFetch => ifetch += 1,
                AccessKind::Load => loads += 1,
                AccessKind::Store => stores += 1,
            }
        }
        let lf = loads as f64 / ifetch as f64;
        let sf = stores as f64 / ifetch as f64;
        assert!((lf - spec.load_frac).abs() < 0.01, "load frac {lf}");
        assert!((sf - spec.store_frac).abs() < 0.01, "store frac {sf}");
    }

    #[test]
    fn stall_cpi_matches_expected_within_tolerance() {
        let spec = &suite()[0]; // doduc
        let gen = TraceGenerator::new(spec, Pid::new(0), 5e-3);
        let (mut ifetch, mut stalls) = (0u64, 0u64);
        for ev in gen {
            if ev.kind == AccessKind::IFetch {
                ifetch += 1;
                stalls += ev.stall_cycles as u64;
            }
        }
        let mean = stalls as f64 / ifetch as f64;
        let expect = spec.expected_stall_cpi();
        assert!(
            (mean - expect).abs() < 0.02,
            "stall {mean} vs expected {expect}"
        );
    }

    #[test]
    fn syscalls_fire_at_spec_interval() {
        let spec = &suite()[2]; // gcc: syscall every ~21.9k instructions
        let gen = TraceGenerator::new(spec, Pid::new(0), 5e-3);
        let mut ifetch = 0u64;
        let mut syscalls = 0u64;
        for ev in gen {
            if ev.kind == AccessKind::IFetch {
                ifetch += 1;
                if ev.syscall {
                    syscalls += 1;
                }
            }
        }
        let expected = ifetch / spec.syscall_interval();
        assert!(
            syscalls >= expected.saturating_sub(1) && syscalls <= expected + 1,
            "syscalls {syscalls}, expected ~{expected}"
        );
    }

    #[test]
    fn terminates_at_scaled_budget() {
        let spec = &suite()[0];
        let gen = TraceGenerator::new(spec, Pid::new(0), 1e-4);
        let want = spec.scaled_instructions(1e-4);
        let ifetches = gen.filter(|e| e.kind == AccessKind::IFetch).count() as u64;
        assert_eq!(ifetches, want);
    }

    #[test]
    fn all_addresses_carry_generator_pid() {
        for ev in small(4).take(30_000) {
            assert_eq!(ev.addr.pid(), Pid::new(1));
        }
    }

    #[test]
    fn partial_stores_only_on_stores() {
        for ev in small(2).take(50_000) {
            if ev.partial_word {
                assert_eq!(ev.kind, AccessKind::Store);
            }
        }
    }
}
