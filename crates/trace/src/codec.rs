//! Block-based delta-compressed codec for packed event streams (the v3
//! encoding).
//!
//! The arena's packed structure-of-arrays encoding spends 10 bytes per
//! event (an 8-byte raw PID-prefixed word address plus a 2-byte meta
//! word) regardless of content. Real reference streams are dominated by
//! small **per-kind** address strides — sequential instruction fetch
//! advances one word at a time, and data references cluster — but
//! consecutive events interleave fetches with loads and stores, whose
//! addresses live in different segments. So the v3 encoding keeps one
//! delta chain **per access kind**: each address is delta-encoded against
//! the previous address of the same kind. Typical streams shrink 3–4×.
//!
//! The per-event layout is a control byte plus fixed-width fields rather
//! than LEB128 varints, deliberately: the arena replays through this
//! decoder on the simulator's kernel hot path, and a varint's
//! byte-at-a-time continuation branches mispredict on real event mixes.
//! The control byte makes every field width a shift/mask away, so the
//! decoder's inner loop has **no data-dependent branches**:
//!
//! ```text
//! control: [1:0] kind  [2] partial  [3] syscall
//!          [5:4] delta width code (1, 2, 4, 8 bytes)
//!          [6]   stall byte present  [7] reserved, must be 0
//! then:    stall u8            (iff control bit 6)
//! then:    delta               (zigzagged, LE, width from code)
//! ```
//!
//! Events are grouped into self-contained **blocks** (up to
//! [`BLOCK_EVENTS`] events): the delta chains restart at every block
//! boundary and each block carries its own CRC32, so
//!
//! * a streaming decoder needs only one block of scratch space,
//! * corruption is detected per block rather than per stream, and
//! * salvage after corruption loses at most the damaged block.
//!
//! Wire layout of one block (all integers little-endian):
//!
//! ```text
//! count u32 | payload_len u32 | payload bytes | crc32 u32
//! ```
//!
//! where `crc32` covers `count`, `payload_len`, and `payload`.

use crate::addr::{Pid, VirtAddr, PID_SHIFT};
use crate::crc::Crc32;
use crate::event::{AccessKind, TraceEvent};

/// Maximum events per encoded block. One decoded block (≈64 KB of
/// scratch) amortizes per-block overhead to noise while keeping salvage
/// granularity and decoder residency small.
pub const BLOCK_EVENTS: usize = 4096;

/// Bytes of block framing outside the payload: count, payload length,
/// CRC32.
pub const BLOCK_OVERHEAD: usize = 12;

/// Upper bound on the encoded size of one event (control byte + stall
/// byte + 8-byte delta).
pub const MAX_EVENT_BYTES: usize = 10;

// Meta-word layout (bits):      11……4        3         2        1..0
//                               stall     syscall   partial    kind
const KIND_MASK: u16 = 0b11;
const PARTIAL_BIT: u16 = 1 << 2;
const SYSCALL_BIT: u16 = 1 << 3;
const STALL_SHIFT: u16 = 4;

// Control-byte layout (see module docs).
const CTL_META_MASK: u8 = 0x0f;
const CTL_WIDTH_SHIFT: u8 = 4;
const CTL_STALL_BIT: u8 = 0x40;
const CTL_RESERVED_BIT: u8 = 0x80;

/// Delta byte widths by control-byte width code.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];
/// Value masks by width code (low 8·width bits).
const WIDTH_MASKS: [u64; 4] = [0xff, 0xffff, 0xffff_ffff, u64::MAX];

/// Packs one event into the `(raw address, meta word)` pair every v3
/// producer (arena materialization, file writer) encodes. The meta word
/// always fits 12 bits.
#[inline]
pub fn pack_event(ev: &TraceEvent) -> (u64, u16) {
    let kind = match ev.kind {
        AccessKind::IFetch => 0u16,
        AccessKind::Load => 1,
        AccessKind::Store => 2,
    };
    let mut meta = kind | ((ev.stall_cycles as u16) << STALL_SHIFT);
    if ev.partial_word {
        meta |= PARTIAL_BIT;
    }
    if ev.syscall {
        meta |= SYSCALL_BIT;
    }
    (ev.addr.raw(), meta)
}

/// Inverse of [`pack_event`]. A meta kind of 3 (impossible from
/// `pack_event`) decodes as `Store`; checked consumers reject it before
/// calling this.
#[inline]
pub fn unpack_event(raw: u64, meta: u16) -> TraceEvent {
    let kind = match meta & KIND_MASK {
        0 => AccessKind::IFetch,
        1 => AccessKind::Load,
        _ => AccessKind::Store,
    };
    let pid = Pid::new((raw >> PID_SHIFT) as u8);
    let word = raw & ((1u64 << PID_SHIFT) - 1);
    TraceEvent {
        kind,
        addr: VirtAddr::new(pid, word),
        stall_cycles: (meta >> STALL_SHIFT) as u8,
        partial_word: meta & PARTIAL_BIT != 0,
        syscall: meta & SYSCALL_BIT != 0,
    }
}

/// Decoding failure for one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// Fewer bytes available than the block frame declares (or than the
    /// minimal frame needs).
    Truncated,
    /// The block checksum does not match its contents.
    BadChecksum {
        /// CRC32 stored in the block trailer.
        stored: u32,
        /// CRC32 computed over the frame actually read.
        computed: u32,
    },
    /// The payload did not parse to exactly `count` well-formed events.
    Malformed,
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockError::Truncated => write!(f, "encoded block truncated"),
            BlockError::BadChecksum { stored, computed } => write!(
                f,
                "block checksum mismatch: stored {stored:08x}, computed {computed:08x}"
            ),
            BlockError::Malformed => write!(f, "block payload malformed"),
        }
    }
}

impl std::error::Error for BlockError {}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Width code of the narrowest encoding that holds `z`.
#[inline]
fn width_code(z: u64) -> u8 {
    if z <= 0xff {
        0
    } else if z <= 0xffff {
        1
    } else if z <= 0xffff_ffff {
        2
    } else {
        3
    }
}

/// Appends one encoded block holding `addrs`/`meta` (parallel, equal
/// length, at most [`BLOCK_EVENTS`] entries; meta words must fit 12
/// bits, as [`pack_event`] guarantees) to `out`. Returns the encoded
/// size in bytes.
///
/// # Panics
///
/// Panics if the slices disagree in length, are empty, exceed
/// [`BLOCK_EVENTS`], or contain a meta word above 12 bits.
pub fn encode_block(out: &mut Vec<u8>, addrs: &[u64], meta: &[u16]) -> usize {
    assert_eq!(addrs.len(), meta.len(), "parallel arrays");
    assert!(!addrs.is_empty(), "empty block");
    assert!(addrs.len() <= BLOCK_EVENTS, "block too large");
    let start = out.len();
    out.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // payload_len backpatched below
    let payload_start = out.len();
    // One delta chain per access kind (index 3 unused by pack_event but
    // kept so a meta word's low bits always index in bounds).
    let mut prev = [0u64; 4];
    for (&a, &m) in addrs.iter().zip(meta) {
        assert!(m >> 12 == 0, "meta word exceeds 12 bits");
        let kind = usize::from(m & KIND_MASK);
        let z = zigzag(a.wrapping_sub(prev[kind]) as i64);
        prev[kind] = a;
        let stall = (m >> STALL_SHIFT) as u8;
        let code = width_code(z);
        let mut ctl = (m as u8 & CTL_META_MASK) | (code << CTL_WIDTH_SHIFT);
        if stall != 0 {
            ctl |= CTL_STALL_BIT;
        }
        out.push(ctl);
        if stall != 0 {
            out.push(stall);
        }
        out.extend_from_slice(&z.to_le_bytes()[..WIDTHS[usize::from(code)]]);
    }
    let payload_len = (out.len() - payload_start) as u32;
    out[start + 4..start + 8].copy_from_slice(&payload_len.to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&out[start..]);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.len() - start
}

/// Decoded frame geometry of the block at `bytes[0..]`: `(frame_bytes,
/// event_count)`. Validates only the frame lengths, not the checksum.
///
/// # Errors
///
/// [`BlockError::Truncated`] when the declared frame overruns `bytes`.
pub fn block_extent(bytes: &[u8]) -> Result<(usize, usize), BlockError> {
    if bytes.len() < BLOCK_OVERHEAD {
        return Err(BlockError::Truncated);
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let payload_len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let frame = BLOCK_OVERHEAD
        .checked_add(payload_len)
        .ok_or(BlockError::Truncated)?;
    if bytes.len() < frame {
        return Err(BlockError::Truncated);
    }
    Ok((frame, count))
}

/// Verifies the checksum and frame geometry of the block at `bytes[0..]`
/// without decoding the payload. Returns `(frame_bytes, event_count)`.
///
/// # Errors
///
/// [`BlockError::Truncated`] or [`BlockError::BadChecksum`]; a checksum-
/// valid frame with an impossible event count is [`BlockError::Malformed`].
pub fn verify_block(bytes: &[u8]) -> Result<(usize, usize), BlockError> {
    let (frame, count) = block_extent(bytes)?;
    let stored = u32::from_le_bytes(bytes[frame - 4..frame].try_into().expect("4 bytes"));
    let mut crc = Crc32::new();
    crc.update(&bytes[..frame - 4]);
    let computed = crc.finish();
    if stored != computed {
        return Err(BlockError::BadChecksum { stored, computed });
    }
    if count == 0 || count > BLOCK_EVENTS {
        return Err(BlockError::Malformed);
    }
    Ok((frame, count))
}

/// Decodes one event at `payload[*pos..]` with full bounds checking,
/// returning `(meta, zigzagged delta)` and advancing `pos`.
#[inline]
fn decode_one(payload: &[u8], pos: &mut usize) -> Option<(u16, u64)> {
    let ctl = *payload.get(*pos)?;
    if ctl & CTL_RESERVED_BIT != 0 {
        return None;
    }
    let mut p = *pos + 1;
    let stall = if ctl & CTL_STALL_BIT != 0 {
        let s = *payload.get(p)?;
        p += 1;
        s
    } else {
        0
    };
    let width = WIDTHS[usize::from((ctl >> CTL_WIDTH_SHIFT) & 3)];
    let bytes = payload.get(p..p + width)?;
    let mut z = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        z |= u64::from(b) << (8 * i);
    }
    *pos = p + width;
    let meta = u16::from(ctl & CTL_META_MASK) | (u16::from(stall) << STALL_SHIFT);
    Some((meta, z))
}

/// Decodes the block at `bytes[0..]`, appending addresses and meta words
/// to the output vectors. Returns the number of bytes consumed.
///
/// The checksum is verified **before** the payload is parsed, so a
/// corrupt length cannot drive the parser off the frame.
///
/// # Errors
///
/// [`BlockError`] on truncation, checksum mismatch, or a payload that
/// does not parse to exactly the declared event count.
pub fn decode_block(
    bytes: &[u8],
    addrs: &mut Vec<u64>,
    meta: &mut Vec<u16>,
) -> Result<usize, BlockError> {
    let (frame, count) = verify_block(bytes)?;
    let payload = &bytes[8..frame - 4];
    let mut pos = 0usize;
    let mut prev = [0u64; 4];
    addrs.reserve(count);
    meta.reserve(count);
    for _ in 0..count {
        let (m, z) = decode_one(payload, &mut pos).ok_or(BlockError::Malformed)?;
        let kind = usize::from(m & KIND_MASK);
        prev[kind] = prev[kind].wrapping_add(unzigzag(z) as u64);
        addrs.push(prev[kind]);
        meta.push(m);
    }
    if pos != payload.len() {
        return Err(BlockError::Malformed);
    }
    Ok(frame)
}

/// Decodes the block at `bytes[0..]` straight into [`TraceEvent`]s
/// **without** re-verifying the checksum. Returns the bytes consumed.
///
/// This is the arena's replay hot path: the kernel benchmark refills
/// through it tens of thousands of times per second, and its input was
/// encoded by this same process and is audited separately
/// (`arena::verify` re-hashes every resident stream on demand). The bulk
/// of the payload decodes through a branch-free inner loop (unaligned
/// 8-byte loads masked to the control byte's width); the last few events
/// of a block fall back to the bounds-checked path. Frame geometry,
/// reserved bits, exact event count, and exact payload consumption are
/// still validated — corrupt input fails, it just may fail as
/// [`BlockError::Malformed`] instead of [`BlockError::BadChecksum`].
/// File readers use [`verify_block`] + this, or [`decode_block`].
///
/// # Errors
///
/// [`BlockError::Truncated`] or [`BlockError::Malformed`].
pub fn decode_block_events_unchecked(
    bytes: &[u8],
    out: &mut Vec<TraceEvent>,
) -> Result<usize, BlockError> {
    let (frame, count) = block_extent(bytes)?;
    if count == 0 || count > BLOCK_EVENTS {
        return Err(BlockError::Malformed);
    }
    let payload = &bytes[8..frame - 4];
    let n = payload.len();
    let mut pos = 0usize;
    let mut prev = [0u64; 4];
    let mut bad = 0u8;
    out.reserve(count);
    let mut i = 0;
    // Branch-free bulk loop: safe while a maximal event (control + stall
    // + 8-byte load window) fits before the payload end.
    while i < count && pos + MAX_EVENT_BYTES <= n {
        let ctl = payload[pos];
        bad |= ctl & CTL_RESERVED_BIT;
        let has_stall = usize::from(ctl >> 6) & 1;
        // Read the stall slot unconditionally; mask it out when absent.
        let stall = payload[pos + 1] & (ctl >> 6).wrapping_neg();
        let doff = pos + 1 + has_stall;
        let w = u64::from_le_bytes(payload[doff..doff + 8].try_into().expect("8 bytes"));
        let code = usize::from((ctl >> CTL_WIDTH_SHIFT) & 3);
        let z = w & WIDTH_MASKS[code];
        pos = doff + WIDTHS[code];
        let kind = usize::from(ctl & 3);
        prev[kind] = prev[kind].wrapping_add(unzigzag(z) as u64);
        let meta = u16::from(ctl & CTL_META_MASK) | (u16::from(stall) << STALL_SHIFT);
        out.push(unpack_event(prev[kind], meta));
        i += 1;
    }
    if bad != 0 {
        return Err(BlockError::Malformed);
    }
    // Tail: the last few events, fully bounds-checked.
    while i < count {
        let (m, z) = decode_one(payload, &mut pos).ok_or(BlockError::Malformed)?;
        let kind = usize::from(m & KIND_MASK);
        prev[kind] = prev[kind].wrapping_add(unzigzag(z) as u64);
        out.push(unpack_event(prev[kind], m));
        i += 1;
    }
    if pos != n {
        return Err(BlockError::Malformed);
    }
    Ok(frame)
}

/// Encodes a whole packed stream into concatenated v3 blocks.
pub fn encode_stream(addrs: &[u64], meta: &[u16]) -> Vec<u8> {
    assert_eq!(addrs.len(), meta.len(), "parallel arrays");
    let mut out = Vec::new();
    for (a, m) in addrs.chunks(BLOCK_EVENTS).zip(meta.chunks(BLOCK_EVENTS)) {
        encode_block(&mut out, a, m);
    }
    out
}

/// Encodes a bare `u64` value stream (no meta words — every event
/// carries meta 0, a single kind-0 delta chain) into concatenated v3
/// blocks. This is the profile side-channel encoding: the memoizer's
/// `FunctionalProfile` address stream is clustered (write-buffer words,
/// line bases), so the per-kind delta chain shrinks it the same 2–4× it
/// shrinks reference streams.
pub fn encode_u64_stream(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    let meta = [0u16; BLOCK_EVENTS];
    for chunk in vals.chunks(BLOCK_EVENTS) {
        encode_block(&mut out, chunk, &meta[..chunk.len()]);
    }
    out
}

/// Streaming block-at-a-time decoder over concatenated v3 blocks of a
/// bare `u64` stream (as produced by [`encode_u64_stream`]).
///
/// The cursor bulk-decodes one block (≤ [`BLOCK_EVENTS`] values) into a
/// **reusable** internal batch buffer and hands values out of it one at
/// a time, so a replay touches at most ~32 KB of decoded scratch at any
/// moment instead of materializing the whole packed stream — the
/// multi-variant co-pricer's lockstep lanes all consume the current
/// block before the next one is decoded. Each block's CRC32 is verified
/// as it is entered.
///
/// # Panics
///
/// [`Self::next_value`] panics on a corrupt or truncated block: the
/// encoded stream lives in process memory and was produced by
/// [`encode_u64_stream`] in the same process, so damage here is a logic
/// error, not an I/O condition. (The campaign's group worker runs
/// pricing under `catch_unwind` and falls back to full simulation.)
#[derive(Debug)]
pub struct U64StreamCursor<'a> {
    bytes: &'a [u8],
    off: usize,
    buf: Vec<u64>,
    meta: Vec<u16>,
    idx: usize,
}

impl<'a> U64StreamCursor<'a> {
    /// Opens a cursor at the head of an [`encode_u64_stream`] byte
    /// stream.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            off: 0,
            buf: Vec::new(),
            meta: Vec::new(),
            idx: 0,
        }
    }

    /// Decodes the next block into the batch buffer. Returns `false` at
    /// end of stream.
    #[cold]
    fn refill(&mut self) -> bool {
        if self.off >= self.bytes.len() {
            return false;
        }
        self.buf.clear();
        self.meta.clear();
        self.idx = 0;
        let used = decode_block(&self.bytes[self.off..], &mut self.buf, &mut self.meta)
            .expect("corrupt in-memory u64 stream block");
        self.off += used;
        true
    }

    /// Next value of the stream, decoding the next block when the batch
    /// buffer runs dry. `None` at end of stream.
    #[inline]
    pub fn next_value(&mut self) -> Option<u64> {
        if self.idx == self.buf.len() && !self.refill() {
            return None;
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        Some(v)
    }

    /// True when every value has been handed out.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.idx == self.buf.len() && self.off >= self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u64) -> (Vec<u64>, Vec<u16>) {
        let mut rng = crate::rng::SmallRng::seed_from_u64(seed);
        let mut addrs = Vec::with_capacity(n);
        let mut meta = Vec::with_capacity(n);
        let mut a = 0x0300_0000_1000u64;
        for i in 0..n {
            // Mostly sequential strides with occasional far jumps — the
            // shape the delta encoding is built for.
            a = if i % 97 == 0 {
                rng.gen_range(0u64..1 << 40)
            } else {
                a.wrapping_add(rng.gen_range(0u64..8))
            };
            addrs.push(a);
            meta.push(rng.gen_range(0u32..=0xfff) as u16);
        }
        (addrs, meta)
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn width_code_is_minimal_and_sufficient() {
        for (z, c) in [
            (0u64, 0u8),
            (0xff, 0),
            (0x100, 1),
            (0xffff, 1),
            (0x10000, 2),
            (0xffff_ffff, 2),
            (0x1_0000_0000, 3),
            (u64::MAX, 3),
        ] {
            assert_eq!(width_code(z), c, "width of {z:#x}");
            assert_eq!(z & WIDTH_MASKS[usize::from(c)], z, "mask keeps {z:#x}");
        }
    }

    #[test]
    fn pack_round_trips_every_field() {
        let ev = TraceEvent {
            kind: AccessKind::Store,
            addr: VirtAddr::new(Pid::new(9), 0x1234_5678),
            stall_cycles: 255,
            partial_word: true,
            syscall: true,
        };
        let (a, m) = pack_event(&ev);
        assert_eq!(unpack_event(a, m), ev);
        let plain = TraceEvent::ifetch(VirtAddr::new(Pid::new(0), 7), 3);
        let (a, m) = pack_event(&plain);
        assert_eq!(unpack_event(a, m), plain);
    }

    #[test]
    fn block_round_trips_multi_block_stream() {
        let (addrs, meta) = sample(3 * BLOCK_EVENTS + 17, 7);
        let bytes = encode_stream(&addrs, &meta);
        let mut da = Vec::new();
        let mut dm = Vec::new();
        let mut off = 0;
        while off < bytes.len() {
            off += decode_block(&bytes[off..], &mut da, &mut dm).expect("clean block");
        }
        assert_eq!(da, addrs);
        assert_eq!(dm, meta);
    }

    #[test]
    fn event_decode_matches_soa_decode() {
        let (addrs, meta) = sample(2 * BLOCK_EVENTS + 5, 11);
        let bytes = encode_stream(&addrs, &meta);
        let mut events = Vec::new();
        let mut off = 0;
        while off < bytes.len() {
            off += decode_block_events_unchecked(&bytes[off..], &mut events).expect("clean");
        }
        let expected: Vec<TraceEvent> = addrs
            .iter()
            .zip(&meta)
            .map(|(&a, &m)| unpack_event(a, m))
            .collect();
        assert_eq!(events, expected);
    }

    #[test]
    fn extreme_deltas_round_trip() {
        // Alternating address-space extremes force every width code and
        // exercise the zigzag sign handling in both decode paths.
        let addrs = vec![0u64, u64::MAX, 0, 1 << 40, 0x80, 0x7f, u64::MAX / 2, 0];
        let meta = vec![0u16, 1, 2, 0x0ff0, 0xfff, 0, 5, 9];
        let bytes = encode_stream(&addrs, &meta);
        let mut da = Vec::new();
        let mut dm = Vec::new();
        decode_block(&bytes, &mut da, &mut dm).expect("clean");
        assert_eq!(da, addrs);
        assert_eq!(dm, meta);
        let mut events = Vec::new();
        decode_block_events_unchecked(&bytes, &mut events).expect("clean");
        assert_eq!(events.len(), addrs.len());
        for ((ev, &a), &m) in events.iter().zip(&addrs).zip(&meta) {
            assert_eq!(*ev, unpack_event(a, m));
        }
    }

    #[test]
    fn sequential_streams_compress_well() {
        let n = BLOCK_EVENTS;
        let addrs: Vec<u64> = (0..n as u64).map(|i| 0x1000 + i).collect();
        let meta = vec![0u16; n];
        let bytes = encode_stream(&addrs, &meta);
        // Stall-free stride-1 events encode in two bytes each.
        assert!(
            bytes.len() < n * 3,
            "sequential block should be ≤3 B/event, got {} for {n} events",
            bytes.len()
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let (addrs, meta) = sample(64, 21);
        let bytes = encode_stream(&addrs, &meta);
        let mut copy = bytes.clone();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                let mut da = Vec::new();
                let mut dm = Vec::new();
                let r = decode_block(&copy, &mut da, &mut dm);
                assert!(r.is_err(), "flip of bit {bit} in byte {i} must be detected");
                copy[i] ^= 1 << bit;
            }
        }
        assert_eq!(copy, bytes);
    }

    #[test]
    fn truncation_is_detected() {
        let (addrs, meta) = sample(32, 33);
        let bytes = encode_stream(&addrs, &meta);
        for cut in 0..bytes.len() {
            let mut da = Vec::new();
            let mut dm = Vec::new();
            assert!(decode_block(&bytes[..cut], &mut da, &mut dm).is_err());
        }
    }

    #[test]
    fn unchecked_decode_still_rejects_truncation() {
        let (addrs, meta) = sample(100, 5);
        let bytes = encode_stream(&addrs, &meta);
        for cut in 0..BLOCK_OVERHEAD {
            let mut out = Vec::new();
            assert!(decode_block_events_unchecked(&bytes[..cut], &mut out).is_err());
        }
        let mut out = Vec::new();
        assert!(decode_block_events_unchecked(&bytes[..bytes.len() - 1], &mut out).is_err());
    }

    #[test]
    fn unchecked_decode_rejects_reserved_control_bits() {
        let (addrs, meta) = sample(16, 9);
        let mut bytes = Vec::new();
        encode_block(&mut bytes, &addrs, &meta);
        bytes[8] |= CTL_RESERVED_BIT; // first control byte
        let mut out = Vec::new();
        assert_eq!(
            decode_block_events_unchecked(&bytes, &mut out),
            Err(BlockError::Malformed)
        );
    }

    #[test]
    fn extent_reports_frame_and_count() {
        let (addrs, meta) = sample(5, 3);
        let mut bytes = Vec::new();
        let frame = encode_block(&mut bytes, &addrs, &meta);
        assert_eq!(block_extent(&bytes).expect("well-formed"), (frame, 5));
    }

    #[test]
    fn u64_stream_cursor_round_trips_across_blocks() {
        // 2.5 blocks worth of values so the cursor exercises at least two
        // refills plus a partial tail block.
        let (vals, _) = sample(BLOCK_EVENTS * 2 + BLOCK_EVENTS / 2, 21);
        let bytes = encode_u64_stream(&vals);
        let mut cur = U64StreamCursor::new(&bytes);
        for (i, &v) in vals.iter().enumerate() {
            assert!(!cur.finished(), "finished early at {i}");
            assert_eq!(cur.next_value(), Some(v), "value {i}");
        }
        assert_eq!(cur.next_value(), None);
        assert!(cur.finished());
    }

    #[test]
    fn u64_stream_empty() {
        let bytes = encode_u64_stream(&[]);
        assert!(bytes.is_empty());
        let mut cur = U64StreamCursor::new(&bytes);
        assert!(cur.finished());
        assert_eq!(cur.next_value(), None);
    }

    #[test]
    fn u64_stream_compresses_clustered_addresses() {
        // Profile-shaped input: line bases and write-buffer words walking
        // a few small working sets. Raw packing spends 8 B/value.
        let mut vals = Vec::new();
        let mut a = 0x0100_0000u64;
        for i in 0u64..20_000 {
            a = a.wrapping_add((i % 7) * 4);
            vals.push(a);
        }
        let bytes = encode_u64_stream(&vals);
        assert!(
            bytes.len() * 3 <= vals.len() * 8,
            "expected >=3x compression, got {} bytes for {} values",
            bytes.len(),
            vals.len()
        );
    }

    #[test]
    #[should_panic(expected = "corrupt in-memory u64 stream block")]
    fn u64_stream_cursor_panics_on_corruption() {
        let (vals, _) = sample(100, 5);
        let mut bytes = encode_u64_stream(&vals);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        let mut cur = U64StreamCursor::new(&bytes);
        while cur.next_value().is_some() {}
    }
}
