//! # gaas-trace
//!
//! Address-trace model and synthetic multiprogramming workload for the
//! reproduction of *"Implementing a Cache for a High-Performance GaAs
//! Microprocessor"* (Olukotun, Mudge, Brown — ISCA 1991).
//!
//! The paper drives its two-level cache simulator with `pixie`-generated
//! address traces of ten MIPS benchmarks (~2.5 billion references). This
//! crate supplies the equivalent substrate:
//!
//! * [`addr`] — word-granular, PID-prefixed virtual addresses and physical
//!   addresses for the 4 KW-page target machine;
//! * [`event`] — the [`TraceEvent`] stream contract between workloads and
//!   the simulator, including syscall markers and CPU-stall annotations;
//! * [`bench_model`] — parametric models of the ten benchmarks (Table 1
//!   analog);
//! * [`instr`] / [`data`] — the instruction-fetch and data-reference
//!   locality models;
//! * [`gen`] — the deterministic streaming [`gen::TraceGenerator`];
//! * [`codec`] — the branchless control-byte delta codec (v3 encoding)
//!   shared by the arena and the file format: per-block checksums, 2–4×
//!   smaller streams;
//! * [`file`](mod@crate::file) — a compact binary trace format for
//!   capture/replay, checksummed against bit corruption;
//! * [`crc`] — the vendored CRC32 shared by every durable on-disk format;
//! * [`stats`] — trace characterization (regenerates Table 1 columns);
//! * [`synthetic`] — diagnostic access patterns with known cache behaviour;
//! * [`rng`] — the vendored deterministic PRNG every stochastic component
//!   (generators, fault injection, property tests) draws from;
//! * [`sharing`] — per-core shared-segment decoration for CMP workloads
//!   (controllable shared footprint and migration rates).
//!
//! ## Example
//!
//! ```
//! use gaas_trace::{bench_model, gen::TraceGenerator, stats::TraceStats, Pid};
//!
//! let spec = &bench_model::suite()[0]; // doduc analog
//! let trace = TraceGenerator::new(spec, Pid::new(0), 1e-4);
//! let stats = TraceStats::from_events(trace);
//! assert!(stats.instructions > 0);
//! assert!(stats.load_pct() > 10.0);
//! ```

pub mod addr;
pub mod arena;
pub mod bench_model;
pub mod codec;
pub mod crc;
pub mod data;
pub mod event;
pub mod file;
pub mod gen;
pub mod instr;
pub mod rng;
pub mod sharing;
pub mod stats;
pub mod synthetic;

pub use addr::{PhysAddr, Pid, VirtAddr, PAGE_SHIFT, PAGE_WORDS, PID_SHIFT, WORD_BYTES};
pub use event::{AccessKind, Trace, TraceEvent, UnbatchedTrace, VecTrace};
pub use sharing::{SharingSpec, SharingTrace, SHARED_PID};
