//! Sharing-aware trace decoration for CMP workloads.
//!
//! The paper's workload is ten independent address spaces — nothing is
//! ever shared, so a multiprocessor run of it would exercise no
//! coherence traffic at all. [`SharingTrace`] turns any per-core stream
//! into one with controllable sharing: each data reference is, with
//! probability `shared_frac`, redirected into a common shared segment
//! (PID [`SHARED_PID`]) that every core's stream maps through the same
//! page tables. Cores reference disjoint *hot windows* of the segment
//! that rotate every `migration_interval` shared references, so true
//! sharing, migratory sharing, and invalidation traffic all appear at
//! tunable rates.
//!
//! The decoration draws from its **own** PRNG, leaving the inner
//! generator's stream untouched: with `shared_frac = 0` the wrapper is
//! never constructed and the stream is bit-identical to the single-CPU
//! workload (the CMP identity anchor).

use crate::addr::{Pid, VirtAddr};
use crate::event::{Trace, TraceEvent};
use crate::rng::{bernoulli_threshold, SmallRng, F64_DRAW_SHIFT};

/// The reserved PID of the shared segment. Shared references from every
/// core carry this PID, so one set of page mappings (and one cache
/// image) backs them all; it appears in per-process statistics as a
/// pseudo-process.
pub const SHARED_PID: Pid = Pid::new(255);

/// Parameters of the shared segment, normally derived from the CMP
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingSpec {
    /// Probability that a data reference targets the shared segment.
    pub shared_frac: f64,
    /// Size of the shared segment in words.
    pub shared_words: u64,
    /// Shared references between hot-window rotations (0 = static
    /// affinity, no migration).
    pub migration_interval: u64,
    /// Number of cores the segment is divided among.
    pub cores: u32,
    /// Base seed; each core derives an independent decoration stream.
    pub seed: u64,
}

/// Decorates an inner per-core [`Trace`] with shared-segment references.
#[derive(Debug, Clone)]
pub struct SharingTrace<T> {
    inner: T,
    rng: SmallRng,
    t_shared: u64,
    window_words: u64,
    windows: u64,
    /// This core's current hot-window index.
    window: u64,
    migration_interval: u64,
    /// Shared references until the next window rotation.
    until_migrate: u64,
}

impl<T: Trace> SharingTrace<T> {
    /// Wraps `inner` as core `core`'s stream under `spec`.
    ///
    /// # Panics
    ///
    /// Panics when `spec.shared_words == 0` or `spec.cores == 0`
    /// (configuration validation upstream rejects both).
    pub fn new(inner: T, core: u32, spec: &SharingSpec) -> Self {
        assert!(spec.shared_words > 0, "shared segment must be non-empty");
        assert!(spec.cores > 0, "need at least one core");
        // Each core gets a disjoint window; a segment smaller than the
        // core count degenerates to one-word windows.
        let windows = u64::from(spec.cores);
        let window_words = (spec.shared_words / windows).max(1);
        SharingTrace {
            inner,
            rng: SmallRng::seed_from_u64(spec.seed ^ 0x5EED_C0DE ^ (u64::from(core) << 48)),
            t_shared: bernoulli_threshold(spec.shared_frac),
            window_words,
            windows,
            window: u64::from(core) % windows,
            migration_interval: spec.migration_interval,
            until_migrate: spec.migration_interval,
        }
    }

    /// Redirects one data reference into the shared segment if this
    /// draw selects it.
    fn decorate(&mut self, ev: &mut TraceEvent) {
        if !ev.kind.is_data() {
            return;
        }
        if self.rng.next_u64() >> F64_DRAW_SHIFT >= self.t_shared {
            return;
        }
        let offset = self.window * self.window_words + self.rng.gen_range(0..self.window_words);
        ev.addr = VirtAddr::new(SHARED_PID, offset);
        if self.migration_interval > 0 {
            self.until_migrate -= 1;
            if self.until_migrate == 0 {
                self.until_migrate = self.migration_interval;
                self.window = (self.window + 1) % self.windows;
            }
        }
    }
}

impl<T: Trace> Iterator for SharingTrace<T> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        let mut ev = self.inner.next()?;
        self.decorate(&mut ev);
        Some(ev)
    }
}

impl<T: Trace> Trace for SharingTrace<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let start = out.len();
        let n = self.inner.next_batch(out, max);
        for ev in &mut out[start..start + n] {
            self.decorate(ev);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessKind, VecTrace};

    fn base_events(n: u64) -> Vec<TraceEvent> {
        let a = VirtAddr::new(Pid::new(3), 0x1000);
        (0..n)
            .flat_map(|i| {
                [
                    TraceEvent::ifetch(a.wrapping_add(i), 0),
                    TraceEvent::load(a.wrapping_add(4096 + i)),
                    TraceEvent::store(a.wrapping_add(8192 + i)),
                ]
            })
            .collect()
    }

    fn spec(frac: f64) -> SharingSpec {
        SharingSpec {
            shared_frac: frac,
            shared_words: 4096,
            migration_interval: 10,
            cores: 4,
            seed: 7,
        }
    }

    #[test]
    fn zero_fraction_leaves_stream_untouched() {
        let evs = base_events(200);
        let out: Vec<_> =
            SharingTrace::new(VecTrace::new("t", evs.clone()), 0, &spec(0.0)).collect();
        assert_eq!(out, evs);
    }

    #[test]
    fn full_fraction_redirects_every_data_reference() {
        let evs = base_events(100);
        let s = spec(1.0);
        let out: Vec<_> = SharingTrace::new(VecTrace::new("t", evs.clone()), 1, &s).collect();
        for (o, e) in out.iter().zip(&evs) {
            match o.kind {
                AccessKind::IFetch => assert_eq!(o, e, "ifetches untouched"),
                _ => {
                    assert_eq!(o.addr.pid(), SHARED_PID);
                    assert!(o.addr.word() < s.shared_words);
                }
            }
        }
    }

    #[test]
    fn batched_equals_unbatched() {
        let evs = base_events(300);
        let s = spec(0.35);
        let serial: Vec<_> = SharingTrace::new(VecTrace::new("t", evs.clone()), 2, &s).collect();
        let mut t = SharingTrace::new(VecTrace::new("t", evs), 2, &s);
        let mut batched = Vec::new();
        while t.next_batch(&mut batched, 17) > 0 {}
        assert_eq!(batched, serial);
    }

    #[test]
    fn cores_start_in_disjoint_windows() {
        let s = spec(1.0);
        let window = s.shared_words / u64::from(s.cores);
        for core in 0..s.cores {
            let evs = base_events(5);
            let mut t = SharingTrace::new(VecTrace::new("t", evs), core, &s);
            let first_data = t.find(|e| e.kind.is_data()).unwrap();
            let w = first_data.addr.word() / window;
            assert_eq!(w, u64::from(core), "core {core} starts in its window");
        }
    }

    #[test]
    fn migration_rotates_the_hot_window() {
        let mut s = spec(1.0);
        s.migration_interval = 5;
        let window = s.shared_words / u64::from(s.cores);
        let evs = base_events(50);
        let words: Vec<u64> = SharingTrace::new(VecTrace::new("t", evs), 0, &s)
            .filter(|e| e.kind.is_data())
            .map(|e| e.addr.word() / window)
            .collect();
        // First 5 shared refs in window 0, next 5 in window 1, ...
        assert_eq!(&words[..5], &[0, 0, 0, 0, 0]);
        assert_eq!(&words[5..10], &[1, 1, 1, 1, 1]);
        assert_eq!(&words[10..15], &[2, 2, 2, 2, 2]);
        assert_eq!(&words[20..25], &[0, 0, 0, 0, 0], "wraps around");
    }

    #[test]
    fn decoration_rng_is_per_core_independent() {
        let s = spec(0.5);
        let a: Vec<_> = SharingTrace::new(VecTrace::new("t", base_events(100)), 0, &s).collect();
        let b: Vec<_> = SharingTrace::new(VecTrace::new("t", base_events(100)), 1, &s).collect();
        assert_ne!(a, b, "different cores decorate differently");
        let a2: Vec<_> = SharingTrace::new(VecTrace::new("t", base_events(100)), 0, &s).collect();
        assert_eq!(a, a2, "same core, same seed: deterministic");
    }
}
