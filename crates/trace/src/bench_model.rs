//! Parametric benchmark models — the synthetic stand-in for Table 1.
//!
//! The paper drives its simulator with `pixie` traces of ten C and FORTRAN
//! programs from the 1988 MIPS benchmark suite, ~2.5 billion memory
//! references in total. Those binaries and traces are unobtainable, so this
//! module defines a *parametric model* per benchmark: instruction count,
//! load/store mix, voluntary system-call rate, code footprint and control
//! structure, data working-set hierarchy, and a processor-stall model
//! calibrated so the suite's stall CPI lands near the paper's 0.238
//! (base CPI 1.238). The models are era-faithful analogs, not the original
//! programs; DESIGN.md documents the substitution.

use crate::addr::PAGE_WORDS;

/// Floating-point flavor of a benchmark, as annotated in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpClass {
    /// Integer benchmark (I).
    Integer,
    /// Single-precision floating point (S).
    Single,
    /// Double-precision floating point (D).
    Double,
}

impl FpClass {
    /// One-letter tag used in Table 1 ("I", "S", "D").
    pub fn tag(self) -> &'static str {
        match self {
            FpClass::Integer => "I",
            FpClass::Single => "S",
            FpClass::Double => "D",
        }
    }
}

/// Shape of a benchmark's instruction stream (control structure).
#[derive(Debug, Clone, PartialEq)]
pub struct CodeModel {
    /// Total code footprint in words.
    pub footprint_words: u64,
    /// Number of functions the footprint is divided into.
    pub n_funcs: u32,
    /// Mean basic-block length in words.
    pub mean_block_words: u32,
    /// Mean iterations of a loop before it exits (geometric).
    pub mean_loop_iters: f64,
    /// Zipf exponent biasing call targets toward hot functions (higher ⇒
    /// more concentrated instruction working set).
    pub call_zipf_theta: f64,
}

/// One level of the nested-working-set data model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkingSetLevel {
    /// Size of the level in words.
    pub words: u64,
    /// Relative probability that a data reference targets this level.
    pub weight: f64,
}

/// A sequential stream (array sweep) in the data model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Length of the swept array in words.
    pub len_words: u64,
    /// Relative probability that a data reference targets this stream.
    pub weight: f64,
    /// Accesses per element before the sweep advances (blocked FP kernels
    /// touch operands several times; raises stream hit rates without
    /// changing the footprint).
    pub repeat: u32,
}

/// Shape of a benchmark's data-reference stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DataModel {
    /// Fraction of references that re-touch the *hot set* — a small ring of
    /// recently used data granules. This is the short-reuse-distance mass
    /// that gives real programs their ≥ 95 % L1 hit rates; the remaining
    /// references are distributed by the weights below (and refill the hot
    /// set as they go).
    pub hot_frac: f64,
    /// Hot-set capacity in granules (8 words each; its footprint is
    /// `8 × hot_lines` words, which should sit well inside a 4 KW L1).
    pub hot_lines: usize,
    /// Relative probability of a stack (frame-local) reference.
    pub stack_weight: f64,
    /// Nested working-set levels (uniform within each, with short spatial
    /// runs for line-level locality).
    pub levels: Vec<WorkingSetLevel>,
    /// Sequential array streams.
    pub streams: Vec<StreamSpec>,
    /// Fraction of stores that write less than a full word (§6: partial-word
    /// writes do not set valid bits under subblock placement).
    pub partial_store_frac: f64,
}

impl DataModel {
    /// Total data footprint in words (levels + streams), rounded up to
    /// whole pages.
    pub fn footprint_words(&self) -> u64 {
        let raw: u64 = self.levels.iter().map(|l| l.words).sum::<u64>()
            + self.streams.iter().map(|s| s.len_words).sum::<u64>();
        raw.div_ceil(PAGE_WORDS) * PAGE_WORDS
    }
}

/// Processor-stall model: the source of the paper's `CPU_stall_cycles`
/// (load delays, branch delays, multicycle FP operations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallModel {
    /// Fraction of instructions that are branches.
    pub branch_frac: f64,
    /// Probability a branch costs one extra cycle (taken, delay slot not
    /// filled).
    pub branch_stall_prob: f64,
    /// Probability a load incurs a one-cycle load-use interlock.
    pub load_use_prob: f64,
    /// Fraction of instructions that are multicycle FP operations.
    pub fp_frac: f64,
    /// Average extra cycles per FP operation.
    pub fp_stall_cycles: f64,
}

impl StallModel {
    /// Expected stall cycles per instruction given the load fraction,
    /// i.e. the benchmark's contribution to base CPI above 1.0.
    pub fn expected_stall(&self, load_frac: f64) -> f64 {
        self.branch_frac * self.branch_stall_prob
            + load_frac * self.load_use_prob
            + self.fp_frac * self.fp_stall_cycles
    }
}

/// A complete parametric benchmark description (one row of Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// FP class tag (I/S/D).
    pub fp_class: FpClass,
    /// Full-scale instruction count (the counts of the ten models sum to
    /// ≈ 1.7 G instructions ⇒ ≈ 2.4 G memory references, matching the
    /// paper's "about 2.5 billion").
    pub instructions: u64,
    /// Loads as a fraction of instructions.
    pub load_frac: f64,
    /// Stores as a fraction of instructions.
    pub store_frac: f64,
    /// Number of voluntary system calls over the full-scale run.
    pub syscalls: u64,
    /// Instruction-stream shape.
    pub code: CodeModel,
    /// Data-stream shape.
    pub data: DataModel,
    /// Processor-stall shape.
    pub stalls: StallModel,
    /// Base RNG seed; every generator derived from this spec is
    /// deterministic in (seed, scale).
    pub seed: u64,
}

impl BenchmarkSpec {
    /// Instruction count after applying a workload `scale` in (0, 1].
    ///
    /// Experiments run scaled-down workloads; `scale = 1.0` reproduces the
    /// full ≈2.4 G-reference suite.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn scaled_instructions(&self, scale: f64) -> u64 {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        ((self.instructions as f64 * scale) as u64).max(1_000)
    }

    /// Instructions between voluntary system calls (full-scale rate; the
    /// rate is scale-invariant so context-switch behaviour is preserved in
    /// scaled runs).
    pub fn syscall_interval(&self) -> u64 {
        match self.instructions.checked_div(self.syscalls) {
            None => u64::MAX,
            Some(interval) => interval.max(1),
        }
    }

    /// Expected memory references per instruction (1 fetch + data refs).
    pub fn refs_per_instruction(&self) -> f64 {
        1.0 + self.load_frac + self.store_frac
    }

    /// Expected processor-stall CPI contribution.
    pub fn expected_stall_cpi(&self) -> f64 {
        self.stalls.expected_stall(self.load_frac)
    }
}

fn level(words: u64, weight: f64) -> WorkingSetLevel {
    WorkingSetLevel { words, weight }
}

fn stream(len_words: u64, weight: f64, repeat: u32) -> StreamSpec {
    StreamSpec {
        len_words,
        weight,
        repeat,
    }
}

/// The ten-benchmark multiprogramming workload (Table 1 analog).
///
/// Names follow the 1988 MIPS Performance Brief suite the paper describes
/// ("a variety of C and FORTRAN programs"). Counts sum to ≈ 1.7 G
/// instructions (≈ 2.4 G references).
///
/// The data ladders follow the calibration principle behind Table 2's
/// small *local* L2 miss ratios: the overwhelming share of references stays
/// within a ≤ 16 KW per-process footprint (so the L1 miss stream re-hits a
/// modest L2), mid-size levels (32–128 KW) shape the 16 KW → 256 KW slope,
/// and only tiny tails plus the FP codes' array streams reach past 256 KW
/// (so multiprogramming eviction, not raw footprint, dominates small-L2
/// misses). Integer codes are branchy with frequent syscalls (gcc, li); FP
/// codes stream over large arrays (matrix300, tomcatv, nasa7), which is
/// what keeps the L2-D speed–size curve of Fig. 8 improving out to 512 KW.
pub fn suite() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "doduc",
            fp_class: FpClass::Double,
            instructions: 60_000_000,
            load_frac: 0.259,
            store_frac: 0.084,
            syscalls: 11,
            code: CodeModel {
                footprint_words: 16_384,
                n_funcs: 60,
                mean_block_words: 8,
                mean_loop_iters: 10.0,
                call_zipf_theta: 0.9,
            },
            data: DataModel {
                hot_frac: 0.91,
                hot_lines: 256,
                stack_weight: 0.22,
                levels: vec![
                    level(512, 0.26),
                    level(3_072, 0.22),
                    level(12_288, 0.12),
                    level(49_152, 0.015),
                    level(131_072, 0.004),
                ],
                streams: vec![stream(32_768, 0.10, 2)],
                partial_store_frac: 0.02,
            },
            stalls: StallModel {
                branch_frac: 0.12,
                branch_stall_prob: 0.50,
                load_use_prob: 0.35,
                fp_frac: 0.09,
                fp_stall_cycles: 1.6,
            },
            seed: 0x000D_0D0C_0001,
        },
        BenchmarkSpec {
            name: "espresso",
            fp_class: FpClass::Integer,
            instructions: 44_000_000,
            load_frac: 0.196,
            store_frac: 0.042,
            syscalls: 27,
            code: CodeModel {
                footprint_words: 12_288,
                n_funcs: 80,
                mean_block_words: 6,
                mean_loop_iters: 7.0,
                call_zipf_theta: 1.0,
            },
            data: DataModel {
                hot_frac: 0.92,
                hot_lines: 256,
                stack_weight: 0.28,
                levels: vec![
                    level(512, 0.30),
                    level(2_048, 0.22),
                    level(8_192, 0.14),
                    level(32_768, 0.012),
                    level(131_072, 0.003),
                ],
                streams: vec![],
                partial_store_frac: 0.18,
            },
            stalls: StallModel {
                branch_frac: 0.17,
                branch_stall_prob: 0.55,
                load_use_prob: 0.42,
                fp_frac: 0.0,
                fp_stall_cycles: 0.0,
            },
            seed: 0xE59_0002,
        },
        BenchmarkSpec {
            name: "gcc",
            fp_class: FpClass::Integer,
            instructions: 32_000_000,
            load_frac: 0.228,
            store_frac: 0.105,
            syscalls: 1_460,
            code: CodeModel {
                footprint_words: 49_152,
                n_funcs: 400,
                mean_block_words: 5,
                mean_loop_iters: 3.5,
                call_zipf_theta: 0.9,
            },
            data: DataModel {
                hot_frac: 0.89,
                hot_lines: 320,
                stack_weight: 0.30,
                levels: vec![
                    level(1_024, 0.24),
                    level(4_096, 0.20),
                    level(16_384, 0.13),
                    level(65_536, 0.018),
                    level(131_072, 0.004),
                ],
                streams: vec![],
                partial_store_frac: 0.22,
            },
            stalls: StallModel {
                branch_frac: 0.18,
                branch_stall_prob: 0.60,
                load_use_prob: 0.45,
                fp_frac: 0.0,
                fp_stall_cycles: 0.0,
            },
            seed: 0x6CC_0003,
        },
        BenchmarkSpec {
            name: "li",
            fp_class: FpClass::Integer,
            instructions: 180_000_000,
            load_frac: 0.258,
            store_frac: 0.112,
            syscalls: 260,
            code: CodeModel {
                footprint_words: 8_192,
                n_funcs: 70,
                mean_block_words: 5,
                mean_loop_iters: 5.0,
                call_zipf_theta: 1.1,
            },
            data: DataModel {
                hot_frac: 0.93,
                hot_lines: 224,
                stack_weight: 0.36,
                levels: vec![
                    level(512, 0.28),
                    level(2_048, 0.20),
                    level(8_192, 0.12),
                    level(49_152, 0.010),
                    level(131_072, 0.002),
                ],
                streams: vec![],
                partial_store_frac: 0.10,
            },
            stalls: StallModel {
                branch_frac: 0.19,
                branch_stall_prob: 0.55,
                load_use_prob: 0.50,
                fp_frac: 0.0,
                fp_stall_cycles: 0.0,
            },
            seed: 0x11_0004,
        },
        BenchmarkSpec {
            name: "eqntott",
            fp_class: FpClass::Integer,
            instructions: 210_000_000,
            load_frac: 0.174,
            store_frac: 0.011,
            syscalls: 21,
            code: CodeModel {
                footprint_words: 4_096,
                n_funcs: 24,
                mean_block_words: 7,
                mean_loop_iters: 20.0,
                call_zipf_theta: 1.3,
            },
            data: DataModel {
                hot_frac: 0.92,
                hot_lines: 256,
                stack_weight: 0.12,
                levels: vec![
                    level(1_024, 0.30),
                    level(4_096, 0.25),
                    level(16_384, 0.10),
                    level(65_536, 0.008),
                ],
                streams: vec![stream(65_536, 0.03, 2)],
                partial_store_frac: 0.30,
            },
            stalls: StallModel {
                branch_frac: 0.22,
                branch_stall_prob: 0.60,
                load_use_prob: 0.45,
                fp_frac: 0.0,
                fp_stall_cycles: 0.0,
            },
            seed: 0xE0_0005,
        },
        BenchmarkSpec {
            name: "fpppp",
            fp_class: FpClass::Double,
            instructions: 52_000_000,
            load_frac: 0.380,
            store_frac: 0.121,
            syscalls: 11,
            code: CodeModel {
                footprint_words: 12_288,
                n_funcs: 16,
                mean_block_words: 18,
                mean_loop_iters: 25.0,
                call_zipf_theta: 1.2,
            },
            data: DataModel {
                hot_frac: 0.92,
                hot_lines: 288,
                stack_weight: 0.10,
                levels: vec![
                    level(2_048, 0.50),
                    level(8_192, 0.18),
                    level(32_768, 0.008),
                    level(98_304, 0.003),
                ],
                streams: vec![],
                partial_store_frac: 0.01,
            },
            stalls: StallModel {
                branch_frac: 0.04,
                branch_stall_prob: 0.40,
                load_use_prob: 0.28,
                fp_frac: 0.14,
                fp_stall_cycles: 1.8,
            },
            seed: 0x000F_9999_0006,
        },
        BenchmarkSpec {
            name: "matrix300",
            fp_class: FpClass::Double,
            instructions: 300_000_000,
            load_frac: 0.307,
            store_frac: 0.101,
            syscalls: 13,
            code: CodeModel {
                footprint_words: 2_048,
                n_funcs: 8,
                mean_block_words: 16,
                mean_loop_iters: 60.0,
                call_zipf_theta: 1.6,
            },
            data: DataModel {
                hot_frac: 0.80,
                hot_lines: 192,
                stack_weight: 0.05,
                levels: vec![level(1_024, 0.16), level(8_192, 0.10), level(16_384, 0.06)],
                streams: vec![stream(98_304, 0.28, 6), stream(98_304, 0.25, 6)],
                partial_store_frac: 0.0,
            },
            stalls: StallModel {
                branch_frac: 0.05,
                branch_stall_prob: 0.35,
                load_use_prob: 0.26,
                fp_frac: 0.12,
                fp_stall_cycles: 1.6,
            },
            seed: 0x300_0007,
        },
        BenchmarkSpec {
            name: "nasa7",
            fp_class: FpClass::Double,
            instructions: 190_000_000,
            load_frac: 0.283,
            store_frac: 0.110,
            syscalls: 19,
            code: CodeModel {
                footprint_words: 6_144,
                n_funcs: 16,
                mean_block_words: 14,
                mean_loop_iters: 35.0,
                call_zipf_theta: 1.3,
            },
            data: DataModel {
                hot_frac: 0.82,
                hot_lines: 224,
                stack_weight: 0.06,
                levels: vec![level(2_048, 0.18), level(8_192, 0.13), level(32_768, 0.05)],
                streams: vec![stream(98_304, 0.18, 6), stream(65_536, 0.15, 6)],
                partial_store_frac: 0.0,
            },
            stalls: StallModel {
                branch_frac: 0.06,
                branch_stall_prob: 0.35,
                load_use_prob: 0.26,
                fp_frac: 0.11,
                fp_stall_cycles: 1.8,
            },
            seed: 0x7A5A_0008,
        },
        BenchmarkSpec {
            name: "spice2g6",
            fp_class: FpClass::Double,
            instructions: 420_000_000,
            load_frac: 0.175,
            store_frac: 0.037,
            syscalls: 35,
            code: CodeModel {
                footprint_words: 32_768,
                n_funcs: 120,
                mean_block_words: 9,
                mean_loop_iters: 8.0,
                call_zipf_theta: 1.0,
            },
            data: DataModel {
                hot_frac: 0.91,
                hot_lines: 288,
                stack_weight: 0.16,
                levels: vec![
                    level(1_024, 0.28),
                    level(4_096, 0.24),
                    level(16_384, 0.12),
                    level(98_304, 0.020),
                    level(196_608, 0.003),
                ],
                streams: vec![],
                partial_store_frac: 0.05,
            },
            stalls: StallModel {
                branch_frac: 0.13,
                branch_stall_prob: 0.50,
                load_use_prob: 0.35,
                fp_frac: 0.06,
                fp_stall_cycles: 2.0,
            },
            seed: 0x0005_B1CE_0009,
        },
        BenchmarkSpec {
            name: "tomcatv",
            fp_class: FpClass::Single,
            instructions: 180_000_000,
            load_frac: 0.291,
            store_frac: 0.083,
            syscalls: 9,
            code: CodeModel {
                footprint_words: 2_048,
                n_funcs: 6,
                mean_block_words: 20,
                mean_loop_iters: 70.0,
                call_zipf_theta: 1.6,
            },
            data: DataModel {
                hot_frac: 0.78,
                hot_lines: 192,
                stack_weight: 0.04,
                levels: vec![level(1_024, 0.12), level(8_192, 0.09)],
                streams: vec![
                    stream(65_536, 0.22, 6),
                    stream(65_536, 0.20, 6),
                    stream(65_536, 0.16, 6),
                ],
                partial_store_frac: 0.0,
            },
            stalls: StallModel {
                branch_frac: 0.05,
                branch_stall_prob: 0.35,
                load_use_prob: 0.26,
                fp_frac: 0.10,
                fp_stall_cycles: 1.8,
            },
            seed: 0x0007_0CA7_000A,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_benchmarks() {
        assert_eq!(suite().len(), 10);
    }

    #[test]
    fn suite_reference_total_matches_paper_scale() {
        // Paper: "about 2.5 billion memory references".
        let total: f64 = suite()
            .iter()
            .map(|b| b.instructions as f64 * b.refs_per_instruction())
            .sum();
        assert!((2.0e9..3.0e9).contains(&total), "total refs {total}");
    }

    #[test]
    fn suite_store_fraction_near_paper() {
        // §6: "writes make up a 0.0725 fraction of instructions".
        let instr: f64 = suite().iter().map(|b| b.instructions as f64).sum();
        let stores: f64 = suite()
            .iter()
            .map(|b| b.instructions as f64 * b.store_frac)
            .sum();
        let frac = stores / instr;
        assert!((0.055..0.095).contains(&frac), "store fraction {frac}");
    }

    #[test]
    fn suite_stall_cpi_near_paper_base() {
        // Base CPI is 1.238 ⇒ mean stall ≈ 0.238 weighted by instructions.
        let instr: f64 = suite().iter().map(|b| b.instructions as f64).sum();
        let stall: f64 = suite()
            .iter()
            .map(|b| b.instructions as f64 * b.expected_stall_cpi())
            .sum();
        let cpi = 1.0 + stall / instr;
        assert!((1.18..1.30).contains(&cpi), "base CPI {cpi}");
    }

    #[test]
    fn scaled_instructions_scales_and_floors() {
        let b = &suite()[0];
        assert_eq!(b.scaled_instructions(1.0), b.instructions);
        assert_eq!(b.scaled_instructions(0.5), b.instructions / 2);
        assert_eq!(b.scaled_instructions(1e-9), 1_000);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn scaled_instructions_rejects_zero() {
        let _ = suite()[0].scaled_instructions(0.0);
    }

    #[test]
    fn syscall_interval_is_rate() {
        let b = &suite()[2]; // gcc
        assert_eq!(b.syscall_interval(), b.instructions / b.syscalls);
        let none = BenchmarkSpec {
            syscalls: 0,
            ..suite()[0].clone()
        };
        assert_eq!(none.syscall_interval(), u64::MAX);
    }

    #[test]
    fn data_footprint_is_page_aligned() {
        for b in suite() {
            assert_eq!(b.data.footprint_words() % PAGE_WORDS, 0, "{}", b.name);
        }
    }

    #[test]
    fn weights_are_positive_and_sane() {
        for b in suite() {
            let mut total = b.data.stack_weight;
            for l in &b.data.levels {
                assert!(l.weight > 0.0 && l.words > 0);
                total += l.weight;
            }
            for s in &b.data.streams {
                assert!(s.weight > 0.0 && s.len_words > 0);
                total += s.weight;
            }
            assert!(
                (0.5..=1.5).contains(&total),
                "{}: weight sum {total}",
                b.name
            );
        }
    }

    #[test]
    fn fp_tags_cover_classes() {
        assert_eq!(FpClass::Integer.tag(), "I");
        assert_eq!(FpClass::Single.tag(), "S");
        assert_eq!(FpClass::Double.tag(), "D");
    }
}
