//! Shared trace arena: one materialization per benchmark × scale, many
//! cheap replay cursors.
//!
//! Every sweep cell historically re-generated its synthetic event streams
//! from scratch — the RNG draws dominate trace cost, and parallel workers
//! re-did identical generation work per cell. The arena materializes each
//! benchmark's scaled stream **once** behind a process-wide registry keyed
//! by `(benchmark name, seed, pid, scale bits)` and hands out
//! [`ArenaCursor`]s that replay the stream through the existing
//! [`Trace`]/`next_batch` contract byte-identically to direct generation.
//!
//! Since the v3 encoding ([`crate::codec`]) a materialized stream is held
//! as delta/varint-**compressed blocks** rather than the 10-byte-per-event
//! packed structure-of-arrays: sequential instruction fetch dominates real
//! streams, so addresses delta-encode to one byte most of the time and the
//! resident footprint shrinks 2.5–4×. Cursors decode one block at a time
//! into a reusable scratch buffer ahead of consumption, so replay stays a
//! batched memcpy and decode cost amortizes across every
//! [`Trace::next_batch`] refill the block serves.
//!
//! Concurrency: the registry lock is **not** held during generation, so
//! parallel workers warming the same trace may generate it twice; both
//! products are deterministic and identical, the first insert wins, and
//! nothing blocks behind a long generation. Oversized streams bypass the
//! arena and stream directly from the generator; since v3 the cap
//! ([`ARENA_TRACE_BYTE_CAP`]) is measured on the **compressed** size, so
//! streams whose packed form would have blown the old budget now fit.
//! Bypass traffic is counted ([`ArenaStats::bypassed`] /
//! [`ArenaStats::bypass_events`]) so sweeps can see what streamed outside
//! the arena.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::addr::Pid;
use crate::bench_model::BenchmarkSpec;
use crate::codec::{self, pack_event, BLOCK_EVENTS};
use crate::crc::crc32;
use crate::event::{Trace, TraceEvent};
use crate::gen::TraceGenerator;

/// Compressed footprint (bytes) above which a stream is evicted from
/// materialization and replays directly from its generator. 256 MB per
/// trace keeps even a full-suite sweep at the repro scale comfortably
/// resident while bounding pathological scales; measured on the v3
/// compressed size, not the 10 B/event packed estimate.
pub const ARENA_TRACE_BYTE_CAP: u64 = 256 << 20;

/// Bytes per event of the uncompressed packed encoding (8-byte raw
/// address + 2-byte meta word); the yardstick compression is measured
/// against.
pub const PACKED_EVENT_BYTES: u64 = 10;

/// Pre-filter headroom: a stream whose packed estimate exceeds this many
/// multiples of [`ARENA_TRACE_BYTE_CAP`] cannot fit compressed (best
/// observed ratio ≈ 5×), so it bypasses without wasting a generation
/// pass. Streams between 1× and 8× attempt materialization and bail
/// mid-generation if the compressed size crosses the cap.
const BYPASS_ESTIMATE_FACTOR: u64 = 8;

/// One materialized event stream, held as concatenated v3 compressed
/// blocks ([`crate::codec`]).
///
/// The buffer is checksummed at generation time (CRC32 over the
/// compressed bytes) so long-lived arenas can be audited for in-memory
/// corruption — the software analogue of the parity bits the paper puts
/// on its GaAs SRAM arrays. [`verify`] re-walks every resident stream;
/// each block additionally carries its own codec-level CRC32, which
/// checked decoders (file readers, salvage) verify per block.
#[derive(Debug)]
struct ArenaData {
    name: String,
    /// Concatenated v3 blocks.
    blocks: Vec<u8>,
    /// Total events across all blocks.
    events: usize,
    /// CRC32 of `blocks`, computed once at materialization.
    crc: u32,
}

impl ArenaData {
    /// Materializes `spec` at `scale`, or `None` when the compressed
    /// stream grows past `byte_cap` (the caller falls back to direct
    /// generation). Memory while generating is bounded by
    /// `byte_cap` plus one block.
    fn generate(spec: &BenchmarkSpec, pid: Pid, scale: f64, byte_cap: u64) -> Option<Self> {
        let mut generator = TraceGenerator::new(spec, pid, scale);
        let mut blocks = Vec::new();
        let mut addrs = Vec::with_capacity(BLOCK_EVENTS);
        let mut meta = Vec::with_capacity(BLOCK_EVENTS);
        let mut buf = Vec::with_capacity(BLOCK_EVENTS);
        let mut events = 0usize;
        loop {
            buf.clear();
            if generator.next_batch(&mut buf, BLOCK_EVENTS) == 0 {
                break;
            }
            addrs.clear();
            meta.clear();
            for ev in &buf {
                let (a, m) = pack_event(ev);
                addrs.push(a);
                meta.push(m);
            }
            codec::encode_block(&mut blocks, &addrs, &meta);
            events += buf.len();
            if blocks.len() as u64 > byte_cap {
                return None;
            }
        }
        let crc = crc32(&blocks);
        Some(ArenaData {
            name: spec.name.to_string(),
            blocks,
            events,
            crc,
        })
    }

    /// True when the compressed buffer still matches its
    /// generation-time checksum.
    fn intact(&self) -> bool {
        crc32(&self.blocks) == self.crc
    }
}

type ArenaKey = (&'static str, u64, u8, u64);

struct Registry {
    traces: Mutex<HashMap<ArenaKey, Arc<ArenaData>>>,
    /// Streams materialized from a generator (cache misses; double
    /// generation under a race counts each generation).
    generated: AtomicU64,
    /// Cursors served from an already-materialized stream.
    reused: AtomicU64,
    /// Cursor requests that bypassed the arena (oversized stream).
    bypassed: AtomicU64,
    /// Estimated events streamed outside the arena by bypassing cursors.
    bypass_events: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        traces: Mutex::new(HashMap::new()),
        generated: AtomicU64::new(0),
        reused: AtomicU64::new(0),
        bypassed: AtomicU64::new(0),
        bypass_events: AtomicU64::new(0),
    })
}

/// Arena usage counters and residency (process-wide; counters are
/// monotone until [`clear`], residency reflects the current registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Streams materialized by running a generator to exhaustion.
    pub generated: u64,
    /// Cursors handed out from an already-materialized stream.
    pub reused: u64,
    /// Cursor requests served by a live generator because the stream was
    /// (or would have been) too large compressed.
    pub bypassed: u64,
    /// Estimated events those bypassing cursors streamed outside the
    /// arena.
    pub bypass_events: u64,
    /// Streams currently resident in the registry.
    pub resident_streams: u64,
    /// Events across all resident streams.
    pub resident_events: u64,
    /// Bytes the resident streams would occupy in the uncompressed
    /// packed encoding ([`PACKED_EVENT_BYTES`] per event).
    pub packed_bytes: u64,
    /// Bytes the resident streams actually occupy (v3 compressed).
    pub compressed_bytes: u64,
}

impl ArenaStats {
    /// Fraction of materializable cursor requests served without
    /// generation (`reused / (generated + reused)`; 0 when nothing was
    /// requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.generated + self.reused;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }

    /// Resident compression ratio (`packed_bytes / compressed_bytes`;
    /// 0 when nothing is resident).
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.packed_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// Current arena usage counters and residency.
pub fn stats() -> ArenaStats {
    let r = registry();
    let (streams, events, compressed) = {
        let traces = r.traces.lock().unwrap_or_else(|e| e.into_inner());
        traces.values().fold((0u64, 0u64, 0u64), |(s, e, c), d| {
            (s + 1, e + d.events as u64, c + d.blocks.len() as u64)
        })
    };
    ArenaStats {
        generated: r.generated.load(Ordering::Relaxed),
        reused: r.reused.load(Ordering::Relaxed),
        bypassed: r.bypassed.load(Ordering::Relaxed),
        bypass_events: r.bypass_events.load(Ordering::Relaxed),
        resident_streams: streams,
        resident_events: events,
        packed_bytes: events * PACKED_EVENT_BYTES,
        compressed_bytes: compressed,
    }
}

/// Drops every materialized stream and zeroes the counters (tests and
/// memory-pressure hygiene; in-flight cursors keep their streams alive
/// through their `Arc`s).
pub fn clear() {
    let r = registry();
    r.traces.lock().unwrap_or_else(|e| e.into_inner()).clear();
    r.generated.store(0, Ordering::Relaxed);
    r.reused.store(0, Ordering::Relaxed);
    r.bypassed.store(0, Ordering::Relaxed);
    r.bypass_events.store(0, Ordering::Relaxed);
}

/// Result of an arena integrity audit (see [`verify`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArenaAudit {
    /// Streams whose checksum was re-verified.
    pub checked: u64,
    /// Names of streams whose compressed bytes no longer match their
    /// generation-time checksum (in-memory corruption).
    pub corrupt: Vec<String>,
}

impl ArenaAudit {
    /// True when every resident stream verified clean.
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Re-checksums every resident stream against its generation-time CRC32
/// and reports any that no longer match. Chaos campaigns run this after
/// a soak to prove the shared arena was not silently corrupted while
/// dozens of crash/resume cycles replayed it.
pub fn verify() -> ArenaAudit {
    let r = registry();
    let streams: Vec<Arc<ArenaData>> = {
        let traces = r.traces.lock().unwrap_or_else(|e| e.into_inner());
        traces.values().cloned().collect()
    };
    let mut audit = ArenaAudit::default();
    for data in streams {
        audit.checked += 1;
        if !data.intact() {
            audit.corrupt.push(data.name.clone());
        }
    }
    audit
}

/// Estimated packed (uncompressed) footprint of one scaled stream, in
/// bytes.
fn estimated_packed_bytes(spec: &BenchmarkSpec, scale: f64) -> u64 {
    let events = spec.scaled_instructions(scale) as f64 * spec.refs_per_instruction();
    (events * PACKED_EVENT_BYTES as f64) as u64
}

/// Serves a cursor request from a live generator, counting the bypass.
fn bypass(spec: &BenchmarkSpec, pid: Pid, scale: f64) -> Box<dyn Trace> {
    let r = registry();
    r.bypassed.fetch_add(1, Ordering::Relaxed);
    r.bypass_events.fetch_add(
        estimated_packed_bytes(spec, scale) / PACKED_EVENT_BYTES,
        Ordering::Relaxed,
    );
    Box::new(TraceGenerator::new(spec, pid, scale))
}

/// Hands out a replay source for `spec` at `scale`: an [`ArenaCursor`]
/// over the shared materialized stream, or — when the stream cannot fit
/// under [`ARENA_TRACE_BYTE_CAP`] compressed — a direct
/// [`TraceGenerator`]. Either way the event stream is byte-identical to
/// direct generation.
pub fn cursor(spec: &BenchmarkSpec, pid: Pid, scale: f64) -> Box<dyn Trace> {
    if estimated_packed_bytes(spec, scale) > BYPASS_ESTIMATE_FACTOR * ARENA_TRACE_BYTE_CAP {
        return bypass(spec, pid, scale);
    }
    let r = registry();
    let key: ArenaKey = (spec.name, spec.seed, pid.raw(), scale.to_bits());
    let hit = {
        let traces = r.traces.lock().unwrap_or_else(|e| e.into_inner());
        traces.get(&key).cloned()
    };
    let data = match hit {
        Some(data) => {
            r.reused.fetch_add(1, Ordering::Relaxed);
            data
        }
        None => {
            // Generate outside the lock: a racing worker may duplicate the
            // work, but the products are deterministic and identical, and
            // no worker serializes behind another's generation.
            match ArenaData::generate(spec, pid, scale, ARENA_TRACE_BYTE_CAP) {
                Some(fresh) => {
                    let fresh = Arc::new(fresh);
                    r.generated.fetch_add(1, Ordering::Relaxed);
                    let mut traces = r.traces.lock().unwrap_or_else(|e| e.into_inner());
                    traces.entry(key).or_insert_with(|| fresh.clone()).clone()
                }
                // Compressed size crossed the cap mid-generation: stream
                // straight from a fresh generator instead.
                None => return bypass(spec, pid, scale),
            }
        }
    };
    Box::new(ArenaCursor::new(data))
}

/// A replay cursor over one materialized compressed stream.
///
/// Decodes one block at a time into a reusable scratch buffer of decoded
/// [`TraceEvent`]s and serves [`Trace::next_batch`] requests out of it
/// with a slice copy, so a 4096-event block amortizes its decode across
/// the ~16 scheduler refills it feeds. Corrupt in-memory blocks fail
/// decoding and **panic** (fail-stop): a materialized stream that no
/// longer parses means memory corruption, and simulating on garbage
/// would silently poison every downstream result.
#[derive(Debug, Clone)]
pub struct ArenaCursor {
    data: Arc<ArenaData>,
    /// Events already served.
    pos: usize,
    /// Byte offset of the next undecoded block in `data.blocks`.
    byte_off: usize,
    /// Decoded events of the current block.
    scratch: Vec<TraceEvent>,
    /// Cursor into `scratch`.
    scratch_pos: usize,
}

impl ArenaCursor {
    fn new(data: Arc<ArenaData>) -> Self {
        ArenaCursor {
            data,
            pos: 0,
            byte_off: 0,
            scratch: Vec::new(),
            scratch_pos: 0,
        }
    }

    /// Events remaining.
    pub fn remaining(&self) -> usize {
        self.data.events - self.pos
    }

    /// Decodes the next block into the scratch buffer. Caller ensures
    /// events remain.
    fn refill(&mut self) {
        self.scratch.clear();
        self.scratch_pos = 0;
        let bytes = &self.data.blocks[self.byte_off..];
        match codec::decode_block_events_unchecked(bytes, &mut self.scratch) {
            Ok(consumed) => self.byte_off += consumed,
            Err(e) => panic!(
                "arena stream '{}' corrupt at byte {}: {e} (in-memory corruption; fail-stop)",
                self.data.name, self.byte_off
            ),
        }
    }
}

impl Iterator for ArenaCursor {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.pos >= self.data.events {
            return None;
        }
        if self.scratch_pos >= self.scratch.len() {
            self.refill();
        }
        let ev = self.scratch[self.scratch_pos];
        self.scratch_pos += 1;
        self.pos += 1;
        Some(ev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl Trace for ArenaCursor {
    fn name(&self) -> &str {
        &self.data.name
    }

    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let want = self.remaining().min(max);
        let mut served = 0;
        while served < want {
            if self.scratch_pos >= self.scratch.len() {
                // When the rest of the request can absorb the whole next
                // block, decode straight into the destination and skip the
                // scratch copy — with a consumer batch of one block
                // (the scheduler's refill size) every decode takes this
                // path.
                let bytes = &self.data.blocks[self.byte_off..];
                let (_, count) = codec::block_extent(bytes).unwrap_or_else(|e| {
                    panic!(
                        "arena stream '{}' corrupt at byte {}: {e} (in-memory corruption; fail-stop)",
                        self.data.name, self.byte_off
                    )
                });
                if count <= want - served {
                    match codec::decode_block_events_unchecked(bytes, out) {
                        Ok(consumed) => self.byte_off += consumed,
                        Err(e) => panic!(
                            "arena stream '{}' corrupt at byte {}: {e} (in-memory corruption; fail-stop)",
                            self.data.name, self.byte_off
                        ),
                    }
                    served += count;
                    continue;
                }
                self.refill();
            }
            let avail = self.scratch.len() - self.scratch_pos;
            let n = avail.min(want - served);
            out.extend_from_slice(&self.scratch[self.scratch_pos..self.scratch_pos + n]);
            self.scratch_pos += n;
            served += n;
        }
        self.pos += served;
        served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_model::suite;

    #[test]
    fn cursor_replays_generator_exactly() {
        let spec = suite()[0].clone();
        let scale = 2e-4;
        let direct: Vec<TraceEvent> = TraceGenerator::new(&spec, Pid::new(0), scale).collect();
        let replay: Vec<TraceEvent> = cursor(&spec, Pid::new(0), scale).collect();
        assert_eq!(direct, replay);
    }

    #[test]
    fn second_cursor_reuses_the_materialized_stream() {
        let spec = suite()[1].clone();
        let scale = 1.1e-4; // unlikely to collide with other tests' keys
        let before = stats();
        let a: Vec<TraceEvent> = cursor(&spec, Pid::new(3), scale).collect();
        let b: Vec<TraceEvent> = cursor(&spec, Pid::new(3), scale).collect();
        let after = stats();
        assert_eq!(a, b);
        assert!(after.reused > before.reused, "second cursor must reuse");
    }

    #[test]
    fn oversized_stream_bypasses_the_arena() {
        // The largest suite member at full scale cannot fit even
        // compressed; it must come back as a live generator and be
        // counted as a bypass.
        let spec = suite()
            .iter()
            .max_by_key(|s| s.instructions)
            .expect("non-empty suite")
            .clone();
        assert!(estimated_packed_bytes(&spec, 1.0) > BYPASS_ESTIMATE_FACTOR * ARENA_TRACE_BYTE_CAP);
        let before = stats();
        let mut t = cursor(&spec, Pid::new(0), 1.0);
        assert!(t.next().is_some());
        let after = stats();
        assert!(after.bypassed > before.bypassed, "bypass must be counted");
        assert!(
            after.bypass_events > before.bypass_events,
            "bypassed events must be estimated"
        );
    }

    #[test]
    fn generation_bails_when_compressed_size_crosses_the_cap() {
        let spec = suite()[0].clone();
        // A byte cap of 1 forces the mid-generation bail immediately.
        assert!(ArenaData::generate(&spec, Pid::new(0), 1e-4, 1).is_none());
        // The real cap comfortably fits the test-scale stream.
        assert!(ArenaData::generate(&spec, Pid::new(0), 1e-4, ARENA_TRACE_BYTE_CAP).is_some());
    }

    #[test]
    fn materialized_streams_compress_at_least_two_fold() {
        // The tentpole acceptance: the v3 encoding must shrink the packed
        // 10 B/event footprint at least 2× on every suite stream.
        for spec in suite() {
            let data =
                ArenaData::generate(&spec, Pid::new(0), 1e-4, ARENA_TRACE_BYTE_CAP).expect("fits");
            let packed = data.events as u64 * PACKED_EVENT_BYTES;
            let compressed = data.blocks.len() as u64;
            assert!(
                compressed * 2 <= packed,
                "{}: {} events compress to {} bytes ({}x < 2x)",
                spec.name,
                data.events,
                compressed,
                packed as f64 / compressed as f64
            );
        }
    }

    #[test]
    fn audit_verifies_resident_streams() {
        let spec = suite()[2].clone();
        let scale = 1.3e-4; // unlikely to collide with other tests' keys
        let _ = cursor(&spec, Pid::new(5), scale);
        let audit = verify();
        assert!(audit.checked >= 1);
        assert!(
            audit.clean(),
            "fresh streams must verify: {:?}",
            audit.corrupt
        );
    }

    #[test]
    fn audit_detects_corrupted_stream() {
        let spec = suite()[3].clone();
        let mut data =
            ArenaData::generate(&spec, Pid::new(0), 1e-4, ARENA_TRACE_BYTE_CAP).expect("fits");
        assert!(data.intact());
        let mid = data.blocks.len() / 2;
        data.blocks[mid] ^= 1 << 7;
        assert!(!data.intact(), "a flipped bit must fail the checksum");
    }

    #[test]
    #[should_panic(expected = "corrupt")]
    fn cursor_fail_stops_on_corrupt_block() {
        let spec = suite()[4].clone();
        let mut data =
            ArenaData::generate(&spec, Pid::new(0), 1e-4, ARENA_TRACE_BYTE_CAP).expect("fits");
        // Truncate mid-block: structural validation fails even without a
        // checksum pass, and replay must halt rather than emit garbage.
        let cut = data.blocks.len() - 3;
        data.blocks.truncate(cut);
        let mut c = ArenaCursor::new(Arc::new(data));
        let mut out = Vec::new();
        loop {
            out.clear();
            if c.next_batch(&mut out, 512) == 0 {
                break;
            }
        }
    }

    #[test]
    fn batched_and_per_event_draining_agree() {
        let spec = suite()[5].clone();
        let scale = 1.7e-4;
        let per_event: Vec<TraceEvent> = cursor(&spec, Pid::new(1), scale).collect();
        let mut batched = Vec::new();
        let mut t = cursor(&spec, Pid::new(1), scale);
        let mut buf = Vec::new();
        loop {
            buf.clear();
            // 257 deliberately misaligns with the 4096-event blocks.
            if t.next_batch(&mut buf, 257) == 0 {
                break;
            }
            batched.extend_from_slice(&buf);
        }
        assert_eq!(per_event, batched);
    }

    #[test]
    fn stats_report_residency_and_compression() {
        let spec = suite()[6].clone();
        let scale = 1.9e-4;
        let _keep = cursor(&spec, Pid::new(2), scale);
        let s = stats();
        assert!(s.resident_streams >= 1);
        assert!(s.resident_events > 0);
        assert_eq!(s.packed_bytes, s.resident_events * PACKED_EVENT_BYTES);
        assert!(s.compressed_bytes > 0);
        assert!(
            s.compression_ratio() >= 2.0,
            "resident ratio {}",
            s.compression_ratio()
        );
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(ArenaStats::default().hit_rate(), 0.0);
        let s = ArenaStats {
            generated: 1,
            reused: 3,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ArenaStats::default().compression_ratio(), 0.0);
    }
}
