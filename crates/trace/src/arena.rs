//! Shared trace arena: one materialization per benchmark × scale, many
//! cheap replay cursors.
//!
//! Every sweep cell historically re-generated its synthetic event streams
//! from scratch — the RNG draws dominate trace cost, and parallel workers
//! re-did identical generation work per cell. The arena materializes each
//! benchmark's scaled stream **once** into a compact packed encoding
//! (10 bytes/event: a raw PID-prefixed word address plus a 16-bit meta
//! word) behind a process-wide registry keyed by
//! `(benchmark name, seed, pid, scale bits)`, and hands out
//! [`ArenaCursor`]s that replay the stream through the existing
//! [`Trace`]/`next_batch` contract byte-identically to direct generation.
//!
//! Concurrency: the registry lock is **not** held during generation, so
//! parallel workers warming the same trace may generate it twice; both
//! products are deterministic and identical, the first insert wins, and
//! nothing blocks behind a long generation. Oversized streams (estimated
//! footprint above [`ARENA_TRACE_BYTE_CAP`]) bypass the arena and stream
//! directly from the generator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::addr::{Pid, VirtAddr, PID_SHIFT};
use crate::bench_model::BenchmarkSpec;
use crate::crc::Crc32;
use crate::event::{AccessKind, Trace, TraceEvent};
use crate::gen::TraceGenerator;

/// Estimated in-memory footprint (bytes) above which a trace bypasses the
/// arena and streams directly from its generator. 256 MB per trace keeps
/// even a full-suite sweep at the repro scale comfortably resident while
/// bounding pathological scales.
pub const ARENA_TRACE_BYTE_CAP: u64 = 256 << 20;

/// Bytes per packed event: an 8-byte raw address + a 2-byte meta word.
const EVENT_BYTES: u64 = 10;

/// Generation chunk size when draining a generator into the arena.
const GEN_BATCH: usize = 4096;

// Meta-word layout (bits):      11……4        3         2        1..0
//                               stall     syscall   partial    kind
const KIND_MASK: u16 = 0b11;
const PARTIAL_BIT: u16 = 1 << 2;
const SYSCALL_BIT: u16 = 1 << 3;
const STALL_SHIFT: u16 = 4;

#[inline]
fn pack(ev: &TraceEvent) -> (u64, u16) {
    let kind = match ev.kind {
        AccessKind::IFetch => 0u16,
        AccessKind::Load => 1,
        AccessKind::Store => 2,
    };
    let mut meta = kind | ((ev.stall_cycles as u16) << STALL_SHIFT);
    if ev.partial_word {
        meta |= PARTIAL_BIT;
    }
    if ev.syscall {
        meta |= SYSCALL_BIT;
    }
    (ev.addr.raw(), meta)
}

#[inline]
fn unpack(raw: u64, meta: u16) -> TraceEvent {
    let kind = match meta & KIND_MASK {
        0 => AccessKind::IFetch,
        1 => AccessKind::Load,
        _ => AccessKind::Store,
    };
    let pid = Pid::new((raw >> PID_SHIFT) as u8);
    let word = raw & ((1u64 << PID_SHIFT) - 1);
    TraceEvent {
        kind,
        addr: VirtAddr::new(pid, word),
        stall_cycles: (meta >> STALL_SHIFT) as u8,
        partial_word: meta & PARTIAL_BIT != 0,
        syscall: meta & SYSCALL_BIT != 0,
    }
}

/// One materialized event stream (structure-of-arrays packed encoding).
///
/// The stream is checksummed at generation time ([`Crc32`] over the
/// packed words) so long-lived arenas can be audited for in-memory
/// corruption — the software analogue of the parity bits the paper puts
/// on its GaAs SRAM arrays. [`verify`] re-walks every resident stream.
#[derive(Debug)]
struct ArenaData {
    name: String,
    addrs: Vec<u64>,
    meta: Vec<u16>,
    /// CRC32 of the packed stream, computed once at materialization.
    crc: u32,
}

impl ArenaData {
    fn generate(spec: &BenchmarkSpec, pid: Pid, scale: f64) -> Self {
        let mut generator = TraceGenerator::new(spec, pid, scale);
        let mut addrs = Vec::new();
        let mut meta = Vec::new();
        let mut buf = Vec::with_capacity(GEN_BATCH);
        loop {
            buf.clear();
            if generator.next_batch(&mut buf, GEN_BATCH) == 0 {
                break;
            }
            for ev in &buf {
                let (a, m) = pack(ev);
                addrs.push(a);
                meta.push(m);
            }
        }
        let crc = stream_crc(&addrs, &meta);
        ArenaData {
            name: spec.name.to_string(),
            addrs,
            meta,
            crc,
        }
    }

    /// True when the packed stream still matches its generation-time
    /// checksum.
    fn intact(&self) -> bool {
        stream_crc(&self.addrs, &self.meta) == self.crc
    }
}

/// CRC32 over the packed stream words in index order.
fn stream_crc(addrs: &[u64], meta: &[u16]) -> u32 {
    let mut h = Crc32::new();
    for (a, m) in addrs.iter().zip(meta) {
        h.update(&a.to_le_bytes());
        h.update(&m.to_le_bytes());
    }
    h.finish()
}

type ArenaKey = (&'static str, u64, u8, u64);

struct Registry {
    traces: Mutex<HashMap<ArenaKey, Arc<ArenaData>>>,
    /// Streams materialized from a generator (cache misses; double
    /// generation under a race counts each generation).
    generated: AtomicU64,
    /// Cursors served from an already-materialized stream.
    reused: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        traces: Mutex::new(HashMap::new()),
        generated: AtomicU64::new(0),
        reused: AtomicU64::new(0),
    })
}

/// Arena usage counters (process-wide, monotone until [`clear`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Streams materialized by running a generator to exhaustion.
    pub generated: u64,
    /// Cursors handed out from an already-materialized stream.
    pub reused: u64,
}

impl ArenaStats {
    /// Fraction of cursor requests served without generation
    /// (`reused / (generated + reused)`; 0 when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.generated + self.reused;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

/// Current arena usage counters.
pub fn stats() -> ArenaStats {
    let r = registry();
    ArenaStats {
        generated: r.generated.load(Ordering::Relaxed),
        reused: r.reused.load(Ordering::Relaxed),
    }
}

/// Drops every materialized stream and zeroes the counters (tests and
/// memory-pressure hygiene; in-flight cursors keep their streams alive
/// through their `Arc`s).
pub fn clear() {
    let r = registry();
    r.traces.lock().unwrap_or_else(|e| e.into_inner()).clear();
    r.generated.store(0, Ordering::Relaxed);
    r.reused.store(0, Ordering::Relaxed);
}

/// Result of an arena integrity audit (see [`verify`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArenaAudit {
    /// Streams whose checksum was re-verified.
    pub checked: u64,
    /// Names of streams whose packed words no longer match their
    /// generation-time checksum (in-memory corruption).
    pub corrupt: Vec<String>,
}

impl ArenaAudit {
    /// True when every resident stream verified clean.
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Re-checksums every resident stream against its generation-time CRC32
/// and reports any that no longer match. Chaos campaigns run this after
/// a soak to prove the shared arena was not silently corrupted while
/// dozens of crash/resume cycles replayed it.
pub fn verify() -> ArenaAudit {
    let r = registry();
    let streams: Vec<Arc<ArenaData>> = {
        let traces = r.traces.lock().unwrap_or_else(|e| e.into_inner());
        traces.values().cloned().collect()
    };
    let mut audit = ArenaAudit::default();
    for data in streams {
        audit.checked += 1;
        if !data.intact() {
            audit.corrupt.push(data.name.clone());
        }
    }
    audit
}

/// Estimated packed footprint of one scaled stream, in bytes.
fn estimated_bytes(spec: &BenchmarkSpec, scale: f64) -> u64 {
    let events = spec.scaled_instructions(scale) as f64 * spec.refs_per_instruction();
    (events * EVENT_BYTES as f64) as u64
}

/// Hands out a replay source for `spec` at `scale`: an [`ArenaCursor`]
/// over the shared materialized stream, or (above
/// [`ARENA_TRACE_BYTE_CAP`]) a direct [`TraceGenerator`]. Either way the
/// event stream is byte-identical to direct generation.
pub fn cursor(spec: &BenchmarkSpec, pid: Pid, scale: f64) -> Box<dyn Trace> {
    if estimated_bytes(spec, scale) > ARENA_TRACE_BYTE_CAP {
        return Box::new(TraceGenerator::new(spec, pid, scale));
    }
    let r = registry();
    let key: ArenaKey = (spec.name, spec.seed, pid.raw(), scale.to_bits());
    let hit = {
        let traces = r.traces.lock().unwrap_or_else(|e| e.into_inner());
        traces.get(&key).cloned()
    };
    let data = match hit {
        Some(data) => {
            r.reused.fetch_add(1, Ordering::Relaxed);
            data
        }
        None => {
            // Generate outside the lock: a racing worker may duplicate the
            // work, but the products are deterministic and identical, and
            // no worker serializes behind another's generation.
            let fresh = Arc::new(ArenaData::generate(spec, pid, scale));
            r.generated.fetch_add(1, Ordering::Relaxed);
            let mut traces = r.traces.lock().unwrap_or_else(|e| e.into_inner());
            traces.entry(key).or_insert_with(|| fresh.clone()).clone()
        }
    };
    Box::new(ArenaCursor { data, pos: 0 })
}

/// A cheap replay cursor over one materialized stream.
#[derive(Debug, Clone)]
pub struct ArenaCursor {
    data: Arc<ArenaData>,
    pos: usize,
}

impl ArenaCursor {
    /// Events remaining.
    pub fn remaining(&self) -> usize {
        self.data.addrs.len() - self.pos
    }
}

impl Iterator for ArenaCursor {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        let i = self.pos;
        if i >= self.data.addrs.len() {
            return None;
        }
        self.pos = i + 1;
        Some(unpack(self.data.addrs[i], self.data.meta[i]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl Trace for ArenaCursor {
    fn name(&self) -> &str {
        &self.data.name
    }

    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let n = self.remaining().min(max);
        let start = self.pos;
        out.reserve(n);
        for i in start..start + n {
            out.push(unpack(self.data.addrs[i], self.data.meta[i]));
        }
        self.pos = start + n;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_model::suite;

    #[test]
    fn pack_round_trips_every_field() {
        let ev = TraceEvent {
            kind: AccessKind::Store,
            addr: VirtAddr::new(Pid::new(9), 0x1234_5678),
            stall_cycles: 255,
            partial_word: true,
            syscall: true,
        };
        let (a, m) = pack(&ev);
        assert_eq!(unpack(a, m), ev);
        let plain = TraceEvent::ifetch(VirtAddr::new(Pid::new(0), 7), 3);
        let (a, m) = pack(&plain);
        assert_eq!(unpack(a, m), plain);
    }

    #[test]
    fn cursor_replays_generator_exactly() {
        let spec = suite()[0].clone();
        let scale = 2e-4;
        let direct: Vec<TraceEvent> = TraceGenerator::new(&spec, Pid::new(0), scale).collect();
        let replay: Vec<TraceEvent> = cursor(&spec, Pid::new(0), scale).collect();
        assert_eq!(direct, replay);
    }

    #[test]
    fn second_cursor_reuses_the_materialized_stream() {
        let spec = suite()[1].clone();
        let scale = 1.1e-4; // unlikely to collide with other tests' keys
        let before = stats();
        let a: Vec<TraceEvent> = cursor(&spec, Pid::new(3), scale).collect();
        let b: Vec<TraceEvent> = cursor(&spec, Pid::new(3), scale).collect();
        let after = stats();
        assert_eq!(a, b);
        assert!(after.reused > before.reused, "second cursor must reuse");
    }

    #[test]
    fn oversized_stream_bypasses_the_arena() {
        let spec = suite()[0].clone();
        // A full-scale stream (hundreds of millions of events) must come
        // back as a live generator, not a materialized arena.
        assert!(estimated_bytes(&spec, 1.0) > ARENA_TRACE_BYTE_CAP);
        let mut t = cursor(&spec, Pid::new(0), 1.0);
        assert!(t.next().is_some());
    }

    #[test]
    fn audit_verifies_resident_streams() {
        let spec = suite()[2].clone();
        let scale = 1.3e-4; // unlikely to collide with other tests' keys
        let _ = cursor(&spec, Pid::new(5), scale);
        let audit = verify();
        assert!(audit.checked >= 1);
        assert!(
            audit.clean(),
            "fresh streams must verify: {:?}",
            audit.corrupt
        );
    }

    #[test]
    fn audit_detects_corrupted_stream() {
        let spec = suite()[3].clone();
        let mut data = ArenaData::generate(&spec, Pid::new(0), 1e-4);
        assert!(data.intact());
        data.addrs[0] ^= 1 << 7;
        assert!(!data.intact(), "a flipped bit must fail the checksum");
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(ArenaStats::default().hit_rate(), 0.0);
        let s = ArenaStats {
            generated: 1,
            reused: 3,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
