//! Small synthetic access patterns with known cache behaviour.
//!
//! These are *diagnostic* workloads — not the Table 1 suite — whose miss
//! behaviour can be predicted exactly: sequential sweeps (pure spatial
//! locality), uniform random (tunable footprint), direct-mapped ping-pong
//! (pure conflicts), and strided sweeps (pathological for a given line
//! size). They are used by tests and benches across the workspace and are
//! handy when validating a new configuration against first principles.

use crate::addr::{Pid, VirtAddr};
use crate::event::{Trace, TraceEvent};
use crate::rng::SmallRng;

/// A named synthetic trace backed by a closure-generated event vector.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    name: String,
    events: std::vec::IntoIter<TraceEvent>,
}

impl SyntheticTrace {
    fn new(name: impl Into<String>, events: Vec<TraceEvent>) -> Self {
        SyntheticTrace {
            name: name.into(),
            events: events.into_iter(),
        }
    }
}

impl Iterator for SyntheticTrace {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        self.events.next()
    }
}

impl Trace for SyntheticTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let start = out.len();
        out.extend(self.events.by_ref().take(max));
        out.len() - start
    }
}

/// Interleaves each generated data address with an instruction fetch from a
/// tiny loop (so the stream satisfies the one-fetch-per-instruction
/// contract the scheduler expects).
fn with_ifetches(pid: Pid, name: &str, data: Vec<(u64, bool)>) -> SyntheticTrace {
    let mut events = Vec::with_capacity(data.len() * 2);
    for (i, (addr, is_store)) in data.into_iter().enumerate() {
        events.push(TraceEvent::ifetch(VirtAddr::new(pid, (i % 16) as u64), 0));
        let va = VirtAddr::new(pid, addr);
        events.push(if is_store {
            TraceEvent::store(va)
        } else {
            TraceEvent::load(va)
        });
    }
    SyntheticTrace::new(name, events)
}

/// A sequential read sweep over `len_words` starting at `base`, repeated
/// `passes` times: one L1 miss per line per pass once the footprint
/// exceeds the cache.
pub fn sequential(pid: Pid, base: u64, len_words: u64, passes: u32) -> SyntheticTrace {
    let mut data = Vec::new();
    for _ in 0..passes {
        for w in 0..len_words {
            data.push((base + w, false));
        }
    }
    with_ifetches(pid, "sequential", data)
}

/// `n` uniform random reads over a `footprint_words` region: the miss
/// ratio approaches `1 − cache/footprint` for large footprints.
pub fn random(pid: Pid, base: u64, footprint_words: u64, n: usize, seed: u64) -> SyntheticTrace {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..n)
        .map(|_| (base + rng.gen_range(0..footprint_words), false))
        .collect();
    with_ifetches(pid, "random", data)
}

/// Alternating reads of two addresses exactly one direct-mapped cache
/// apart: every access conflicts in a direct-mapped cache, every access
/// hits in a 2-way cache.
pub fn pingpong(pid: Pid, base: u64, cache_words: u64, n: usize) -> SyntheticTrace {
    let data = (0..n)
        .map(|i| (base + (i as u64 % 2) * cache_words, false))
        .collect();
    with_ifetches(pid, "pingpong", data)
}

/// A strided read sweep: touching every `stride`-th word. With
/// `stride >= line_words` every access is a fresh line (no spatial reuse).
pub fn strided(pid: Pid, base: u64, stride: u64, n: usize) -> SyntheticTrace {
    let data = (0..n).map(|i| (base + i as u64 * stride, false)).collect();
    with_ifetches(pid, "strided", data)
}

/// A write burst: `n` stores over a window of `window_words`, followed by
/// reads of the same window (exercises write-policy allocate behaviour).
pub fn write_then_read(pid: Pid, base: u64, window_words: u64, n: usize) -> SyntheticTrace {
    let mut data: Vec<(u64, bool)> = (0..n)
        .map(|i| (base + i as u64 % window_words, true))
        .collect();
    data.extend((0..n).map(|i| (base + i as u64 % window_words, false)));
    with_ifetches(pid, "write_then_read", data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AccessKind;

    #[test]
    fn traces_alternate_fetch_and_data() {
        let t = sequential(Pid::new(0), 0x1000, 64, 1);
        let evs: Vec<_> = t.collect();
        assert_eq!(evs.len(), 128);
        for pair in evs.chunks(2) {
            assert_eq!(pair[0].kind, AccessKind::IFetch);
            assert!(pair[1].kind.is_data());
        }
    }

    #[test]
    fn pingpong_alternates_two_lines() {
        let t = pingpong(Pid::new(1), 0, 4096, 4);
        let data: Vec<u64> = t
            .filter(|e| e.kind.is_data())
            .map(|e| e.addr.word())
            .collect();
        assert_eq!(data, vec![0, 4096, 0, 4096]);
    }

    #[test]
    fn random_stays_in_footprint() {
        let t = random(Pid::new(2), 0x8000, 1024, 500, 7);
        for e in t.filter(|e| e.kind.is_data()) {
            let w = e.addr.word();
            assert!((0x8000..0x8000 + 1024).contains(&w));
        }
    }

    #[test]
    fn write_then_read_halves() {
        let t = write_then_read(Pid::new(3), 0, 64, 100);
        let stores = t.clone().filter(|e| e.kind == AccessKind::Store).count();
        assert_eq!(stores, 100);
        let loads = t.filter(|e| e.kind == AccessKind::Load).count();
        assert_eq!(loads, 100);
    }

    #[test]
    fn names_are_meaningful() {
        assert_eq!(sequential(Pid::new(0), 0, 4, 1).name(), "sequential");
        assert_eq!(strided(Pid::new(0), 0, 8, 4).name(), "strided");
    }
}
