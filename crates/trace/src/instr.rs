//! Synthetic instruction-stream model.
//!
//! Emulates the instruction-fetch address behaviour of a compiled program:
//! a set of functions built from basic blocks, with geometric loops, a call
//! stack, and Zipf-biased call targets so a hot subset of the code dominates
//! fetches (what makes small direct-mapped I-caches work at all). The model
//! is a pure address source; instruction *classification* (load/store/stall)
//! is layered on by [`crate::gen::TraceGenerator`].
//!
//! Control flow is decided **dynamically** at each block end — loop back
//! with the geometric continue probability, call a Zipf-sampled function
//! with a subcritical call probability, or fall through — so every function
//! is a potential call site and the walk keeps returning to `main` and
//! re-spreading over the footprint.

use crate::bench_model::CodeModel;
use crate::rng::{bernoulli_threshold, SmallRng, F64_DRAW_SHIFT};

/// Word address where program text begins (MIPS convention: byte 0x0040_0000).
pub const TEXT_BASE_WORD: u64 = 0x0010_0000;

/// Maximum modelled call depth; deeper calls degenerate to tail calls.
const MAX_CALL_DEPTH: usize = 32;

/// Capacity of the recently-called-function ring: bounds the instantaneous
/// code working set (which must be L2-resident, Fig. 7's flat tail) while
/// fresh Zipf draws keep it drifting over the footprint.
const RECENT_FUNCS: usize = 64;

/// Probability a call re-targets a recently called function.
const P_RECALL: f64 = 0.97;

#[derive(Debug, Clone, Copy)]
struct Block {
    /// Word offset of the block within its function.
    start: u32,
    /// Block length in words (≥ 1).
    len: u32,
    /// Backward branch target (block index) for loop blocks.
    loop_target: Option<u32>,
    /// This is the function's final block (returns).
    is_last: bool,
}

#[derive(Debug, Clone)]
struct Function {
    /// Absolute word address of the function entry.
    base: u64,
    blocks: Vec<Block>,
}

/// Block-granular position of the walk. Instruction-level progress within
/// the block lives in the cached `cur_addr`/`left` fast-path fields, so a
/// cursor always points at a block start.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    func: u32,
    block: u32,
}

/// Walks a randomly constructed control-flow graph and yields one
/// instruction-fetch word address per step.
#[derive(Debug, Clone)]
pub struct InstrStream {
    funcs: Vec<Function>,
    cur: Cursor,
    /// Next fetch address (fast path: most fetches are mid-block and touch
    /// nothing but these two fields).
    cur_addr: u64,
    /// Instructions left in the current block (≥ 1 between calls).
    left: u32,
    stack: Vec<Cursor>,
    /// Cumulative Zipf weights for runtime callee selection.
    callee_cdf: Vec<f64>,
    /// Geometric loop-continue probability (53-bit draw threshold).
    t_continue: u64,
    /// Per-block-end call probability (53-bit draw threshold).
    t_call: u64,
    /// [`P_RECALL`] as a 53-bit draw threshold.
    t_recall: u64,
    /// Ring of recently called functions (temporal call locality).
    recent: Vec<u32>,
    recent_pos: usize,
}

impl InstrStream {
    /// Builds the control-flow graph for a code model. Construction is
    /// deterministic in the RNG state.
    pub fn new(model: &CodeModel, rng: &mut SmallRng) -> Self {
        let n_funcs = model.n_funcs.max(1);
        let words_per_func = (model.footprint_words / n_funcs as u64).max(8) as u32;
        let mean_block = model.mean_block_words.max(2);
        let mean_iters = model.mean_loop_iters.max(1.0);
        let p_continue = 1.0 - 1.0 / mean_iters;

        // Subcritical call process: E[calls per activation] ≈ 0.85, so the
        // stack drains and the walk keeps re-sampling callees from `main`.
        // Loop regions are non-overlapping (see below); with ~25 % of
        // blocks closing a region whose body spans about half the gap back
        // to the previous region, roughly half of all blocks sit inside a
        // loop body and are re-visited `mean_iters` times.
        let blocks_per_func = (words_per_func as f64 / mean_block as f64).max(1.0);
        let end_visits = blocks_per_func * (1.0 + 0.5 * (mean_iters - 1.0));
        let p_call = (0.85 / end_visits).min(0.25);

        // Zipf CDF over callees: function i (main excluded) gets weight
        // 1/i^theta.
        let callees = n_funcs.max(2) - 1;
        let mut callee_cdf = Vec::with_capacity(callees as usize);
        let mut acc = 0.0;
        for i in 0..callees {
            acc += 1.0 / ((i + 1) as f64).powf(model.call_zipf_theta);
            callee_cdf.push(acc);
        }
        for w in &mut callee_cdf {
            *w /= acc;
        }

        let mut funcs = Vec::with_capacity(n_funcs as usize);
        for fi in 0..n_funcs {
            let base = TEXT_BASE_WORD + fi as u64 * words_per_func as u64;
            let mut blocks: Vec<Block> = Vec::new();
            let mut off = 0u32;
            // First block index that may still become a loop body: keeping
            // regions non-overlapping prevents nested-loop blowup of the
            // call process.
            let mut loop_floor = 0u32;
            while off < words_per_func {
                let remaining = words_per_func - off;
                let len = rng.gen_range(1..=2 * mean_block - 1).min(remaining).max(1);
                let is_last = off + len >= words_per_func;
                let idx = blocks.len() as u32;
                let loop_target =
                    (!is_last && idx > loop_floor && rng.gen::<f64>() < 0.25).then(|| {
                        let target = rng.gen_range(loop_floor..idx);
                        loop_floor = idx + 1;
                        target
                    });
                blocks.push(Block {
                    start: off,
                    len,
                    loop_target,
                    is_last,
                });
                off += len;
            }
            funcs.push(Function { base, blocks });
        }

        let mut s = InstrStream {
            funcs,
            cur: Cursor { func: 0, block: 0 },
            cur_addr: 0,
            left: 0,
            stack: Vec::with_capacity(MAX_CALL_DEPTH),
            callee_cdf,
            t_continue: bernoulli_threshold(p_continue),
            t_call: bernoulli_threshold(p_call),
            t_recall: bernoulli_threshold(P_RECALL),
            recent: Vec::with_capacity(RECENT_FUNCS),
            recent_pos: 0,
        };
        s.reload_block();
        s
    }

    /// Loads the fast-path fields from the block the cursor points at.
    fn reload_block(&mut self) {
        let f = &self.funcs[self.cur.func as usize];
        let b = &f.blocks[self.cur.block as usize];
        self.cur_addr = f.base + b.start as u64;
        self.left = b.len;
    }

    /// Current call depth (0 = in `main`).
    pub fn call_depth(&self) -> usize {
        self.stack.len()
    }

    /// Total code footprint in words.
    pub fn footprint_words(&self) -> u64 {
        let last = self.funcs.last().expect("at least one function");
        last.base + last.blocks.iter().map(|b| b.len as u64).sum::<u64>() - TEXT_BASE_WORD
    }

    /// Samples a callee: usually a recently called function (temporal call
    /// locality); otherwise a fresh Zipf draw, which enters the recency
    /// ring. Function 0 — `main` — is never a callee unless it is the only
    /// function.
    fn sample_callee(&mut self, rng: &mut SmallRng) -> u32 {
        if self.funcs.len() == 1 {
            return 0;
        }
        if !self.recent.is_empty() && (rng.next_u64() >> F64_DRAW_SHIFT) < self.t_recall {
            return self.recent[rng.gen_range(0..self.recent.len())];
        }
        let x: f64 = rng.gen();
        let i = match self
            .callee_cdf
            .binary_search_by(|w| w.partial_cmp(&x).expect("weight is not NaN"))
        {
            Ok(i) | Err(i) => (i as u32).min(self.callee_cdf.len() as u32 - 1),
        };
        let callee = (i + 1).min(self.funcs.len() as u32 - 1);
        if self.recent.len() < RECENT_FUNCS {
            self.recent.push(callee);
        } else {
            self.recent[self.recent_pos] = callee;
            self.recent_pos = (self.recent_pos + 1) % RECENT_FUNCS;
        }
        callee
    }

    /// Produces the next instruction-fetch word address and advances the
    /// walk. Infinite: when `main` returns the program restarts.
    #[inline]
    pub fn next_addr(&mut self, rng: &mut SmallRng) -> u64 {
        let addr = self.cur_addr;
        self.cur_addr += 1;
        self.left -= 1;
        if self.left == 0 {
            self.advance_block(rng);
        }
        addr
    }

    /// Block-end control transfer: return, loop back, call, or fall
    /// through. The draw order is data-dependent (a continue draw happens
    /// only on loop blocks) — part of the stream's seed contract.
    fn advance_block(&mut self, rng: &mut SmallRng) {
        let b = self.funcs[self.cur.func as usize].blocks[self.cur.block as usize];
        if b.is_last {
            match self.stack.pop() {
                Some(resume) => self.cur = resume,
                None => self.cur = Cursor { func: 0, block: 0 },
            }
        } else if let Some(target) = b
            .loop_target
            .filter(|_| (rng.next_u64() >> F64_DRAW_SHIFT) < self.t_continue)
        {
            self.cur.block = target;
        } else if (rng.next_u64() >> F64_DRAW_SHIFT) < self.t_call {
            let callee = self.sample_callee(rng);
            if self.stack.len() < MAX_CALL_DEPTH {
                let mut resume = self.cur;
                resume.block += 1;
                self.stack.push(resume);
            }
            // At the depth cap this degenerates to a tail call.
            self.cur = Cursor {
                func: callee,
                block: 0,
            };
        } else {
            self.cur.block += 1;
        }
        self.reload_block();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn model() -> CodeModel {
        CodeModel {
            footprint_words: 4096,
            n_funcs: 16,
            mean_block_words: 6,
            mean_loop_iters: 8.0,
            call_zipf_theta: 1.2,
        }
    }

    #[test]
    fn addresses_stay_in_text_footprint() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut s = InstrStream::new(&model(), &mut rng);
        let fp = s.footprint_words();
        for _ in 0..100_000 {
            let a = s.next_addr(&mut rng);
            assert!(
                a >= TEXT_BASE_WORD && a < TEXT_BASE_WORD + fp,
                "addr {a:#x}"
            );
        }
    }

    #[test]
    fn stream_is_deterministic_in_seed() {
        let run = || {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut s = InstrStream::new(&model(), &mut rng);
            (0..10_000)
                .map(|_| s.next_addr(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stream_has_loop_locality() {
        // A loopy CFG must revisit addresses far more often than a random
        // walk over the footprint would.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut s = InstrStream::new(&model(), &mut rng);
        let n = 50_000;
        let mut seen = HashSet::new();
        for _ in 0..n {
            seen.insert(s.next_addr(&mut rng));
        }
        assert!(seen.len() < n / 4, "unique {}", seen.len());
    }

    #[test]
    fn walk_covers_a_large_share_of_the_footprint() {
        // Dynamic call sampling must spread execution over most functions
        // (this regressed with statically chosen call sites). Use a mild
        // Zipf exponent so the tail is reachable in a bounded walk.
        let m = CodeModel {
            call_zipf_theta: 0.5,
            ..model()
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let mut s = InstrStream::new(&m, &mut rng);
        let fp = s.footprint_words();
        let mut seen = HashSet::new();
        for _ in 0..2_000_000 {
            seen.insert(s.next_addr(&mut rng));
        }
        assert!(
            seen.len() as u64 > fp / 2,
            "covered {} of {fp} words",
            seen.len()
        );
    }

    #[test]
    fn consecutive_fetches_are_mostly_sequential() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut s = InstrStream::new(&model(), &mut rng);
        let mut prev = s.next_addr(&mut rng);
        let mut seq = 0u32;
        let n = 20_000;
        for _ in 0..n {
            let a = s.next_addr(&mut rng);
            if a == prev + 1 {
                seq += 1;
            }
            prev = a;
        }
        assert!(
            seq as f64 / n as f64 > 0.6,
            "sequential fraction {}",
            seq as f64 / n as f64
        );
    }

    #[test]
    fn call_depth_bounded() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut s = InstrStream::new(&model(), &mut rng);
        for _ in 0..200_000 {
            s.next_addr(&mut rng);
            assert!(s.call_depth() <= MAX_CALL_DEPTH);
        }
    }

    #[test]
    fn call_depth_returns_to_main() {
        // Subcritical calling: the stack must drain back to `main`
        // regularly, not pin at the cap.
        let mut rng = SmallRng::seed_from_u64(13);
        let mut s = InstrStream::new(&model(), &mut rng);
        let mut at_main = 0u32;
        for _ in 0..100_000 {
            s.next_addr(&mut rng);
            if s.call_depth() == 0 {
                at_main += 1;
            }
        }
        assert!(at_main > 1_000, "only {at_main} fetches at depth 0");
    }

    #[test]
    fn single_function_model_works() {
        let m = CodeModel {
            footprint_words: 64,
            n_funcs: 1,
            mean_block_words: 4,
            mean_loop_iters: 2.0,
            call_zipf_theta: 1.0,
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let mut s = InstrStream::new(&m, &mut rng);
        for _ in 0..1_000 {
            let a = s.next_addr(&mut rng);
            assert!(a < TEXT_BASE_WORD + 64);
        }
    }
}
