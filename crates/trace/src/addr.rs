//! Address arithmetic for the simulated machine.
//!
//! The target machine is a 32-bit MIPS-architecture processor with 4-byte
//! words and a 4 KW (16 KB) page size. All addresses in this crate are
//! **word addresses** (the caches of the paper are word-organized: sizes,
//! line sizes and fetch sizes are all quoted in words, "W").
//!
//! The architecture prefixes an 8-bit process identifier (PID) to every
//! virtual address so that each process has a distinct address space and the
//! caches and TLB never need to be flushed on a context switch (§3 of the
//! paper). [`VirtAddr`] carries the PID in the high bits of a `u64`.

use std::fmt;

/// Bytes per machine word.
pub const WORD_BYTES: u64 = 4;

/// Words per page: the target machine's page size is 4 KW (16 KB).
pub const PAGE_WORDS: u64 = 4096;

/// log2 of [`PAGE_WORDS`].
pub const PAGE_SHIFT: u32 = 12;

/// Number of bits of a PID prefix (§2: "8 bits in our case").
pub const PID_BITS: u32 = 8;

/// Bit position where the PID is placed inside a [`VirtAddr`] raw value.
///
/// The virtual word-address space of the 32-bit machine spans 30 bits
/// (2^30 words = 4 GB); the PID sits above it.
pub const PID_SHIFT: u32 = 32;

/// A process identifier, prefixed to virtual addresses (max 8 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(u8);

impl Pid {
    /// Creates a new PID.
    pub const fn new(id: u8) -> Self {
        Pid(id)
    }

    /// The raw 8-bit identifier.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl From<u8> for Pid {
    fn from(v: u8) -> Self {
        Pid(v)
    }
}

/// A PID-prefixed virtual **word** address.
///
/// Layout of the raw `u64`: `[ pid : 8 | word address : 32 ]` (the word
/// address itself only occupies the low 30 bits on the 32-bit target, but we
/// reserve 32 for headroom in synthetic workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Builds a virtual address from a PID and a word offset within that
    /// process' address space.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `word` overflows the 32-bit word-address
    /// space reserved below the PID prefix.
    pub fn new(pid: Pid, word: u64) -> Self {
        debug_assert!(word < (1u64 << PID_SHIFT), "word address overflow");
        VirtAddr(((pid.0 as u64) << PID_SHIFT) | word)
    }

    /// The PID prefix.
    pub fn pid(self) -> Pid {
        Pid((self.0 >> PID_SHIFT) as u8)
    }

    /// The word address within the owning process' address space.
    pub fn word(self) -> u64 {
        self.0 & ((1u64 << PID_SHIFT) - 1)
    }

    /// The raw PID-prefixed value. Useful as a flat key: distinct processes
    /// never collide.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The virtual page number (within the process), i.e. `word / 4096`.
    pub fn vpn(self) -> u64 {
        self.word() >> PAGE_SHIFT
    }

    /// The word offset within the page.
    pub fn page_offset(self) -> u64 {
        self.word() & (PAGE_WORDS - 1)
    }

    /// Returns the address advanced by `delta` words (same process).
    pub fn wrapping_add(self, delta: u64) -> Self {
        VirtAddr::new(
            self.pid(),
            (self.word() + delta) & ((1u64 << PID_SHIFT) - 1),
        )
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#010x}", self.pid(), self.word())
    }
}

/// A physical **word** address, produced by the page-coloring mapper.
///
/// Physical addresses are flat: the PID has been consumed by translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Builds a physical word address.
    pub const fn new(word: u64) -> Self {
        PhysAddr(word)
    }

    /// The raw word address.
    pub const fn word(self) -> u64 {
        self.0
    }

    /// The physical page number.
    pub const fn ppn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// The word offset within the page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_WORDS - 1)
    }

    /// The address of the enclosing aligned block of `block_words` words.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `block_words` is not a power of two.
    pub fn block_base(self, block_words: u64) -> PhysAddr {
        debug_assert!(block_words.is_power_of_two());
        PhysAddr(self.0 & !(block_words - 1))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P:{:#010x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_packs_pid_and_word() {
        let a = VirtAddr::new(Pid::new(7), 0x1234_5678);
        assert_eq!(a.pid(), Pid::new(7));
        assert_eq!(a.word(), 0x1234_5678);
    }

    #[test]
    fn distinct_pids_never_collide() {
        let a = VirtAddr::new(Pid::new(1), 42);
        let b = VirtAddr::new(Pid::new(2), 42);
        assert_ne!(a.raw(), b.raw());
        assert_eq!(a.word(), b.word());
    }

    #[test]
    fn vpn_and_offset_split_at_page_boundary() {
        let a = VirtAddr::new(Pid::new(0), 3 * PAGE_WORDS + 17);
        assert_eq!(a.vpn(), 3);
        assert_eq!(a.page_offset(), 17);
    }

    #[test]
    fn page_words_matches_shift() {
        assert_eq!(1u64 << PAGE_SHIFT, PAGE_WORDS);
    }

    #[test]
    fn phys_block_base_aligns() {
        let p = PhysAddr::new(0x1237);
        assert_eq!(p.block_base(4).word(), 0x1234);
        assert_eq!(p.block_base(32).word(), 0x1220);
    }

    #[test]
    fn wrapping_add_stays_in_process() {
        let a = VirtAddr::new(Pid::new(3), (1u64 << PID_SHIFT) - 2);
        let b = a.wrapping_add(5);
        assert_eq!(b.pid(), Pid::new(3));
        assert_eq!(b.word(), 3);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", VirtAddr::new(Pid::new(1), 0)).is_empty());
        assert!(!format!("{}", PhysAddr::new(0)).is_empty());
        assert!(!format!("{}", Pid::new(9)).is_empty());
    }
}
