//! Trace events — the unit of communication between workload and simulator.
//!
//! Mirrors what the paper's `pixie`-instrumented binaries produce: a stream
//! of instruction-fetch and data-reference addresses, augmented with the
//! information the multiprogramming simulator needs (voluntary system-call
//! markers, §3) and the information the CPI model needs (per-instruction
//! processor stall cycles, which the paper folds into the 1.238 base CPI).

use crate::addr::VirtAddr;

/// The kind of memory reference an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An instruction fetch (exactly one per executed instruction).
    IFetch,
    /// A data load.
    Load,
    /// A data store.
    Store,
}

impl AccessKind {
    /// True for [`AccessKind::Load`] and [`AccessKind::Store`].
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::IFetch)
    }
}

/// One reference in an address trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What kind of reference this is.
    pub kind: AccessKind,
    /// The PID-prefixed virtual word address referenced.
    pub addr: VirtAddr,
    /// Processor stall cycles charged to this instruction over and above the
    /// single issue cycle (load delays, branch delays, multicycle FP — the
    /// paper's `CPU_stall_cycles`). Only meaningful on [`AccessKind::IFetch`]
    /// events.
    pub stall_cycles: u8,
    /// For stores: true when the store writes less than a full word.
    /// Partial-word writes do not set valid bits under subblock placement
    /// (§6).
    pub partial_word: bool,
    /// True when this instruction is a voluntary system call; the simulator
    /// pessimistically context-switches at every such instruction (§3). Only
    /// meaningful on [`AccessKind::IFetch`] events.
    pub syscall: bool,
}

impl TraceEvent {
    /// Convenience constructor for an instruction fetch.
    pub fn ifetch(addr: VirtAddr, stall_cycles: u8) -> Self {
        TraceEvent {
            kind: AccessKind::IFetch,
            addr,
            stall_cycles,
            partial_word: false,
            syscall: false,
        }
    }

    /// Convenience constructor for a load.
    pub fn load(addr: VirtAddr) -> Self {
        TraceEvent {
            kind: AccessKind::Load,
            addr,
            stall_cycles: 0,
            partial_word: false,
            syscall: false,
        }
    }

    /// Convenience constructor for a full-word store.
    pub fn store(addr: VirtAddr) -> Self {
        TraceEvent {
            kind: AccessKind::Store,
            addr,
            stall_cycles: 0,
            partial_word: false,
            syscall: false,
        }
    }

    /// Convenience constructor for a partial-word store.
    pub fn partial_store(addr: VirtAddr) -> Self {
        TraceEvent {
            kind: AccessKind::Store,
            addr,
            stall_cycles: 0,
            partial_word: true,
            syscall: false,
        }
    }

    /// Marks this event as a voluntary system-call instruction.
    pub fn with_syscall(mut self) -> Self {
        self.syscall = true;
        self
    }
}

/// A source of trace events.
///
/// A `Trace` is an [`Iterator`] of [`TraceEvent`]s with a human-readable
/// name; the simulator treats each trace as one process of the
/// multiprogramming workload. The trait is object-safe so heterogeneous
/// workloads (synthetic generators, file-backed traces, test fixtures) can
/// be mixed.
pub trait Trace: Iterator<Item = TraceEvent> {
    /// Human-readable benchmark name (used in reports).
    fn name(&self) -> &str;
}

/// A trivial [`Trace`] over an in-memory event vector, mainly for tests.
#[derive(Debug, Clone)]
pub struct VecTrace {
    name: String,
    events: std::vec::IntoIter<TraceEvent>,
}

impl VecTrace {
    /// Wraps a vector of events as a named trace.
    pub fn new(name: impl Into<String>, events: Vec<TraceEvent>) -> Self {
        VecTrace {
            name: name.into(),
            events: events.into_iter(),
        }
    }
}

impl Iterator for VecTrace {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        self.events.next()
    }
}

impl Trace for VecTrace {
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pid;

    #[test]
    fn constructors_set_kind() {
        let a = VirtAddr::new(Pid::new(0), 100);
        assert_eq!(TraceEvent::ifetch(a, 2).kind, AccessKind::IFetch);
        assert_eq!(TraceEvent::load(a).kind, AccessKind::Load);
        assert_eq!(TraceEvent::store(a).kind, AccessKind::Store);
        assert!(TraceEvent::partial_store(a).partial_word);
        assert!(!TraceEvent::store(a).partial_word);
        assert!(TraceEvent::ifetch(a, 0).with_syscall().syscall);
    }

    #[test]
    fn is_data_distinguishes_fetches() {
        assert!(!AccessKind::IFetch.is_data());
        assert!(AccessKind::Load.is_data());
        assert!(AccessKind::Store.is_data());
    }

    #[test]
    fn vec_trace_yields_in_order() {
        let a = VirtAddr::new(Pid::new(1), 0);
        let evs = vec![
            TraceEvent::ifetch(a, 0),
            TraceEvent::load(a.wrapping_add(1)),
        ];
        let mut t = VecTrace::new("t", evs.clone());
        assert_eq!(t.name(), "t");
        assert_eq!(t.next(), Some(evs[0]));
        assert_eq!(t.next(), Some(evs[1]));
        assert_eq!(t.next(), None);
    }
}
