//! Trace events — the unit of communication between workload and simulator.
//!
//! Mirrors what the paper's `pixie`-instrumented binaries produce: a stream
//! of instruction-fetch and data-reference addresses, augmented with the
//! information the multiprogramming simulator needs (voluntary system-call
//! markers, §3) and the information the CPI model needs (per-instruction
//! processor stall cycles, which the paper folds into the 1.238 base CPI).

use crate::addr::VirtAddr;

/// The kind of memory reference an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An instruction fetch (exactly one per executed instruction).
    IFetch,
    /// A data load.
    Load,
    /// A data store.
    Store,
}

impl AccessKind {
    /// True for [`AccessKind::Load`] and [`AccessKind::Store`].
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::IFetch)
    }
}

/// One reference in an address trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What kind of reference this is.
    pub kind: AccessKind,
    /// The PID-prefixed virtual word address referenced.
    pub addr: VirtAddr,
    /// Processor stall cycles charged to this instruction over and above the
    /// single issue cycle (load delays, branch delays, multicycle FP — the
    /// paper's `CPU_stall_cycles`). Only meaningful on [`AccessKind::IFetch`]
    /// events.
    pub stall_cycles: u8,
    /// For stores: true when the store writes less than a full word.
    /// Partial-word writes do not set valid bits under subblock placement
    /// (§6).
    pub partial_word: bool,
    /// True when this instruction is a voluntary system call; the simulator
    /// pessimistically context-switches at every such instruction (§3). Only
    /// meaningful on [`AccessKind::IFetch`] events.
    pub syscall: bool,
}

impl TraceEvent {
    /// Convenience constructor for an instruction fetch.
    pub fn ifetch(addr: VirtAddr, stall_cycles: u8) -> Self {
        TraceEvent {
            kind: AccessKind::IFetch,
            addr,
            stall_cycles,
            partial_word: false,
            syscall: false,
        }
    }

    /// Convenience constructor for a load.
    pub fn load(addr: VirtAddr) -> Self {
        TraceEvent {
            kind: AccessKind::Load,
            addr,
            stall_cycles: 0,
            partial_word: false,
            syscall: false,
        }
    }

    /// Convenience constructor for a full-word store.
    pub fn store(addr: VirtAddr) -> Self {
        TraceEvent {
            kind: AccessKind::Store,
            addr,
            stall_cycles: 0,
            partial_word: false,
            syscall: false,
        }
    }

    /// Convenience constructor for a partial-word store.
    pub fn partial_store(addr: VirtAddr) -> Self {
        TraceEvent {
            kind: AccessKind::Store,
            addr,
            stall_cycles: 0,
            partial_word: true,
            syscall: false,
        }
    }

    /// Marks this event as a voluntary system-call instruction.
    pub fn with_syscall(mut self) -> Self {
        self.syscall = true;
        self
    }
}

/// A source of trace events.
///
/// A `Trace` is an [`Iterator`] of [`TraceEvent`]s with a human-readable
/// name; the simulator treats each trace as one process of the
/// multiprogramming workload. The trait is object-safe so heterogeneous
/// workloads (synthetic generators, file-backed traces, test fixtures) can
/// be mixed.
pub trait Trace: Iterator<Item = TraceEvent> {
    /// Human-readable benchmark name (used in reports).
    fn name(&self) -> &str;

    /// Appends up to `max` further events to `out` and returns how many
    /// were appended.
    ///
    /// This is the bulk form of [`Iterator::next`]: the scheduler refills
    /// a per-process buffer through one virtual call per batch instead of
    /// one per event, and concrete traces override it with chunked
    /// generation (a statically dispatched inner loop).
    ///
    /// # Contract
    ///
    /// * The concatenation of all batches is **exactly** the sequence
    ///   `next()` would have produced — batching must never change the
    ///   event stream (the determinism invariant; see `DESIGN.md`).
    /// * A return of `0` (with `max > 0`) means the trace is exhausted.
    ///   Short non-zero batches are allowed.
    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let start = out.len();
        for _ in 0..max {
            match self.next() {
                Some(ev) => out.push(ev),
                None => break,
            }
        }
        out.len() - start
    }
}

impl<T: Trace + ?Sized> Trace for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        (**self).next_batch(out, max)
    }
}

/// A trivial [`Trace`] over an in-memory event vector, mainly for tests.
#[derive(Debug, Clone)]
pub struct VecTrace {
    name: String,
    events: std::vec::IntoIter<TraceEvent>,
}

impl VecTrace {
    /// Wraps a vector of events as a named trace.
    pub fn new(name: impl Into<String>, events: Vec<TraceEvent>) -> Self {
        VecTrace {
            name: name.into(),
            events: events.into_iter(),
        }
    }
}

impl Iterator for VecTrace {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        self.events.next()
    }
}

impl Trace for VecTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let start = out.len();
        out.extend(self.events.by_ref().take(max));
        out.len() - start
    }
}

/// Adapter that defeats batching: every [`Trace::next_batch`] call
/// delivers at most one event, reproducing the seed kernel's
/// one-virtual-call-per-event consumption pattern.
///
/// Exists for determinism tests (batched vs. unbatched runs must produce
/// identical [`crate::event::TraceEvent`] streams and simulator counters)
/// and for the bench harness's seed-kernel reference mode.
#[derive(Debug)]
pub struct UnbatchedTrace<T: Trace>(pub T);

impl<T: Trace> Iterator for UnbatchedTrace<T> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<T: Trace> Trace for UnbatchedTrace<T> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn next_batch(&mut self, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        match self.0.next() {
            Some(ev) => {
                out.push(ev);
                1
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pid;

    #[test]
    fn constructors_set_kind() {
        let a = VirtAddr::new(Pid::new(0), 100);
        assert_eq!(TraceEvent::ifetch(a, 2).kind, AccessKind::IFetch);
        assert_eq!(TraceEvent::load(a).kind, AccessKind::Load);
        assert_eq!(TraceEvent::store(a).kind, AccessKind::Store);
        assert!(TraceEvent::partial_store(a).partial_word);
        assert!(!TraceEvent::store(a).partial_word);
        assert!(TraceEvent::ifetch(a, 0).with_syscall().syscall);
    }

    #[test]
    fn is_data_distinguishes_fetches() {
        assert!(!AccessKind::IFetch.is_data());
        assert!(AccessKind::Load.is_data());
        assert!(AccessKind::Store.is_data());
    }

    #[test]
    fn next_batch_matches_per_event_iteration() {
        let a = VirtAddr::new(Pid::new(1), 0);
        let evs: Vec<_> = (0..100)
            .map(|i| TraceEvent::ifetch(a.wrapping_add(i), (i % 4) as u8))
            .collect();
        let serial: Vec<_> = VecTrace::new("t", evs.clone()).collect();

        // Batched drain, odd batch size so batches straddle the end.
        let mut t = VecTrace::new("t", evs.clone());
        let mut batched = Vec::new();
        loop {
            if t.next_batch(&mut batched, 7) == 0 {
                break;
            }
        }
        assert_eq!(batched, serial);

        // Unbatched adapter: one event per call, same stream.
        let mut u = UnbatchedTrace(VecTrace::new("t", evs));
        assert_eq!(u.name(), "t");
        let mut one_by_one = Vec::new();
        loop {
            let n = u.next_batch(&mut one_by_one, 64);
            assert!(n <= 1, "unbatched adapter must yield at most one");
            if n == 0 {
                break;
            }
        }
        assert_eq!(one_by_one, serial);
    }

    #[test]
    fn next_batch_zero_means_exhausted() {
        let mut t = VecTrace::new("t", Vec::new());
        let mut out = Vec::new();
        assert_eq!(t.next_batch(&mut out, 16), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn vec_trace_yields_in_order() {
        let a = VirtAddr::new(Pid::new(1), 0);
        let evs = vec![
            TraceEvent::ifetch(a, 0),
            TraceEvent::load(a.wrapping_add(1)),
        ];
        let mut t = VecTrace::new("t", evs.clone());
        assert_eq!(t.name(), "t");
        assert_eq!(t.next(), Some(evs[0]));
        assert_eq!(t.next(), Some(evs[1]));
        assert_eq!(t.next(), None);
    }
}
