//! Human-readable reports: the CPI stack of Fig. 4 and run summaries.

use std::fmt::Write as _;

use gaas_mcm::CPU_CYCLE_NS;

use crate::sim::SimResult;

/// Renders the Fig. 4-style CPI stack for a run: one row per component,
/// bottom of the stack first.
pub fn cpi_stack(result: &SimResult) -> String {
    let b = result.breakdown();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "CPI stack ({} instructions):",
        result.counters.instructions
    );
    for (label, value) in b.components() {
        if value > 0.0 {
            let _ = writeln!(out, "  {label:<12} {value:>7.4}");
        }
    }
    let _ = writeln!(out, "  {:<12} {:>7.4}", "TOTAL", b.total());
    let _ = writeln!(out, "  {:<12} {:>7.4}", "memory CPI", b.memory_cpi());
    out
}

/// Renders a one-paragraph run summary: CPI, miss ratios, switches, and
/// wall-clock-equivalent time at the 250 MHz target.
pub fn summary(result: &SimResult) -> String {
    let c = &result.counters;
    let cycles = result.cycles();
    let ms = cycles as f64 * CPU_CYCLE_NS / 1e6;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} instructions, {} cycles ({ms:.2} ms at 250 MHz), CPI {:.4}",
        c.instructions,
        cycles,
        result.cpi()
    );
    let _ = writeln!(
        out,
        "  L1-I miss {:.4}  L1-D miss {:.4}  L2 miss {:.4} (I {:.4} / D {:.4})",
        c.l1i_miss_ratio(),
        c.l1d_miss_ratio(),
        c.l2_miss_ratio(),
        c.l2i_miss_ratio(),
        c.l2d_miss_ratio()
    );
    let _ = writeln!(
        out,
        "  switches: {} syscall + {} slice; drains: {} ({} L2 misses, {:.1}% L2-D port occupancy)",
        c.syscall_switches,
        c.slice_switches,
        c.l2_drain_writes,
        c.l2_drain_misses,
        100.0 * c.l2_drain_utilization()
    );
    out
}

/// Renders a divergence report from the lockstep golden-model oracle:
/// the tripped cross-check with its detail, the config fingerprint and
/// summary, the repro seed, and the trailing trace window.
pub fn divergence(report: &crate::oracle::DivergenceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "DIFFERENTIAL ORACLE DIVERGENCE");
    let _ = writeln!(out, "{report}");
    out
}

/// Renders a side-by-side comparison of two runs (e.g. before/after an
/// optimization step): per-component CPI with deltas.
pub fn compare(label_a: &str, a: &SimResult, label_b: &str, b: &SimResult) -> String {
    let (ba, bb) = (a.breakdown(), b.breakdown());
    let mut out = String::new();
    let _ = writeln!(out, "CPI comparison: {label_a} vs {label_b}");
    let _ = writeln!(
        out,
        "  {:<12} {:>9} {:>9} {:>9}",
        "component", label_a, label_b, "delta"
    );
    for ((label, va), (_, vb)) in ba.components().into_iter().zip(bb.components()) {
        if va > 0.0 || vb > 0.0 {
            let _ = writeln!(out, "  {label:<12} {va:>9.4} {vb:>9.4} {:>+9.4}", vb - va);
        }
    }
    let _ = writeln!(
        out,
        "  {:<12} {:>9.4} {:>9.4} {:>+9.4}",
        "TOTAL",
        ba.total(),
        bb.total(),
        bb.total() - ba.total()
    );
    out
}

/// Renders the per-process (per-benchmark) statistics of a run.
pub fn per_process(result: &SimResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "per-process statistics:");
    let _ = writeln!(
        out,
        "  {:<6} {:>12} {:>7} {:>9} {:>9}",
        "pid", "instructions", "CPI", "L1-I miss", "L1-D miss"
    );
    for (pid, p) in &result.per_process {
        let _ = writeln!(
            out,
            "  {:<6} {:>12} {:>7.3} {:>9.4} {:>9.4}",
            pid.to_string(),
            p.instructions,
            p.cpi(),
            p.l1i_miss_ratio(),
            p.l1d_miss_ratio()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::sim::run;
    use gaas_trace::{Pid, TraceEvent, VecTrace, VirtAddr};

    fn result() -> SimResult {
        let evs = (0..100)
            .map(|i| TraceEvent::ifetch(VirtAddr::new(Pid::new(0), i % 32), 1))
            .collect();
        run(
            SimConfig::baseline(),
            vec![Box::new(VecTrace::new("t", evs))],
        )
        .expect("valid")
    }

    #[test]
    fn stack_lists_total_and_components() {
        let s = cpi_stack(&result());
        assert!(s.contains("TOTAL"));
        assert!(s.contains("base+stalls"));
        assert!(s.contains("memory CPI"));
    }

    #[test]
    fn summary_mentions_cpi_and_misses() {
        let s = summary(&result());
        assert!(s.contains("CPI"));
        assert!(s.contains("L1-I miss"));
        assert!(s.contains("switches"));
    }

    #[test]
    fn compare_shows_deltas() {
        let r = result();
        let s = compare("a", &r, "b", &r);
        assert!(s.contains("TOTAL"));
        assert!(s.contains("+0.0000"), "identical runs have zero deltas");
    }

    #[test]
    fn per_process_lists_pids() {
        let s = per_process(&result());
        assert!(s.contains("pid0"));
        assert!(s.contains("instructions"));
    }
}
