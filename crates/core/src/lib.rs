//! # gaas-sim
//!
//! Trace-driven two-level cache simulator for a 250 MHz GaAs MCM
//! microprocessor — the core of the reproduction of *"Implementing a Cache
//! for a High-Performance GaAs Microprocessor"* (Olukotun, Mudge, Brown —
//! ISCA 1991).
//!
//! The simulator models the paper's entire design space:
//!
//! * split 4 KW primary caches with configurable size/line/associativity;
//! * the four §6 write policies (write-back, write-miss-invalidate, the new
//!   **write-only**, subblock placement) with their cycle rules;
//! * unified or split secondary caches of any size/associativity/access
//!   time, with the R6020 main-memory penalties behind them;
//! * write buffers with the streaming drain model;
//! * the §9 concurrency mechanisms — concurrent instruction refill, loads
//!   passing stores (associative or the cheap dirty-bit scheme), and the
//!   L2-D dirty buffer;
//! * a PID-tagged multiprogramming environment: round-robin scheduling,
//!   voluntary-syscall switches, page coloring, PID-tagged TLBs;
//! * deterministic soft-error fault injection with parity/ECC recovery
//!   ([`config::FaultConfig`]), an instruction-budget watchdog, and
//!   periodic checkpoints (see the `sim` module docs).
//!
//! ## Quick start
//!
//! ```
//! use gaas_sim::{config::SimConfig, sim, workload, report};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Run the base architecture on a small slice of the ten-benchmark
//! // multiprogramming workload.
//! let result = sim::run(SimConfig::baseline(), workload::standard(1e-4))?;
//! println!("{}", report::cpi_stack(&result));
//! assert!(result.cpi() > 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Modules
//!
//! * [`config`] — architecture description, builder, and the
//!   [`config::SimConfig::baseline`] / [`config::SimConfig::optimized`]
//!   presets;
//! * [`sim`] — the engine and [`sim::SimResult`];
//! * [`cpi`] — counters and the Fig. 4 CPI breakdown;
//! * [`sched`] — the §3 multiprogramming scheduler;
//! * [`workload`] — ready-made Table 1 workloads;
//! * [`report`] — textual CPI stacks and summaries;
//! * [`oracle`] — the lockstep golden-model differential oracle
//!   (enabled via [`config::DiffCheckConfig`]).

pub mod config;
pub mod cpi;
pub mod oracle;
pub mod profile;
pub mod report;
pub mod sched;
pub mod sim;
pub mod workload;

pub use config::{
    CmpConfig, ConcurrencyConfig, ConfigError, DiffCheckConfig, FaultConfig, L1Config, L2Config,
    L2Side, MachineCheckPolicy, MpConfig, SeededBug, SeededBugSpec, SimConfig, SimConfigBuilder,
    TelemetryConfig, WbBypass, WriteBufferConfig, MAX_CORES,
};
pub use cpi::{Counters, CpiBreakdown, ProcCounters};
pub use oracle::{config_fingerprint, DivergenceKind, DivergenceReport};
pub use profile::{functional_fingerprint, price_profile, price_profiles, FunctionalProfile};
pub use sched::SchedSnapshot;
pub use sim::{
    run, CancelToken, Checkpoint, SimError, SimResult, Simulator, TelemetryReport, Termination,
};

// Re-export the substrate vocabulary so downstream users need only this
// crate for common tasks.
pub use gaas_cache::fault::{
    FaultEffect, FaultEvent, FaultRates, Protection, ProtectionMap, Structure, TargetedFault,
};
pub use gaas_cache::WritePolicy;
pub use gaas_trace::{Pid, Trace, TraceEvent, VirtAddr};
