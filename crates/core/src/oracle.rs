//! Lockstep golden-model differential oracle.
//!
//! The fast simulator earns its speed with precomputed costs, packed
//! arrays and lazy retirement — exactly the kind of cleverness that hides
//! bookkeeping bugs. This module keeps a second, deliberately *boring*
//! model of the two-level hierarchy: per-set recency lists of plain line
//! structs, no cycle accounting at all. With
//! [`DiffCheckConfig`](crate::config::DiffCheckConfig) enabled the
//! simulator consults the golden model after every reference and
//! cross-checks:
//!
//! * **translation** — the simulator's software translation cache against
//!   an independent page-color mapper;
//! * **classification** — the per-access deltas of every hit/miss counter
//!   (L1-I, L1-D read/write, L2-I, L2-D, drain writes and drain misses,
//!   extra write cycles) against what the reference model predicts;
//! * **inclusion** — a line just serviced from an L2 side must be resident
//!   there;
//! * **full structural equivalence** (periodically) — cache contents with
//!   dirty / write-only / subblock-valid bits, and the write buffer's
//!   FIFO-suffix invariant (the live queue must be a suffix of the
//!   enqueue history).
//!
//! The key property that makes lockstep checking possible without cycle
//! accounting: every *state* transition of the hierarchy happens at a
//! deterministic point in the access stream (write-buffer drains mutate
//! L2-D at enqueue time; only their *stall* cycles depend on time), so the
//! golden model never needs a clock.
//!
//! A divergence is reported once, as a structured [`DivergenceReport`]
//! surfaced through [`SimError::Divergence`](crate::sim::SimError) —
//! never a panic — carrying the first divergent access index, a config
//! fingerprint, a minimized repro seed and the trailing trace window.

use std::collections::VecDeque;
use std::fmt;

use gaas_cache::{CacheArray, CacheGeometry, L1DataCache, PageMapper, WriteBuffer, WritePolicy};
use gaas_trace::{AccessKind, PhysAddr, TraceEvent};

use crate::config::{ConfigError, DiffCheckConfig, L2Config, SeededBug, SimConfig};
use crate::cpi::Counters;

/// Sorted architectural content of one cache array — `(base word, dirty,
/// write_only, subblock_valid)` per valid line, the unit of structural
/// comparison (see [`CacheArray::content_snapshot`]).
type ContentSnapshot = Vec<(u64, bool, bool, u32)>;

/// Stable 64-bit FNV-1a over a byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A stable fingerprint of a configuration, hashed over its `Debug`
/// representation. `Debug` (not `Display`) deliberately: the summary
/// `Display` omits sweep-relevant knobs such as the Fig. 5 drain-access
/// override, and two configs differing only there must not collide.
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    fnv1a(format!("{cfg:?}").bytes())
}

/// Which cross-check a divergence tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Simulator and reference mapper translated an address differently.
    Translation,
    /// Per-access hit/miss counter deltas disagreed.
    Classification,
    /// A line serviced from an L2 side is not resident there.
    Inclusion,
    /// Cache contents agree except for a dirty bit.
    DirtyBit,
    /// Cache contents agree except for a write-only mark.
    WriteOnlyMark,
    /// Cache contents agree except for subblock valid bits.
    SubblockBits,
    /// The write buffer violated its FIFO-suffix or occupancy invariant.
    WriteBuffer,
    /// Cache contents differ structurally (different lines resident).
    StateMismatch,
}

/// Structured description of the first divergence between the fast
/// simulator and the golden model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// 0-based index of the access (fetches + loads + stores) at which
    /// the divergence was detected.
    pub access_index: u64,
    /// The cross-check that tripped.
    pub kind: DivergenceKind,
    /// Human-readable specifics (expected vs. actual).
    pub detail: String,
    /// FNV-1a fingerprint of the configuration's `Debug` form.
    pub config_fingerprint: u64,
    /// The configuration's one-look summary (its `Display` form).
    pub config_summary: String,
    /// FNV-1a hash of the trailing trace window — a minimized repro seed
    /// identifying the exact access pattern that exposed the bug.
    pub repro_seed: u64,
    /// The last accesses before (and including) the divergent one.
    pub window: Vec<TraceEvent>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "oracle divergence [{:?}] at access {} (config {:016x}, repro seed {:016x})",
            self.kind, self.access_index, self.config_fingerprint, self.repro_seed
        )?;
        writeln!(f, "  {}", self.detail)?;
        for line in self.config_summary.lines() {
            writeln!(f, "  | {line}")?;
        }
        write!(f, "  window: {} trailing accesses", self.window.len())?;
        for ev in self.window.iter().rev().take(4).rev() {
            write!(
                f,
                "\n    {:?} {:#x}{}",
                ev.kind,
                ev.addr.raw(),
                if ev.partial_word { " (partial)" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// Per-access counter deltas the golden model predicts and the simulator
/// must reproduce. Cycle components are deliberately absent: the oracle
/// checks *state and classification*, not timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Deltas {
    pub l1i_misses: u64,
    pub l1d_read_misses: u64,
    pub l1d_write_misses: u64,
    pub l2i_accesses: u64,
    pub l2i_misses: u64,
    pub l2d_accesses: u64,
    pub l2d_misses: u64,
    pub l2_drain_writes: u64,
    pub l2_drain_misses: u64,
    pub l1_write_cycles: u64,
}

impl Deltas {
    /// The observed deltas between two counter snapshots.
    pub(crate) fn between(before: &Counters, after: &Counters) -> Self {
        Deltas {
            l1i_misses: after.l1i_misses - before.l1i_misses,
            l1d_read_misses: after.l1d_read_misses - before.l1d_read_misses,
            l1d_write_misses: after.l1d_write_misses - before.l1d_write_misses,
            l2i_accesses: after.l2i_accesses - before.l2i_accesses,
            l2i_misses: after.l2i_misses - before.l2i_misses,
            l2d_accesses: after.l2d_accesses - before.l2d_accesses,
            l2d_misses: after.l2d_misses - before.l2d_misses,
            l2_drain_writes: after.l2_drain_writes - before.l2_drain_writes,
            l2_drain_misses: after.l2_drain_misses - before.l2_drain_misses,
            l1_write_cycles: after.l1_write_cycles - before.l1_write_cycles,
        }
    }
}

/// One line of the golden model: architectural state only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GoldLine {
    base: u64,
    dirty: bool,
    write_only: bool,
    subblock_valid: u32,
}

/// An obviously-correct set-associative cache: each set is a recency list
/// (least recent at the front, most recent at the back).
#[derive(Debug, Clone)]
struct GoldCache {
    line_words: u64,
    n_sets: u64,
    assoc: usize,
    full_mask: u32,
    sets: Vec<Vec<GoldLine>>,
}

impl GoldCache {
    fn new(geom: &CacheGeometry) -> Self {
        let line_words = geom.line_words() as u64;
        let full_mask = if geom.line_words() == 32 {
            u32::MAX
        } else {
            (1u32 << geom.line_words()) - 1
        };
        GoldCache {
            line_words,
            n_sets: geom.n_sets(),
            assoc: geom.assoc() as usize,
            full_mask,
            sets: vec![Vec::new(); geom.n_sets() as usize],
        }
    }

    fn base_of(&self, w: u64) -> u64 {
        w & !(self.line_words - 1)
    }

    fn set_of(&self, w: u64) -> usize {
        ((w / self.line_words) & (self.n_sets - 1)) as usize
    }

    fn word_in_line(&self, w: u64) -> u32 {
        (w & (self.line_words - 1)) as u32
    }

    /// Shared lookup without recency update.
    fn find(&self, w: u64) -> Option<&GoldLine> {
        let base = self.base_of(w);
        self.sets[self.set_of(w)].iter().find(|l| l.base == base)
    }

    /// Lookup with move-to-MRU on a tag match (mirrors `CacheArray::touch`).
    fn touch(&mut self, w: u64) -> Option<&mut GoldLine> {
        let base = self.base_of(w);
        let set = self.set_of(w);
        let lines = &mut self.sets[set];
        let idx = lines.iter().position(|l| l.base == base)?;
        let line = lines.remove(idx);
        lines.push(line);
        lines.last_mut()
    }

    /// Allocation (mirrors `CacheArray::fill`): a resident line is reset
    /// in place (clean, readable, fully valid, MRU) with no eviction; an
    /// absent line evicts LRU if the set is full.
    fn fill(&mut self, w: u64) -> Option<GoldLine> {
        let base = self.base_of(w);
        let set = self.set_of(w);
        let fresh = GoldLine {
            base,
            dirty: false,
            write_only: false,
            subblock_valid: self.full_mask,
        };
        let assoc = self.assoc;
        let lines = &mut self.sets[set];
        if let Some(idx) = lines.iter().position(|l| l.base == base) {
            lines.remove(idx);
            lines.push(fresh);
            return None;
        }
        let evicted = if lines.len() == assoc {
            Some(lines.remove(0))
        } else {
            None
        };
        lines.push(fresh);
        evicted
    }

    /// Removes any resident line of `w`'s set (the direct-mapped WMI
    /// corruption rule); returns whether the removed line was dirty.
    fn invalidate_indexed(&mut self, w: u64) -> bool {
        let set = self.set_of(w);
        let lines = &mut self.sets[set];
        if lines.is_empty() {
            false
        } else {
            lines.remove(0).dirty
        }
    }

    /// Sorted architectural snapshot, directly comparable with
    /// [`CacheArray::content_snapshot`].
    fn snapshot(&self) -> ContentSnapshot {
        let mut v: Vec<_> = self
            .sets
            .iter()
            .flatten()
            .map(|l| (l.base, l.dirty, l.write_only, l.subblock_valid))
            .collect();
        v.sort_unstable();
        v
    }
}

/// The golden model's secondary cache.
#[derive(Debug, Clone)]
enum GoldL2 {
    Unified(GoldCache),
    Split { i: GoldCache, d: GoldCache },
}

impl GoldL2 {
    fn i_side_mut(&mut self) -> &mut GoldCache {
        match self {
            GoldL2::Unified(a) | GoldL2::Split { i: a, .. } => a,
        }
    }

    fn d_side_mut(&mut self) -> &mut GoldCache {
        match self {
            GoldL2::Unified(a) | GoldL2::Split { d: a, .. } => a,
        }
    }
}

/// Borrowed views of the fast simulator's structures, handed to the
/// oracle for equivalence checks. For a unified L2 both side references
/// alias the same array.
pub(crate) struct SimStructures<'a> {
    pub l1i: &'a CacheArray,
    pub l1d: &'a L1DataCache,
    pub l2i: &'a CacheArray,
    pub l2d: &'a CacheArray,
    pub wb: &'a WriteBuffer,
}

/// The functional golden model: translation, both L1s, L2, and the write
/// buffer's enqueue history. No cycles anywhere.
#[derive(Debug, Clone)]
struct Oracle {
    policy: WritePolicy,
    mapper: PageMapper,
    l1i: GoldCache,
    l1d: GoldCache,
    l2: GoldL2,
    wb_depth: usize,
    /// Trailing enqueue history (word/victim-base addresses, oldest
    /// first), capped well above the buffer depth. The live simulator
    /// queue must always equal a suffix of this.
    wb_history: VecDeque<u64>,
}

impl Oracle {
    fn new(cfg: &SimConfig) -> Result<Self, ConfigError> {
        let l2 = match cfg.l2 {
            L2Config::Unified(s) => GoldL2::Unified(GoldCache::new(&s.geometry()?)),
            L2Config::Split { i, d } => GoldL2::Split {
                i: GoldCache::new(&i.geometry()?),
                d: GoldCache::new(&d.geometry()?),
            },
        };
        Ok(Oracle {
            policy: cfg.policy,
            mapper: PageMapper::new(cfg.page_colors),
            l1i: GoldCache::new(&cfg.l1i.geometry()?),
            l1d: GoldCache::new(&cfg.l1d.geometry()?),
            l2,
            wb_depth: cfg.write_buffer.depth,
            wb_history: VecDeque::new(),
        })
    }

    /// Models one write-buffer drain: the L2-D side is updated at enqueue
    /// time, exactly as the simulator does it.
    fn drain(&mut self, addr: u64, d: &mut Deltas) {
        d.l2_drain_writes += 1;
        let l2d = self.l2.d_side_mut();
        if let Some(line) = l2d.touch(addr) {
            line.dirty = true;
        } else {
            d.l2_drain_misses += 1;
            l2d.fill(addr);
            if let Some(line) = l2d.touch(addr) {
                line.dirty = true;
            }
        }
        self.wb_history.push_back(addr);
        if self.wb_history.len() > self.wb_depth + 64 {
            self.wb_history.pop_front();
        }
    }

    /// Demand service of an L1 miss from an L2 side.
    fn l2_service(&mut self, addr: u64, i_side: bool, d: &mut Deltas) {
        let side = if i_side {
            self.l2.i_side_mut()
        } else {
            self.l2.d_side_mut()
        };
        if i_side {
            d.l2i_accesses += 1;
        } else {
            d.l2d_accesses += 1;
        }
        if side.touch(addr).is_none() {
            if i_side {
                d.l2i_misses += 1;
            } else {
                d.l2d_misses += 1;
            }
            side.fill(addr);
        }
    }

    /// Processes one trace event; returns the physical word address the
    /// reference mapper produced and the predicted counter deltas.
    fn step(&mut self, ev: &TraceEvent) -> (u64, Deltas) {
        let pa = self.mapper.translate(ev.addr).word();
        let mut d = Deltas::default();
        match ev.kind {
            AccessKind::IFetch => self.step_ifetch(pa, &mut d),
            AccessKind::Load => self.step_load(pa, &mut d),
            AccessKind::Store => self.step_store(pa, ev.partial_word, &mut d),
        }
        (pa, d)
    }

    fn step_ifetch(&mut self, pa: u64, d: &mut Deltas) {
        if self.l1i.touch(pa).is_some() {
            return;
        }
        d.l1i_misses += 1;
        self.l2_service(pa, true, d);
        self.l1i.fill(pa);
    }

    fn step_load(&mut self, pa: u64, d: &mut Deltas) {
        let word_bit = 1u32 << self.l1d.word_in_line(pa);
        let hit = match self.l1d.touch(pa) {
            Some(line) => match self.policy {
                WritePolicy::WriteBack | WritePolicy::WriteMissInvalidate => true,
                WritePolicy::WriteOnly => !line.write_only,
                WritePolicy::Subblock => line.subblock_valid & word_bit != 0,
            },
            None => false,
        };
        if hit {
            return;
        }
        d.l1d_read_misses += 1;
        let line_base = self.l1d.base_of(pa);
        let inplace_dirty = self.l1d.find(pa).map(|l| l.dirty);
        let evicted = self.l1d.fill(pa);
        let (victim, victim_dirty) = match (inplace_dirty, evicted) {
            (Some(dirty), _) => (None, dirty),
            (None, Some(e)) => (Some(e.base), e.dirty),
            (None, None) => (None, false),
        };
        if self.policy == WritePolicy::WriteBack && victim_dirty {
            if let Some(vbase) = victim {
                self.drain(vbase, d);
            }
        }
        self.l2_service(line_base, false, d);
    }

    fn step_store(&mut self, pa: u64, partial_word: bool, d: &mut Deltas) {
        match self.policy {
            WritePolicy::WriteBack => self.store_write_back(pa, d),
            WritePolicy::WriteMissInvalidate => self.store_wmi(pa, d),
            WritePolicy::WriteOnly => self.store_write_only(pa, d),
            WritePolicy::Subblock => self.store_subblock(pa, partial_word, d),
        }
    }

    fn store_write_back(&mut self, pa: u64, d: &mut Deltas) {
        if let Some(line) = self.l1d.touch(pa) {
            line.dirty = true;
            d.l1_write_cycles += 1;
            return;
        }
        d.l1d_write_misses += 1;
        let line_base = self.l1d.base_of(pa);
        let evicted = self.l1d.fill(pa);
        if let Some(line) = self.l1d.touch(pa) {
            line.dirty = true;
        }
        // Allocation order mirrors the simulator: the dirty victim drains
        // first, then the demanded line is serviced from L2-D.
        if let Some(e) = evicted.filter(|e| e.dirty) {
            self.drain(e.base, d);
        }
        self.l2_service(line_base, false, d);
    }

    fn store_wmi(&mut self, pa: u64, d: &mut Deltas) {
        if let Some(line) = self.l1d.touch(pa) {
            line.dirty = true;
        } else {
            d.l1d_write_misses += 1;
            d.l1_write_cycles += 1;
            self.l1d.invalidate_indexed(pa);
        }
        self.drain(pa, d);
    }

    fn store_write_only(&mut self, pa: u64, d: &mut Deltas) {
        if let Some(line) = self.l1d.touch(pa) {
            line.dirty = true;
        } else {
            d.l1d_write_misses += 1;
            d.l1_write_cycles += 1;
            self.l1d.fill(pa);
            if let Some(line) = self.l1d.touch(pa) {
                line.write_only = true;
                line.dirty = true;
            }
        }
        self.drain(pa, d);
    }

    fn store_subblock(&mut self, pa: u64, partial_word: bool, d: &mut Deltas) {
        let word_bit = 1u32 << self.l1d.word_in_line(pa);
        if let Some(line) = self.l1d.touch(pa) {
            if !partial_word {
                line.subblock_valid |= word_bit;
            }
            line.dirty = true;
        } else {
            d.l1d_write_misses += 1;
            d.l1_write_cycles += 1;
            self.l1d.fill(pa);
            if let Some(line) = self.l1d.touch(pa) {
                line.subblock_valid = if partial_word { 0 } else { word_bit };
                line.dirty = true;
            }
        }
        self.drain(pa, d);
    }
}

/// Classifies the first difference between two sorted content snapshots.
fn classify_content_diff(
    what: &str,
    sim: &[(u64, bool, bool, u32)],
    gold: &[(u64, bool, bool, u32)],
) -> Option<(DivergenceKind, String)> {
    if sim == gold {
        return None;
    }
    for (s, g) in sim.iter().zip(gold.iter()) {
        if s == g {
            continue;
        }
        if s.0 == g.0 {
            let (kind, field) = if s.1 != g.1 {
                (DivergenceKind::DirtyBit, "dirty")
            } else if s.2 != g.2 {
                (DivergenceKind::WriteOnlyMark, "write-only")
            } else {
                (DivergenceKind::SubblockBits, "subblock-valid")
            };
            return Some((
                kind,
                format!(
                    "{what}: line {:#x} {field} mismatch (sim {:?}, reference {:?})",
                    s.0, s, g
                ),
            ));
        }
        return Some((
            DivergenceKind::StateMismatch,
            format!(
                "{what}: first differing line sim {:#x} vs reference {:#x}",
                s.0, g.0
            ),
        ));
    }
    Some((
        DivergenceKind::StateMismatch,
        format!(
            "{what}: resident line count differs (sim {}, reference {})",
            sim.len(),
            gold.len()
        ),
    ))
}

/// Live differential-check state, owned by the simulator when the oracle
/// is enabled.
pub(crate) struct DiffState {
    oracle: Oracle,
    cfg: DiffCheckConfig,
    access_index: u64,
    window: VecDeque<TraceEvent>,
    bug_applied: bool,
    report: Option<DivergenceReport>,
    config_fingerprint: u64,
    config_summary: String,
}

impl DiffState {
    pub(crate) fn new(cfg: &SimConfig) -> Result<Self, ConfigError> {
        Ok(DiffState {
            oracle: Oracle::new(cfg)?,
            cfg: cfg.diffcheck,
            access_index: 0,
            window: VecDeque::new(),
            bug_applied: false,
            report: None,
            config_fingerprint: config_fingerprint(cfg),
            config_summary: cfg.to_string(),
        })
    }

    fn diverge(&mut self, access_index: u64, kind: DivergenceKind, detail: String) {
        let window: Vec<TraceEvent> = self.window.iter().copied().collect();
        let repro_seed = fnv1a(window.iter().flat_map(|ev| {
            let kind_byte = match ev.kind {
                AccessKind::IFetch => 0u8,
                AccessKind::Load => 1,
                AccessKind::Store => 2,
            };
            let mut bytes = ev.addr.raw().to_le_bytes().to_vec();
            bytes.push(kind_byte | ((ev.partial_word as u8) << 4));
            bytes
        }));
        self.report = Some(DivergenceReport {
            access_index,
            kind,
            detail,
            config_fingerprint: self.config_fingerprint,
            config_summary: self.config_summary.clone(),
            repro_seed,
            window,
        });
    }

    /// Cross-checks one completed access. `actual` is the simulator's
    /// counter delta over the access; `sim_paddr` its translation.
    pub(crate) fn note_access(
        &mut self,
        ev: &TraceEvent,
        sim_paddr: PhysAddr,
        actual: Deltas,
        s: &SimStructures<'_>,
    ) {
        if self.report.is_some() {
            return;
        }
        let idx = self.access_index;
        self.access_index += 1;
        if self.cfg.window > 0 {
            if self.window.len() == self.cfg.window {
                self.window.pop_front();
            }
            self.window.push_back(*ev);
        }

        let (gold_pa, expected) = self.oracle.step(ev);
        if gold_pa != sim_paddr.word() {
            self.diverge(
                idx,
                DivergenceKind::Translation,
                format!(
                    "virtual {:#x} translated to {:#x}, reference mapper says {:#x}",
                    ev.addr.raw(),
                    sim_paddr.word(),
                    gold_pa
                ),
            );
            return;
        }
        if expected != actual {
            self.diverge(
                idx,
                DivergenceKind::Classification,
                format!(
                    "{:?} {:#x}: predicted deltas {expected:?}, simulator produced {actual:?}",
                    ev.kind,
                    sim_paddr.word()
                ),
            );
            return;
        }
        if expected.l2i_accesses > 0 && !s.l2i.contains(sim_paddr) {
            self.diverge(
                idx,
                DivergenceKind::Inclusion,
                format!(
                    "line of {:#x} was serviced by L2-I but is not resident there",
                    sim_paddr.word()
                ),
            );
            return;
        }
        if expected.l2d_accesses > 0 && !s.l2d.contains(sim_paddr) {
            self.diverge(
                idx,
                DivergenceKind::Inclusion,
                format!(
                    "line of {:#x} was serviced by L2-D but is not resident there",
                    sim_paddr.word()
                ),
            );
            return;
        }
        if self.cfg.state_check_interval > 0 && (idx + 1) % self.cfg.state_check_interval == 0 {
            self.full_state_check(s);
        }
    }

    /// Full structural-equivalence sweep (also run once at end of run).
    pub(crate) fn full_state_check(&mut self, s: &SimStructures<'_>) {
        if self.report.is_some() {
            return;
        }
        let idx = self.access_index.saturating_sub(1);
        // (array label, fast-simulator snapshot, golden-model snapshot)
        type ArrayPair<'a> = (&'a str, ContentSnapshot, ContentSnapshot);
        let pairs: Vec<ArrayPair<'_>> = {
            let mut v = vec![
                ("L1-I", s.l1i.content_snapshot(), self.oracle.l1i.snapshot()),
                (
                    "L1-D",
                    s.l1d.array().content_snapshot(),
                    self.oracle.l1d.snapshot(),
                ),
            ];
            match &self.oracle.l2 {
                GoldL2::Unified(a) => v.push(("L2", s.l2i.content_snapshot(), a.snapshot())),
                GoldL2::Split { i, d } => {
                    v.push(("L2-I", s.l2i.content_snapshot(), i.snapshot()));
                    v.push(("L2-D", s.l2d.content_snapshot(), d.snapshot()));
                }
            }
            v
        };
        for (what, sim, gold) in pairs {
            if let Some((kind, detail)) = classify_content_diff(what, &sim, &gold) {
                self.diverge(idx, kind, detail);
                return;
            }
        }

        // Write buffer: bounded occupancy, and the live queue (retirement
        // is lazy, so it may still hold drained entries) must be a suffix
        // of the enqueue history.
        let live: Vec<u64> = s.wb.entries().map(|e| e.addr.word()).collect();
        if live.len() > self.oracle.wb_depth {
            self.diverge(
                idx,
                DivergenceKind::WriteBuffer,
                format!(
                    "write buffer holds {} entries, depth is {}",
                    live.len(),
                    self.oracle.wb_depth
                ),
            );
            return;
        }
        let hist = &self.oracle.wb_history;
        let matches_suffix = live.len() <= hist.len()
            && hist
                .iter()
                .skip(hist.len() - live.len())
                .zip(live.iter())
                .all(|(h, l)| h == l);
        if !matches_suffix {
            self.diverge(
                idx,
                DivergenceKind::WriteBuffer,
                format!(
                    "live queue {live:?} is not a suffix of the enqueue history (last {} entries {:?})",
                    live.len().min(hist.len()),
                    hist.iter()
                        .skip(hist.len().saturating_sub(live.len()))
                        .collect::<Vec<_>>()
                ),
            );
        }
    }

    /// The seeded bug due for application, if any (not yet applied and
    /// the configured access index has been reached).
    pub(crate) fn bug_due(&self) -> Option<SeededBug> {
        let spec = self.cfg.seeded_bug?;
        (!self.bug_applied && self.access_index > spec.access).then_some(spec.kind)
    }

    /// Marks the seeded bug as applied.
    pub(crate) fn set_bug_applied(&mut self) {
        self.bug_applied = true;
    }

    /// The pending divergence report, if a cross-check tripped.
    pub(crate) fn report(&self) -> Option<&DivergenceReport> {
        self.report.as_ref()
    }

    /// Takes the pending divergence report.
    pub(crate) fn take_report(&mut self) -> Option<DivergenceReport> {
        self.report.take()
    }

    /// Accesses checked so far.
    pub(crate) fn accesses_checked(&self) -> u64 {
        self.access_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaas_trace::rng::SmallRng;

    #[test]
    fn gold_cache_matches_cache_array_under_random_histories() {
        let mut rng = SmallRng::seed_from_u64(0xD1FF);
        for _ in 0..48 {
            let geom = CacheGeometry::new(64, 4, 2).expect("valid");
            let mut fast = CacheArray::new(geom);
            let mut gold = GoldCache::new(&geom);
            for _ in 0..rng.gen_range(0usize..400) {
                let w = rng.gen_range(0u64..512);
                match rng.gen_range(0u8..4) {
                    0 => {
                        let f = fast.touch(PhysAddr::new(w)).is_some();
                        let g = gold.touch(w).is_some();
                        assert_eq!(f, g);
                    }
                    1 => {
                        fast.fill(PhysAddr::new(w));
                        gold.fill(w);
                    }
                    2 => {
                        if let Some(mut l) = fast.touch(PhysAddr::new(w)) {
                            l.set_dirty(true);
                        }
                        if let Some(l) = gold.touch(w) {
                            l.dirty = true;
                        }
                    }
                    _ => {
                        let f = fast.invalidate(PhysAddr::new(w)).is_some();
                        let g = {
                            let base = gold.base_of(w);
                            let set = gold.set_of(w);
                            let lines = &mut gold.sets[set];
                            match lines.iter().position(|l| l.base == base) {
                                Some(i) => {
                                    lines.remove(i);
                                    true
                                }
                                None => false,
                            }
                        };
                        assert_eq!(f, g);
                    }
                }
                assert_eq!(fast.content_snapshot(), gold.snapshot());
            }
        }
    }

    #[test]
    fn fingerprint_separates_display_invisible_knobs() {
        let base = SimConfig::baseline();
        let mut b = base.to_builder();
        b.l2_drain_access(8);
        let tweaked = b.build().expect("valid");
        // Display collides (the summary omits the drain override)…
        assert_eq!(base.to_string(), tweaked.to_string());
        // …but the fingerprint must not.
        assert_ne!(config_fingerprint(&base), config_fingerprint(&tweaked));
    }

    #[test]
    fn divergence_report_renders_every_section() {
        let rep = DivergenceReport {
            access_index: 42,
            kind: DivergenceKind::DirtyBit,
            detail: "L1-D: line 0x40 dirty mismatch".into(),
            config_fingerprint: 0xABCD,
            config_summary: SimConfig::baseline().to_string(),
            repro_seed: 0x1234,
            window: vec![TraceEvent::ifetch(
                gaas_trace::VirtAddr::new(gaas_trace::Pid::new(0), 0),
                0,
            )],
        };
        let s = rep.to_string();
        assert!(s.contains("DirtyBit"));
        assert!(s.contains("access 42"));
        assert!(s.contains("dirty mismatch"));
        assert!(s.contains("window: 1 trailing accesses"));
    }

    #[test]
    fn classify_prefers_specific_bit_kinds() {
        let sim = vec![(0x40u64, true, false, 0b1111u32)];
        let gold = vec![(0x40u64, false, false, 0b1111u32)];
        let (kind, _) = classify_content_diff("L1-D", &sim, &gold).expect("differs");
        assert_eq!(kind, DivergenceKind::DirtyBit);

        let sim = vec![(0x40u64, true, true, 0b1111u32)];
        let gold = vec![(0x40u64, true, false, 0b1111u32)];
        let (kind, _) = classify_content_diff("L1-D", &sim, &gold).expect("differs");
        assert_eq!(kind, DivergenceKind::WriteOnlyMark);

        let sim = vec![(0x40u64, true, false, 0b0001u32)];
        let gold = vec![(0x40u64, true, false, 0b1111u32)];
        let (kind, _) = classify_content_diff("L1-D", &sim, &gold).expect("differs");
        assert_eq!(kind, DivergenceKind::SubblockBits);

        let sim = vec![(0x40u64, false, false, 0b1111u32)];
        let gold = vec![(0x80u64, false, false, 0b1111u32)];
        let (kind, _) = classify_content_diff("L1-D", &sim, &gold).expect("differs");
        assert_eq!(kind, DivergenceKind::StateMismatch);

        assert!(classify_content_diff("L1-D", &sim, &sim.clone()).is_none());
    }
}
