//! CPI accounting (§3, §4).
//!
//! The paper's metric:
//!
//! ```text
//! CPI = 1 + (CPU_stall_cycles + memory_stall_cycles) / instruction_count
//! ```
//!
//! Fig. 4 decomposes the memory stalls into components; [`Counters`]
//! accumulates every component as exact cycle counts during simulation, and
//! [`CpiBreakdown`] converts them to per-instruction contributions. The
//! invariant `total cycles = instructions + Σ components` is maintained by
//! construction and checked in tests.

/// Raw event and cycle counters accumulated by a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Instructions executed.
    pub instructions: u64,
    /// Data loads executed.
    pub loads: u64,
    /// Data stores executed.
    pub stores: u64,
    /// Voluntary-syscall context switches taken.
    pub syscall_switches: u64,
    /// Time-slice context switches taken.
    pub slice_switches: u64,

    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache read (load) misses.
    pub l1d_read_misses: u64,
    /// L1 data-cache write misses (policy-specific meaning).
    pub l1d_write_misses: u64,
    /// L2 accesses on the instruction side (L1-I refills).
    pub l2i_accesses: u64,
    /// L2 misses on the instruction side.
    pub l2i_misses: u64,
    /// L2 accesses on the data side (L1-D refills; excludes drains).
    pub l2d_accesses: u64,
    /// L2 misses on the data side (excludes drains).
    pub l2d_misses: u64,
    /// Write-buffer drain writes into L2.
    pub l2_drain_writes: u64,
    /// Drain writes that missed in L2 (write-allocate from memory).
    pub l2_drain_misses: u64,
    /// Cycles the L2 data port was occupied by write-buffer drains (the
    /// bandwidth the write policy consumes in the background).
    pub l2_drain_busy_cycles: u64,
    /// Instruction-TLB misses.
    pub itlb_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,

    /// Processor stall cycles (load/branch/FP interlocks from the trace).
    pub cpu_stall_cycles: u64,
    /// Cycles lost servicing L1-I misses (at L2-hit-equivalent cost).
    pub l1i_miss_cycles: u64,
    /// Cycles lost servicing L1-D read misses (at L2-hit-equivalent cost).
    pub l1d_miss_cycles: u64,
    /// Extra cycles of multi-cycle writes (2-cycle hits or misses).
    pub l1_write_cycles: u64,
    /// Cycles stalled on the write buffer (waiting for empty, a slot, or a
    /// matched/flushed entry).
    pub wb_wait_cycles: u64,
    /// Excess cycles of instruction-side L2 misses (beyond the hit cost).
    pub l2i_miss_cycles: u64,
    /// Excess cycles of data-side L2 misses (beyond the hit cost).
    pub l2d_miss_cycles: u64,
    /// Cycles waiting for a busy L2-D dirty buffer.
    pub dirty_buffer_wait_cycles: u64,
    /// Cycles charged to TLB misses (0 under the paper's accounting).
    pub tlb_miss_cycles: u64,
    /// Cycles lost to soft-error recovery: parity-triggered refetches, ECC
    /// corrections, and checkpoint-restart rollback after machine checks.
    pub recovery_cycles: u64,

    /// Remote L1-D lines invalidated by this core's stores (CMP runs).
    pub invalidations: u64,
    /// Cache-to-cache transfers: misses supplied by a remote Modified
    /// owner instead of the L2/memory path (CMP runs).
    pub c2c_transfers: u64,
    /// Upgrade misses: stores that hit a Shared line and had to win
    /// ownership via an invalidation round (CMP runs).
    pub upgrade_misses: u64,
    /// MESI transitions into Modified (stores gaining write ownership).
    pub mesi_to_m: u64,
    /// MESI transitions into Exclusive (sole-copy load fills).
    pub mesi_to_e: u64,
    /// MESI transitions into Shared (shared load fills and M/E demotions).
    pub mesi_to_s: u64,
    /// MESI transitions into Invalid (remote-store invalidations).
    pub mesi_to_i: u64,
    /// Cycles stalled on coherence actions: snoop-bus waits, invalidation
    /// rounds, and cache-to-cache transfer latency (CMP runs; always 0 on
    /// a single core).
    pub coherence_stall_cycles: u64,

    /// Soft errors injected (all structures).
    pub faults_injected: u64,
    /// Injected faults that went undetected (unprotected structure, or a
    /// double-bit flip escaping parity).
    pub faults_silent: u64,
    /// Single-bit flips corrected in place by ECC.
    pub faults_corrected: u64,
    /// Parity-detected faults repaired by invalidate-and-refetch.
    pub fault_refetches: u64,
    /// Unrecoverable faults (machine checks raised).
    pub machine_checks: u64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Field-wise difference `self − earlier`: the counters accumulated
    /// *after* the `earlier` snapshot. Used to discard cache warm-up, which
    /// otherwise dominates L2 statistics on short traces (\[BKW90\]).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if any field of `earlier` exceeds `self`'s.
    pub fn since(&self, earlier: &Counters) -> Counters {
        macro_rules! d {
            ($($f:ident),* $(,)?) => {
                Counters { $($f: self.$f - earlier.$f),* }
            };
        }
        d!(
            instructions,
            loads,
            stores,
            syscall_switches,
            slice_switches,
            l1i_misses,
            l1d_read_misses,
            l1d_write_misses,
            l2i_accesses,
            l2i_misses,
            l2d_accesses,
            l2d_misses,
            l2_drain_writes,
            l2_drain_misses,
            l2_drain_busy_cycles,
            itlb_misses,
            dtlb_misses,
            cpu_stall_cycles,
            l1i_miss_cycles,
            l1d_miss_cycles,
            l1_write_cycles,
            wb_wait_cycles,
            l2i_miss_cycles,
            l2d_miss_cycles,
            dirty_buffer_wait_cycles,
            tlb_miss_cycles,
            recovery_cycles,
            invalidations,
            c2c_transfers,
            upgrade_misses,
            mesi_to_m,
            mesi_to_e,
            mesi_to_s,
            mesi_to_i,
            coherence_stall_cycles,
            faults_injected,
            faults_silent,
            faults_corrected,
            fault_refetches,
            machine_checks,
        )
    }

    /// Field-wise sum `self + other` — the inverse of [`Counters::since`],
    /// used to re-aggregate windowed deltas (e.g. checking that the
    /// windows plus the tail reproduce the full-run counters).
    #[must_use]
    pub fn accum(&self, other: &Counters) -> Counters {
        macro_rules! a {
            ($($f:ident),* $(,)?) => {
                Counters { $($f: self.$f + other.$f),* }
            };
        }
        a!(
            instructions,
            loads,
            stores,
            syscall_switches,
            slice_switches,
            l1i_misses,
            l1d_read_misses,
            l1d_write_misses,
            l2i_accesses,
            l2i_misses,
            l2d_accesses,
            l2d_misses,
            l2_drain_writes,
            l2_drain_misses,
            l2_drain_busy_cycles,
            itlb_misses,
            dtlb_misses,
            cpu_stall_cycles,
            l1i_miss_cycles,
            l1d_miss_cycles,
            l1_write_cycles,
            wb_wait_cycles,
            l2i_miss_cycles,
            l2d_miss_cycles,
            dirty_buffer_wait_cycles,
            tlb_miss_cycles,
            recovery_cycles,
            invalidations,
            c2c_transfers,
            upgrade_misses,
            mesi_to_m,
            mesi_to_e,
            mesi_to_s,
            mesi_to_i,
            coherence_stall_cycles,
            faults_injected,
            faults_silent,
            faults_corrected,
            fault_refetches,
            machine_checks,
        )
    }

    /// Labeled *integer-cycle* components in Fig. 4's stacking order,
    /// summing to [`Counters::total_cycles`] exactly (the windowed
    /// CPI-stack exporter divides by instructions only at presentation
    /// time, so per-window stacks stay exact).
    pub fn stack_components(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("base+stalls", self.instructions + self.cpu_stall_cycles),
            ("L1-I miss", self.l1i_miss_cycles),
            ("L1-D miss", self.l1d_miss_cycles),
            ("L1 writes", self.l1_write_cycles),
            ("WB", self.wb_wait_cycles),
            ("L2-I miss", self.l2i_miss_cycles),
            ("L2-D miss", self.l2d_miss_cycles),
            ("dirty buf", self.dirty_buffer_wait_cycles),
            ("TLB", self.tlb_miss_cycles),
            ("recovery", self.recovery_cycles),
            ("coherence", self.coherence_stall_cycles),
        ]
    }

    /// Sum of all stall-cycle components (everything above the 1.0 base).
    pub fn stall_cycles(&self) -> u64 {
        self.cpu_stall_cycles
            + self.l1i_miss_cycles
            + self.l1d_miss_cycles
            + self.l1_write_cycles
            + self.wb_wait_cycles
            + self.l2i_miss_cycles
            + self.l2d_miss_cycles
            + self.dirty_buffer_wait_cycles
            + self.tlb_miss_cycles
            + self.recovery_cycles
            + self.coherence_stall_cycles
    }

    /// Total execution cycles: one issue cycle per instruction plus stalls.
    pub fn total_cycles(&self) -> u64 {
        self.instructions + self.stall_cycles()
    }

    /// L1-I miss ratio (misses per instruction fetch).
    pub fn l1i_miss_ratio(&self) -> f64 {
        ratio(self.l1i_misses, self.instructions)
    }

    /// L1-D miss ratio (read + write misses per data reference).
    pub fn l1d_miss_ratio(&self) -> f64 {
        ratio(
            self.l1d_read_misses + self.l1d_write_misses,
            self.loads + self.stores,
        )
    }

    /// Combined L2 miss ratio over instruction- and data-side refill
    /// accesses (drain writes excluded, as in Table 2).
    pub fn l2_miss_ratio(&self) -> f64 {
        ratio(
            self.l2i_misses + self.l2d_misses,
            self.l2i_accesses + self.l2d_accesses,
        )
    }

    /// Instruction-side L2 miss ratio.
    pub fn l2i_miss_ratio(&self) -> f64 {
        ratio(self.l2i_misses, self.l2i_accesses)
    }

    /// Data-side L2 miss ratio.
    pub fn l2d_miss_ratio(&self) -> f64 {
        ratio(self.l2d_misses, self.l2d_accesses)
    }

    /// Fraction of all cycles the L2 data port spent servicing background
    /// drains (a bandwidth-consumption view of the write policy).
    pub fn l2_drain_utilization(&self) -> f64 {
        ratio(self.l2_drain_busy_cycles, self.total_cycles())
    }

    /// Converts to per-instruction CPI components.
    ///
    /// # Panics
    ///
    /// Panics if no instructions were executed.
    pub fn breakdown(&self) -> CpiBreakdown {
        assert!(self.instructions > 0, "no instructions executed");
        let per = |c: u64| c as f64 / self.instructions as f64;
        CpiBreakdown {
            base: 1.0,
            cpu_stall: per(self.cpu_stall_cycles),
            l1i_miss: per(self.l1i_miss_cycles),
            l1d_miss: per(self.l1d_miss_cycles),
            l1_writes: per(self.l1_write_cycles),
            wb_wait: per(self.wb_wait_cycles),
            l2i_miss: per(self.l2i_miss_cycles),
            l2d_miss: per(self.l2d_miss_cycles),
            dirty_buffer: per(self.dirty_buffer_wait_cycles),
            tlb: per(self.tlb_miss_cycles),
            recovery: per(self.recovery_cycles),
            coherence: per(self.coherence_stall_cycles),
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Per-process slice of the run statistics (the simulator attributes every
/// event to the PID that issued it, so per-benchmark behaviour under
/// multiprogramming can be reported, as the paper does when discussing
/// individual benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcCounters {
    /// Instructions executed by this process.
    pub instructions: u64,
    /// Cycles attributed to this process (issue + all stalls charged while
    /// it was running).
    pub cycles: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// L1-I misses taken.
    pub l1i_misses: u64,
    /// L1-D misses taken (read + write).
    pub l1d_misses: u64,
    /// L2 misses taken (both sides, demand only).
    pub l2_misses: u64,
}

impl ProcCounters {
    /// Cycles per instruction for this process.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// L1-I miss ratio.
    pub fn l1i_miss_ratio(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l1i_misses as f64 / self.instructions as f64
        }
    }

    /// L1-D miss ratio over data references.
    pub fn l1d_miss_ratio(&self) -> f64 {
        let refs = self.loads + self.stores;
        if refs == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / refs as f64
        }
    }
}

/// Per-instruction CPI contributions (the stacked bars of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiBreakdown {
    /// Single-cycle issue: always 1.0.
    pub base: f64,
    /// Load/branch/FP processor stalls (with base, the paper's 1.238).
    pub cpu_stall: f64,
    /// L1-I miss service at L2-hit cost.
    pub l1i_miss: f64,
    /// L1-D read-miss service at L2-hit cost.
    pub l1d_miss: f64,
    /// Multi-cycle writes ("L1 writes" in Fig. 4).
    pub l1_writes: f64,
    /// Write-buffer waits ("WB").
    pub wb_wait: f64,
    /// Instruction-side L2 miss excess ("L2-I miss").
    pub l2i_miss: f64,
    /// Data-side L2 miss excess ("L2-D miss").
    pub l2d_miss: f64,
    /// L2-D dirty-buffer waits (§9 configurations only).
    pub dirty_buffer: f64,
    /// TLB miss charges (0 under the paper's accounting).
    pub tlb: f64,
    /// Soft-error recovery: refetches, ECC corrections, restart rollback.
    pub recovery: f64,
    /// Coherence stalls: snoop-bus waits, invalidation rounds, and
    /// cache-to-cache transfers (CMP runs; 0 on a single core).
    pub coherence: f64,
}

impl CpiBreakdown {
    /// Total CPI.
    pub fn total(&self) -> f64 {
        self.base
            + self.cpu_stall
            + self.l1i_miss
            + self.l1d_miss
            + self.l1_writes
            + self.wb_wait
            + self.l2i_miss
            + self.l2d_miss
            + self.dirty_buffer
            + self.tlb
            + self.recovery
            + self.coherence
    }

    /// The memory-system contribution to CPI (everything except the base
    /// cycle and processor stalls) — the quantity the paper's optimization
    /// chapters track.
    pub fn memory_cpi(&self) -> f64 {
        self.total() - self.base - self.cpu_stall
    }

    /// The instruction-side contribution (Fig. 7's y-axis).
    pub fn instruction_side_cpi(&self) -> f64 {
        self.l1i_miss + self.l2i_miss
    }

    /// The data-read-side contribution (Fig. 8's y-axis: "the effect of
    /// writes on L2-D is ignored").
    pub fn data_read_side_cpi(&self) -> f64 {
        self.l1d_miss + self.l2d_miss + self.dirty_buffer
    }

    /// Labeled components in Fig. 4's stacking order (bottom to top).
    pub fn components(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("base+stalls", self.base + self.cpu_stall),
            ("L1-I miss", self.l1i_miss),
            ("L1-D miss", self.l1d_miss),
            ("L1 writes", self.l1_writes),
            ("WB", self.wb_wait),
            ("L2-I miss", self.l2i_miss),
            ("L2-D miss", self.l2d_miss),
            ("dirty buf", self.dirty_buffer),
            ("TLB", self.tlb),
            ("recovery", self.recovery),
            ("coherence", self.coherence),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counters {
        Counters {
            instructions: 1000,
            loads: 250,
            stores: 80,
            l1i_misses: 20,
            l1d_read_misses: 10,
            l1d_write_misses: 2,
            l2i_accesses: 20,
            l2i_misses: 1,
            l2d_accesses: 12,
            l2d_misses: 1,
            cpu_stall_cycles: 238,
            l1i_miss_cycles: 120,
            l1d_miss_cycles: 60,
            l1_write_cycles: 70,
            wb_wait_cycles: 30,
            l2i_miss_cycles: 137,
            l2d_miss_cycles: 137,
            dirty_buffer_wait_cycles: 5,
            tlb_miss_cycles: 0,
            ..Counters::default()
        }
    }

    #[test]
    fn totals_are_consistent() {
        let c = sample();
        assert_eq!(c.stall_cycles(), 238 + 120 + 60 + 70 + 30 + 137 + 137 + 5);
        assert_eq!(c.total_cycles(), 1000 + c.stall_cycles());
    }

    #[test]
    fn breakdown_total_equals_cycles_per_instruction() {
        let c = sample();
        let b = c.breakdown();
        let cpi = c.total_cycles() as f64 / c.instructions as f64;
        assert!((b.total() - cpi).abs() < 1e-12);
    }

    #[test]
    fn miss_ratios() {
        let c = sample();
        assert!((c.l1i_miss_ratio() - 0.02).abs() < 1e-12);
        assert!((c.l1d_miss_ratio() - 12.0 / 330.0).abs() < 1e-12);
        assert!((c.l2_miss_ratio() - 2.0 / 32.0).abs() < 1e-12);
        assert!((c.l2i_miss_ratio() - 1.0 / 20.0).abs() < 1e-12);
        assert!((c.l2d_miss_ratio() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_zero_when_no_accesses() {
        let c = Counters::new();
        assert_eq!(c.l1i_miss_ratio(), 0.0);
        assert_eq!(c.l1d_miss_ratio(), 0.0);
        assert_eq!(c.l2_miss_ratio(), 0.0);
    }

    #[test]
    fn side_contributions() {
        let b = sample().breakdown();
        assert!((b.instruction_side_cpi() - (0.120 + 0.137)).abs() < 1e-12);
        assert!((b.data_read_side_cpi() - (0.060 + 0.137 + 0.005)).abs() < 1e-12);
        assert!((b.memory_cpi() - (b.total() - 1.238)).abs() < 1e-12);
    }

    #[test]
    fn components_sum_to_total() {
        let b = sample().breakdown();
        let sum: f64 = b.components().iter().map(|(_, v)| v).sum();
        assert!((sum - b.total()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no instructions")]
    fn breakdown_requires_instructions() {
        let _ = Counters::new().breakdown();
    }

    #[test]
    fn recovery_cycles_flow_through_accounting() {
        let mut c = sample();
        c.recovery_cycles = 50;
        c.fault_refetches = 3;
        c.faults_injected = 5;
        assert_eq!(c.stall_cycles(), sample().stall_cycles() + 50);
        let b = c.breakdown();
        assert!((b.recovery - 0.05).abs() < 1e-12);
        let cpi = c.total_cycles() as f64 / c.instructions as f64;
        assert!((b.total() - cpi).abs() < 1e-12);
        assert!(b
            .components()
            .iter()
            .any(|(name, v)| *name == "recovery" && *v > 0.0));
        // since() covers the new fields.
        let d = c.since(&sample());
        assert_eq!(d.recovery_cycles, 50);
        assert_eq!(d.fault_refetches, 3);
        assert_eq!(d.faults_injected, 5);
    }

    #[test]
    fn coherence_cycles_flow_through_accounting() {
        let mut c = sample();
        c.coherence_stall_cycles = 40;
        c.invalidations = 6;
        c.c2c_transfers = 2;
        c.upgrade_misses = 3;
        c.mesi_to_m = 9;
        assert_eq!(c.stall_cycles(), sample().stall_cycles() + 40);
        let b = c.breakdown();
        assert!((b.coherence - 0.04).abs() < 1e-12);
        let cpi = c.total_cycles() as f64 / c.instructions as f64;
        assert!((b.total() - cpi).abs() < 1e-12);
        assert!(b
            .components()
            .iter()
            .any(|(name, v)| *name == "coherence" && *v > 0.0));
        // since()/accum() cover the new fields.
        let d = c.since(&sample());
        assert_eq!(d.coherence_stall_cycles, 40);
        assert_eq!(d.invalidations, 6);
        assert_eq!(d.c2c_transfers, 2);
        assert_eq!(d.upgrade_misses, 3);
        assert_eq!(d.mesi_to_m, 9);
        assert_eq!(sample().accum(&d), c);
    }

    #[test]
    fn drain_utilization_is_bounded() {
        let mut c = sample();
        c.l2_drain_busy_cycles = c.total_cycles() / 4;
        let expected = (c.total_cycles() / 4) as f64 / c.total_cycles() as f64;
        assert!((c.l2_drain_utilization() - expected).abs() < 1e-12);
        assert_eq!(Counters::new().l2_drain_utilization(), 0.0);
    }

    #[test]
    fn accum_is_the_inverse_of_since() {
        let a = sample();
        let mut b = sample();
        b.instructions = 2500;
        b.wb_wait_cycles = 99;
        b.faults_injected = 7;
        let sum = a.accum(&b);
        assert_eq!(sum.since(&a), b);
        assert_eq!(sum.since(&b), a);
        assert_eq!(sum.total_cycles(), a.total_cycles() + b.total_cycles());
    }

    #[test]
    fn stack_components_sum_to_total_cycles() {
        let mut c = sample();
        c.recovery_cycles = 11;
        let sum: u64 = c.stack_components().iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, c.total_cycles());
        // Same labels, same order as the f64 breakdown.
        let labels: Vec<&str> = c.stack_components().iter().map(|&(n, _)| n).collect();
        let blabels: Vec<&str> = c.breakdown().components().iter().map(|&(n, _)| n).collect();
        assert_eq!(labels, blabels);
    }

    /// Breakdown arithmetic on *real* runs: for each write policy the
    /// per-component CPI contributions must sum to the total CPI, and the
    /// integer stack must balance the cycle count exactly.
    #[test]
    fn breakdown_components_sum_to_cpi_across_policies() {
        use crate::config::SimConfig;
        use crate::{workload, Simulator, WritePolicy};
        for policy in [
            WritePolicy::WriteBack,
            WritePolicy::WriteOnly,
            WritePolicy::Subblock,
        ] {
            let mut b = SimConfig::builder();
            b.policy(policy);
            let cfg = b.build().expect("valid");
            let sim = Simulator::new(cfg).expect("valid config");
            let result = sim
                .run(workload::subset(3, 1e-4))
                .expect("fault-free run succeeds");
            let c = &result.counters;
            let bd = c.breakdown();
            let cpi = c.total_cycles() as f64 / c.instructions as f64;
            let sum: f64 = bd.components().iter().map(|(_, v)| v).sum();
            assert!(
                (sum - cpi).abs() < 1e-9,
                "{policy:?}: components sum {sum} != CPI {cpi}"
            );
            assert!((bd.total() - cpi).abs() < 1e-9, "{policy:?}");
            let cycle_sum: u64 = c.stack_components().iter().map(|&(_, v)| v).sum();
            assert_eq!(cycle_sum, c.total_cycles(), "{policy:?}: integer stack");
        }
    }

    #[test]
    fn proc_counters_ratios() {
        let p = ProcCounters {
            instructions: 1000,
            cycles: 1500,
            loads: 200,
            stores: 100,
            l1i_misses: 10,
            l1d_misses: 15,
            l2_misses: 2,
        };
        assert!((p.cpi() - 1.5).abs() < 1e-12);
        assert!((p.l1i_miss_ratio() - 0.01).abs() < 1e-12);
        assert!((p.l1d_miss_ratio() - 0.05).abs() < 1e-12);
        let empty = ProcCounters::default();
        assert_eq!(empty.cpi(), 0.0);
        assert_eq!(empty.l1d_miss_ratio(), 0.0);
    }
}
