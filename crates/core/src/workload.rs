//! Ready-made multiprogramming workloads.
//!
//! The paper's experiments all run the ten-benchmark suite of Table 1 at
//! multiprogramming level 8. [`standard`] builds that workload from the
//! synthetic benchmark models at a chosen scale; [`subset`] builds smaller
//! workloads for quick runs and tests.

use gaas_trace::arena;
use gaas_trace::bench_model::{suite, BenchmarkSpec};
use gaas_trace::{Pid, Trace};

/// Builds the full ten-benchmark workload, PIDs 0–9, with every
/// benchmark's instruction budget scaled by `scale` (1.0 reproduces the
/// paper's ≈2.4 G-reference suite).
///
/// # Panics
///
/// Panics if `scale` is not finite and positive.
///
/// # Examples
///
/// ```
/// use gaas_sim::workload;
///
/// let traces = workload::standard(1e-4);
/// assert_eq!(traces.len(), 10);
/// ```
pub fn standard(scale: f64) -> Vec<Box<dyn Trace>> {
    from_specs(&suite(), scale)
}

/// Builds a workload from the first `n` benchmarks of the suite.
///
/// # Panics
///
/// Panics if `scale` is not finite and positive, or `n` is zero or exceeds
/// the suite size.
pub fn subset(n: usize, scale: f64) -> Vec<Box<dyn Trace>> {
    let all = suite();
    assert!(n > 0 && n <= all.len(), "subset size out of range");
    from_specs(&all[..n], scale)
}

/// Builds a workload from explicit specs, assigning PIDs in order. Each
/// stream is a replay cursor over the shared trace arena (materialized
/// once per benchmark × scale, byte-identical to direct generation), so
/// repeated runs — sweep cells in particular — stop paying generation
/// cost.
///
/// # Panics
///
/// Panics if `scale` is not finite and positive, or more than 256 specs are
/// given (the PID space is 8 bits).
pub fn from_specs(specs: &[BenchmarkSpec], scale: f64) -> Vec<Box<dyn Trace>> {
    assert!(specs.len() <= 256, "at most 256 processes (8-bit PID)");
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| arena::cursor(spec, Pid::new(i as u8), scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_has_ten_named_processes() {
        let w = standard(1e-5);
        assert_eq!(w.len(), 10);
        let names: Vec<_> = w.iter().map(|t| t.name().to_string()).collect();
        assert!(names.contains(&"gcc".to_string()));
        assert!(names.contains(&"tomcatv".to_string()));
    }

    #[test]
    fn subset_takes_prefix() {
        let w = subset(3, 1e-5);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].name(), "doduc");
    }

    #[test]
    fn pids_are_distinct() {
        let mut w = standard(1e-5);
        let mut pids = std::collections::HashSet::new();
        for t in &mut w {
            let ev = t.next().expect("nonempty");
            pids.insert(ev.addr.pid().raw());
        }
        assert_eq!(pids.len(), 10);
    }

    #[test]
    #[should_panic(expected = "subset size out of range")]
    fn oversized_subset_panics() {
        let _ = subset(11, 1e-5);
    }
}
