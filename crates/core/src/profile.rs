//! Two-phase sweep memoization: functional profiles and timing pricing.
//!
//! The paper's sweeps (Figs. 5, 7, 8) vary two very different kinds of
//! knob. *Geometry* knobs — cache sizes, associativities, line sizes, the
//! write policy, the L2 organization — change which accesses hit and miss.
//! *Timing* knobs — L2 access times, memory penalties, write-buffer depth,
//! the §9 concurrency switches — change only how many cycles each outcome
//! costs. A 63-cell access-time sweep therefore repeats the same hit/miss
//! computation 9 times per geometry.
//!
//! This module splits the simulation accordingly:
//!
//! 1. **Functional pass** — one full simulation per geometry, run with a
//!    [`ProfileRecorder`] attached ([`Simulator::run_profiled`]). The
//!    recorder captures every instruction's functional outcome into a
//!    compact byte-token stream (typically ~1.1 bytes/instruction): TLB
//!    hit/miss, L1/L2 hit/miss with victim dirtiness, write-policy
//!    outcomes, and the physical addresses the write buffer needs.
//! 2. **Timing pass** — [`price_profile`] replays the token stream under
//!    any timing point of the same geometry, re-running the *exact* cycle
//!    arithmetic of the live simulator (write-buffer occupancy, dirty
//!    buffer, drain streaming) against fresh timing state. The result is
//!    byte-identical to a full simulation of that configuration.
//!
//! The split is sound because the simulator's scheduler runs on a
//! *functional clock* (see `Simulator::fnow`) that advances only on
//! functional outcomes: every timing variant of one geometry executes the
//! identical instruction interleaving.
//!
//! # Multi-variant co-pricing
//!
//! A geometry group usually carries several timing variants, and replaying
//! the token stream once per variant decodes the same ~5.5 M-event stream
//! N times. [`price_profiles`] collapses that: ONE pass over the token
//! stream advances N variant *lanes* in lockstep. Each instruction record
//! is decoded once into locals (stall, TLB bits, outcomes, drain codes,
//! side-channel addresses) and then applied to every lane; per-lane timing
//! state is laid out structure-of-arrays (`now`, counters, write-buffer
//! occupancy planes) so the inner loop is branch-light, and the
//! write-buffer line probe compares a whole lane window with one
//! XOR/mask/compare per word ([`gaas_cache::line_member_mask`]). Results
//! are byte-identical to N independent [`price_profile`] calls.
//!
//! The address side channel is stored as codec-v3 blocks
//! ([`gaas_trace::codec::encode_u64_stream`]) and streamed through a
//! block-at-a-time cursor during replay — at most one ≤4096-entry batch
//! buffer is decoded at any moment, consumed by all lanes before the next
//! block is touched, instead of materializing the whole packed stream per
//! replay.
//!
//! [`functional_fingerprint`] defines the grouping key. It destructures
//! [`SimConfig`] *exhaustively* — adding a config field without
//! classifying it as functional, timing, or disqualifying breaks the
//! build, so the memoizer can never silently group configurations that
//! differ functionally.

use gaas_cache::{line_member_mask, MainMemory, MemorySystem, WriteBuffer, WritePolicy};
use gaas_trace::codec::{encode_u64_stream, U64StreamCursor};
use gaas_trace::{PhysAddr, Pid};

use crate::config::{
    ConcurrencyConfig, L1Config, L2Config, L2Side, MpConfig, SimConfig, WbBypass, WriteBufferConfig,
};
use crate::cpi::{Counters, ProcCounters};
use crate::sim::{SimError, SimResult, Termination};

// ---- token encoding ----
//
// The ops stream is a sequence of instruction records, optionally
// preceded by a control token when the issuing PID changes:
//
//   control token:  0b11......  followed by one raw PID byte
//   ifetch byte:    bits 7-6 data kind (0 none, 1 load, 2 store)
//                   bit  5   I-TLB miss
//                   bits 4-2 CPU stall (0-6 inline; 7 = next byte holds
//                            the full 8-bit stall)
//                   bits 1-0 fetch outcome (see OUTCOME_*)
//   load byte:      bits 1-0 data outcome, bit 2 D-TLB miss,
//                   bit 3 replaced-written-line, bit 4 has victim
//   store byte:     bit 0 D-TLB miss, bit 1 L1 hit, bit 2 extra write
//                   cycle, bit 3 wb word, bit 4 fetch, bit 5 victim
//   store ext byte: (present iff fetch) bits 1-0 data outcome,
//                   bit 2 replaced-written-line
//   drain byte:     one per write-buffer enqueue, in enqueue order:
//                   0 = L2-D drain hit, 1 = drain miss w/ clean victim,
//                   2 = drain miss w/ dirty victim
//
// Outcome codes: 0 = L1 hit, 1 = L2 hit, 2 = L2 miss (clean victim),
// 3 = L2 miss (dirty victim).
//
// The addrs side channel carries only the physical addresses the timing
// replay needs (write-buffer entries and fetched line bases), in
// consumption order: per load miss `[line_base][victim?]`, per store
// `[wb_word?][line_base?][victim?]`.

const KIND_LOAD: u8 = 1 << 6;
const KIND_STORE: u8 = 2 << 6;
const CONTROL: u8 = 3 << 6;
const I_TLB_MISS: u8 = 1 << 5;
const STALL_ESCAPE: u8 = 7;

const LOAD_DTLB: u8 = 1 << 2;
const LOAD_REPLACED: u8 = 1 << 3;
const LOAD_VICTIM: u8 = 1 << 4;

const STORE_DTLB: u8 = 1 << 0;
const STORE_HIT: u8 = 1 << 1;
const STORE_EXTRA: u8 = 1 << 2;
const STORE_WB_WORD: u8 = 1 << 3;
const STORE_FETCH: u8 = 1 << 4;
const STORE_VICTIM: u8 = 1 << 5;
const EXT_REPLACED: u8 = 1 << 2;

const OUTCOME_MASK: u8 = 0x03;

/// One geometry's functional behaviour, replayable under any timing point
/// (produced by [`Simulator::run_profiled`], consumed by
/// [`price_profile`]).
///
/// [`Simulator::run_profiled`]: crate::sim::Simulator::run_profiled
#[derive(Debug, Clone)]
pub struct FunctionalProfile {
    /// The geometry key this profile was recorded under
    /// ([`functional_fingerprint`]).
    pub fkey: u64,
    /// Warm-up instruction count the recording run used; pricing snapshots
    /// at the same boundary.
    pub warmup: u64,
    /// Packed per-instruction outcome tokens.
    ops: Vec<u8>,
    /// Physical word addresses for the write-buffer replay, stored as
    /// codec-v3 blocks ([`encode_u64_stream`]) and streamed block-at-a-
    /// time during pricing. Clustered write-buffer/line-base addresses
    /// delta-compress 2–4× versus the 8 B/entry packed form.
    addr_blocks: Vec<u8>,
    /// Number of addresses encoded in `addr_blocks`.
    addr_count: u64,
    /// Benchmarks in completion order (scheduler outcome, functional).
    pub completed: Vec<String>,
    /// Voluntary-syscall context switches taken.
    pub syscall_switches: u64,
    /// Time-slice context switches taken.
    pub slice_switches: u64,
    /// True when the recording run hit its instruction budget.
    pub budget_exhausted: bool,
}

impl FunctionalProfile {
    /// Approximate heap footprint in bytes (capacity planning). The
    /// address side channel is counted at its compressed size — what the
    /// profile actually occupies while cached.
    pub fn size_bytes(&self) -> usize {
        self.ops.len() + self.addr_blocks.len()
    }

    /// Addresses in the side channel (the count behind
    /// [`Self::size_bytes`]'s compressed `addr` term; 8 bytes each before
    /// compression).
    pub fn addr_count(&self) -> u64 {
        self.addr_count
    }

    /// Instructions the profile covers (including warm-up).
    pub fn instructions(&self) -> u64 {
        // Count ifetch records: every byte stream position that starts an
        // instruction. Cheap enough for reporting; not used in pricing.
        let mut n = 0u64;
        let mut i = 0usize;
        while i < self.ops.len() {
            let b = self.ops[i];
            i += 1;
            if b & CONTROL == CONTROL {
                i += 1; // pid byte
                continue;
            }
            n += 1;
            if (b >> 2) & 0x07 == STALL_ESCAPE {
                i += 1; // full stall byte
            }
            match b & CONTROL {
                KIND_LOAD => {
                    let lb = self.ops[i];
                    i += 1;
                    if lb & OUTCOME_MASK != 0 && lb & LOAD_VICTIM != 0 {
                        i += 1; // drain byte
                    }
                }
                KIND_STORE => {
                    let sb = self.ops[i];
                    i += 1;
                    if sb & STORE_FETCH != 0 {
                        i += 1; // ext byte
                    }
                    let drains = u32::from(sb & STORE_WB_WORD != 0)
                        + u32::from(sb & STORE_FETCH != 0 && sb & STORE_VICTIM != 0)
                        + u32::from(sb & STORE_FETCH == 0 && sb & STORE_VICTIM != 0);
                    i += drains as usize;
                }
                _ => {}
            }
        }
        n
    }
}

/// Captures functional outcomes during a recording run (installed by
/// [`Simulator::run_profiled`]; see the module docs for the encoding).
///
/// [`Simulator::run_profiled`]: crate::sim::Simulator::run_profiled
#[derive(Debug, Default)]
pub struct ProfileRecorder {
    ops: Vec<u8>,
    addrs: Vec<u64>,
    last_pid: Option<u8>,
    /// Index of the current instruction's ifetch byte (outcome patched by
    /// the L2 service path, data kind patched by the data step).
    i_slot: usize,
    /// Index of the current data byte awaiting its outcome patch (the
    /// load byte, or a store's ext byte).
    d_slot: usize,
}

impl ProfileRecorder {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn begin_instr(&mut self, pid: u8, stall: u8, itlb_miss: bool) {
        if self.last_pid != Some(pid) {
            self.ops.push(CONTROL);
            self.ops.push(pid);
            self.last_pid = Some(pid);
        }
        let mut b = 0u8;
        if itlb_miss {
            b |= I_TLB_MISS;
        }
        let s = stall.min(STALL_ESCAPE);
        b |= s << 2;
        self.i_slot = self.ops.len();
        self.ops.push(b);
        if s == STALL_ESCAPE {
            self.ops.push(stall);
        }
    }

    /// Patches the current instruction's fetch outcome (1 = L2 hit,
    /// 2/3 = L2 miss with clean/dirty victim).
    pub(crate) fn set_i_outcome(&mut self, code: u8) {
        self.ops[self.i_slot] |= code;
    }

    pub(crate) fn begin_load(&mut self, dtlb_miss: bool) {
        self.ops[self.i_slot] |= KIND_LOAD;
        self.d_slot = self.ops.len();
        self.ops.push(if dtlb_miss { LOAD_DTLB } else { 0 });
    }

    pub(crate) fn load_miss(&mut self, replaced_written: bool, has_victim: bool, line_base: u64) {
        let mut b = 0u8;
        if replaced_written {
            b |= LOAD_REPLACED;
        }
        if has_victim {
            b |= LOAD_VICTIM;
        }
        self.ops[self.d_slot] |= b;
        self.addrs.push(line_base);
    }

    #[allow(clippy::too_many_arguments, clippy::fn_params_excessive_bools)]
    pub(crate) fn begin_store(
        &mut self,
        dtlb_miss: bool,
        hit: bool,
        extra_cycle: bool,
        has_wb_word: bool,
        has_fetch: bool,
        has_victim: bool,
        replaced_written: bool,
    ) {
        self.ops[self.i_slot] |= KIND_STORE;
        let mut b = 0u8;
        if dtlb_miss {
            b |= STORE_DTLB;
        }
        if hit {
            b |= STORE_HIT;
        }
        if extra_cycle {
            b |= STORE_EXTRA;
        }
        if has_wb_word {
            b |= STORE_WB_WORD;
        }
        if has_fetch {
            b |= STORE_FETCH;
        }
        if has_victim {
            b |= STORE_VICTIM;
        }
        self.ops.push(b);
        if has_fetch {
            self.d_slot = self.ops.len();
            self.ops
                .push(if replaced_written { EXT_REPLACED } else { 0 });
        }
    }

    /// Patches the current data access's outcome (load byte or store ext
    /// byte).
    pub(crate) fn set_d_outcome(&mut self, code: u8) {
        self.ops[self.d_slot] |= code;
    }

    /// Records a physical address for the write-buffer replay (enqueued
    /// words/victims and store fetch line bases, in consumption order).
    pub(crate) fn push_addr(&mut self, raw: u64) {
        self.addrs.push(raw);
    }

    /// Records one write-buffer drain's L2-D outcome, in enqueue order.
    pub(crate) fn push_drain(&mut self, code: u8) {
        self.ops.push(code);
    }

    pub(crate) fn finish(self, fkey: u64, warmup: u64, result: &SimResult) -> FunctionalProfile {
        FunctionalProfile {
            fkey,
            warmup,
            ops: self.ops,
            addr_blocks: encode_u64_stream(&self.addrs),
            addr_count: self.addrs.len() as u64,
            completed: result.completed.clone(),
            syscall_switches: result.counters.syscall_switches,
            slice_switches: result.counters.slice_switches,
            budget_exhausted: result.termination == Termination::BudgetExhausted,
        }
    }
}

// ---- geometry key ----

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn put(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.put(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.put(&v.to_le_bytes());
    }
}

fn hash_l1(h: &mut Fnv, c: &L1Config) {
    let L1Config {
        size_words,
        line_words,
        assoc,
    } = *c;
    h.u64(size_words);
    h.u32(line_words);
    h.u32(assoc);
}

/// Hashes the *functional* part of an L2 side: its shape, not its access
/// time (the access time is exactly what the timing pass re-prices).
fn hash_l2_side(h: &mut Fnv, s: &L2Side) {
    let L2Side {
        size_words,
        assoc,
        line_words,
        access_cycles: _, // timing
    } = *s;
    h.u64(size_words);
    h.u32(assoc);
    h.u32(line_words);
}

/// The memoizer's grouping key: a hash over exactly the [`SimConfig`]
/// fields that determine *functional* behaviour (hit/miss outcomes,
/// scheduling, completion order). Two configurations with equal keys may
/// share one [`FunctionalProfile`]; they may differ only in timing.
///
/// Returns `None` for configurations that must not be memoized at all:
/// fault injection (stochastic state corruption driven by access order
/// *and* recovery costs), the differential oracle (must observe the real
/// engine), checkpointing (checkpoints carry timing-clock cycles), and
/// telemetry (spans and windowed CPI stacks only exist in a timed run).
///
/// # Classification (every field, exhaustively)
///
/// | class | fields |
/// |---|---|
/// | functional | `l1i`, `l1d`, `policy`, `l2` shape (organization, sizes, assocs, line sizes), `mp`, `page_colors`, `instruction_budget` |
/// | timing | L2 `access_cycles`, `write_buffer`, `concurrency`, `memory`, `tlb_miss_penalty`, `l2_drain_access_override` |
/// | disqualifying | `fault` (when enabled), `diffcheck` (when enabled), `checkpoint_interval` (when nonzero), `telemetry` (when enabled), `cmp` (when enabled: multi-core interleaving and coherence traffic make outcomes timing-coupled) |
///
/// The destructuring below is deliberately exhaustive (no `..`): adding a
/// field to [`SimConfig`] fails to compile until it is classified here,
/// so the memoizer can never silently group configs that differ in a new
/// functional knob.
pub fn functional_fingerprint(cfg: &SimConfig) -> Option<u64> {
    let SimConfig {
        l1i,
        l1d,
        policy,
        l2,
        write_buffer,
        concurrency,
        memory,
        mp,
        tlb_miss_penalty,
        page_colors,
        l2_drain_access_override,
        fault,
        instruction_budget,
        checkpoint_interval,
        diffcheck,
        telemetry,
        cmp,
    } = cfg;

    // Disqualifiers: behaviours that couple functional state to timing or
    // to per-run stochastic machinery. Telemetry is disqualifying because
    // the pricer cannot synthesize the spans and per-window stacks a real
    // timed run would have produced.
    if fault.enabled()
        || diffcheck.enabled
        || *checkpoint_interval != 0
        || telemetry.enabled
        || cmp.enabled()
    {
        // `cmp` is disqualifying because the CMP engine interleaves cores
        // by timing-clock order and charges coherence traffic — outcomes
        // are not a pure function of one geometry's stream.
        return None;
    }

    // Timing-only fields — destructured so a new subfield must be
    // (re)classified, then ignored by the key.
    let WriteBufferConfig {
        depth: _,
        width_words: _,
    } = *write_buffer;
    let ConcurrencyConfig {
        concurrent_i_refill: _,
        d_read_bypass: _,
        l2d_dirty_buffer: _,
    } = *concurrency;
    let MainMemory {
        clean_miss_cycles: _,
        dirty_miss_cycles: _,
    } = *memory;
    let _: (&u32, &Option<u32>) = (tlb_miss_penalty, l2_drain_access_override);

    let mut h = Fnv::new();
    hash_l1(&mut h, l1i);
    hash_l1(&mut h, l1d);
    h.put(&[match policy {
        WritePolicy::WriteBack => 0u8,
        WritePolicy::WriteMissInvalidate => 1,
        WritePolicy::WriteOnly => 2,
        WritePolicy::Subblock => 3,
    }]);
    match l2 {
        L2Config::Unified(s) => {
            h.put(&[0]);
            hash_l2_side(&mut h, s);
        }
        L2Config::Split { i, d } => {
            h.put(&[1]);
            hash_l2_side(&mut h, i);
            hash_l2_side(&mut h, d);
        }
    }
    let MpConfig {
        level,
        time_slice_cycles,
    } = *mp;
    h.u64(level as u64);
    h.u64(time_slice_cycles);
    h.u64(*page_colors);
    match instruction_budget {
        Some(b) => {
            h.put(&[1]);
            h.u64(*b);
        }
        None => h.put(&[0]),
    }
    Some(h.0)
}

// ---- timing pricer ----

/// Prices a [`FunctionalProfile`] under `cfg`'s timing point, producing a
/// [`SimResult`] byte-identical to a full simulation of `cfg`.
///
/// # Errors
///
/// Returns [`SimError::Config`] when `cfg` fails validation.
///
/// # Panics
///
/// Panics when `cfg` is not a timing variant of the profiled geometry
/// (`functional_fingerprint(cfg) != Some(profile.fkey)`) — grouping
/// mistakes are programming errors, not recoverable conditions.
pub fn price_profile(cfg: &SimConfig, profile: &FunctionalProfile) -> Result<SimResult, SimError> {
    cfg.validate()?;
    assert_eq!(
        functional_fingerprint(cfg),
        Some(profile.fkey),
        "price_profile requires a timing variant of the profiled geometry"
    );

    // Twin of `Simulator::new`'s cost derivation.
    let beats = |line_words: u32| line_words.div_ceil(4);
    let i_side = cfg.l2.i_side();
    let d_side = cfg.l2.d_side();
    let mut p = Pricer {
        cfg,
        ops: &profile.ops,
        addrs: U64StreamCursor::new(&profile.addr_blocks),
        i: 0,
        now: 0,
        counters: Counters::new(),
        per_proc: Vec::new(),
        cur_pid: 0,
        wb: WriteBuffer::new(cfg.write_buffer.depth),
        mem_d: MemorySystem::new(cfg.memory, cfg.concurrency.l2d_dirty_buffer),
        mem_i: MemorySystem::new(cfg.memory, false),
        i_hit_cost: (i_side.access_cycles + beats(cfg.l1i.line_words) - 1) as u64,
        d_hit_cost: (d_side.access_cycles + beats(cfg.l1d.line_words) - 1) as u64,
        d_write_access: cfg.l2_drain_access_override.unwrap_or(d_side.access_cycles),
        d_write_stream: 0,
    };
    p.d_write_stream = p.d_write_access.saturating_sub(2).max(1);

    let mut warm_snapshot: Option<Counters> = None;
    while p.i < p.ops.len() {
        let b = p.ops[p.i];
        p.i += 1;
        if b & CONTROL == CONTROL {
            p.cur_pid = p.ops[p.i];
            p.i += 1;
            continue;
        }
        p.replay_ifetch(b);
        match b & CONTROL {
            KIND_LOAD => p.replay_load(),
            KIND_STORE => p.replay_store(),
            _ => {}
        }
        if profile.warmup > 0 && p.counters.instructions == profile.warmup {
            warm_snapshot = Some(p.counters);
        }
    }
    debug_assert_eq!(p.i, p.ops.len(), "ops stream fully consumed");
    debug_assert!(p.addrs.finished(), "addrs stream fully consumed");
    debug_assert_eq!(
        p.now,
        p.counters.total_cycles(),
        "cycle accounting must balance"
    );

    p.counters.syscall_switches = profile.syscall_switches;
    p.counters.slice_switches = profile.slice_switches;
    let counters = match warm_snapshot {
        Some(snap) => p.counters.since(&snap),
        None => p.counters,
    };
    let per_process = p
        .per_proc
        .iter()
        .enumerate()
        .filter(|(_, pc)| pc.instructions > 0 || pc.loads > 0 || pc.stores > 0)
        .map(|(i, pc)| (Pid::new(i as u8), *pc))
        .collect();
    Ok(SimResult {
        config: cfg.clone(),
        counters,
        completed: profile.completed.clone(),
        per_process,
        termination: if profile.budget_exhausted {
            Termination::BudgetExhausted
        } else {
            Termination::Completed
        },
        checkpoints: Vec::new(),
    })
}

/// Replays a token stream against fresh timing state, twinning the live
/// simulator's cycle arithmetic step for step.
struct Pricer<'a> {
    cfg: &'a SimConfig,
    ops: &'a [u8],
    /// Streaming decoder over the compressed address side channel: one
    /// block of scratch at a time, never the whole materialized stream.
    addrs: U64StreamCursor<'a>,
    i: usize,
    now: u64,
    counters: Counters,
    per_proc: Vec<ProcCounters>,
    cur_pid: u8,
    wb: WriteBuffer,
    mem_d: MemorySystem,
    mem_i: MemorySystem,
    i_hit_cost: u64,
    d_hit_cost: u64,
    d_write_access: u32,
    d_write_stream: u32,
}

impl Pricer<'_> {
    fn next_op(&mut self) -> u8 {
        let b = self.ops[self.i];
        self.i += 1;
        b
    }

    fn next_addr(&mut self) -> PhysAddr {
        PhysAddr::new(self.addrs.next_value().expect("addrs stream underrun"))
    }

    fn proc_entry(&mut self) -> &mut ProcCounters {
        let idx = self.cur_pid as usize;
        if self.per_proc.len() <= idx {
            self.per_proc.resize(idx + 1, ProcCounters::default());
        }
        &mut self.per_proc[idx]
    }

    fn charge_tlb_miss(&mut self, instruction_side: bool, cycles: &mut u64) {
        if instruction_side {
            self.counters.itlb_misses += 1;
        } else {
            self.counters.dtlb_misses += 1;
        }
        let p = self.cfg.tlb_miss_penalty as u64;
        self.counters.tlb_miss_cycles += p;
        *cycles += p;
    }

    fn replay_ifetch(&mut self, b: u8) {
        let mut stall = ((b >> 2) & 0x07) as u64;
        if stall == STALL_ESCAPE as u64 {
            stall = self.next_op() as u64;
        }
        let outcome = b & OUTCOME_MASK;
        let mut cycles = 1 + stall;
        self.counters.instructions += 1;
        self.counters.cpu_stall_cycles += stall;
        if b & I_TLB_MISS != 0 {
            self.charge_tlb_miss(true, &mut cycles);
        }
        let missed = outcome != 0;
        if missed {
            self.counters.l1i_misses += 1;
            let mut t = self.now + cycles;
            if !self.cfg.concurrency.concurrent_i_refill {
                let empty = self.wb.empty_at(t);
                let wait = empty - t;
                self.counters.wb_wait_cycles += wait;
                cycles += wait;
                t = empty;
            }
            cycles += self.service_i(t, outcome);
        }
        self.now += cycles;
        let l2_missed = outcome >= 2;
        let p = self.proc_entry();
        p.instructions += 1;
        p.cycles += cycles;
        if missed {
            p.l1i_misses += 1;
        }
        if l2_missed {
            p.l2_misses += 1;
        }
    }

    fn service_i(&mut self, start: u64, outcome: u8) -> u64 {
        self.counters.l2i_accesses += 1;
        let hit_cost = self.i_hit_cost;
        if outcome == 1 {
            self.counters.l1i_miss_cycles += hit_cost;
            return hit_cost;
        }
        self.counters.l2i_misses += 1;
        let svc = if self.cfg.l2.is_split() {
            self.mem_i.service_miss(start, outcome == 3)
        } else {
            self.mem_d.service_miss(start, outcome == 3)
        };
        let service = svc.stall_cycles - svc.dirty_buffer_wait;
        let l1_share = service.min(hit_cost);
        self.counters.l1i_miss_cycles += l1_share;
        self.counters.l2i_miss_cycles += service - l1_share;
        self.counters.dirty_buffer_wait_cycles += svc.dirty_buffer_wait;
        svc.stall_cycles
    }

    fn service_d(&mut self, start: u64, outcome: u8) -> u64 {
        self.counters.l2d_accesses += 1;
        let hit_cost = self.d_hit_cost;
        if outcome == 1 {
            self.counters.l1d_miss_cycles += hit_cost;
            return hit_cost;
        }
        self.counters.l2d_misses += 1;
        let svc = self.mem_d.service_miss(start, outcome == 3);
        let service = svc.stall_cycles - svc.dirty_buffer_wait;
        let l1_share = service.min(hit_cost);
        self.counters.l1d_miss_cycles += l1_share;
        self.counters.l2d_miss_cycles += service - l1_share;
        self.counters.dirty_buffer_wait_cycles += svc.dirty_buffer_wait;
        svc.stall_cycles
    }

    fn wb_wait_for_d_miss(&mut self, start: u64, line_base: PhysAddr, replaced: bool) -> u64 {
        let until = match self.cfg.concurrency.d_read_bypass {
            WbBypass::Wait => self.wb.empty_at(start),
            WbBypass::DirtyBit => {
                if replaced {
                    self.wb.empty_at(start)
                } else {
                    start
                }
            }
            WbBypass::Associative => self
                .wb
                .match_line(start, line_base, self.cfg.l1d.line_words)
                .map_or(start, |t| t.max(start)),
        };
        let wait = until - start;
        self.counters.wb_wait_cycles += wait;
        wait
    }

    fn replay_enqueue(&mut self, start: u64) -> u64 {
        let addr = self.next_addr();
        let free_at = self.wb.slot_free_at(start);
        let stall = free_at - start;
        self.counters.wb_wait_cycles += stall;
        let code = self.next_op();
        self.counters.l2_drain_writes += 1;
        let extra = if code == 0 {
            0
        } else {
            self.counters.l2_drain_misses += 1;
            self.mem_d.service_miss_raw(code == 2).stall_cycles as u32
        };
        let busy_from = free_at.max(self.wb.last_completion());
        let completes = self.wb.enqueue(
            free_at,
            addr,
            self.d_write_access,
            self.d_write_stream,
            extra,
        );
        self.counters.l2_drain_busy_cycles += completes - busy_from;
        stall
    }

    fn replay_load(&mut self) {
        let b = self.next_op();
        let outcome = b & OUTCOME_MASK;
        let mut cycles = 0u64;
        self.counters.loads += 1;
        if b & LOAD_DTLB != 0 {
            self.charge_tlb_miss(false, &mut cycles);
        }
        if outcome != 0 {
            self.counters.l1d_read_misses += 1;
            let line_base = self.next_addr();
            let mut t = self.now + cycles;
            let wait = self.wb_wait_for_d_miss(t, line_base, b & LOAD_REPLACED != 0);
            cycles += wait;
            t += wait;
            if b & LOAD_VICTIM != 0 {
                let stall = self.replay_enqueue(t);
                cycles += stall;
                t += stall;
            }
            cycles += self.service_d(t, outcome);
        }
        self.now += cycles;
        let l2_missed = outcome >= 2;
        let p = self.proc_entry();
        p.loads += 1;
        p.cycles += cycles;
        if outcome != 0 {
            p.l1d_misses += 1;
        }
        if l2_missed {
            p.l2_misses += 1;
        }
    }

    fn replay_store(&mut self) {
        let b = self.next_op();
        let (mut outcome, mut replaced) = (0u8, false);
        if b & STORE_FETCH != 0 {
            let ext = self.next_op();
            outcome = ext & OUTCOME_MASK;
            replaced = ext & EXT_REPLACED != 0;
        }
        let mut cycles = 0u64;
        self.counters.stores += 1;
        if b & STORE_DTLB != 0 {
            self.charge_tlb_miss(false, &mut cycles);
        }
        let hit = b & STORE_HIT != 0;
        if !hit {
            self.counters.l1d_write_misses += 1;
        }
        if b & STORE_EXTRA != 0 {
            self.counters.l1_write_cycles += 1;
            cycles += 1;
        }
        let mut t = self.now + cycles;
        if b & STORE_WB_WORD != 0 {
            let stall = self.replay_enqueue(t);
            cycles += stall;
            t += stall;
        }
        if b & STORE_FETCH != 0 {
            let line_base = self.next_addr();
            let wait = self.wb_wait_for_d_miss(t, line_base, replaced);
            cycles += wait;
            t += wait;
            if b & STORE_VICTIM != 0 {
                let stall = self.replay_enqueue(t);
                cycles += stall;
                t += stall;
            }
            cycles += self.service_d(t, outcome);
        } else if b & STORE_VICTIM != 0 {
            cycles += self.replay_enqueue(t);
        }
        self.now += cycles;
        let l2_missed = outcome >= 2;
        let p = self.proc_entry();
        p.stores += 1;
        p.cycles += cycles;
        if !hit {
            p.l1d_misses += 1;
        }
        if l2_missed {
            p.l2_misses += 1;
        }
    }
}

// ---- multi-variant co-pricer ----

/// Prices **every** timing variant in `cfgs` against one
/// [`FunctionalProfile`] in a single pass over the token/address stream,
/// returning one [`SimResult`] per config, in order — each byte-identical
/// to what [`price_profile`] (and hence a full simulation) produces.
///
/// Where N separate [`price_profile`] calls decode the same token stream
/// N times, this engine decodes each instruction record once and applies
/// it to N variant *lanes* advanced in lockstep; see the module docs for
/// the lane layout. The address side channel streams through one shared
/// block cursor, so every decoded batch is consumed by all lanes before
/// the next block is touched.
///
/// # Errors
///
/// Returns [`SimError::Config`] when any config fails validation (the
/// caller falls back to per-variant pricing / full simulation).
///
/// # Panics
///
/// Panics when any `cfg` is not a timing variant of the profiled
/// geometry (`functional_fingerprint(cfg) != Some(profile.fkey)`) —
/// grouping mistakes are programming errors, not recoverable conditions.
pub fn price_profiles(
    cfgs: &[SimConfig],
    profile: &FunctionalProfile,
) -> Result<Vec<SimResult>, SimError> {
    for cfg in cfgs {
        cfg.validate()?;
        assert_eq!(
            functional_fingerprint(cfg),
            Some(profile.fkey),
            "price_profiles requires timing variants of the profiled geometry"
        );
    }
    if cfgs.is_empty() {
        return Ok(Vec::new());
    }

    let mut p = CoPricer::new(cfgs);
    let mut addrs = U64StreamCursor::new(&profile.addr_blocks);
    let next_addr =
        |cur: &mut U64StreamCursor<'_>| PhysAddr::new(cur.next_value().expect("addrs underrun"));

    let ops = &profile.ops[..];
    let mut warm = false;
    // Run accumulator for "trivial" records — every cache level hit, so
    // the cost is lane-independent (or a lane-constant TLB penalty times
    // a shared count). These records — the vast majority of the stream —
    // cost a handful of scalar adds each; the per-lane loop runs only on
    // the flush that precedes a miss, a PID switch, or the warmup
    // boundary. This is what makes N-lane co-pricing cheaper than N
    // replays: the scalar pricer pays the full per-event bookkeeping per
    // lane, the co-pricer pays it per *run*.
    let mut pend = PendingRun::default();
    // Architectural instruction count so far (lane-independent), kept
    // outside the lanes so the warmup boundary check stays scalar.
    let mut instr_total = 0u64;
    let mut i = 0usize;
    while i < ops.len() {
        let b = ops[i];
        i += 1;
        if b & CONTROL == CONTROL {
            p.flush(&mut pend);
            p.switch_pid(ops[i]);
            i += 1;
            continue;
        }
        // Decode the whole instruction record into locals once, then
        // apply it to every lane (or fold it into the pending run).
        let mut stall = ((b >> 2) & 0x07) as u64;
        if stall == STALL_ESCAPE as u64 {
            stall = ops[i] as u64;
            i += 1;
        }
        let itlb = b & I_TLB_MISS != 0;
        let i_outcome = b & OUTCOME_MASK;
        instr_total += 1;
        match b & CONTROL {
            KIND_LOAD => {
                let lb = ops[i];
                i += 1;
                let outcome = lb & OUTCOME_MASK;
                if i_outcome == 0 && outcome == 0 {
                    pend.ifetch_hit(stall, itlb);
                    pend.load_hit(lb & LOAD_DTLB != 0);
                } else {
                    let (mut line_base, mut victim) = (PhysAddr::new(0), None);
                    if outcome != 0 {
                        line_base = next_addr(&mut addrs);
                        if lb & LOAD_VICTIM != 0 {
                            let addr = next_addr(&mut addrs);
                            let code = ops[i];
                            i += 1;
                            victim = Some((addr, code));
                        }
                    }
                    let replaced = lb & LOAD_REPLACED != 0;
                    let dtlb = lb & LOAD_DTLB != 0;
                    p.flush(&mut pend);
                    for l in 0..p.n {
                        p.apply_ifetch(l, stall, itlb, i_outcome);
                        p.apply_load(l, dtlb, outcome, replaced, line_base, victim);
                    }
                }
            }
            KIND_STORE => {
                let sb = ops[i];
                i += 1;
                if i_outcome == 0 && sb & (STORE_FETCH | STORE_WB_WORD | STORE_VICTIM) == 0 {
                    pend.ifetch_hit(stall, itlb);
                    pend.store_simple(sb);
                } else {
                    let (mut outcome, mut replaced) = (0u8, false);
                    if sb & STORE_FETCH != 0 {
                        let ext = ops[i];
                        i += 1;
                        outcome = ext & OUTCOME_MASK;
                        replaced = ext & EXT_REPLACED != 0;
                    }
                    // Side-channel consumption order mirrors the scalar
                    // replay: wb word, fetched line base, victim.
                    let mut wb_word = None;
                    if sb & STORE_WB_WORD != 0 {
                        let addr = next_addr(&mut addrs);
                        let code = ops[i];
                        i += 1;
                        wb_word = Some((addr, code));
                    }
                    let mut line_base = PhysAddr::new(0);
                    if sb & STORE_FETCH != 0 {
                        line_base = next_addr(&mut addrs);
                    }
                    let mut victim = None;
                    if sb & STORE_VICTIM != 0 {
                        let addr = next_addr(&mut addrs);
                        let code = ops[i];
                        i += 1;
                        victim = Some((addr, code));
                    }
                    p.flush(&mut pend);
                    for l in 0..p.n {
                        p.apply_ifetch(l, stall, itlb, i_outcome);
                        p.apply_store(l, sb, outcome, replaced, wb_word, line_base, victim);
                    }
                }
            }
            _ => {
                if i_outcome == 0 {
                    pend.ifetch_hit(stall, itlb);
                } else {
                    p.flush(&mut pend);
                    for l in 0..p.n {
                        p.apply_ifetch(l, stall, itlb, i_outcome);
                    }
                }
            }
        }
        if profile.warmup > 0 && !warm && instr_total == profile.warmup {
            p.flush(&mut pend);
            warm = true;
            p.warm_snapshot = p.counters.clone();
        }
    }
    p.flush(&mut pend);
    debug_assert_eq!(i, ops.len(), "ops stream fully consumed");
    debug_assert!(addrs.finished(), "addrs stream fully consumed");

    Ok(p.into_results(cfgs, profile, warm))
}

/// Accumulated all-hit records awaiting a lane flush (see
/// [`price_profiles`]): every field is either lane-independent outright
/// or a shared count scaled by a lane constant at flush time.
#[derive(Default)]
struct PendingRun {
    /// Instruction records in the run.
    instructions: u64,
    loads: u64,
    stores: u64,
    /// Lane-independent cycles: `1 + stall` per ifetch plus the 1-cycle
    /// write-allocate extras.
    base_cycles: u64,
    cpu_stall: u64,
    itlb: u64,
    dtlb: u64,
    /// `STORE_EXTRA` stores (each one `l1_write_cycles` cycle).
    extra_writes: u64,
    /// L1-D write misses that neither fetch nor enqueue (write-around
    /// policies): counted, zero cycles.
    store_misses: u64,
}

impl PendingRun {
    #[inline]
    fn ifetch_hit(&mut self, stall: u64, itlb: bool) {
        self.instructions += 1;
        self.base_cycles += 1 + stall;
        self.cpu_stall += stall;
        self.itlb += u64::from(itlb);
    }

    #[inline]
    fn load_hit(&mut self, dtlb: bool) {
        self.loads += 1;
        self.dtlb += u64::from(dtlb);
    }

    #[inline]
    fn store_simple(&mut self, sb: u8) {
        self.stores += 1;
        self.dtlb += u64::from(sb & STORE_DTLB != 0);
        self.store_misses += u64::from(sb & STORE_HIT == 0);
        let extra = u64::from(sb & STORE_EXTRA != 0);
        self.extra_writes += extra;
        self.base_cycles += extra;
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.instructions == 0 && self.loads == 0 && self.stores == 0
    }
}

/// Lane-parallel replay state for [`price_profiles`]: the scalar
/// [`Pricer`]'s fields twinned per lane, structure-of-arrays. The
/// write buffers of all lanes live in two packed planes (`wb_addr`,
/// `wb_done`) of `wb_stride` slots per lane — lane `l`'s FIFO ring is
/// `plane[l * stride ..][slot]` — so the §9 associative-bypass line
/// probe scans one lane window with [`line_member_mask`] (one
/// XOR/mask/compare per word, no per-slot branching). Buffer *depth* is
/// a timing knob, so lanes may use fewer slots than the stride
/// (`stride = max(depth)` across the group).
struct CoPricer {
    n: usize,
    now: Vec<u64>,
    counters: Vec<Counters>,
    warm_snapshot: Vec<Counters>,
    per_proc: Vec<Vec<ProcCounters>>,
    cur_pid: usize,
    // Write-buffer planes + per-lane ring bookkeeping. Completion times
    // are strictly increasing in enqueue order and lane time never goes
    // backwards, so retirement pops a ring prefix (head/len), exactly
    // like the scalar buffer's lazy `advance`.
    wb_stride: usize,
    wb_addr: Vec<u64>,
    wb_done: Vec<u64>,
    wb_head: Vec<usize>,
    wb_len: Vec<usize>,
    wb_last: Vec<u64>,
    wb_depth: Vec<usize>,
    mem_d: Vec<MemorySystem>,
    mem_i: Vec<MemorySystem>,
    // Per-lane timing constants (the scalar pricer's derived costs).
    i_hit_cost: Vec<u64>,
    d_hit_cost: Vec<u64>,
    d_write_access: Vec<u32>,
    d_write_stream: Vec<u32>,
    tlb_penalty: Vec<u64>,
    bypass: Vec<WbBypass>,
    concurrent_i_refill: Vec<bool>,
    split_l2: Vec<bool>,
    /// `l1d.line_words - 1`; the line length is functional, hence
    /// identical across lanes, and recorded line bases are line-aligned —
    /// the two facts [`line_member_mask`] relies on.
    d_line_mask: u64,
}

impl CoPricer {
    fn new(cfgs: &[SimConfig]) -> Self {
        let n = cfgs.len();
        let beats = |line_words: u32| line_words.div_ceil(4);
        let stride = cfgs.iter().map(|c| c.write_buffer.depth).max().unwrap_or(1);
        let mut p = CoPricer {
            n,
            now: vec![0; n],
            counters: vec![Counters::new(); n],
            warm_snapshot: Vec::new(),
            per_proc: vec![Vec::new(); n],
            cur_pid: 0,
            wb_stride: stride,
            wb_addr: vec![0; n * stride],
            wb_done: vec![0; n * stride],
            wb_head: vec![0; n],
            wb_len: vec![0; n],
            wb_last: vec![0; n],
            wb_depth: Vec::with_capacity(n),
            mem_d: Vec::with_capacity(n),
            mem_i: Vec::with_capacity(n),
            i_hit_cost: Vec::with_capacity(n),
            d_hit_cost: Vec::with_capacity(n),
            d_write_access: Vec::with_capacity(n),
            d_write_stream: Vec::with_capacity(n),
            tlb_penalty: Vec::with_capacity(n),
            bypass: Vec::with_capacity(n),
            concurrent_i_refill: Vec::with_capacity(n),
            split_l2: Vec::with_capacity(n),
            d_line_mask: u64::from(cfgs[0].l1d.line_words) - 1,
        };
        for cfg in cfgs {
            let i_side = cfg.l2.i_side();
            let d_side = cfg.l2.d_side();
            p.wb_depth.push(cfg.write_buffer.depth);
            p.mem_d.push(MemorySystem::new(
                cfg.memory,
                cfg.concurrency.l2d_dirty_buffer,
            ));
            p.mem_i.push(MemorySystem::new(cfg.memory, false));
            p.i_hit_cost
                .push((i_side.access_cycles + beats(cfg.l1i.line_words) - 1) as u64);
            p.d_hit_cost
                .push((d_side.access_cycles + beats(cfg.l1d.line_words) - 1) as u64);
            let access = cfg.l2_drain_access_override.unwrap_or(d_side.access_cycles);
            p.d_write_access.push(access);
            p.d_write_stream.push(access.saturating_sub(2).max(1));
            p.tlb_penalty.push(cfg.tlb_miss_penalty as u64);
            p.bypass.push(cfg.concurrency.d_read_bypass);
            p.concurrent_i_refill
                .push(cfg.concurrency.concurrent_i_refill);
            p.split_l2.push(cfg.l2.is_split());
        }
        p
    }

    fn switch_pid(&mut self, pid: u8) {
        self.cur_pid = pid as usize;
        for pp in &mut self.per_proc {
            if pp.len() <= self.cur_pid {
                pp.resize(self.cur_pid + 1, ProcCounters::default());
            }
        }
    }

    /// Applies an accumulated all-hit run to every lane and resets it.
    /// The whole run belongs to `cur_pid` (runs are flushed on PID
    /// switches) and precedes any pending miss (runs are flushed before
    /// the per-lane miss path), so lane time, counters, and the
    /// per-process entry each advance by one closed-form delta.
    fn flush(&mut self, pend: &mut PendingRun) {
        if pend.is_empty() {
            return;
        }
        let tlb_events = pend.itlb + pend.dtlb;
        for l in 0..self.n {
            let cycles = pend.base_cycles + tlb_events * self.tlb_penalty[l];
            {
                let c = &mut self.counters[l];
                c.instructions += pend.instructions;
                c.loads += pend.loads;
                c.stores += pend.stores;
                c.cpu_stall_cycles += pend.cpu_stall;
                c.itlb_misses += pend.itlb;
                c.dtlb_misses += pend.dtlb;
                c.tlb_miss_cycles += tlb_events * self.tlb_penalty[l];
                c.l1_write_cycles += pend.extra_writes;
                c.l1d_write_misses += pend.store_misses;
            }
            self.now[l] += cycles;
            let pp = self.proc_entry(l);
            pp.instructions += pend.instructions;
            pp.loads += pend.loads;
            pp.stores += pend.stores;
            pp.cycles += cycles;
            pp.l1d_misses += pend.store_misses;
        }
        *pend = PendingRun::default();
    }

    // -- write buffer (twin of gaas_cache::WriteBuffer over the planes) --

    #[inline]
    fn wb_advance(&mut self, l: usize, now: u64) {
        let base = l * self.wb_stride;
        let depth = self.wb_depth[l];
        let mut head = self.wb_head[l];
        let mut len = self.wb_len[l];
        while len > 0 && self.wb_done[base + head] <= now {
            head += 1;
            if head == depth {
                head = 0;
            }
            len -= 1;
        }
        self.wb_head[l] = head;
        self.wb_len[l] = len;
    }

    #[inline]
    fn wb_slot_free_at(&mut self, l: usize, now: u64) -> u64 {
        self.wb_advance(l, now);
        if self.wb_len[l] < self.wb_depth[l] {
            now
        } else {
            // Full: the oldest live entry frees the slot.
            self.wb_done[l * self.wb_stride + self.wb_head[l]]
        }
    }

    #[inline]
    fn wb_empty_at(&mut self, l: usize, now: u64) -> u64 {
        self.wb_advance(l, now);
        if self.wb_len[l] == 0 {
            now
        } else {
            // The youngest live entry is the last enqueued one.
            self.wb_last[l].max(now)
        }
    }

    #[inline]
    fn wb_enqueue(&mut self, l: usize, enq_time: u64, addr: PhysAddr, extra: u32) -> u64 {
        self.wb_advance(l, enq_time);
        debug_assert!(self.wb_len[l] < self.wb_depth[l], "enqueue into full wb");
        let isolated = enq_time + self.d_write_access[l] as u64;
        let streamed = self.wb_last[l] + self.d_write_stream[l] as u64;
        let completes = isolated.max(streamed) + extra as u64;
        let depth = self.wb_depth[l];
        let mut slot = self.wb_head[l] + self.wb_len[l];
        if slot >= depth {
            slot -= depth;
        }
        let at = l * self.wb_stride + slot;
        self.wb_addr[at] = addr.word();
        self.wb_done[at] = completes;
        self.wb_len[l] += 1;
        self.wb_last[l] = completes;
        completes
    }

    /// Completion time of the youngest live entry whose address falls in
    /// the L1-D line at `line_base` — the §9 associative-bypass probe.
    fn wb_match_line(&mut self, l: usize, now: u64, line_base: PhysAddr) -> Option<u64> {
        self.wb_advance(l, now);
        let base = l * self.wb_stride;
        let depth = self.wb_depth[l];
        let head = self.wb_head[l];
        let len = self.wb_len[l];
        if depth <= 64 {
            let mask = line_member_mask(
                &self.wb_addr[base..base + depth],
                line_base.word(),
                self.d_line_mask,
            );
            for j in (0..len).rev() {
                let mut slot = head + j;
                if slot >= depth {
                    slot -= depth;
                }
                if mask >> slot & 1 == 1 {
                    return Some(self.wb_done[base + slot]);
                }
            }
        } else {
            // Degenerate deep buffers overflow the 64-bit probe mask;
            // fall back to scalar compares, youngest first.
            let keep = !self.d_line_mask;
            let want = line_base.word();
            for j in (0..len).rev() {
                let mut slot = head + j;
                if slot >= depth {
                    slot -= depth;
                }
                if self.wb_addr[base + slot] & keep == want {
                    return Some(self.wb_done[base + slot]);
                }
            }
        }
        None
    }

    // -- per-lane replay arithmetic (twin of the scalar `Pricer`) --

    fn proc_entry(&mut self, l: usize) -> &mut ProcCounters {
        let idx = self.cur_pid;
        let pp = &mut self.per_proc[l];
        if pp.len() <= idx {
            pp.resize(idx + 1, ProcCounters::default());
        }
        &mut pp[idx]
    }

    #[inline]
    fn charge_tlb_miss(&mut self, l: usize, instruction_side: bool, cycles: &mut u64) {
        if instruction_side {
            self.counters[l].itlb_misses += 1;
        } else {
            self.counters[l].dtlb_misses += 1;
        }
        let p = self.tlb_penalty[l];
        self.counters[l].tlb_miss_cycles += p;
        *cycles += p;
    }

    fn apply_ifetch(&mut self, l: usize, stall: u64, itlb: bool, outcome: u8) {
        let mut cycles = 1 + stall;
        self.counters[l].instructions += 1;
        self.counters[l].cpu_stall_cycles += stall;
        if itlb {
            self.charge_tlb_miss(l, true, &mut cycles);
        }
        let missed = outcome != 0;
        if missed {
            self.counters[l].l1i_misses += 1;
            let mut t = self.now[l] + cycles;
            if !self.concurrent_i_refill[l] {
                let empty = self.wb_empty_at(l, t);
                let wait = empty - t;
                self.counters[l].wb_wait_cycles += wait;
                cycles += wait;
                t = empty;
            }
            cycles += self.service_i(l, t, outcome);
        }
        self.now[l] += cycles;
        let l2_missed = outcome >= 2;
        let p = self.proc_entry(l);
        p.instructions += 1;
        p.cycles += cycles;
        if missed {
            p.l1i_misses += 1;
        }
        if l2_missed {
            p.l2_misses += 1;
        }
    }

    fn service_i(&mut self, l: usize, start: u64, outcome: u8) -> u64 {
        self.counters[l].l2i_accesses += 1;
        let hit_cost = self.i_hit_cost[l];
        if outcome == 1 {
            self.counters[l].l1i_miss_cycles += hit_cost;
            return hit_cost;
        }
        self.counters[l].l2i_misses += 1;
        let svc = if self.split_l2[l] {
            self.mem_i[l].service_miss(start, outcome == 3)
        } else {
            self.mem_d[l].service_miss(start, outcome == 3)
        };
        let service = svc.stall_cycles - svc.dirty_buffer_wait;
        let l1_share = service.min(hit_cost);
        self.counters[l].l1i_miss_cycles += l1_share;
        self.counters[l].l2i_miss_cycles += service - l1_share;
        self.counters[l].dirty_buffer_wait_cycles += svc.dirty_buffer_wait;
        svc.stall_cycles
    }

    fn service_d(&mut self, l: usize, start: u64, outcome: u8) -> u64 {
        self.counters[l].l2d_accesses += 1;
        let hit_cost = self.d_hit_cost[l];
        if outcome == 1 {
            self.counters[l].l1d_miss_cycles += hit_cost;
            return hit_cost;
        }
        self.counters[l].l2d_misses += 1;
        let svc = self.mem_d[l].service_miss(start, outcome == 3);
        let service = svc.stall_cycles - svc.dirty_buffer_wait;
        let l1_share = service.min(hit_cost);
        self.counters[l].l1d_miss_cycles += l1_share;
        self.counters[l].l2d_miss_cycles += service - l1_share;
        self.counters[l].dirty_buffer_wait_cycles += svc.dirty_buffer_wait;
        svc.stall_cycles
    }

    fn wb_wait_for_d_miss(
        &mut self,
        l: usize,
        start: u64,
        line_base: PhysAddr,
        replaced: bool,
    ) -> u64 {
        let until = match self.bypass[l] {
            WbBypass::Wait => self.wb_empty_at(l, start),
            WbBypass::DirtyBit => {
                if replaced {
                    self.wb_empty_at(l, start)
                } else {
                    start
                }
            }
            WbBypass::Associative => self
                .wb_match_line(l, start, line_base)
                .map_or(start, |t| t.max(start)),
        };
        let wait = until - start;
        self.counters[l].wb_wait_cycles += wait;
        wait
    }

    fn apply_enqueue(&mut self, l: usize, start: u64, addr: PhysAddr, code: u8) -> u64 {
        let free_at = self.wb_slot_free_at(l, start);
        let stall = free_at - start;
        self.counters[l].wb_wait_cycles += stall;
        self.counters[l].l2_drain_writes += 1;
        let extra = if code == 0 {
            0
        } else {
            self.counters[l].l2_drain_misses += 1;
            self.mem_d[l].service_miss_raw(code == 2).stall_cycles as u32
        };
        let busy_from = free_at.max(self.wb_last[l]);
        let completes = self.wb_enqueue(l, free_at, addr, extra);
        self.counters[l].l2_drain_busy_cycles += completes - busy_from;
        stall
    }

    fn apply_load(
        &mut self,
        l: usize,
        dtlb: bool,
        outcome: u8,
        replaced: bool,
        line_base: PhysAddr,
        victim: Option<(PhysAddr, u8)>,
    ) {
        let mut cycles = 0u64;
        self.counters[l].loads += 1;
        if dtlb {
            self.charge_tlb_miss(l, false, &mut cycles);
        }
        if outcome != 0 {
            self.counters[l].l1d_read_misses += 1;
            let mut t = self.now[l] + cycles;
            let wait = self.wb_wait_for_d_miss(l, t, line_base, replaced);
            cycles += wait;
            t += wait;
            if let Some((addr, code)) = victim {
                let stall = self.apply_enqueue(l, t, addr, code);
                cycles += stall;
                t += stall;
            }
            cycles += self.service_d(l, t, outcome);
        }
        self.now[l] += cycles;
        let l2_missed = outcome >= 2;
        let p = self.proc_entry(l);
        p.loads += 1;
        p.cycles += cycles;
        if outcome != 0 {
            p.l1d_misses += 1;
        }
        if l2_missed {
            p.l2_misses += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_store(
        &mut self,
        l: usize,
        sb: u8,
        outcome: u8,
        replaced: bool,
        wb_word: Option<(PhysAddr, u8)>,
        line_base: PhysAddr,
        victim: Option<(PhysAddr, u8)>,
    ) {
        let mut cycles = 0u64;
        self.counters[l].stores += 1;
        if sb & STORE_DTLB != 0 {
            self.charge_tlb_miss(l, false, &mut cycles);
        }
        let hit = sb & STORE_HIT != 0;
        if !hit {
            self.counters[l].l1d_write_misses += 1;
        }
        if sb & STORE_EXTRA != 0 {
            self.counters[l].l1_write_cycles += 1;
            cycles += 1;
        }
        let mut t = self.now[l] + cycles;
        if let Some((addr, code)) = wb_word {
            let stall = self.apply_enqueue(l, t, addr, code);
            cycles += stall;
            t += stall;
        }
        if sb & STORE_FETCH != 0 {
            let wait = self.wb_wait_for_d_miss(l, t, line_base, replaced);
            cycles += wait;
            t += wait;
            if let Some((addr, code)) = victim {
                let stall = self.apply_enqueue(l, t, addr, code);
                cycles += stall;
                t += stall;
            }
            cycles += self.service_d(l, t, outcome);
        } else if let Some((addr, code)) = victim {
            cycles += self.apply_enqueue(l, t, addr, code);
        }
        self.now[l] += cycles;
        let l2_missed = outcome >= 2;
        let p = self.proc_entry(l);
        p.stores += 1;
        p.cycles += cycles;
        if !hit {
            p.l1d_misses += 1;
        }
        if l2_missed {
            p.l2_misses += 1;
        }
    }

    fn into_results(
        mut self,
        cfgs: &[SimConfig],
        profile: &FunctionalProfile,
        warm: bool,
    ) -> Vec<SimResult> {
        let mut out = Vec::with_capacity(self.n);
        for (l, cfg) in cfgs.iter().enumerate() {
            debug_assert_eq!(
                self.now[l],
                self.counters[l].total_cycles(),
                "cycle accounting must balance (lane {l})"
            );
            self.counters[l].syscall_switches = profile.syscall_switches;
            self.counters[l].slice_switches = profile.slice_switches;
            let counters = if warm {
                self.counters[l].since(&self.warm_snapshot[l])
            } else {
                self.counters[l]
            };
            let per_process = self.per_proc[l]
                .iter()
                .enumerate()
                .filter(|(_, pc)| pc.instructions > 0 || pc.loads > 0 || pc.stores > 0)
                .map(|(i, pc)| (Pid::new(i as u8), *pc))
                .collect();
            out.push(SimResult {
                config: cfg.clone(),
                counters,
                completed: profile.completed.clone(),
                per_process,
                termination: if profile.budget_exhausted {
                    Termination::BudgetExhausted
                } else {
                    Termination::Completed
                },
                checkpoints: Vec::new(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DiffCheckConfig, FaultConfig};
    use crate::sim::Simulator;
    use crate::workload;
    use gaas_cache::fault::FaultRates;

    const SCALE: f64 = 3e-4;
    const WARMUP: u64 = 1_500;

    fn profile_for(cfg: &SimConfig) -> (SimResult, FunctionalProfile) {
        Simulator::new(cfg.clone())
            .expect("valid config")
            .run_profiled(workload::subset(4, SCALE), WARMUP)
            .expect("profiled run")
    }

    fn direct(cfg: &SimConfig) -> SimResult {
        Simulator::new(cfg.clone())
            .expect("valid config")
            .run_warmed(workload::subset(4, SCALE), WARMUP)
            .expect("direct run")
    }

    /// Byte-identical comparison of everything a cell result reports.
    fn assert_identical(priced: &SimResult, full: &SimResult, what: &str) {
        assert_eq!(priced.counters, full.counters, "{what}: counters");
        assert_eq!(priced.per_process, full.per_process, "{what}: per-proc");
        assert_eq!(priced.completed, full.completed, "{what}: completion");
        assert_eq!(priced.termination, full.termination, "{what}: termination");
        assert_eq!(priced.config, full.config, "{what}: config");
        assert!(priced.checkpoints.is_empty());
    }

    #[test]
    fn fingerprint_ignores_timing_fields() {
        let base = SimConfig::baseline();
        let fp = functional_fingerprint(&base).expect("memoizable");

        let mut b = base.to_builder();
        b.l2_access(9)
            .tlb_miss_penalty(20)
            .memory(MainMemory {
                clean_miss_cycles: 100,
                dirty_miss_cycles: 180,
            })
            .l2_drain_access(4)
            .write_buffer(WriteBufferConfig {
                depth: 2,
                width_words: 4,
            });
        let timing_variant = b.build().expect("valid");
        assert_eq!(functional_fingerprint(&timing_variant), Some(fp));
    }

    #[test]
    fn fingerprint_separates_geometries() {
        let fp = |f: &dyn Fn(&mut crate::config::SimConfigBuilder)| {
            let mut b = SimConfig::builder();
            f(&mut b);
            functional_fingerprint(&b.build().expect("valid")).expect("memoizable")
        };
        let base = fp(&|_| {});
        assert_ne!(
            base,
            fp(&|b| {
                b.l1_line(8);
            })
        );
        assert_ne!(
            base,
            fp(&|b| {
                b.policy(WritePolicy::WriteOnly);
            })
        );
        assert_ne!(
            base,
            fp(&|b| {
                b.l2(L2Config::split_even(262_144, 1, 6));
            })
        );
        assert_ne!(
            base,
            fp(&|b| {
                b.mp_level(4);
            })
        );
        assert_ne!(
            base,
            fp(&|b| {
                b.instruction_budget(1_000_000);
            })
        );
    }

    #[test]
    fn fingerprint_refuses_unmemoizable_configs() {
        let mut faulty = SimConfig::baseline();
        faulty.fault = FaultConfig {
            rates: FaultRates::uniform(1e-5),
            ..FaultConfig::default()
        };
        assert_eq!(functional_fingerprint(&faulty), None);

        let mut diff = SimConfig::baseline();
        diff.diffcheck = DiffCheckConfig::on();
        assert_eq!(functional_fingerprint(&diff), None);

        let mut ckpt = SimConfig::baseline();
        ckpt.checkpoint_interval = 10_000;
        assert_eq!(functional_fingerprint(&ckpt), None);
    }

    #[test]
    fn pricing_matches_direct_runs_across_the_baseline_timing_axis() {
        let base = SimConfig::baseline();
        let (rep, profile) = profile_for(&base);
        assert_identical(&rep, &direct(&base), "recording run itself");
        for access in [1, 4, 9] {
            let mut b = base.to_builder();
            b.l2_access(access);
            let cfg = b.build().expect("valid");
            let priced = price_profile(&cfg, &profile).expect("priced");
            assert_identical(&priced, &direct(&cfg), &format!("access={access}"));
        }
        let mut b = base.to_builder();
        b.memory(MainMemory {
            clean_miss_cycles: 80,
            dirty_miss_cycles: 200,
        })
        .tlb_miss_penalty(30);
        let cfg = b.build().expect("valid");
        assert_identical(
            &price_profile(&cfg, &profile).expect("priced"),
            &direct(&cfg),
            "memory+tlb variant",
        );
    }

    #[test]
    fn pricing_matches_direct_runs_for_the_optimized_geometry() {
        let opt = SimConfig::optimized();
        let (_, profile) = profile_for(&opt);
        // Walk the §9 concurrency switches (all timing-side) and the split
        // access times.
        let mut variants = Vec::new();
        let mut b = opt.to_builder();
        b.l2_access(4);
        variants.push(b.build().expect("valid"));
        let mut b = opt.to_builder();
        b.concurrency(ConcurrencyConfig {
            concurrent_i_refill: false,
            d_read_bypass: WbBypass::Wait,
            l2d_dirty_buffer: false,
        });
        variants.push(b.build().expect("valid"));
        let mut b = opt.to_builder();
        b.concurrency(ConcurrencyConfig {
            concurrent_i_refill: true,
            d_read_bypass: WbBypass::Associative,
            l2d_dirty_buffer: true,
        });
        variants.push(b.build().expect("valid"));
        for (k, cfg) in variants.iter().enumerate() {
            assert_identical(
                &price_profile(cfg, &profile).expect("priced"),
                &direct(cfg),
                &format!("optimized variant {k}"),
            );
        }
    }

    #[test]
    fn pricing_matches_direct_runs_for_the_drain_override_sweep() {
        let mut b = SimConfig::builder();
        b.policy(WritePolicy::Subblock);
        let geom = b.build().expect("valid");
        let (_, profile) = profile_for(&geom);
        for drain in [2, 6, 10] {
            let mut b = geom.to_builder();
            b.l2_drain_access(drain);
            let cfg = b.build().expect("valid");
            assert_identical(
                &price_profile(&cfg, &profile).expect("priced"),
                &direct(&cfg),
                &format!("drain={drain}"),
            );
        }
    }

    #[test]
    fn budget_exhausted_runs_price_identically() {
        let mut b = SimConfig::builder();
        b.instruction_budget(20_000);
        let geom = b.build().expect("valid");
        let (rep, profile) = profile_for(&geom);
        assert_eq!(rep.termination, Termination::BudgetExhausted);
        let mut b = geom.to_builder();
        b.l2_access(8);
        let cfg = b.build().expect("valid");
        let priced = price_profile(&cfg, &profile).expect("priced");
        assert_eq!(priced.termination, Termination::BudgetExhausted);
        assert_identical(&priced, &direct(&cfg), "budget variant");
    }

    #[test]
    #[should_panic(expected = "memoizable")]
    fn run_profiled_rejects_unmemoizable_configs() {
        let mut cfg = SimConfig::baseline();
        cfg.checkpoint_interval = 5_000;
        let _ = Simulator::new(cfg)
            .expect("valid config")
            .run_profiled(workload::subset(1, 1e-4), 0);
    }

    #[test]
    #[should_panic(expected = "timing variant")]
    fn pricing_rejects_a_different_geometry() {
        let (_, profile) = profile_for(&SimConfig::baseline());
        let mut b = SimConfig::builder();
        b.l1_line(8);
        let other = b.build().expect("valid");
        let _ = price_profile(&other, &profile);
    }

    #[test]
    fn co_pricing_matches_single_pricing_lane_for_lane() {
        // A 4-variant baseline group mixing every timing axis: access
        // time, memory penalties, TLB cost, buffer depth, drain override.
        let base = SimConfig::baseline();
        let (_, profile) = profile_for(&base);
        let mut variants = vec![base.clone()];
        let mut b = base.to_builder();
        b.l2_access(9).tlb_miss_penalty(20);
        variants.push(b.build().expect("valid"));
        let mut b = base.to_builder();
        b.memory(MainMemory {
            clean_miss_cycles: 100,
            dirty_miss_cycles: 180,
        })
        .write_buffer(WriteBufferConfig {
            depth: 2,
            width_words: 4,
        });
        variants.push(b.build().expect("valid"));
        let mut b = base.to_builder();
        b.l2_drain_access(4).l2_access(1);
        variants.push(b.build().expect("valid"));

        let co = price_profiles(&variants, &profile).expect("co-priced");
        assert_eq!(co.len(), variants.len());
        for (k, (cfg, co_res)) in variants.iter().zip(&co).enumerate() {
            let single = price_profile(cfg, &profile).expect("priced");
            assert_identical(co_res, &single, &format!("lane {k} vs single pricer"));
            assert_identical(co_res, &direct(cfg), &format!("lane {k} vs direct"));
        }
    }

    #[test]
    fn co_pricing_matches_across_concurrency_modes() {
        // The §9 switches change which write-buffer probe each lane runs
        // (wait / dirty-bit / associative SWAR probe) — all three in one
        // lockstep group, against the optimized split-L2 geometry.
        let opt = SimConfig::optimized();
        let (_, profile) = profile_for(&opt);
        let mut variants = vec![opt.clone()];
        let mut b = opt.to_builder();
        b.concurrency(ConcurrencyConfig {
            concurrent_i_refill: false,
            d_read_bypass: WbBypass::Wait,
            l2d_dirty_buffer: false,
        });
        variants.push(b.build().expect("valid"));
        let mut b = opt.to_builder();
        b.concurrency(ConcurrencyConfig {
            concurrent_i_refill: true,
            d_read_bypass: WbBypass::Associative,
            l2d_dirty_buffer: true,
        })
        .l2_access(4);
        variants.push(b.build().expect("valid"));
        let co = price_profiles(&variants, &profile).expect("co-priced");
        for (k, (cfg, co_res)) in variants.iter().zip(&co).enumerate() {
            assert_identical(
                co_res,
                &price_profile(cfg, &profile).expect("priced"),
                &format!("concurrency lane {k}"),
            );
        }
    }

    #[test]
    fn co_pricing_single_lane_and_empty_group() {
        let base = SimConfig::baseline();
        let (_, profile) = profile_for(&base);
        let one = price_profiles(std::slice::from_ref(&base), &profile).expect("one lane");
        assert_identical(
            &one[0],
            &price_profile(&base, &profile).expect("priced"),
            "single lane",
        );
        assert!(price_profiles(&[], &profile)
            .expect("empty group")
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "timing variants")]
    fn co_pricing_rejects_a_different_geometry() {
        let (_, profile) = profile_for(&SimConfig::baseline());
        let mut b = SimConfig::builder();
        b.l1_line(8);
        let other = b.build().expect("valid");
        let _ = price_profiles(&[SimConfig::baseline(), other], &profile);
    }

    #[test]
    fn co_pricing_reports_invalid_lane_configs() {
        let base = SimConfig::baseline();
        let (_, profile) = profile_for(&base);
        let mut bad = base.clone();
        bad.write_buffer.depth = 0;
        let err = price_profiles(&[base, bad], &profile);
        assert!(matches!(err, Err(SimError::Config(_))), "got {err:?}");
    }

    #[test]
    fn profile_reports_size_and_instructions() {
        let (rep, profile) = profile_for(&SimConfig::baseline());
        assert!(profile.size_bytes() > 0);
        assert!(profile.addr_count() > 0);
        // `instructions()` counts the full run including warm-up; the
        // result counters exclude it.
        assert_eq!(
            profile.instructions(),
            rep.counters.instructions + WARMUP,
            "token walk must agree with the run's instruction count"
        );
    }
}
