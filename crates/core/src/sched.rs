//! Multiprogramming scheduler (§3).
//!
//! Replicates the paper's simulation discipline: up to `level` processes are
//! resident at once (the file-descriptor multiplexor of §3), scheduled
//! round-robin. A context switch is taken whenever the running process
//! executes a voluntary system call, or when its time slice expires. When a
//! benchmark terminates, the next benchmark in order is started; simulation
//! continues until all benchmarks have terminated.
//!
//! The scheduler hands the simulator one *instruction* at a time: the
//! instruction-fetch event plus the data event it carries (generators emit
//! the data reference immediately after its instruction), so context
//! switches never split an instruction from its data access.

use std::collections::VecDeque;

use gaas_trace::{AccessKind, Trace, TraceEvent};

/// Events pulled per [`Trace::next_batch`] call. Matches the arena's
/// compressed-block size (`gaas_trace::codec::BLOCK_EVENTS`) so every
/// arena refill decodes one whole block straight into this buffer with no
/// intermediate copy; the 64 KB per-process buffer streams through cache
/// sequentially. The delivered event stream is independent of this size
/// by the `next_batch` contract.
const TRACE_BATCH: usize = 4096;

/// A [`Trace`] consumed through a refillable batch buffer: one virtual
/// `next_batch` call per [`TRACE_BATCH`] events instead of one `next` per
/// event. The delivered stream is identical by the `next_batch` contract.
struct BatchedEvents {
    trace: Box<dyn Trace>,
    buf: Vec<TraceEvent>,
    pos: usize,
    exhausted: bool,
}

impl BatchedEvents {
    fn new(trace: Box<dyn Trace>) -> Self {
        BatchedEvents {
            trace,
            buf: Vec::with_capacity(TRACE_BATCH),
            pos: 0,
            exhausted: false,
        }
    }

    /// Refills the buffer from the underlying trace; true when events are
    /// available at `pos`.
    fn refill(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        self.buf.clear();
        self.pos = 0;
        if self.trace.next_batch(&mut self.buf, TRACE_BATCH) == 0 {
            self.exhausted = true;
            return false;
        }
        true
    }

    #[inline]
    fn next(&mut self) -> Option<TraceEvent> {
        if self.pos >= self.buf.len() && !self.refill() {
            return None;
        }
        let ev = self.buf[self.pos];
        self.pos += 1;
        Some(ev)
    }

    /// Consumes the next event only if it is a data reference (the
    /// peek-then-next idiom fused into one bounds/refill check).
    #[inline]
    fn next_if_data(&mut self) -> Option<TraceEvent> {
        if self.pos >= self.buf.len() && !self.refill() {
            return None;
        }
        let ev = self.buf[self.pos];
        if ev.kind.is_data() {
            self.pos += 1;
            Some(ev)
        } else {
            None
        }
    }
}

struct Process {
    name: String,
    events: BatchedEvents,
}

/// One instruction as delivered to the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// The instruction-fetch event.
    pub ifetch: TraceEvent,
    /// The accompanying data reference, when the instruction is a
    /// load/store.
    pub data: Option<TraceEvent>,
}

/// A point-in-time summary of scheduler progress, captured at simulator
/// checkpoints (progress reporting, machine-check restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedSnapshot {
    /// Benchmarks that have terminated.
    pub completed: usize,
    /// Processes currently resident and runnable (including the one
    /// running).
    pub runnable: usize,
    /// Benchmarks still waiting for admission.
    pub waiting: usize,
    /// Voluntary-syscall switches taken so far.
    pub syscall_switches: u64,
    /// Time-slice switches taken so far.
    pub slice_switches: u64,
}

/// Round-robin multiprogramming scheduler over a set of traces.
///
/// # Examples
///
/// ```
/// use gaas_sim::sched::Scheduler;
/// use gaas_trace::{Pid, Trace, TraceEvent, VecTrace, VirtAddr};
///
/// let t = VecTrace::new("demo", vec![
///     TraceEvent::ifetch(VirtAddr::new(Pid::new(0), 0), 0),
/// ]);
/// let mut sched = Scheduler::new(vec![Box::new(t) as Box<dyn Trace>], 8, 500_000);
/// let instr = sched.next_instruction(0).expect("one instruction");
/// assert!(instr.data.is_none());
/// sched.post_instruction(1, false);
/// assert!(sched.next_instruction(1).is_none(), "workload exhausted");
/// ```
pub struct Scheduler {
    procs: Vec<Option<Process>>,
    run_queue: VecDeque<usize>,
    waiting: VecDeque<usize>,
    current: Option<usize>,
    slice_cycles: u64,
    slice_end: u64,
    syscall_switches: u64,
    slice_switches: u64,
    completed: Vec<String>,
}

impl Scheduler {
    /// Creates a scheduler over `traces` with at most `level` resident
    /// processes and the given time slice.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero.
    pub fn new(traces: Vec<Box<dyn Trace>>, level: usize, slice_cycles: u64) -> Self {
        assert!(level > 0, "multiprogramming level must be positive");
        let procs: Vec<Option<Process>> = traces
            .into_iter()
            .map(|t| {
                Some(Process {
                    name: t.name().to_string(),
                    events: BatchedEvents::new(t),
                })
            })
            .collect();
        let mut run_queue = VecDeque::new();
        let mut waiting = VecDeque::new();
        for i in 0..procs.len() {
            if i < level {
                run_queue.push_back(i);
            } else {
                waiting.push_back(i);
            }
        }
        Scheduler {
            procs,
            run_queue,
            waiting,
            current: None,
            slice_cycles,
            slice_end: 0,
            syscall_switches: 0,
            slice_switches: 0,
            completed: Vec::new(),
        }
    }

    /// Name of the process that would run next (for reports/tests).
    pub fn current_name(&self) -> Option<&str> {
        self.current
            .and_then(|i| self.procs[i].as_ref())
            .map(|p| p.name.as_str())
    }

    /// Voluntary-syscall context switches taken so far.
    pub fn syscall_switches(&self) -> u64 {
        self.syscall_switches
    }

    /// Time-slice context switches taken so far.
    pub fn slice_switches(&self) -> u64 {
        self.slice_switches
    }

    /// All context switches taken so far (voluntary + time-slice); the
    /// telemetry layer polls this between instructions to turn switch
    /// count changes into scheduler events.
    pub fn total_switches(&self) -> u64 {
        self.syscall_switches + self.slice_switches
    }

    /// Names of benchmarks that have terminated, in completion order.
    pub fn completed(&self) -> &[String] {
        &self.completed
    }

    /// Captures current progress (for simulator checkpoints).
    pub fn snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            completed: self.completed.len(),
            runnable: self.run_queue.len() + usize::from(self.current.is_some()),
            waiting: self.waiting.len(),
            syscall_switches: self.syscall_switches,
            slice_switches: self.slice_switches,
        }
    }

    /// Delivers the next instruction at cycle `now`, or `None` when every
    /// benchmark has terminated.
    #[inline]
    pub fn next_instruction(&mut self, now: u64) -> Option<Instruction> {
        // Fast path: the running process has buffered events. Falls back to
        // the out-of-line slow path for refills, admissions and retirement.
        if let Some(idx) = self.current {
            let proc = self.procs[idx].as_mut().expect("scheduled process exists");
            let ev = &mut proc.events;
            if ev.pos < ev.buf.len() {
                let ifetch = ev.buf[ev.pos];
                ev.pos += 1;
                debug_assert_eq!(
                    ifetch.kind,
                    AccessKind::IFetch,
                    "traces start instructions with a fetch"
                );
                let data = if ev.pos < ev.buf.len() {
                    let d = ev.buf[ev.pos];
                    if d.kind.is_data() {
                        ev.pos += 1;
                        Some(d)
                    } else {
                        None
                    }
                } else {
                    ev.next_if_data() // batch boundary: refill first
                };
                return Some(Instruction { ifetch, data });
            }
        }
        self.next_instruction_slow(now)
    }

    /// The scheduling slow path: refills exhausted buffers, retires
    /// terminated benchmarks, admits waiting ones, and installs the next
    /// runnable process.
    #[cold]
    fn next_instruction_slow(&mut self, now: u64) -> Option<Instruction> {
        loop {
            // Ensure a current process.
            let idx = match self.current {
                Some(i) => i,
                None => {
                    let i = self.run_queue.pop_front()?;
                    self.current = Some(i);
                    self.slice_end = now + self.slice_cycles;
                    i
                }
            };

            let proc = self.procs[idx].as_mut().expect("scheduled process exists");
            match proc.events.next() {
                Some(ifetch) => {
                    debug_assert_eq!(
                        ifetch.kind,
                        AccessKind::IFetch,
                        "traces start instructions with a fetch"
                    );
                    let data = proc.events.next_if_data();
                    return Some(Instruction { ifetch, data });
                }
                None => {
                    // Benchmark terminated: retire it and admit the next
                    // waiting benchmark in order.
                    let name = self.procs[idx].take().expect("process exists").name;
                    self.completed.push(name);
                    self.current = None;
                    if let Some(next) = self.waiting.pop_front() {
                        self.run_queue.push_back(next);
                    }
                }
            }
        }
    }

    /// The cycle at which the current process's time slice expires.
    /// Constant while one process stays installed (it is re-armed on
    /// installation), so span-draining callers may cache it.
    #[inline]
    pub fn slice_end(&self) -> u64 {
        self.slice_end
    }

    /// Read-only view of the current process's buffered events and the
    /// cursor into them: `(events, pos)`. Empty when no process is
    /// installed. Span-draining callers step directly over this slice
    /// and report consumption via [`Scheduler::advance`], bypassing the
    /// per-instruction [`Scheduler::next_instruction`] round-trip.
    #[inline]
    pub fn current_span(&self) -> (&[TraceEvent], usize) {
        match self.current.and_then(|i| self.procs[i].as_ref()) {
            Some(p) => (&p.events.buf, p.events.pos),
            None => (&[], 0),
        }
    }

    /// Advances the current process's event cursor by `events` consumed
    /// directly off [`Scheduler::current_span`].
    #[inline]
    pub fn advance(&mut self, events: usize) {
        if let Some(p) = self.current.and_then(|i| self.procs[i].as_mut()) {
            p.events.pos += events;
            debug_assert!(p.events.pos <= p.events.buf.len());
        }
    }

    /// Reports the completion of the current instruction at cycle `now`;
    /// rotates the run queue on a voluntary syscall or slice expiry.
    #[inline]
    pub fn post_instruction(&mut self, now: u64, was_syscall: bool) {
        let Some(idx) = self.current else { return };
        if was_syscall {
            self.syscall_switches += 1;
        } else if now >= self.slice_end {
            self.slice_switches += 1;
        } else {
            return;
        }
        self.run_queue.push_back(idx);
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaas_trace::{Pid, VecTrace, VirtAddr};

    fn ev_i(pid: u8, w: u64) -> TraceEvent {
        TraceEvent::ifetch(VirtAddr::new(Pid::new(pid), w), 0)
    }

    fn ev_l(pid: u8, w: u64) -> TraceEvent {
        TraceEvent::load(VirtAddr::new(Pid::new(pid), w))
    }

    fn trace(name: &str, events: Vec<TraceEvent>) -> Box<dyn Trace> {
        Box::new(VecTrace::new(name, events))
    }

    #[test]
    fn delivers_instruction_with_its_data() {
        let t = trace("a", vec![ev_i(0, 0), ev_l(0, 100), ev_i(0, 1)]);
        let mut s = Scheduler::new(vec![t], 1, 1000);
        let i1 = s.next_instruction(0).expect("first");
        assert_eq!(i1.ifetch, ev_i(0, 0));
        assert_eq!(i1.data, Some(ev_l(0, 100)));
        let i2 = s.next_instruction(1).expect("second");
        assert_eq!(i2.ifetch, ev_i(0, 1));
        assert_eq!(i2.data, None);
        assert!(s.next_instruction(2).is_none());
        assert_eq!(s.completed(), ["a"]);
    }

    #[test]
    fn round_robin_on_slice_expiry() {
        let a = trace("a", vec![ev_i(0, 0), ev_i(0, 1)]);
        let b = trace("b", vec![ev_i(1, 0), ev_i(1, 1)]);
        let mut s = Scheduler::new(vec![a, b], 2, 10);
        let i1 = s.next_instruction(0).expect("a first");
        assert_eq!(i1.ifetch.addr.pid(), Pid::new(0));
        s.post_instruction(10, false); // slice expired
        assert_eq!(s.slice_switches(), 1);
        let i2 = s.next_instruction(10).expect("b next");
        assert_eq!(i2.ifetch.addr.pid(), Pid::new(1));
    }

    #[test]
    fn syscall_forces_switch() {
        let a = trace("a", vec![ev_i(0, 0).with_syscall(), ev_i(0, 1)]);
        let b = trace("b", vec![ev_i(1, 0)]);
        let mut s = Scheduler::new(vec![a, b], 2, 1_000_000);
        let i1 = s.next_instruction(0).expect("a");
        assert!(i1.ifetch.syscall);
        s.post_instruction(1, true);
        assert_eq!(s.syscall_switches(), 1);
        let i2 = s.next_instruction(1).expect("b");
        assert_eq!(i2.ifetch.addr.pid(), Pid::new(1));
    }

    #[test]
    fn no_switch_within_slice() {
        let a = trace("a", vec![ev_i(0, 0), ev_i(0, 1)]);
        let b = trace("b", vec![ev_i(1, 0)]);
        let mut s = Scheduler::new(vec![a, b], 2, 100);
        s.next_instruction(0);
        s.post_instruction(1, false);
        let i = s.next_instruction(1).expect("still a");
        assert_eq!(i.ifetch.addr.pid(), Pid::new(0));
        assert_eq!(s.slice_switches(), 0);
    }

    #[test]
    fn mp_level_admits_waiting_benchmarks_in_order() {
        let a = trace("a", vec![ev_i(0, 0)]);
        let b = trace("b", vec![ev_i(1, 0)]);
        let c = trace("c", vec![ev_i(2, 0)]);
        let mut s = Scheduler::new(vec![a, b, c], 2, 1000);
        // Level 2: a and b resident; c waits.
        let mut pids = Vec::new();
        while let Some(i) = s.next_instruction(0) {
            pids.push(i.ifetch.addr.pid().raw());
            s.post_instruction(0, true); // force rotation each instruction
        }
        assert_eq!(pids, vec![0, 1, 2], "c admitted after a terminates");
        assert_eq!(s.completed(), ["a", "b", "c"]);
    }

    #[test]
    fn all_instructions_delivered_exactly_once() {
        let mk =
            |pid: u8, n: u64| trace(&format!("p{pid}"), (0..n).map(|w| ev_i(pid, w)).collect());
        let mut s = Scheduler::new(vec![mk(0, 7), mk(1, 5), mk(2, 3)], 2, 2);
        let mut count = 0;
        let mut now = 0;
        while let Some(i) = s.next_instruction(now) {
            count += 1;
            now += 1;
            s.post_instruction(now, i.ifetch.syscall);
        }
        assert_eq!(count, 15);
        assert_eq!(s.completed().len(), 3);
    }

    #[test]
    fn snapshot_tracks_progress() {
        let a = trace("a", vec![ev_i(0, 0)]);
        let b = trace("b", vec![ev_i(1, 0)]);
        let c = trace("c", vec![ev_i(2, 0)]);
        let mut s = Scheduler::new(vec![a, b, c], 2, 1000);
        let snap = s.snapshot();
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.runnable, 2);
        assert_eq!(snap.waiting, 1);
        let mut now = 0;
        while let Some(i) = s.next_instruction(now) {
            now += 1;
            s.post_instruction(now, i.ifetch.syscall);
        }
        let end = s.snapshot();
        assert_eq!(end.completed, 3);
        assert_eq!(end.runnable, 0);
        assert_eq!(end.waiting, 0);
    }

    #[test]
    fn empty_workload_yields_nothing() {
        let mut s = Scheduler::new(vec![], 4, 100);
        assert!(s.next_instruction(0).is_none());
    }

    #[test]
    fn empty_trace_terminates_immediately() {
        let a = trace("empty", vec![]);
        let b = trace("b", vec![ev_i(1, 0)]);
        let mut s = Scheduler::new(vec![a, b], 1, 100);
        let i = s.next_instruction(0).expect("b runs");
        assert_eq!(i.ifetch.addr.pid(), Pid::new(1));
        assert_eq!(s.completed(), ["empty"]);
    }

    #[test]
    #[should_panic(expected = "level must be positive")]
    fn zero_level_rejected() {
        let _ = Scheduler::new(vec![], 0, 100);
    }
}
