//! The trace-driven two-level cache simulator (§3).
//!
//! [`Simulator`] consumes a multiprogramming workload one instruction at a
//! time and charges cycles exactly as the paper's cycle-counting simulator
//! does:
//!
//! * one issue cycle per instruction, plus the trace's annotated processor
//!   stalls (the 1.238 base CPI);
//! * L1 misses serviced from L2 at `access + (fetch/4 − 1)` cycles (the
//!   4 W-wide refill path moves one 4 W beat per cycle);
//! * L2 misses serviced from main memory at the R6020 penalties, dirty
//!   buffer permitting;
//! * write-policy cycle rules (§6) and write-buffer waits, with the
//!   streaming drain model;
//! * the §9 concurrency mechanisms (concurrent I-refill, read bypass by
//!   associative match or dirty bit, L2-D dirty buffer).
//!
//! The accounting invariant `total cycles = instructions + Σ stall
//! components` holds exactly (checked with `debug_assert!` and tests).
//!
//! With soft-error injection enabled (see `FaultConfig`), faults are
//! checked when an access *hits* the struck structure — the moment the
//! corrupted entry would be consumed — and recovery costs (parity
//! refetches, ECC corrections, checkpoint-restart rollback) are charged to
//! the dedicated `recovery` stall component, keeping the invariant exact.
//! Unrecoverable faults either halt the run ([`SimError::MachineCheck`])
//! or roll back to the last checkpoint, per the configured policy.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gaas_cache::fault::{
    resolve, FaultEffect, FaultEvent, FaultInjector, ProtectionMap, Structure,
};
use gaas_cache::{
    CacheArray, L1DataCache, MemorySystem, PageMapper, Tlb, WriteBuffer, WritePolicy,
};
use gaas_telemetry::{Component, CounterId, Registry, Span, SpanRecorder};
use gaas_trace::{AccessKind, PhysAddr, Trace, TraceEvent, VirtAddr, PAGE_SHIFT};

use crate::config::{ConfigError, L2Config, MachineCheckPolicy, SeededBug, SimConfig, WbBypass};
use crate::cpi::{Counters, ProcCounters};
use crate::oracle::{Deltas, DiffState, DivergenceReport, SimStructures};
use crate::profile::{functional_fingerprint, FunctionalProfile, ProfileRecorder};
use crate::sched::{SchedSnapshot, Scheduler};

/// Error from building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// An injected fault was detected but unrecoverable (dirty data under
    /// parity, or a double-bit flip under ECC) and the machine-check
    /// policy is [`MachineCheckPolicy::Halt`].
    MachineCheck {
        /// The unrecoverable fault.
        fault: FaultEvent,
        /// Simulated cycle at the halt (the boundary of the faulting
        /// instruction).
        cycle: u64,
        /// Instructions retired before the halt.
        instructions: u64,
    },
    /// The lockstep golden-model oracle observed the fast simulator
    /// diverging from the reference model (see
    /// [`DiffCheckConfig`](crate::config::DiffCheckConfig)).
    Divergence(Box<DivergenceReport>),
    /// A campaign cell exceeded its wall-clock budget (produced by the
    /// experiment runner's isolation layer, never by the simulator
    /// itself).
    Timeout {
        /// The wall-clock budget that was exhausted, in seconds.
        seconds: u64,
    },
    /// The run's [`CancelToken`] was triggered; the simulator stopped
    /// cooperatively at the next instruction-batch boundary.
    Cancelled,
    /// The coherence oracle observed a protocol invariant violation in a
    /// CMP run (stale read, multiple writers, or a copy surviving its
    /// invalidation) — produced by the `gaas-coherence` engine, never by
    /// this single-CPU simulator.
    Coherence {
        /// Core on which the violation was observed.
        core: u32,
        /// That core's timing-clock cycle at the violation.
        cycle: u64,
        /// Which invariant failed, with the evidence.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::MachineCheck {
                fault,
                cycle,
                instructions,
            } => write!(
                f,
                "machine check: {fault} at cycle {cycle} ({instructions} instructions retired)"
            ),
            SimError::Divergence(report) => write!(f, "{report}"),
            SimError::Timeout { seconds } => {
                write!(f, "cell exceeded its {seconds}s wall-clock budget")
            }
            SimError::Cancelled => write!(f, "run cancelled cooperatively"),
            SimError::Coherence {
                core,
                cycle,
                detail,
            } => write!(
                f,
                "coherence invariant violated on core {core} at cycle {cycle}: {detail}"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::MachineCheck { .. }
            | SimError::Divergence(_)
            | SimError::Timeout { .. }
            | SimError::Cancelled
            | SimError::Coherence { .. } => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// A shared flag for cooperatively cancelling a running simulation.
///
/// Hand a clone to [`Simulator::set_cancel_token`] before the run; any
/// thread may then call [`CancelToken::cancel`]. The simulator polls the
/// flag between instruction batches (every few thousand instructions),
/// so a cancelled run returns [`SimError::Cancelled`] within
/// microseconds instead of burning CPU until the workload ends — this is
/// how the experiment campaign stops timed-out cells for real rather
/// than detaching them.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, untriggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every simulator holding a clone stops at
    /// its next batch boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Instructions between cooperative-cancellation polls: coarse enough to
/// vanish in the hot loop, fine enough (≈ tens of microseconds) that a
/// cancelled cell stops promptly.
const CANCEL_CHECK_INTERVAL: u64 = 8192;

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Termination {
    /// Every benchmark ran to completion.
    #[default]
    Completed,
    /// The instruction-budget watchdog fired; the result covers the
    /// instructions retired up to the abort.
    BudgetExhausted,
}

/// One periodic checkpoint: a progress marker and (under the restart
/// machine-check policy) the rollback point for recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Simulated cycle at the checkpoint.
    pub cycle: u64,
    /// Instructions retired at the checkpoint.
    pub instructions: u64,
    /// Scheduler progress at the checkpoint.
    pub sched: SchedSnapshot,
}

/// Result of a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The configuration that was simulated.
    pub config: SimConfig,
    /// Every counter the run accumulated.
    pub counters: Counters,
    /// Benchmarks in completion order.
    pub completed: Vec<String>,
    /// Per-process statistics, one entry per PID that issued events
    /// (includes warm-up; sorted by PID).
    pub per_process: Vec<(gaas_trace::Pid, ProcCounters)>,
    /// Why the run stopped.
    pub termination: Termination,
    /// Periodic checkpoints (empty unless `checkpoint_interval` is set).
    pub checkpoints: Vec<Checkpoint>,
}

impl SimResult {
    /// Total cycles executed.
    pub fn cycles(&self) -> u64 {
        self.counters.total_cycles()
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.cycles() as f64 / self.counters.instructions as f64
    }

    /// Per-component CPI breakdown (Fig. 4).
    pub fn breakdown(&self) -> crate::cpi::CpiBreakdown {
        self.counters.breakdown()
    }

    /// True when every benchmark ran to completion (the watchdog did not
    /// fire).
    pub fn is_complete(&self) -> bool {
        self.termination == Termination::Completed
    }
}

enum L2Arrays {
    Unified(CacheArray),
    Split { i: CacheArray, d: CacheArray },
}

/// Live fault-injection state (present only when injection is enabled, so
/// the fault-free path stays bit-identical to a build without it).
struct FaultState {
    injector: FaultInjector,
    protection: ProtectionMap,
    ecc_penalty: u64,
    /// True for [`MachineCheckPolicy::Halt`].
    halt: bool,
    /// Per-structure set counts for fault-site reporting, in
    /// [`Structure::index`] order.
    sets: [u64; 5],
}

/// Size of the simulator's internal translation-lookup cache (a software
/// accelerator, not an architectural structure).
const TCACHE_WAYS: usize = 256;

/// Live telemetry state (present only when telemetry is enabled, so the
/// untelemetered path stays bit-identical to a build without it). All
/// recording is passive: it never charges cycles and never touches the
/// fault injector's PRNG.
struct TelemetryState {
    reg: Registry,
    spans: SpanRecorder,
    /// Last observed scheduler switch total, for switch-event detection.
    last_switches: u64,
    // Pre-registered counter handles, so hot-path bumps are one indexed
    // add with no name lookup.
    c_l2_lookup_i: CounterId,
    c_l2_lookup_d: CounterId,
    c_mem_refill_i: CounterId,
    c_mem_refill_d: CounterId,
    c_wb_enqueue: CounterId,
    c_wb_full_stall: CounterId,
    c_wb_read_wait: CounterId,
    c_tlb_walk_i: CounterId,
    c_tlb_walk_d: CounterId,
    c_sched_switch: CounterId,
    c_fault_event: CounterId,
    c_oracle_divergence: CounterId,
}

impl TelemetryState {
    fn new(span_capacity: usize) -> Self {
        let mut reg = Registry::new();
        let c_l2_lookup_i = reg.counter("l2.lookup.i");
        let c_l2_lookup_d = reg.counter("l2.lookup.d");
        let c_mem_refill_i = reg.counter("mem.refill.i");
        let c_mem_refill_d = reg.counter("mem.refill.d");
        let c_wb_enqueue = reg.counter("wb.enqueue");
        let c_wb_full_stall = reg.counter("wb.full_stall");
        let c_wb_read_wait = reg.counter("wb.read_wait");
        let c_tlb_walk_i = reg.counter("tlb.walk.i");
        let c_tlb_walk_d = reg.counter("tlb.walk.d");
        let c_sched_switch = reg.counter("sched.switch");
        let c_fault_event = reg.counter("fault.event");
        let c_oracle_divergence = reg.counter("oracle.divergence");
        TelemetryState {
            reg,
            spans: SpanRecorder::new(span_capacity),
            last_switches: 0,
            c_l2_lookup_i,
            c_l2_lookup_d,
            c_mem_refill_i,
            c_mem_refill_d,
            c_wb_enqueue,
            c_wb_full_stall,
            c_wb_read_wait,
            c_tlb_walk_i,
            c_tlb_walk_d,
            c_sched_switch,
            c_fault_event,
            c_oracle_divergence,
        }
    }
}

/// Everything the telemetry layer recorded over one run: the counter
/// registry, the retained span timeline (timing-clock cycles), and how
/// many spans the bounded recorder had to drop.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// All registered counters and histograms.
    pub registry: Registry,
    /// Retained spans in recording order.
    pub spans: Vec<Span>,
    /// Spans evicted because the ring buffer was full.
    pub spans_dropped: u64,
}

/// Reference constants the functional clock advances by. They mirror the
/// paper's base architecture (6-cycle L2 access, 143/237-cycle memory
/// penalties) but are deliberately *fixed*, not read from the
/// configuration: the functional clock must be invariant across the
/// timing axis of a sweep.
pub const REF_L2_ACCESS: u64 = 6;
/// Functional-clock advance for an L2 miss with a clean victim (see
/// [`REF_L2_ACCESS`]).
pub const REF_MEM_CLEAN: u64 = 143;
/// Functional-clock advance for an L2 miss with a dirty victim (see
/// [`REF_L2_ACCESS`]).
pub const REF_MEM_DIRTY: u64 = 237;

/// The trace-driven simulator for one architecture configuration.
///
/// # Examples
///
/// ```
/// use gaas_sim::{config::SimConfig, workload, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sim = Simulator::new(SimConfig::optimized())?;
/// let result = sim.run(workload::subset(3, 1e-4))?;
/// assert!(result.cpi() > 1.0);
/// assert_eq!(result.completed.len(), 3);
/// # Ok(())
/// # }
/// ```
pub struct Simulator {
    cfg: SimConfig,
    now: u64,
    /// The *functional* clock driving scheduler time-slicing. It advances
    /// on functional outcomes only — issue + stall cycles, L2 hits at the
    /// fixed reference access time, memory misses at the reference
    /// penalties — never on the timing knobs (access times, latencies,
    /// write-buffer waits, TLB penalties). Two configurations with the
    /// same geometry therefore schedule the *identical* instruction
    /// interleaving regardless of their timing points, which is what lets
    /// the two-phase sweep memoizer (see `profile`) price many timing
    /// variants from one functional pass.
    fnow: u64,
    counters: Counters,

    l1i: CacheArray,
    l1d: L1DataCache,
    l2: L2Arrays,
    wb: WriteBuffer,
    /// Memory behind L2-D (or the unified L2); carries the dirty buffer.
    mem_d: MemorySystem,
    /// Memory behind a split L2-I (no dirty buffer).
    mem_i: MemorySystem,
    itlb: Tlb,
    dtlb: Tlb,
    mapper: PageMapper,
    tcache: Vec<(u64, u64)>,
    /// Per-PID statistics (lazily grown).
    per_proc: Vec<ProcCounters>,

    /// Virtual line of the immediately preceding ifetch (`u64::MAX` =
    /// none). A fetch to the same line is a guaranteed ITLB + L1-I hit —
    /// only ifetches touch those structures, and the previous fetch left
    /// both entries resident — so the uninstrumented path skips the
    /// probes entirely. Skipping the duplicate LRU touch is exact: the
    /// touched way already holds its set's maximum timestamp, so every
    /// future victim choice is unchanged.
    last_ifetch_vline: u64,
    /// Virtual page of the immediately preceding data access (load or
    /// store); a data access to the same page is a guaranteed DTLB hit
    /// by the same argument.
    last_data_vpage: u64,
    /// Virtual line of the immediately preceding load when it left the
    /// line resident and loadable; cleared on every store (which may
    /// change line state) — see `load_memo_ok`.
    last_load_vline: u64,
    /// log2(line words) for the two L1 sides (memo key construction).
    i_line_shift: u32,
    d_line_shift: u32,
    /// Load-memo soundness gate: subblock placement decides load hits per
    /// *word*, which a line-granular memo cannot capture.
    load_memo_ok: bool,

    /// Precomputed L1 miss service costs for an L2 hit.
    i_hit_cost: u32,
    d_hit_cost: u32,
    /// Functional-clock L2-hit costs at the reference access time (see
    /// `fnow`): `REF_L2_ACCESS + beats − 1`, independent of the
    /// configured access times.
    ref_i_hit_cost: u32,
    ref_d_hit_cost: u32,
    /// L2 write access/stream occupancy for write-buffer drains.
    d_write_access: u32,
    d_write_stream: u32,

    /// Fault-injection state (`None` = injection off, exact legacy path).
    fault: Option<FaultState>,
    /// Cached `fault.is_some()`: hot hit paths skip the injector hooks (and
    /// the dirty-line peek feeding them) on one predictable branch.
    fault_on: bool,
    /// Unrecoverable fault awaiting the halt at the instruction boundary.
    pending_mc: Option<FaultEvent>,
    /// Cycle of the last checkpoint (restart rollback target).
    last_checkpoint_cycle: u64,
    /// Lockstep golden-model state (`None` = oracle off, exact fast path).
    diff: Option<Box<DiffState>>,
    /// Cached `diff.is_some()`: the per-event gate is one predictable
    /// branch with no `Option` load, so the oracle costs nothing when
    /// off.
    diff_on: bool,
    /// Cooperative cancellation flag, polled between instruction batches.
    cancel: Option<CancelToken>,
    /// Functional-outcome recorder (`None` = normal run; installed by
    /// [`Simulator::run_profiled`] for the two-phase sweep memoizer).
    rec: Option<Box<ProfileRecorder>>,
    /// Telemetry state (`None` = telemetry off, exact fast path).
    telem: Option<Box<TelemetryState>>,
    /// Cached `telem.is_some()`: every hot-path hook is one predictable
    /// branch, mirroring the `fault_on`/`diff_on` gates.
    telem_on: bool,
}

impl Simulator {
    /// Builds a simulator for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn new(cfg: SimConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        // CMP configurations need the coherence engine's per-core state;
        // this single-CPU simulator would silently ignore the sharing
        // knobs, so refuse them outright.
        if cfg.cmp.enabled() {
            return Err(ConfigError::CmpRequiresCoherenceEngine);
        }
        let l1i = CacheArray::new(cfg.l1i.geometry()?);
        let l1d = L1DataCache::new(cfg.l1d.geometry()?, cfg.policy);
        let l2 = match cfg.l2 {
            L2Config::Unified(s) => L2Arrays::Unified(CacheArray::new(s.geometry()?)),
            L2Config::Split { i, d } => L2Arrays::Split {
                i: CacheArray::new(i.geometry()?),
                d: CacheArray::new(d.geometry()?),
            },
        };
        let wb = WriteBuffer::new(cfg.write_buffer.depth);
        let mem_d = MemorySystem::new(cfg.memory, cfg.concurrency.l2d_dirty_buffer);
        let mem_i = MemorySystem::new(cfg.memory, false);

        // Miss service from L2: the access time covers the first 4W beat;
        // each further 4W beat of the fetch adds a cycle.
        let beats = |line_words: u32| line_words.div_ceil(4);
        let i_side = cfg.l2.i_side();
        let d_side = cfg.l2.d_side();
        let i_hit_cost = i_side.access_cycles + beats(cfg.l1i.line_words) - 1;
        let d_hit_cost = d_side.access_cycles + beats(cfg.l1d.line_words) - 1;
        let ref_i_hit_cost = REF_L2_ACCESS as u32 + beats(cfg.l1i.line_words) - 1;
        let ref_d_hit_cost = REF_L2_ACCESS as u32 + beats(cfg.l1d.line_words) - 1;
        // Drains write at the data side's access time (or the Fig. 5
        // override); streams overlap the 2-cycle latency.
        let d_write_access = cfg.l2_drain_access_override.unwrap_or(d_side.access_cycles);
        let d_write_stream = d_write_access.saturating_sub(2).max(1);

        let fault = if cfg.fault.enabled() {
            let f = &cfg.fault;
            Some(FaultState {
                injector: FaultInjector::new(f.seed, f.rates, f.multi_bit_frac, f.targeted.clone()),
                protection: f.protection,
                ecc_penalty: f.ecc_correction_cycles as u64,
                halt: f.machine_check == MachineCheckPolicy::Halt,
                sets: [
                    cfg.l1i.geometry()?.n_sets(),
                    cfg.l1d.geometry()?.n_sets(),
                    cfg.l2.d_side().geometry()?.n_sets(),
                    8, // the paper's 16-entry 2-way TLBs
                    cfg.write_buffer.depth as u64,
                ],
            })
        } else {
            None
        };

        let diff = if cfg.diffcheck.enabled {
            Some(Box::new(DiffState::new(&cfg)?))
        } else {
            None
        };

        let telem = if cfg.telemetry.enabled {
            Some(Box::new(TelemetryState::new(cfg.telemetry.span_capacity)))
        } else {
            None
        };

        let page_colors = cfg.page_colors;
        let diff_on = diff.is_some();
        let fault_on = fault.is_some();
        let telem_on = telem.is_some();
        let i_line_shift = cfg.l1i.line_words.trailing_zeros();
        let d_line_shift = cfg.l1d.line_words.trailing_zeros();
        let load_memo_ok = cfg.policy != WritePolicy::Subblock;
        Ok(Simulator {
            cfg,
            now: 0,
            fnow: 0,
            counters: Counters::new(),
            l1i,
            l1d,
            l2,
            wb,
            mem_d,
            mem_i,
            itlb: Tlb::instruction(),
            dtlb: Tlb::data(),
            mapper: PageMapper::new(page_colors),
            tcache: vec![(u64::MAX, 0); TCACHE_WAYS],
            per_proc: Vec::new(),
            last_ifetch_vline: u64::MAX,
            last_data_vpage: u64::MAX,
            last_load_vline: u64::MAX,
            i_line_shift,
            d_line_shift,
            load_memo_ok,
            i_hit_cost,
            d_hit_cost,
            ref_i_hit_cost,
            ref_d_hit_cost,
            d_write_access,
            d_write_stream,
            fault,
            fault_on,
            pending_mc: None,
            last_checkpoint_cycle: 0,
            diff,
            diff_on,
            cancel: None,
            rec: None,
            telem,
            telem_on,
        })
    }

    /// Installs a cooperative-cancellation token: once
    /// [`CancelToken::cancel`] is called on any clone, the run stops at
    /// the next batch boundary with [`SimError::Cancelled`].
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Instruction-TLB state (for reports).
    pub fn itlb(&self) -> &Tlb {
        &self.itlb
    }

    /// Data-TLB state (for reports).
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// Runs a multiprogramming workload to completion and returns the
    /// accumulated result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MachineCheck`] when an injected fault is
    /// unrecoverable under the halt policy.
    pub fn run(self, traces: Vec<Box<dyn Trace>>) -> Result<SimResult, SimError> {
        self.run_warmed(traces, 0)
    }

    /// Runs a workload, discarding the statistics of the first
    /// `warmup_instructions` instructions (the caches stay warm; only the
    /// counters reset). Long-trace hygiene per \[BKW90\]: without warm-up,
    /// compulsory misses dominate L2 statistics on scaled-down traces.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MachineCheck`] when an injected fault is
    /// unrecoverable under the halt policy.
    pub fn run_warmed(
        self,
        traces: Vec<Box<dyn Trace>>,
        warmup_instructions: u64,
    ) -> Result<SimResult, SimError> {
        Ok(self.run_sampled(traces, warmup_instructions, 0)?.0)
    }

    /// Like [`Simulator::run_warmed`], additionally returning windowed
    /// counter snapshots every `window_instructions` instructions
    /// (0 disables sampling). Each returned element is the counter *delta*
    /// over one window — a time-series view of the run (warm-up
    /// transients, context-switch beats).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MachineCheck`] when an injected fault is
    /// unrecoverable under the halt policy.
    pub fn run_sampled(
        self,
        traces: Vec<Box<dyn Trace>>,
        warmup_instructions: u64,
        window_instructions: u64,
    ) -> Result<(SimResult, Vec<Counters>), SimError> {
        let (result, windows, _, _) =
            self.run_sampled_rec(traces, warmup_instructions, window_instructions)?;
        Ok((result, windows))
    }

    /// Runs a workload with telemetry recording, returning the result,
    /// the windowed counter deltas (window size from
    /// [`TelemetryConfig::window_instructions`](crate::config::TelemetryConfig)),
    /// and the recorded [`TelemetryReport`].
    ///
    /// With telemetry disabled in the configuration this degenerates to
    /// [`Simulator::run_warmed`] plus an empty report.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run_warmed`].
    pub fn run_telemetry(
        self,
        traces: Vec<Box<dyn Trace>>,
        warmup_instructions: u64,
    ) -> Result<(SimResult, Vec<Counters>, TelemetryReport), SimError> {
        let window = if self.cfg.telemetry.enabled {
            self.cfg.telemetry.window_instructions
        } else {
            0
        };
        let (result, windows, _, telem) =
            self.run_sampled_rec(traces, warmup_instructions, window)?;
        let report = telem
            .map(|t| {
                let mut registry = t.reg;
                // Process-wide trace-arena health at the end of the run:
                // reuse vs. regeneration, compressed-size bypasses, and
                // the v3 compression footprint. Recorded once here, so
                // the hot path never touches the arena registry lock.
                let a = gaas_trace::arena::stats();
                for (name, v) in [
                    ("arena.generated", a.generated),
                    ("arena.reused", a.reused),
                    ("arena.bypassed", a.bypassed),
                    ("arena.bypass_events", a.bypass_events),
                    ("arena.resident_streams", a.resident_streams),
                    ("arena.resident_events", a.resident_events),
                    ("arena.packed_bytes", a.packed_bytes),
                    ("arena.compressed_bytes", a.compressed_bytes),
                ] {
                    let id = registry.counter(name);
                    registry.add(id, v);
                }
                TelemetryReport {
                    spans_dropped: t.spans.dropped(),
                    spans: t.spans.spans(),
                    registry,
                }
            })
            .unwrap_or_default();
        Ok((result, windows, report))
    }

    /// Runs a workload with a [`ProfileRecorder`] attached, returning the
    /// result together with a [`FunctionalProfile`] that [`price_profile`]
    /// can replay under any timing variant of this configuration's
    /// geometry (see the `profile` module).
    ///
    /// [`price_profile`]: crate::profile::price_profile
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run_warmed`].
    ///
    /// # Panics
    ///
    /// Panics when the configuration is not memoizable
    /// ([`functional_fingerprint`] returns `None` for fault injection,
    /// the differential oracle, and checkpointing).
    pub fn run_profiled(
        mut self,
        traces: Vec<Box<dyn Trace>>,
        warmup_instructions: u64,
    ) -> Result<(SimResult, FunctionalProfile), SimError> {
        let fkey = functional_fingerprint(&self.cfg)
            .expect("run_profiled requires a memoizable configuration");
        self.rec = Some(Box::new(ProfileRecorder::new()));
        let (result, _, rec, _) = self.run_sampled_rec(traces, warmup_instructions, 0)?;
        let profile =
            rec.expect("recorder installed above")
                .finish(fkey, warmup_instructions, &result);
        Ok((result, profile))
    }

    #[allow(clippy::type_complexity)]
    fn run_sampled_rec(
        mut self,
        traces: Vec<Box<dyn Trace>>,
        warmup_instructions: u64,
        window_instructions: u64,
    ) -> Result<
        (
            SimResult,
            Vec<Counters>,
            Option<Box<ProfileRecorder>>,
            Option<Box<TelemetryState>>,
        ),
        SimError,
    > {
        let mut sched = Scheduler::new(traces, self.cfg.mp.level, self.cfg.mp.time_slice_cycles);
        let mut warm_snapshot: Option<Counters> = None;
        let mut windows = Vec::new();
        let mut window_start = Counters::new();
        // Disabled features get `u64::MAX` thresholds: the per-instruction
        // poll is then a never-taken compare instead of flag re-checks.
        let mut next_window = if window_instructions > 0 {
            window_instructions
        } else {
            u64::MAX
        };
        let mut next_warm = if warmup_instructions > 0 {
            warmup_instructions
        } else {
            u64::MAX
        };
        let budget_limit = self.cfg.instruction_budget.unwrap_or(u64::MAX);
        let mut checkpoints = Vec::new();
        let checkpoint_interval = self.cfg.checkpoint_interval;
        let mut next_checkpoint = if checkpoint_interval > 0 {
            checkpoint_interval
        } else {
            u64::MAX
        };
        let mut termination = Termination::Completed;
        let mut next_cancel_check = if self.cancel.is_some() {
            CANCEL_CHECK_INTERVAL
        } else {
            u64::MAX
        };
        // The scheduler sees the *functional* clock, not the timing clock:
        // time-slice context switches then land on identical instruction
        // boundaries for every timing variant of one cache geometry.
        //
        // The loop is specialized on `hooks`: when every instrumentation
        // layer (fault injection, differential oracle, telemetry,
        // profile recorder) is off — the common case and the whole
        // benchmark kernel — the `false` instantiations of the step
        // functions compile the hook plumbing out entirely. The flags
        // cannot turn on mid-run, so one check up front covers the run.
        let hooks = self.hooks_active();
        // All periodic thresholds collapse into one merged poll: each
        // fires at an exact instruction count, so checking the minimum
        // and re-deriving it after a hit preserves boundary semantics.
        let mut next_poll = next_warm
            .min(next_window)
            .min(next_checkpoint)
            .min(budget_limit)
            .min(next_cancel_check);
        while let Some(instr) = sched.next_instruction(self.fnow) {
            if hooks {
                self.step_ifetch_impl::<true>(&instr.ifetch);
                if let Some(data) = instr.data {
                    self.step_data_impl::<true>(&data);
                }
                sched.post_instruction(self.fnow, instr.ifetch.syscall);
                if self.telem_on {
                    let switches = sched.total_switches();
                    self.telem_sched_tick(switches);
                }
                if self.pending_mc.is_some() {
                    let fault = self.pending_mc.take().expect("just checked");
                    return Err(SimError::MachineCheck {
                        fault,
                        cycle: self.now,
                        instructions: self.counters.instructions,
                    });
                }
                if self.diff_on {
                    if let Some(err) = self.take_divergence() {
                        return Err(err);
                    }
                }
            } else {
                self.step_ifetch_impl::<false>(&instr.ifetch);
                if let Some(data) = instr.data {
                    self.step_data_impl::<false>(&data);
                }
                sched.post_instruction(self.fnow, instr.ifetch.syscall);
                // Span drain: step straight over the installed process's
                // buffered events, checking the same per-instruction
                // conditions (syscall, slice expiry, merged poll) inline.
                // `post_instruction` on a non-rotating instruction is a
                // no-op, so reporting only the rotating one is exact. The
                // buffer's final event is left for `next_instruction`,
                // which can peek across a batch refill for its data half.
                let slice_end = sched.slice_end();
                loop {
                    if self.counters.instructions >= next_poll {
                        break;
                    }
                    let (span, start) = sched.current_span();
                    let end = span.len();
                    if end - start < 2 {
                        break;
                    }
                    let mut pos = start;
                    let mut rotated = false;
                    let mut rotate_syscall = false;
                    while pos + 1 < end {
                        let ifetch = span[pos];
                        pos += 1;
                        let d = span[pos];
                        let data = if d.kind.is_data() {
                            pos += 1;
                            Some(d)
                        } else {
                            None
                        };
                        self.step_ifetch_impl::<false>(&ifetch);
                        if let Some(d) = data {
                            self.step_data_impl::<false>(&d);
                        }
                        if ifetch.syscall || self.fnow >= slice_end {
                            rotated = true;
                            rotate_syscall = ifetch.syscall;
                            break;
                        }
                        if self.counters.instructions >= next_poll {
                            break;
                        }
                    }
                    sched.advance(pos - start);
                    if rotated {
                        sched.post_instruction(self.fnow, rotate_syscall);
                        break;
                    }
                }
            }
            if self.counters.instructions >= next_poll {
                if self.counters.instructions >= next_cancel_check {
                    next_cancel_check = self.counters.instructions + CANCEL_CHECK_INTERVAL;
                    if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                        return Err(SimError::Cancelled);
                    }
                }
                if self.counters.instructions >= next_warm {
                    warm_snapshot = Some(self.counters);
                    next_warm = u64::MAX;
                }
                if self.counters.instructions >= next_window {
                    windows.push(self.counters.since(&window_start));
                    window_start = self.counters;
                    next_window += window_instructions;
                }
                if self.counters.instructions >= next_checkpoint {
                    self.last_checkpoint_cycle = self.now;
                    checkpoints.push(Checkpoint {
                        cycle: self.now,
                        instructions: self.counters.instructions,
                        sched: sched.snapshot(),
                    });
                    next_checkpoint += checkpoint_interval;
                }
                if self.counters.instructions >= budget_limit {
                    termination = Termination::BudgetExhausted;
                    break;
                }
                next_poll = next_warm
                    .min(next_window)
                    .min(next_checkpoint)
                    .min(budget_limit)
                    .min(next_cancel_check);
            }
        }
        // One last structural sweep so a divergence in the tail (after the
        // final periodic check) still surfaces.
        self.diff_final_check();
        if let Some(err) = self.take_divergence() {
            return Err(err);
        }
        self.counters.syscall_switches = sched.syscall_switches();
        self.counters.slice_switches = sched.slice_switches();
        debug_assert_eq!(
            self.now,
            self.counters.total_cycles(),
            "cycle accounting must balance"
        );
        // The warm-up snapshot predates the end-of-run switch counts (they
        // are zero mid-run), so the delta keeps the full-run switch totals.
        let counters = match warm_snapshot {
            Some(snap) => self.counters.since(&snap),
            None => self.counters,
        };
        let per_process = self
            .per_proc
            .iter()
            .enumerate()
            .filter(|(_, p)| p.instructions > 0 || p.loads > 0 || p.stores > 0)
            .map(|(i, p)| (gaas_trace::Pid::new(i as u8), *p))
            .collect();
        if self.telem_on {
            self.telem_finalize();
        }
        let result = SimResult {
            config: self.cfg.clone(),
            counters,
            completed: sched.completed().to_vec(),
            per_process,
            termination,
            checkpoints,
        };
        Ok((result, windows, self.rec.take(), self.telem.take()))
    }

    /// Processes a single event outside a scheduled workload (single-process
    /// unit testing and calibration).
    pub fn step(&mut self, ev: &TraceEvent) {
        if self.hooks_active() {
            match ev.kind {
                AccessKind::IFetch => self.step_ifetch_impl::<true>(ev),
                AccessKind::Load | AccessKind::Store => self.step_data_impl::<true>(ev),
            }
        } else {
            match ev.kind {
                AccessKind::IFetch => self.step_ifetch_impl::<false>(ev),
                AccessKind::Load | AccessKind::Store => self.step_data_impl::<false>(ev),
            }
        }
    }

    /// Whether any instrumentation layer is attached: fault injection,
    /// the differential oracle, telemetry, or the profile recorder. When
    /// all are off the `HOOKS = false` step instantiations (with every
    /// hook compiled out, plus the last-line/last-page memos) are exact.
    #[inline]
    fn hooks_active(&self) -> bool {
        self.fault_on || self.diff_on || self.telem_on || self.rec.is_some()
    }

    #[inline]
    fn proc_entry(&mut self, pid: gaas_trace::Pid) -> &mut ProcCounters {
        let idx = pid.raw() as usize;
        if self.per_proc.len() <= idx {
            self.per_proc.resize(idx + 1, ProcCounters::default());
        }
        &mut self.per_proc[idx]
    }

    #[inline]
    fn translate(&mut self, addr: VirtAddr) -> PhysAddr {
        let key = addr.raw() >> PAGE_SHIFT;
        let idx = (key as usize) & (TCACHE_WAYS - 1);
        let (k, ppn) = self.tcache[idx];
        if k == key {
            return PhysAddr::new((ppn << PAGE_SHIFT) | addr.page_offset());
        }
        let p = self.mapper.translate(addr);
        self.tcache[idx] = (key, p.ppn());
        p
    }

    // ---- differential-oracle hooks ----

    /// The pending divergence report, if the oracle tripped (for manual
    /// [`Simulator::step`] users; [`Simulator::run`] surfaces it as
    /// [`SimError::Divergence`]).
    pub fn divergence(&self) -> Option<&DivergenceReport> {
        self.diff.as_ref().and_then(|d| d.report())
    }

    /// Accesses the oracle has cross-checked so far (`None` when the
    /// oracle is disabled).
    pub fn oracle_checked(&self) -> Option<u64> {
        self.diff.as_ref().map(|d| d.accesses_checked())
    }

    /// Borrowed views of the live structures for oracle checks. For a
    /// unified L2 both side references alias the single array.
    fn structures(&self) -> SimStructures<'_> {
        let (l2i, l2d) = match &self.l2 {
            L2Arrays::Unified(a) => (a, a),
            L2Arrays::Split { i, d } => (i, d),
        };
        SimStructures {
            l1i: &self.l1i,
            l1d: &self.l1d,
            l2i,
            l2d,
            wb: &self.wb,
        }
    }

    /// Cross-checks one completed access against the golden model, then
    /// applies a due seeded bug (after the check, so the corruption is
    /// first observed by a *later* access — as a real bug would be).
    #[cold]
    #[inline(never)]
    fn diff_note(&mut self, ev: &TraceEvent, paddr: PhysAddr, before: Counters) {
        let Some(mut ds) = self.diff.take() else {
            return;
        };
        let actual = Deltas::between(&before, &self.counters);
        ds.note_access(ev, paddr, actual, &self.structures());
        if let Some(kind) = ds.bug_due() {
            let applied = match kind {
                SeededBug::FlipL1dDirty => match self.l1d.array_mut().peek_mut(paddr) {
                    Some(mut line) if ev.kind.is_data() => {
                        let flipped = !line.dirty();
                        line.set_dirty(flipped);
                        true
                    }
                    _ => false,
                },
                SeededBug::InvalidateL1i => {
                    ev.kind == AccessKind::IFetch && self.l1i.invalidate(paddr).is_some()
                }
                SeededBug::DropWriteBufferEntry => self.wb.drop_youngest().is_some(),
            };
            if applied {
                ds.set_bug_applied();
            }
        }
        self.diff = Some(ds);
    }

    /// Runs the oracle's full structural sweep once (end of run).
    fn diff_final_check(&mut self) {
        let Some(mut ds) = self.diff.take() else {
            return;
        };
        ds.full_state_check(&self.structures());
        self.diff = Some(ds);
    }

    /// Takes a pending divergence as the run-terminating error.
    fn take_divergence(&mut self) -> Option<SimError> {
        let report = self.diff.as_mut()?.take_report()?;
        if self.telem_on {
            self.telem_oracle_divergence();
        }
        Some(SimError::Divergence(Box::new(report)))
    }

    // ---- telemetry hooks ----
    //
    // Every hook site is gated on the cached `telem_on` flag (the
    // `fault_on`/`diff_on` pattern), and the note bodies are `#[cold]`
    // `#[inline(never)]` so the disabled hot path carries only one
    // predictable never-taken branch per site. Recording is passive —
    // no cycles charged, no PRNG touched — so disabled-mode results are
    // byte-identical by construction.

    /// Notes an L2 instruction-side lookup that hit (an L1-I refill).
    #[cold]
    #[inline(never)]
    fn telem_l2_lookup_i(&mut self, start: u64, dur: u64) {
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        t.reg.inc(t.c_l2_lookup_i);
        t.spans.record("refill.l1i", Component::L2, start, dur);
    }

    /// Notes an L2 data-side lookup that hit (an L1-D refill).
    #[cold]
    #[inline(never)]
    fn telem_l2_lookup_d(&mut self, start: u64, dur: u64) {
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        t.reg.inc(t.c_l2_lookup_d);
        t.spans.record("refill.l1d", Component::L2, start, dur);
    }

    /// Notes an instruction-side L2 miss serviced from main memory.
    #[cold]
    #[inline(never)]
    fn telem_mem_refill_i(&mut self, start: u64, dur: u64) {
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        t.reg.inc(t.c_mem_refill_i);
        t.reg.observe("mem.refill.i.cycles", dur);
        t.spans.record("refill.l2i", Component::Memory, start, dur);
    }

    /// Notes a data-side L2 miss serviced from main memory.
    #[cold]
    #[inline(never)]
    fn telem_mem_refill_d(&mut self, start: u64, dur: u64) {
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        t.reg.inc(t.c_mem_refill_d);
        t.reg.observe("mem.refill.d.cycles", dur);
        t.spans.record("refill.l2d", Component::Memory, start, dur);
    }

    /// Notes a read miss waiting on previously pending buffered writes.
    #[cold]
    #[inline(never)]
    fn telem_wb_wait(&mut self, start: u64, dur: u64) {
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        t.reg.inc(t.c_wb_read_wait);
        t.reg.observe("wb.read_wait.cycles", dur);
        t.spans.record("wb.wait", Component::Wb, start, dur);
    }

    /// Notes one write entering the buffer: the CPU-visible full-buffer
    /// stall (if any) and the drain occupancy it schedules.
    #[cold]
    #[inline(never)]
    fn telem_wb_enqueue(&mut self, start: u64, stall: u64, busy_from: u64, completes: u64) {
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        t.reg.inc(t.c_wb_enqueue);
        if stall > 0 {
            t.reg.inc(t.c_wb_full_stall);
            t.spans.record("wb.full-stall", Component::Wb, start, stall);
        }
        if completes > busy_from {
            t.spans
                .record("wb.drain", Component::Wb, busy_from, completes - busy_from);
        }
    }

    /// Notes a TLB miss walk (`i_side` selects the TLB) of `dur` cycles.
    #[cold]
    #[inline(never)]
    fn telem_tlb_walk(&mut self, i_side: bool, dur: u64) {
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        t.reg.inc(if i_side {
            t.c_tlb_walk_i
        } else {
            t.c_tlb_walk_d
        });
        t.spans.record(
            if i_side { "tlb.walk.i" } else { "tlb.walk.d" },
            Component::Tlb,
            self.now,
            dur,
        );
    }

    /// Notes scheduler progress: compares the switch total against the
    /// last observed one and emits an instant event per new switch.
    #[cold]
    #[inline(never)]
    fn telem_sched_tick(&mut self, switches: u64) {
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        if switches != t.last_switches {
            t.reg.add(t.c_sched_switch, switches - t.last_switches);
            t.spans.instant("sched.switch", Component::Sched, self.now);
            t.last_switches = switches;
        }
    }

    /// Notes a resolved fault-injection event as an instant span.
    #[cold]
    #[inline(never)]
    fn telem_fault(&mut self, effect: FaultEffect) {
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        t.reg.inc(t.c_fault_event);
        let name = match effect {
            FaultEffect::Silent => "fault.silent",
            FaultEffect::Correct => "fault.corrected",
            FaultEffect::Refetch => "fault.refetch",
            FaultEffect::MachineCheck => "fault.machine-check",
        };
        t.spans.instant(name, Component::Fault, self.now);
    }

    /// Notes an oracle divergence as an instant span.
    #[cold]
    #[inline(never)]
    fn telem_oracle_divergence(&mut self) {
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        t.reg.inc(t.c_oracle_divergence);
        t.spans
            .instant("oracle.divergence", Component::Oracle, self.now);
    }

    /// End-of-run snapshot of structure-level statistics into the
    /// registry (final occupancies, TLB traffic, buffer high-water mark)
    /// so the summary table reflects state the counters alone cannot.
    #[cold]
    #[inline(never)]
    fn telem_finalize(&mut self) {
        let (l2i_occ, l2d_occ) = match &self.l2 {
            L2Arrays::Unified(a) => (a.occupancy() as u64, a.occupancy() as u64),
            L2Arrays::Split { i, d } => (i.occupancy() as u64, d.occupancy() as u64),
        };
        let rows = [
            ("l1i.occupancy", self.l1i.occupancy() as u64),
            ("l1d.occupancy", self.l1d.array().occupancy() as u64),
            ("l2i.occupancy", l2i_occ),
            ("l2d.occupancy", l2d_occ),
            ("itlb.accesses", self.itlb.accesses()),
            ("dtlb.accesses", self.dtlb.accesses()),
            ("wb.peak_depth", self.wb.peak_depth() as u64),
            ("wb.total_enqueued", self.wb.total_enqueued()),
            (
                "mem.demand_misses",
                self.mem_d.total_misses() + self.mem_i.total_misses(),
            ),
        ];
        let t = self.telem.as_deref_mut().expect("telem_on implies state");
        for (name, v) in rows {
            let id = t.reg.counter(name);
            t.reg.add(id, v);
        }
    }

    // ---- L2 helpers ----

    /// Touches the instruction side of L2; on a hit returns whether the
    /// line was dirty.
    fn l2_touch_i(&mut self, addr: PhysAddr) -> Option<bool> {
        match &mut self.l2 {
            L2Arrays::Unified(a) | L2Arrays::Split { i: a, .. } => a.touch(addr).map(|l| l.dirty()),
        }
    }

    /// Touches the data side of L2; on a hit returns whether the line was
    /// dirty.
    fn l2_touch_d(&mut self, addr: PhysAddr) -> Option<bool> {
        match &mut self.l2 {
            L2Arrays::Unified(a) | L2Arrays::Split { d: a, .. } => a.touch(addr).map(|l| l.dirty()),
        }
    }

    /// Fills the instruction side of L2; returns whether the victim was
    /// dirty.
    fn l2_fill_i(&mut self, addr: PhysAddr) -> bool {
        match &mut self.l2 {
            L2Arrays::Unified(a) | L2Arrays::Split { i: a, .. } => {
                a.fill(addr).is_some_and(|e| e.dirty)
            }
        }
    }

    fn l2_fill_d(&mut self, addr: PhysAddr) -> bool {
        match &mut self.l2 {
            L2Arrays::Unified(a) | L2Arrays::Split { d: a, .. } => {
                a.fill(addr).is_some_and(|e| e.dirty)
            }
        }
    }

    /// Marks the data-side line for `addr` dirty (after a drain write).
    fn l2_dirty_d(&mut self, addr: PhysAddr) {
        let (L2Arrays::Unified(a) | L2Arrays::Split { d: a, .. }) = &mut self.l2;
        if let Some(mut line) = a.touch(addr) {
            line.set_dirty(true);
        }
    }

    /// Services an instruction-side L1 miss starting at `start`; returns
    /// total stall cycles, with components attributed.
    #[cold]
    #[inline(never)]
    fn service_i_miss(&mut self, start: u64, paddr: PhysAddr) -> u64 {
        self.counters.l2i_accesses += 1;
        let hit_cost = self.i_hit_cost as u64;
        if let Some(dirty) = self.l2_touch_i(paddr) {
            self.counters.l1i_miss_cycles += hit_cost;
            self.fnow += self.ref_i_hit_cost as u64;
            if let Some(r) = self.rec.as_deref_mut() {
                r.set_i_outcome(1);
            }
            if self.telem_on {
                self.telem_l2_lookup_i(start, hit_cost);
            }
            self.l1i.fill(paddr);
            return hit_cost + self.fault_on_l2_hit(paddr, dirty, true);
        }
        self.counters.l2i_misses += 1;
        let dirty_victim = self.l2_fill_i(paddr);
        self.fnow += if dirty_victim {
            REF_MEM_DIRTY
        } else {
            REF_MEM_CLEAN
        };
        if let Some(r) = self.rec.as_deref_mut() {
            r.set_i_outcome(if dirty_victim { 3 } else { 2 });
        }
        let svc = if self.cfg.l2.is_split() {
            self.mem_i.service_miss(start, dirty_victim)
        } else {
            self.mem_d.service_miss(start, dirty_victim)
        };
        if self.telem_on {
            self.telem_mem_refill_i(start, svc.stall_cycles);
        }
        // Attribute up to the L2-hit-equivalent cost to the L1 component and
        // the excess to the L2 component. An exotic configuration can make
        // the memory penalty smaller than the hit cost; clamp so the
        // components still sum to the charged stall.
        let service = svc.stall_cycles - svc.dirty_buffer_wait;
        let l1_share = service.min(hit_cost);
        self.counters.l1i_miss_cycles += l1_share;
        self.counters.l2i_miss_cycles += service - l1_share;
        self.counters.dirty_buffer_wait_cycles += svc.dirty_buffer_wait;
        self.l1i.fill(paddr);
        svc.stall_cycles
    }

    /// Services a data-side L1 miss (read or write-allocate) starting at
    /// `start`; returns total stall cycles.
    #[cold]
    #[inline(never)]
    fn service_d_miss(&mut self, start: u64, line_base: PhysAddr) -> u64 {
        self.counters.l2d_accesses += 1;
        let hit_cost = self.d_hit_cost as u64;
        if let Some(dirty) = self.l2_touch_d(line_base) {
            self.counters.l1d_miss_cycles += hit_cost;
            self.fnow += self.ref_d_hit_cost as u64;
            if let Some(r) = self.rec.as_deref_mut() {
                r.set_d_outcome(1);
            }
            if self.telem_on {
                self.telem_l2_lookup_d(start, hit_cost);
            }
            return hit_cost + self.fault_on_l2_hit(line_base, dirty, false);
        }
        self.counters.l2d_misses += 1;
        let dirty_victim = self.l2_fill_d(line_base);
        self.fnow += if dirty_victim {
            REF_MEM_DIRTY
        } else {
            REF_MEM_CLEAN
        };
        if let Some(r) = self.rec.as_deref_mut() {
            r.set_d_outcome(if dirty_victim { 3 } else { 2 });
        }
        let svc = self.mem_d.service_miss(start, dirty_victim);
        if self.telem_on {
            self.telem_mem_refill_d(start, svc.stall_cycles);
        }
        // Same clamped attribution as the instruction side.
        let service = svc.stall_cycles - svc.dirty_buffer_wait;
        let l1_share = service.min(hit_cost);
        self.counters.l1d_miss_cycles += l1_share;
        self.counters.l2d_miss_cycles += service - l1_share;
        self.counters.dirty_buffer_wait_cycles += svc.dirty_buffer_wait;
        svc.stall_cycles
    }

    /// Write-buffer wait (in cycles, attributed) that an L1-D miss must
    /// take before its L2 fetch, per the configured bypass scheme.
    fn wb_wait_for_d_miss(
        &mut self,
        start: u64,
        line_base: PhysAddr,
        replaced_written: bool,
    ) -> u64 {
        let line_words = self.cfg.l1d.line_words;
        let until = match self.cfg.concurrency.d_read_bypass {
            WbBypass::Wait => self.wb.empty_at(start),
            WbBypass::DirtyBit => {
                if replaced_written {
                    self.wb.empty_at(start)
                } else {
                    start
                }
            }
            WbBypass::Associative => self
                .wb
                .match_line(start, line_base, line_words)
                .map_or(start, |t| t.max(start)),
        };
        let wait = until - start;
        self.counters.wb_wait_cycles += wait;
        if self.telem_on && wait > 0 {
            self.telem_wb_wait(start, wait);
        }
        wait
    }

    /// Enqueues a write into the write buffer at `start`, stalling for a
    /// slot if the buffer is full. Returns the stall (attributed to WB).
    fn enqueue_write(&mut self, start: u64, addr: PhysAddr) -> u64 {
        if let Some(r) = self.rec.as_deref_mut() {
            r.push_addr(addr.word());
        }
        let free_at = self.wb.slot_free_at(start);
        let stall = free_at - start;
        self.counters.wb_wait_cycles += stall;
        let enq_time = free_at;
        // The drain's cost depends on whether it hits in L2-D.
        let extra = self.drain_l2_penalty(addr);
        let busy_from = enq_time.max(self.wb.last_completion());
        let completes = self.wb.enqueue(
            enq_time,
            addr,
            self.d_write_access,
            self.d_write_stream,
            extra,
        );
        self.counters.l2_drain_busy_cycles += completes - busy_from;
        if self.telem_on {
            self.telem_wb_enqueue(start, stall, busy_from, completes);
        }
        stall + self.fault_on_wb_write()
    }

    /// Models the L2 side of one drained write; returns the extra drain
    /// occupancy when the write misses L2 (write-allocate from memory).
    fn drain_l2_penalty(&mut self, addr: PhysAddr) -> u32 {
        self.counters.l2_drain_writes += 1;
        if self.l2_touch_d(addr).is_some() {
            self.l2_dirty_d(addr);
            if let Some(r) = self.rec.as_deref_mut() {
                r.push_drain(0);
            }
            return 0;
        }
        self.counters.l2_drain_misses += 1;
        let dirty_victim = self.l2_fill_d(addr);
        self.l2_dirty_d(addr);
        if let Some(r) = self.rec.as_deref_mut() {
            r.push_drain(if dirty_victim { 2 } else { 1 });
        }
        // The drain stalls the buffer, not the CPU, and does not compete
        // for the dirty buffer: fold the raw penalty into the entry's
        // occupancy.
        self.mem_d.service_miss_raw(dirty_victim).stall_cycles as u32
    }

    // ---- soft-error fault hooks ----
    //
    // Faults are checked when an access *hits* the struck structure — the
    // moment a corrupted entry would be consumed (a deliberate
    // simplification: flips in lines that are never referenced again are
    // architecturally silent anyway). With injection off (`fault` is
    // `None`) every hook returns 0 without touching the PRNG, so the
    // fault-free path is bit-identical to the legacy simulator.

    /// Consults the injector for one access to `s`; returns the fired
    /// event with its resolved effect, if any.
    fn fault_check(&mut self, s: Structure, dirty: bool) -> Option<(FaultEvent, FaultEffect)> {
        let fs = self.fault.as_mut()?;
        let ev = fs.injector.check(s, fs.sets[s.index()])?;
        self.counters.faults_injected += 1;
        let effect = resolve(fs.protection.get(s), dirty, ev.multi_bit);
        Some((ev, effect))
    }

    /// Applies a resolved fault effect: updates the fault counters,
    /// charges `recovery_cycles`, and arms the configured machine-check
    /// response. Returns the stall cycles the faulting access absorbs.
    fn apply_fault(&mut self, ev: FaultEvent, effect: FaultEffect, refetch_cost: u64) -> u64 {
        if self.telem_on {
            self.telem_fault(effect);
        }
        match effect {
            FaultEffect::Silent => {
                self.counters.faults_silent += 1;
                0
            }
            FaultEffect::Correct => {
                self.counters.faults_corrected += 1;
                let p = self.fault.as_ref().map_or(0, |f| f.ecc_penalty);
                self.counters.recovery_cycles += p;
                p
            }
            FaultEffect::Refetch => {
                self.counters.fault_refetches += 1;
                self.counters.recovery_cycles += refetch_cost;
                refetch_cost
            }
            FaultEffect::MachineCheck => {
                self.counters.machine_checks += 1;
                if self.fault.as_ref().is_some_and(|f| f.halt) {
                    // Halt at the current instruction boundary; the run
                    // loop surfaces the error.
                    self.pending_mc = Some(ev);
                    0
                } else {
                    // Checkpoint restart: deterministic re-execution from
                    // the last checkpoint costs the cycles since it, and
                    // the restart point becomes the implicit checkpoint.
                    let rollback = self.now.saturating_sub(self.last_checkpoint_cycle);
                    self.counters.recovery_cycles += rollback;
                    self.last_checkpoint_cycle = self.now;
                    rollback
                }
            }
        }
    }

    /// Fault check for a TLB hit (shared by both TLBs; entries are never
    /// the only copy, so "dirty" never applies). A parity refetch re-walks
    /// the page tables at the configured TLB miss penalty.
    #[inline]
    fn fault_on_tlb_hit(&mut self) -> u64 {
        if !self.fault_on {
            return 0;
        }
        let Some((ev, effect)) = self.fault_check(Structure::Tlb, false) else {
            return 0;
        };
        let cost = if effect == FaultEffect::Refetch {
            self.cfg.tlb_miss_penalty as u64
        } else {
            0
        };
        self.apply_fault(ev, effect, cost)
    }

    /// Fault check for an L1-I hit (instruction lines are never dirty).
    #[inline]
    fn fault_on_l1i_hit(&mut self, paddr: PhysAddr) -> u64 {
        if !self.fault_on {
            return 0;
        }
        let Some((ev, effect)) = self.fault_check(Structure::L1I, false) else {
            return 0;
        };
        let cost = if effect == FaultEffect::Refetch {
            self.refetch_from_l2_i(paddr)
        } else {
            0
        };
        self.apply_fault(ev, effect, cost)
    }

    /// Fault check for an L1-D hit. Under write-back a dirty line is the
    /// only copy of its data; the write-through policies stream every
    /// write out through the buffer, so their L1 copies are always clean
    /// (the line's written mark notwithstanding).
    #[inline]
    fn fault_on_l1d_hit(&mut self, paddr: PhysAddr) -> u64 {
        if !self.fault_on {
            return 0; // skip the dirty-line peek along with the check
        }
        let dirty = !self.cfg.policy.is_write_through()
            && self.l1d.array().peek(paddr).is_some_and(|l| l.dirty);
        let Some((ev, effect)) = self.fault_check(Structure::L1D, dirty) else {
            return 0;
        };
        let cost = if effect == FaultEffect::Refetch {
            self.refetch_from_l2_d(paddr)
        } else {
            0
        };
        self.apply_fault(ev, effect, cost)
    }

    /// Fault check for a demand L2 hit (either side; background drains are
    /// not checked). A clean line refetches from main memory in place.
    #[inline]
    fn fault_on_l2_hit(&mut self, _paddr: PhysAddr, dirty: bool, i_side: bool) -> u64 {
        if !self.fault_on {
            return 0;
        }
        let Some((ev, effect)) = self.fault_check(Structure::L2, dirty) else {
            return 0;
        };
        let cost = if effect == FaultEffect::Refetch {
            if i_side && self.cfg.l2.is_split() {
                self.mem_i.service_miss_raw(false).stall_cycles
            } else {
                self.mem_d.service_miss_raw(false).stall_cycles
            }
        } else {
            0
        };
        self.apply_fault(ev, effect, cost)
    }

    /// Fault check for a write entering the write buffer. In-flight store
    /// data is always the only copy, hence always dirty: parity can only
    /// detect (machine check), ECC corrects.
    #[inline]
    fn fault_on_wb_write(&mut self) -> u64 {
        if !self.fault_on {
            return 0;
        }
        let Some((ev, effect)) = self.fault_check(Structure::WriteBuffer, true) else {
            return 0;
        };
        self.apply_fault(ev, effect, 0)
    }

    /// Real refill cycles for refetching a clean L1-I line: L2-I hit cost,
    /// or a main-memory fetch filling L2. Demand miss-ratio counters stay
    /// untouched — recovery traffic is reported via the fault counters.
    fn refetch_from_l2_i(&mut self, paddr: PhysAddr) -> u64 {
        if self.l2_touch_i(paddr).is_some() {
            return self.i_hit_cost as u64;
        }
        let dirty_victim = self.l2_fill_i(paddr);
        let svc = if self.cfg.l2.is_split() {
            self.mem_i.service_miss_raw(dirty_victim)
        } else {
            self.mem_d.service_miss_raw(dirty_victim)
        };
        svc.stall_cycles
    }

    /// Real refill cycles for refetching a clean L1-D line from L2/memory.
    fn refetch_from_l2_d(&mut self, paddr: PhysAddr) -> u64 {
        if self.l2_touch_d(paddr).is_some() {
            return self.d_hit_cost as u64;
        }
        let dirty_victim = self.l2_fill_d(paddr);
        self.mem_d.service_miss_raw(dirty_victim).stall_cycles
    }

    #[inline]
    fn step_ifetch_impl<const HOOKS: bool>(&mut self, ev: &TraceEvent) {
        // Uninstrumented fast path: a fetch from the line the previous
        // fetch ended on is a guaranteed ITLB + L1-I hit (only ifetches
        // touch either structure), and the hit path consumes the physical
        // address nowhere, so the probes are skipped outright.
        let vline = ev.addr.raw() >> self.i_line_shift;
        if !HOOKS && vline == self.last_ifetch_vline {
            let cycles = 1 + ev.stall_cycles as u64;
            self.counters.instructions += 1;
            self.counters.cpu_stall_cycles += ev.stall_cycles as u64;
            self.fnow += cycles;
            self.now += cycles;
            let p = self.proc_entry(ev.addr.pid());
            p.instructions += 1;
            p.cycles += cycles;
            return;
        }
        let diff_before = if HOOKS && self.diff_on {
            Some(self.counters)
        } else {
            None
        };
        let mut cycles = 1 + ev.stall_cycles as u64;
        let l2_before = self.counters.l2i_misses + self.counters.l2d_misses;
        let mut missed = false;
        self.counters.instructions += 1;
        self.counters.cpu_stall_cycles += ev.stall_cycles as u64;
        self.fnow += 1 + ev.stall_cycles as u64;

        let itlb_hit = self.itlb.access(ev.addr);
        if HOOKS {
            if let Some(r) = self.rec.as_deref_mut() {
                r.begin_instr(ev.addr.pid().raw(), ev.stall_cycles, !itlb_hit);
            }
        }
        if itlb_hit {
            if HOOKS {
                cycles += self.fault_on_tlb_hit();
            }
        } else {
            self.counters.itlb_misses += 1;
            let p = self.cfg.tlb_miss_penalty as u64;
            self.counters.tlb_miss_cycles += p;
            cycles += p;
            if HOOKS && self.telem_on {
                self.telem_tlb_walk(true, p);
            }
        }
        let paddr = self.translate(ev.addr);

        if self.l1i.touch(paddr).is_some() {
            if HOOKS {
                cycles += self.fault_on_l1i_hit(paddr);
            }
        } else {
            self.counters.l1i_misses += 1;
            missed = true;
            let mut t = self.now + cycles;
            // Base rule: instruction misses wait for the write buffer to
            // empty (keeps the unified L2 consistent). The §9 concurrent
            // refill drops this when L2 is split.
            if !self.cfg.concurrency.concurrent_i_refill {
                let empty = self.wb.empty_at(t);
                let wait = empty - t;
                self.counters.wb_wait_cycles += wait;
                cycles += wait;
                t = empty;
            }
            cycles += self.service_i_miss(t, paddr);
        }
        self.now += cycles;
        if !HOOKS {
            // Hit or refill, the line is now resident; arm the memo. The
            // hooked instantiations never read it (faults and the canary
            // can invalidate lines behind it).
            self.last_ifetch_vline = vline;
        }
        if HOOKS {
            if let Some(before) = diff_before {
                self.diff_note(ev, paddr, before);
            }
        }

        let l2_after = self.counters.l2i_misses + self.counters.l2d_misses;
        let p = self.proc_entry(ev.addr.pid());
        p.instructions += 1;
        p.cycles += cycles;
        if missed {
            p.l1i_misses += 1;
        }
        p.l2_misses += l2_after - l2_before;
    }

    #[inline]
    fn step_data_impl<const HOOKS: bool>(&mut self, ev: &TraceEvent) {
        match ev.kind {
            AccessKind::Load => self.step_load_impl::<HOOKS>(ev),
            AccessKind::Store => self.step_store_impl::<HOOKS>(ev),
            AccessKind::IFetch => unreachable!("data step on a fetch"),
        }
    }

    #[inline]
    fn step_load_impl<const HOOKS: bool>(&mut self, ev: &TraceEvent) {
        // Uninstrumented fast path: a load from the line the previous
        // load hit (with no intervening store or load miss — both clear
        // the memo) is a guaranteed DTLB + L1-D hit with zero charged
        // cycles; line state cannot have changed in between. Gated off
        // under subblock placement, where load hits are per-word.
        let vline = ev.addr.raw() >> self.d_line_shift;
        if !HOOKS && vline == self.last_load_vline {
            self.counters.loads += 1;
            let p = self.proc_entry(ev.addr.pid());
            p.loads += 1;
            return;
        }
        let diff_before = if HOOKS && self.diff_on {
            Some(self.counters)
        } else {
            None
        };
        let mut cycles = 0u64;
        let l2_before = self.counters.l2i_misses + self.counters.l2d_misses;
        self.counters.loads += 1;
        let vpage = ev.addr.raw() >> PAGE_SHIFT;
        // Same page as the previous data access: guaranteed DTLB hit
        // (only data accesses touch the DTLB; short-circuit skips the
        // probe, which is LRU-exact for a repeated most-recent key).
        let dtlb_hit = (!HOOKS && vpage == self.last_data_vpage) || self.dtlb.access(ev.addr);
        if !HOOKS {
            self.last_data_vpage = vpage;
        }
        if HOOKS {
            if let Some(r) = self.rec.as_deref_mut() {
                r.begin_load(!dtlb_hit);
            }
        }
        if dtlb_hit {
            if HOOKS {
                cycles += self.fault_on_tlb_hit();
            }
        } else {
            self.counters.dtlb_misses += 1;
            let p = self.cfg.tlb_miss_penalty as u64;
            self.counters.tlb_miss_cycles += p;
            cycles += p;
            if HOOKS && self.telem_on {
                self.telem_tlb_walk(false, p);
            }
        }
        let paddr = self.translate(ev.addr);

        let outcome = self.l1d.load(paddr);
        if !HOOKS {
            // A hit leaves the line loadable; a miss refills it fully
            // (clearing any write-only mark), so either way the line is
            // loadable now. Stores clear the memo.
            self.last_load_vline = if self.load_memo_ok { vline } else { u64::MAX };
        }
        if outcome.hit {
            if HOOKS {
                cycles += self.fault_on_l1d_hit(paddr);
            }
        } else {
            self.counters.l1d_read_misses += 1;
            let line_base = outcome.fetch.expect("miss implies fetch");
            if HOOKS {
                if let Some(r) = self.rec.as_deref_mut() {
                    r.load_miss(
                        outcome.replaced_written_line,
                        outcome.writeback_victim.is_some(),
                        line_base.word(),
                    );
                }
            }
            let mut t = self.now + cycles;
            // Wait on *previously pending* writes per the bypass rule; the
            // victim this very miss displaces drains in the background
            // while the refill proceeds (that is what the buffer is for).
            let wait = self.wb_wait_for_d_miss(t, line_base, outcome.replaced_written_line);
            cycles += wait;
            t += wait;
            if let Some(victim) = outcome.writeback_victim {
                let stall = self.enqueue_write(t, victim);
                cycles += stall;
                t += stall;
            }
            cycles += self.service_d_miss(t, line_base);
        }
        self.now += cycles;
        if HOOKS {
            if let Some(before) = diff_before {
                self.diff_note(ev, paddr, before);
            }
        }

        let l2_after = self.counters.l2i_misses + self.counters.l2d_misses;
        let hit = outcome.hit;
        let p = self.proc_entry(ev.addr.pid());
        p.loads += 1;
        p.cycles += cycles;
        if !hit {
            p.l1d_misses += 1;
        }
        p.l2_misses += l2_after - l2_before;
    }

    #[inline]
    fn step_store_impl<const HOOKS: bool>(&mut self, ev: &TraceEvent) {
        let diff_before = if HOOKS && self.diff_on {
            Some(self.counters)
        } else {
            None
        };
        let mut cycles = 0u64;
        let l2_before = self.counters.l2i_misses + self.counters.l2d_misses;
        self.counters.stores += 1;
        let vpage = ev.addr.raw() >> PAGE_SHIFT;
        let dtlb_hit = (!HOOKS && vpage == self.last_data_vpage) || self.dtlb.access(ev.addr);
        if !HOOKS {
            self.last_data_vpage = vpage;
            // Stores change line state (dirty / write-only / valid bits)
            // and may evict, so the load memo cannot survive one.
            self.last_load_vline = u64::MAX;
        }
        if dtlb_hit {
            if HOOKS {
                cycles += self.fault_on_tlb_hit();
            }
        } else {
            self.counters.dtlb_misses += 1;
            let p = self.cfg.tlb_miss_penalty as u64;
            self.counters.tlb_miss_cycles += p;
            cycles += p;
            if HOOKS && self.telem_on {
                self.telem_tlb_walk(false, p);
            }
        }
        let paddr = self.translate(ev.addr);

        let outcome = self.l1d.store(paddr, ev.partial_word);
        if HOOKS {
            if let Some(r) = self.rec.as_deref_mut() {
                r.begin_store(
                    !dtlb_hit,
                    outcome.hit,
                    outcome.extra_cycle,
                    outcome.wb_word.is_some(),
                    outcome.fetch.is_some(),
                    outcome.writeback_victim.is_some(),
                    outcome.replaced_written_line,
                );
            }
        }
        if outcome.hit {
            if HOOKS {
                cycles += self.fault_on_l1d_hit(paddr);
            }
        } else {
            self.counters.l1d_write_misses += 1;
        }
        if outcome.extra_cycle {
            self.counters.l1_write_cycles += 1;
            cycles += 1;
            self.fnow += 1;
        }
        let mut t = self.now + cycles;

        // Write-through: the word enters the write buffer.
        if let Some(word) = outcome.wb_word {
            let stall = self.enqueue_write(t, word);
            cycles += stall;
            t += stall;
        }
        // Write-back allocate: the fetch behaves like a read miss — it
        // waits on previously pending writes, while the victim this miss
        // displaces drains in the background during the refill.
        if let Some(line_base) = outcome.fetch {
            if HOOKS {
                if let Some(r) = self.rec.as_deref_mut() {
                    r.push_addr(line_base.word());
                }
            }
            let wait = self.wb_wait_for_d_miss(t, line_base, outcome.replaced_written_line);
            cycles += wait;
            t += wait;
            if let Some(victim) = outcome.writeback_victim {
                let stall = self.enqueue_write(t, victim);
                cycles += stall;
                t += stall;
            }
            cycles += self.service_d_miss(t, line_base);
        } else if let Some(victim) = outcome.writeback_victim {
            let stall = self.enqueue_write(t, victim);
            cycles += stall;
        }
        self.now += cycles;
        if HOOKS {
            if let Some(before) = diff_before {
                self.diff_note(ev, paddr, before);
            }
        }

        let l2_after = self.counters.l2i_misses + self.counters.l2d_misses;
        let hit = outcome.hit;
        let p = self.proc_entry(ev.addr.pid());
        p.stores += 1;
        p.cycles += cycles;
        if !hit {
            p.l1d_misses += 1;
        }
        p.l2_misses += l2_after - l2_before;
    }
}

/// Convenience: builds a simulator for `cfg` and runs `traces`.
///
/// # Errors
///
/// Returns [`SimError::Config`] when the configuration is invalid, and
/// [`SimError::MachineCheck`] when an injected fault is unrecoverable
/// under the halt policy.
pub fn run(cfg: SimConfig, traces: Vec<Box<dyn Trace>>) -> Result<SimResult, SimError> {
    Simulator::new(cfg)?.run(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaas_cache::WritePolicy;
    use gaas_trace::{Pid, VecTrace};

    fn va(w: u64) -> VirtAddr {
        VirtAddr::new(Pid::new(0), w)
    }

    fn run_events(cfg: SimConfig, events: Vec<TraceEvent>) -> SimResult {
        run(cfg, vec![Box::new(VecTrace::new("t", events))]).expect("valid config")
    }

    fn fetch_heavy(n: u64) -> Vec<TraceEvent> {
        (0..n).map(|i| TraceEvent::ifetch(va(i % 64), 0)).collect()
    }

    #[test]
    fn cancelled_token_stops_run_at_batch_boundary() {
        let token = CancelToken::new();
        token.cancel();
        let mut sim = Simulator::new(SimConfig::baseline()).expect("valid");
        sim.set_cancel_token(token);
        // Enough instructions to cross the first cancellation poll.
        let events = fetch_heavy(3 * super::CANCEL_CHECK_INTERVAL);
        let err = sim
            .run(vec![Box::new(VecTrace::new("t", events))])
            .expect_err("cancelled run must not complete");
        assert_eq!(err, SimError::Cancelled);
    }

    #[test]
    fn untriggered_token_does_not_perturb_run() {
        let events = fetch_heavy(3 * super::CANCEL_CHECK_INTERVAL);
        let plain = run_events(SimConfig::baseline(), events.clone());
        let mut sim = Simulator::new(SimConfig::baseline()).expect("valid");
        sim.set_cancel_token(CancelToken::new());
        let tokened = sim
            .run(vec![Box::new(VecTrace::new("t", events))])
            .expect("runs to completion");
        assert_eq!(plain.counters, tokened.counters);
    }

    #[test]
    fn single_hit_instruction_costs_one_cycle() {
        // Two fetches of the same line: first misses, second hits.
        let r = run_events(
            SimConfig::baseline(),
            vec![TraceEvent::ifetch(va(0), 0), TraceEvent::ifetch(va(1), 0)],
        );
        assert_eq!(r.counters.instructions, 2);
        assert_eq!(r.counters.l1i_misses, 1);
        // Cold L1 miss -> cold L2 miss: 143 cycles total, split 6 + 137.
        assert_eq!(r.counters.l1i_miss_cycles, 6);
        assert_eq!(r.counters.l2i_miss_cycles, 137);
        assert_eq!(r.cycles(), 2 + 143);
    }

    #[test]
    fn l2_hit_costs_access_time() {
        // Touch line 0, evict it from L1 via conflicting fetches, re-touch:
        // second access to line 0 hits L2 (6 cycles), not memory.
        let l1_words = 4096;
        let evs = vec![
            TraceEvent::ifetch(va(0), 0),        // cold: 143
            TraceEvent::ifetch(va(l1_words), 0), // conflicts in L1, cold L2: 143
            TraceEvent::ifetch(va(0), 0),        // L1 miss, L2 hit: 6
        ];
        let r = run_events(SimConfig::baseline(), evs);
        assert_eq!(r.counters.l1i_misses, 3);
        assert_eq!(r.counters.l2i_misses, 2);
        assert_eq!(r.cycles(), 3 + 143 + 143 + 6);
    }

    #[test]
    fn cpu_stalls_accumulate() {
        let evs = vec![TraceEvent::ifetch(va(0), 3), TraceEvent::ifetch(va(1), 2)];
        let r = run_events(SimConfig::baseline(), evs);
        assert_eq!(r.counters.cpu_stall_cycles, 5);
        assert_eq!(r.cycles(), 2 + 5 + 143);
    }

    #[test]
    fn write_back_store_hit_costs_extra_cycle() {
        let mut evs = fetch_heavy(1);
        evs.push(TraceEvent::load(va(0x10000))); // allocate the line (cold miss)
        evs.push(TraceEvent::ifetch(va(1), 0));
        evs.push(TraceEvent::store(va(0x10000))); // write hit: 2 cycles
        let r = run_events(SimConfig::baseline(), evs);
        assert_eq!(r.counters.l1_write_cycles, 1);
        assert_eq!(r.counters.l1d_write_misses, 0);
    }

    #[test]
    fn write_through_store_miss_costs_extra_cycle_and_streams() {
        let mut b = SimConfig::builder();
        b.policy(WritePolicy::WriteOnly);
        let cfg = b.build().expect("valid");
        let evs = vec![
            TraceEvent::ifetch(va(0), 0),
            TraceEvent::store(va(0x10000)), // write miss: tag update, 2 cycles
            TraceEvent::ifetch(va(1), 0),
            TraceEvent::store(va(0x10001)), // write-only hit: 1 cycle
        ];
        let r = run_events(cfg, evs);
        assert_eq!(r.counters.l1d_write_misses, 1);
        assert_eq!(
            r.counters.l1_write_cycles, 1,
            "only the miss pays the extra cycle"
        );
        assert_eq!(r.counters.l2_drain_writes, 2, "both words stream to L2");
    }

    #[test]
    fn i_miss_waits_for_write_buffer_in_base() {
        // Pending write-buffer words make the next instruction miss wait
        // (base rule: both primary caches wait for WB-empty).
        let mut b = SimConfig::builder();
        b.policy(WritePolicy::WriteOnly);
        let cfg = b.build().expect("valid");
        // Warm one line, then issue store hits back-to-back (1 cycle each,
        // drains take 6), then take an I-miss while words are in flight.
        let mut evs = vec![
            TraceEvent::ifetch(va(0), 0),
            TraceEvent::store(va(0x10000)), // miss: adopts the line
        ];
        for i in 0..4 {
            evs.push(TraceEvent::ifetch(va(1), 0));
            evs.push(TraceEvent::store(va(0x10000 + 1 + i)));
        }
        let mut no_stores = vec![TraceEvent::ifetch(va(0), 0)];
        no_stores.push(TraceEvent::ifetch(va(0x20000), 0)); // I miss
        evs.push(TraceEvent::ifetch(va(0x20000), 0)); // I miss behind drains
        let r_with = run_events(cfg.clone(), evs);
        let r_without = run_events(cfg.clone(), no_stores);
        assert!(
            r_with.counters.wb_wait_cycles > r_without.counters.wb_wait_cycles,
            "pending drains must stall the I-miss: {} vs {}",
            r_with.counters.wb_wait_cycles,
            r_without.counters.wb_wait_cycles
        );
    }

    #[test]
    fn accounting_balances_for_random_workload() {
        use gaas_trace::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(42);
        let mut evs = Vec::new();
        for _ in 0..20_000 {
            evs.push(TraceEvent::ifetch(
                va(rng.gen_range(0u64..8192)),
                rng.gen_range(0u8..3),
            ));
            match rng.gen_range(0u8..4) {
                0 => evs.push(TraceEvent::load(va(0x100000 + rng.gen_range(0u64..65536)))),
                1 => evs.push(TraceEvent::store(va(0x100000 + rng.gen_range(0u64..65536)))),
                _ => {}
            }
        }
        for policy in WritePolicy::all() {
            let mut b = SimConfig::builder();
            b.policy(policy);
            let r = run_events(b.build().expect("valid"), evs.clone());
            // run() debug-asserts now == total_cycles; double-check the
            // breakdown sums too.
            let b = r.breakdown();
            assert!(
                (b.total() - r.cpi()).abs() < 1e-9,
                "{policy:?}: breakdown {} vs cpi {}",
                b.total(),
                r.cpi()
            );
        }
    }

    #[test]
    fn optimized_config_runs_and_balances() {
        let evs = fetch_heavy(5_000)
            .into_iter()
            .flat_map(|f| {
                vec![
                    f,
                    TraceEvent::store(va(0x100000 + (f.addr.word() * 7) % 4096)),
                ]
            })
            .collect::<Vec<_>>();
        let r = run_events(SimConfig::optimized(), evs);
        assert!(r.cpi() >= 1.0);
        let b = r.breakdown();
        assert!((b.total() - r.cpi()).abs() < 1e-9);
    }

    #[test]
    fn dirty_buffer_reduces_dirty_miss_cost() {
        // Construct a workload with heavy dirty L2 traffic: write-back
        // policy, stores marching over a large footprint with conflicting
        // re-reads.
        use gaas_trace::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(7);
        let mut evs = Vec::new();
        for _ in 0..30_000 {
            evs.push(TraceEvent::ifetch(va(rng.gen_range(0u64..256)), 0));
            // Large stride to generate L2 misses with dirty victims.
            evs.push(TraceEvent::store(va(
                0x100000 + rng.gen_range(0u64..2_000_000)
            )));
        }
        let base = run_events(SimConfig::baseline(), evs.clone());
        let mut b = SimConfig::builder();
        b.concurrency(crate::config::ConcurrencyConfig {
            l2d_dirty_buffer: true,
            ..Default::default()
        });
        let with_db = run_events(b.build().expect("valid"), evs);
        assert!(
            with_db.cycles() < base.cycles(),
            "dirty buffer should help: {} vs {}",
            with_db.cycles(),
            base.cycles()
        );
    }

    #[test]
    fn tlb_penalty_charged_when_configured() {
        let mut b = SimConfig::builder();
        b.tlb_miss_penalty(20);
        let r = run_events(
            b.build().expect("valid"),
            vec![TraceEvent::ifetch(va(0), 0), TraceEvent::load(va(0x100000))],
        );
        assert_eq!(r.counters.itlb_misses, 1);
        assert_eq!(r.counters.dtlb_misses, 1);
        assert_eq!(r.counters.tlb_miss_cycles, 40);
    }

    #[test]
    fn split_l2_separates_i_and_d() {
        // With a split L2, instruction lines can never be evicted by data
        // traffic.
        let mut b = SimConfig::builder();
        b.l2(L2Config::split_even(262_144, 1, 6));
        let cfg = b.build().expect("valid");
        let mut evs = vec![TraceEvent::ifetch(va(0), 0)];
        // Data sweep that would alias instruction lines in a unified L2.
        for i in 0..16_384u64 {
            evs.push(TraceEvent::ifetch(va(1), 0));
            evs.push(TraceEvent::load(va(0x100000 + i * 32)));
        }
        // Evict line 0 from L1-I (conflict), then re-fetch: L2-I must hit.
        evs.push(TraceEvent::ifetch(va(4096), 0));
        evs.push(TraceEvent::ifetch(va(0), 0));
        let r = run_events(cfg, evs);
        // Misses: va(0) cold, va(4096) cold; the final re-fetch of va(0)
        // hits L2-I (it was never evicted by the data sweep).
        assert_eq!(r.counters.l2i_misses, 2);
        assert_eq!(r.counters.l1i_misses, 3);
    }

    #[test]
    fn result_cpi_matches_cycles_over_instructions() {
        let r = run_events(SimConfig::baseline(), fetch_heavy(100));
        assert!((r.cpi() - r.cycles() as f64 / 100.0).abs() < 1e-12);
    }

    // ---- soft-error injection and recovery ----

    use crate::config::{FaultConfig, MachineCheckPolicy};
    use gaas_cache::fault::{FaultRates, Protection, ProtectionMap, Structure, TargetedFault};

    /// A targeted single fault on `structure` at per-structure access
    /// ordinal `access`, everything else quiet.
    fn targeted(structure: Structure, access: u64) -> FaultConfig {
        FaultConfig {
            targeted: vec![TargetedFault {
                structure,
                access,
                set: 0,
                bit: 0,
            }],
            ..FaultConfig::default()
        }
    }

    #[test]
    fn default_fault_config_is_bit_identical_to_baseline() {
        let evs = fetch_heavy(2_000)
            .into_iter()
            .flat_map(|f| {
                vec![
                    f,
                    TraceEvent::store(va(0x100000 + (f.addr.word() * 13) % 8192)),
                ]
            })
            .collect::<Vec<_>>();
        let plain = run_events(SimConfig::baseline(), evs.clone());
        let mut b = SimConfig::builder();
        b.fault(FaultConfig::default());
        let with_default = run_events(b.build().expect("valid"), evs);
        assert_eq!(plain.counters, with_default.counters);
        assert_eq!(plain.cycles(), with_default.cycles());
    }

    #[test]
    fn parity_on_clean_l1i_line_refetches_and_rehits() {
        let mut fault = targeted(Structure::L1I, 0);
        fault.protection.l1i = Protection::Parity;
        let mut b = SimConfig::builder();
        b.fault(fault);
        // Fetch 1 cold-misses (143, fills L2); fetches 2 and 3 hit. The
        // targeted fault strikes the first L1-I *hit* (injector ordinal 0):
        // parity on a clean line -> invalidate-and-refetch at the real
        // refill cost, an L2-I hit (6 cycles). Fetch 3 re-hits untouched.
        let r = run_events(
            b.build().expect("valid"),
            vec![
                TraceEvent::ifetch(va(0), 0),
                TraceEvent::ifetch(va(0), 0),
                TraceEvent::ifetch(va(0), 0),
            ],
        );
        assert_eq!(r.counters.faults_injected, 1);
        assert_eq!(r.counters.fault_refetches, 1);
        assert_eq!(r.counters.machine_checks, 0);
        assert_eq!(
            r.counters.recovery_cycles, 6,
            "refetch costs the real L2-I hit refill"
        );
        assert_eq!(r.cycles(), 3 + 143 + 6);
        assert!((r.breakdown().total() - r.cpi()).abs() < 1e-12);
        assert!(
            r.breakdown().recovery > 0.0,
            "recovery appears in the CPI stack"
        );
    }

    #[test]
    fn parity_on_dirty_line_machine_checks_under_write_back_but_not_write_only() {
        // load (miss, allocate) / store (hit: injector ordinal 0) /
        // load (hit: ordinal 1 <- the targeted strike).
        let evs = vec![
            TraceEvent::ifetch(va(0), 0),
            TraceEvent::load(va(0x10000)),
            TraceEvent::ifetch(va(1), 0),
            TraceEvent::store(va(0x10000)),
            TraceEvent::ifetch(va(2), 0),
            TraceEvent::load(va(0x10000)),
        ];
        let mut fault = targeted(Structure::L1D, 1);
        fault.protection.l1d = Protection::Parity;

        // Write-back: the struck line is dirty — the only copy. Parity
        // detects but cannot recover: machine check, run halts.
        let mut wb = SimConfig::builder();
        wb.policy(WritePolicy::WriteBack).fault(fault.clone());
        let err = run(
            wb.build().expect("valid"),
            vec![Box::new(VecTrace::new("t", evs.clone()))],
        )
        .expect_err("dirty parity strike must machine-check");
        match err {
            SimError::MachineCheck {
                fault,
                instructions,
                ..
            } => {
                assert_eq!(fault.structure, Structure::L1D);
                assert_eq!(instructions, 3);
            }
            other => panic!("expected machine check, got {other:?}"),
        }

        // Write-only streams every store through the buffer, so the L1
        // copy is clean: the same strike recovers by refetch.
        let mut wo = SimConfig::builder();
        wo.policy(WritePolicy::WriteOnly).fault(fault);
        let r = run(
            wo.build().expect("valid"),
            vec![Box::new(VecTrace::new("t", evs))],
        )
        .expect("write-only recovers");
        assert_eq!(r.counters.fault_refetches, 1);
        assert_eq!(r.counters.machine_checks, 0);
        assert!(r.counters.recovery_cycles > 0);
    }

    #[test]
    fn ecc_correction_charges_exactly_the_configured_penalty() {
        let evs = vec![
            TraceEvent::ifetch(va(0), 0),
            TraceEvent::load(va(0x10000)),
            TraceEvent::ifetch(va(1), 0),
            TraceEvent::load(va(0x10000)), // hit: ordinal 0, struck
        ];
        let clean = run_events(SimConfig::baseline(), evs.clone());

        let mut fault = targeted(Structure::L1D, 0);
        fault.protection.l1d = Protection::Ecc;
        fault.ecc_correction_cycles = 7;
        let mut b = SimConfig::builder();
        b.fault(fault);
        let r = run_events(b.build().expect("valid"), evs);
        assert_eq!(r.counters.faults_corrected, 1);
        assert_eq!(r.counters.recovery_cycles, 7);
        assert_eq!(
            r.cycles(),
            clean.cycles() + 7,
            "exactly the ECC penalty, nothing else"
        );
    }

    #[test]
    fn restart_policy_rolls_back_instead_of_halting() {
        let evs = vec![
            TraceEvent::ifetch(va(0), 0),
            TraceEvent::load(va(0x10000)),
            TraceEvent::ifetch(va(1), 0),
            TraceEvent::store(va(0x10000)),
            TraceEvent::ifetch(va(2), 0),
            TraceEvent::load(va(0x10000)), // dirty strike (ordinal 1)
            TraceEvent::ifetch(va(3), 0),
        ];
        let mut fault = targeted(Structure::L1D, 1);
        fault.protection.l1d = Protection::Parity;
        fault.machine_check = MachineCheckPolicy::Restart;
        let mut b = SimConfig::builder();
        b.policy(WritePolicy::WriteBack).fault(fault);
        let r = run_events(b.build().expect("valid"), evs);
        assert_eq!(r.counters.machine_checks, 1);
        assert!(
            r.counters.recovery_cycles > 0,
            "rollback re-execution is charged"
        );
        assert_eq!(r.completed.len(), 1, "the run continues to completion");
        assert!((r.breakdown().total() - r.cpi()).abs() < 1e-12);
    }

    #[test]
    fn same_seed_reproduces_identical_fault_sites_and_result() {
        let fault = FaultConfig {
            seed: 0xFA17,
            rates: FaultRates::uniform(2e-3),
            protection: ProtectionMap::uniform(Protection::Ecc),
            multi_bit_frac: 0.0, // keep every fault correctable
            ..FaultConfig::default()
        };
        let mut b = SimConfig::builder();
        b.fault(fault);
        let cfg = b.build().expect("valid");
        let evs = fetch_heavy(5_000)
            .into_iter()
            .flat_map(|f| {
                vec![
                    f,
                    TraceEvent::load(va(0x100000 + (f.addr.word() * 7) % 4096)),
                ]
            })
            .collect::<Vec<_>>();
        let a = run_events(cfg.clone(), evs.clone());
        let b = run_events(cfg, evs);
        assert!(a.counters.faults_injected > 0, "rate high enough to fire");
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.cycles(), b.cycles());
    }

    #[test]
    fn watchdog_aborts_runaway_run_with_partial_result() {
        let mut b = SimConfig::builder();
        b.instruction_budget(100);
        let r = run_events(b.build().expect("valid"), fetch_heavy(10_000));
        assert_eq!(r.termination, Termination::BudgetExhausted);
        assert!(!r.is_complete());
        assert_eq!(r.counters.instructions, 100);
        assert!(r.completed.is_empty(), "the benchmark never finished");
        assert!(
            (r.breakdown().total() - r.cpi()).abs() < 1e-12,
            "partial result still balances"
        );
    }

    #[test]
    fn checkpoints_record_monotone_progress() {
        let mut b = SimConfig::builder();
        b.checkpoint_interval(250);
        let r = run_events(b.build().expect("valid"), fetch_heavy(1_000));
        assert_eq!(r.checkpoints.len(), 4);
        for w in r.checkpoints.windows(2) {
            assert!(w[1].cycle > w[0].cycle);
            assert!(w[1].instructions > w[0].instructions);
        }
        assert_eq!(r.checkpoints.last().expect("nonempty").sched.completed, 0);
        assert_eq!(r.termination, Termination::Completed);
    }

    #[test]
    fn sim_error_display_and_source() {
        let cfg_err: SimError = ConfigError::ZeroMultiprogramming.into();
        assert!(cfg_err.to_string().contains("invalid configuration"));
        assert!(std::error::Error::source(&cfg_err).is_some());
        let mc = SimError::MachineCheck {
            fault: gaas_cache::fault::FaultEvent {
                structure: Structure::L1D,
                access: 3,
                set: 1,
                bit: 2,
                multi_bit: false,
                targeted: true,
            },
            cycle: 99,
            instructions: 10,
        };
        let s = mc.to_string();
        assert!(s.contains("machine check") && s.contains("99"));
    }

    #[test]
    fn per_process_attribution_partitions_the_run() {
        // Two interleaved processes: per-process counters must partition
        // instructions and cycles exactly.
        let mk = |pid: u8, n: u64| {
            let evs: Vec<TraceEvent> = (0..n)
                .flat_map(|i| {
                    vec![
                        TraceEvent::ifetch(VirtAddr::new(Pid::new(pid), i % 512), 0),
                        TraceEvent::load(VirtAddr::new(Pid::new(pid), 0x100000 + (i * 3) % 2048)),
                    ]
                })
                .collect();
            Box::new(VecTrace::new(format!("p{pid}"), evs)) as Box<dyn Trace>
        };
        let mut b = SimConfig::builder();
        b.mp_level(2).time_slice(500);
        let r = run(b.build().expect("valid"), vec![mk(1, 3000), mk(2, 2000)]).expect("valid");

        assert_eq!(r.per_process.len(), 2);
        let total_instr: u64 = r.per_process.iter().map(|(_, p)| p.instructions).sum();
        let total_cycles: u64 = r.per_process.iter().map(|(_, p)| p.cycles).sum();
        assert_eq!(total_instr, r.counters.instructions);
        assert_eq!(total_cycles, r.cycles(), "cycles partition exactly");
        let p1 = r
            .per_process
            .iter()
            .find(|(pid, _)| pid.raw() == 1)
            .expect("pid 1")
            .1;
        assert_eq!(p1.instructions, 3000);
        assert_eq!(p1.loads, 3000);
        assert!(p1.cpi() >= 1.0);
    }
}
