//! Architecture configuration: every knob the design study turns.
//!
//! [`SimConfig`] describes one point in the paper's design space. Two
//! presets anchor the study: [`SimConfig::baseline`] (§2, Fig. 1) and
//! [`SimConfig::optimized`] (§9, Fig. 11); every figure's sweep is a set of
//! builder edits away from one of them.

use std::fmt;

use gaas_cache::fault::{FaultRates, ProtectionMap, TargetedFault};
use gaas_cache::{CacheGeometry, GeometryError, MainMemory, WritePolicy};

/// Geometry of a primary cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Total size in words (base: 4 KW).
    pub size_words: u64,
    /// Line length in words — fetch size equals line size (base: 4 W;
    /// §8 finds 8 W optimal).
    pub line_words: u32,
    /// Associativity (the study holds L1 direct-mapped; other values are
    /// supported for the §5 what-if sweeps).
    pub assoc: u32,
}

impl L1Config {
    /// The base architecture's 4 KW direct-mapped cache with 4 W lines.
    pub fn base() -> Self {
        L1Config {
            size_words: 4096,
            line_words: 4,
            assoc: 1,
        }
    }

    /// Converts to a validated [`CacheGeometry`].
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the fields are inconsistent.
    pub fn geometry(&self) -> Result<CacheGeometry, GeometryError> {
        CacheGeometry::new(self.size_words, self.line_words, self.assoc)
    }
}

/// One side (instruction or data) of the secondary cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Side {
    /// Size in words.
    pub size_words: u64,
    /// Associativity (1 or 2 in the study; 2-way costs one extra cycle).
    pub assoc: u32,
    /// Line length in words (32 W throughout the paper).
    pub line_words: u32,
    /// Read/write access time in CPU cycles, including the 2-cycle
    /// latency for tag checking and L1↔L2 communication.
    pub access_cycles: u32,
}

impl L2Side {
    /// Converts to a validated [`CacheGeometry`].
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the fields are inconsistent.
    pub fn geometry(&self) -> Result<CacheGeometry, GeometryError> {
        CacheGeometry::new(self.size_words, self.line_words, self.assoc)
    }
}

/// Organization of the secondary cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Config {
    /// A single array shared by instructions and data (base architecture).
    Unified(L2Side),
    /// Logically or physically split instruction/data halves (§7).
    Split {
        /// The instruction half.
        i: L2Side,
        /// The data half.
        d: L2Side,
    },
}

impl L2Config {
    /// The base architecture's unified, direct-mapped 256 KW, 6-cycle L2.
    pub fn base() -> Self {
        L2Config::Unified(L2Side {
            size_words: 262_144,
            assoc: 1,
            line_words: 32,
            access_cycles: 6,
        })
    }

    /// A logically split cache of `total_words`: the high-order index bit
    /// interleaves instruction and data halves, so each half has half the
    /// capacity and the same access time (§7).
    pub fn split_even(total_words: u64, assoc: u32, access_cycles: u32) -> Self {
        let half = L2Side {
            size_words: total_words / 2,
            assoc,
            line_words: 32,
            access_cycles,
        };
        L2Config::Split { i: half, d: half }
    }

    /// The §7 physically split configuration: a 32 KW two-cycle L2-I on
    /// the MCM (built from the fast 1 K × 32 SRAMs) and a 256 KW six-cycle
    /// L2-D off the MCM.
    pub fn split_fast_i() -> Self {
        L2Config::Split {
            i: L2Side {
                size_words: 32_768,
                assoc: 1,
                line_words: 32,
                access_cycles: 2,
            },
            d: L2Side {
                size_words: 262_144,
                assoc: 1,
                line_words: 32,
                access_cycles: 6,
            },
        }
    }

    /// True for split organizations.
    pub fn is_split(&self) -> bool {
        matches!(self, L2Config::Split { .. })
    }

    /// The side servicing instruction fetches.
    pub fn i_side(&self) -> L2Side {
        match *self {
            L2Config::Unified(s) => s,
            L2Config::Split { i, .. } => i,
        }
    }

    /// The side servicing data accesses (and write-buffer drains).
    pub fn d_side(&self) -> L2Side {
        match *self {
            L2Config::Unified(s) => s,
            L2Config::Split { d, .. } => d,
        }
    }
}

/// How data-read misses interact with pending writes in the write buffer
/// (§9, "loads passing stores").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WbBypass {
    /// Base rule: every L1-D miss waits for the write buffer to empty.
    #[default]
    Wait,
    /// Full associative matching: a read miss waits only when the buffer
    /// holds a word of the missed line (and then only until that entry —
    /// and everything ahead of it — drains).
    Associative,
    /// The paper's cheap scheme: no matching; the buffer is flushed
    /// (waited on) only when a written line is *replaced* in L1-D. Sound
    /// because the write-only policy allocates a line for every write, so
    /// the buffer can only hold words of lines currently marked written.
    DirtyBit,
}

/// Memory-system concurrency switches (§9, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConcurrencyConfig {
    /// With a split L2, refill L1-I from L2-I while the write buffer keeps
    /// draining into L2-D (instruction misses stop waiting for WB-empty).
    pub concurrent_i_refill: bool,
    /// Data-read bypass policy for the write buffer.
    pub d_read_bypass: WbBypass,
    /// Single 32 W dirty buffer on L2-D: read the missed line before
    /// writing back the dirty victim.
    pub l2d_dirty_buffer: bool,
}

/// Write-buffer shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteBufferConfig {
    /// Number of entries.
    pub depth: usize,
    /// Entry width in words (4 W victim lines for write-back, 1 W words
    /// for write-through).
    pub width_words: u32,
}

impl WriteBufferConfig {
    /// The natural buffer for a policy: 4-deep × 4 W for write-back,
    /// 8-deep × 1 W for the write-through policies (§6).
    pub fn for_policy(policy: WritePolicy) -> Self {
        if policy.is_write_through() {
            WriteBufferConfig {
                depth: 8,
                width_words: 1,
            }
        } else {
            WriteBufferConfig {
                depth: 4,
                width_words: 4,
            }
        }
    }
}

/// Multiprogramming parameters (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpConfig {
    /// Number of processes resident at once (the paper settles on 8).
    pub level: usize,
    /// Round-robin time slice in CPU cycles (the paper settles on 500 000).
    pub time_slice_cycles: u64,
}

impl MpConfig {
    /// The paper's chosen operating point: level 8, 500 k-cycle slice.
    pub fn base() -> Self {
        MpConfig {
            level: 8,
            time_slice_cycles: 500_000,
        }
    }
}

/// What the simulated machine does when a fault is detected but cannot be
/// repaired in place (dirty data under parity, double-bit flip under ECC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MachineCheckPolicy {
    /// Stop the simulation: `run` returns a machine-check error carrying
    /// the fault site and the partial result.
    #[default]
    Halt,
    /// Model checkpoint/restart recovery: roll back to the last
    /// checkpoint, charge the lost cycles as recovery stall, and continue.
    Restart,
}

/// Soft-error injection and recovery configuration.
///
/// The default is *off* — zero rates, no targeted faults — and the
/// simulator takes the exact non-fault code path, producing bit-identical
/// results to a build without fault support.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the injector's PRNG; same seed + same config ⇒ identical
    /// fault sites and results.
    pub seed: u64,
    /// Per-access fault probability for each structure.
    pub rates: FaultRates,
    /// Protection scheme per structure.
    pub protection: ProtectionMap,
    /// Probability that a random upset flips two bits (escaping parity,
    /// defeating SEC correction).
    pub multi_bit_frac: f64,
    /// Cycles charged for an in-place ECC single-bit correction.
    pub ecc_correction_cycles: u32,
    /// Response to unrecoverable faults.
    pub machine_check: MachineCheckPolicy,
    /// Directed faults ("flip bit N of set S at access K").
    pub targeted: Vec<TargetedFault>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            rates: FaultRates::default(),
            protection: ProtectionMap::default(),
            multi_bit_frac: 0.0,
            ecc_correction_cycles: 1,
            machine_check: MachineCheckPolicy::default(),
            targeted: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// True when this configuration can ever inject a fault.
    pub fn enabled(&self) -> bool {
        self.rates.any_nonzero() || !self.targeted.is_empty()
    }
}

/// A deliberate state corruption the simulator applies to *itself* so the
/// differential oracle can prove it detects real divergences (the canary
/// of the verification harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededBug {
    /// Flip the dirty bit of the L1-D line holding the most recent data
    /// address.
    FlipL1dDirty,
    /// Silently drop the youngest write-buffer entry.
    DropWriteBufferEntry,
    /// Invalidate the L1-I line holding the most recent fetch address.
    InvalidateL1i,
}

/// When and how to seed a deliberate bug (see [`SeededBug`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededBugSpec {
    /// Access index (fetches + loads + stores, 0-based) at or after which
    /// the corruption is applied (it is applied at the first access from
    /// this index on where the targeted state exists).
    pub access: u64,
    /// The corruption to apply.
    pub kind: SeededBug,
}

/// Configuration of the lockstep golden-model differential oracle.
///
/// When `enabled`, the simulator runs a small functional reference model
/// of the whole hierarchy in lockstep and cross-checks every access; see
/// the `oracle` module. The default is *off* and costs nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffCheckConfig {
    /// Master switch for lockstep cross-checking.
    pub enabled: bool,
    /// Run a full structural-equivalence sweep (cache contents, write
    /// buffer order, inclusion) every this many accesses; 0 checks only
    /// per-access classifications.
    pub state_check_interval: u64,
    /// Number of most recent trace events kept for the divergence report's
    /// repro window.
    pub window: usize,
    /// Optional deliberate corruption for canary tests.
    pub seeded_bug: Option<SeededBugSpec>,
}

impl Default for DiffCheckConfig {
    fn default() -> Self {
        DiffCheckConfig {
            enabled: false,
            state_check_interval: 1024,
            window: 32,
            seeded_bug: None,
        }
    }
}

impl DiffCheckConfig {
    /// An enabled oracle with the default check cadence.
    pub fn on() -> Self {
        DiffCheckConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// Configuration of the telemetry subsystem (counters, spans, windowed
/// CPI stacks; see `gaas-telemetry` and DESIGN.md §11).
///
/// The default is *off*: the simulator caches the flag once at
/// construction (like the fault/diffcheck gates) and the hot path pays
/// one predictable never-taken branch, so disabled runs are
/// byte-identical to a build without telemetry at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch for counter/span/window recording.
    pub enabled: bool,
    /// Windowed CPI-stack granularity in retired instructions (the
    /// functional clock drives window boundaries, so windows are
    /// deterministic).
    pub window_instructions: u64,
    /// Ring-buffer capacity of the span recorder; once full, the oldest
    /// spans are evicted and counted as dropped.
    pub span_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            window_instructions: 100_000,
            span_capacity: 65_536,
        }
    }
}

impl TelemetryConfig {
    /// Enabled telemetry with the default window and span capacity.
    pub fn on() -> Self {
        TelemetryConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// Maximum core count the CMP frontier supports (the sharing trace model
/// reserves one PID per benchmark per core within the 8-bit PID space,
/// and the snoop-bus/directory sharer masks are one byte wide).
pub const MAX_CORES: u32 = 8;

/// Chip-multiprocessor extension: N per-core L1 I/D caches in front of
/// the shared L2, kept coherent by a MESI invalidation protocol (see
/// DESIGN.md §16 and the `gaas-coherence` crate).
///
/// The default is a single core with sharing off, which is *defined* to
/// be the paper's single-CPU machine: a 1-core CMP run is byte-identical
/// to the base simulator (test-enforced), so every CMP result is anchored
/// to the validated single-CPU model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmpConfig {
    /// Number of cores sharing the L2 (1 = the paper's single-CPU
    /// machine; at most [`MAX_CORES`]).
    pub cores: u32,
    /// Fraction of each core's data references redirected into the
    /// shared footprint (`[0, 1]`; 0 disables sharing entirely).
    pub shared_frac: f64,
    /// Size of the shared data footprint in words.
    pub shared_words: u64,
    /// Shared data references between migrations of a core's hot window
    /// inside the shared footprint (0 = affinity never migrates). Smaller
    /// intervals mean more cross-core overlap and invalidation traffic.
    pub migration_interval: u64,
    /// Cycles a cache-to-cache transfer (remote Modified owner supplies
    /// the line) adds to the requester's miss service.
    pub c2c_transfer_cycles: u32,
    /// Cycles charged to the writer for each remote copy invalidated.
    pub invalidate_cycles: u32,
    /// Cycles each coherence transaction occupies the snoop bus; a core
    /// stalls while the bus is busy with *other* cores' transactions.
    pub snoop_bus_cycles: u32,
}

impl Default for CmpConfig {
    fn default() -> Self {
        CmpConfig {
            cores: 1,
            shared_frac: 0.0,
            shared_words: 16_384,
            migration_interval: 0,
            c2c_transfer_cycles: 8,
            invalidate_cycles: 2,
            snoop_bus_cycles: 3,
        }
    }
}

impl CmpConfig {
    /// A CMP of `cores` cores with the default sharing knobs (sharing
    /// off; turn it on via `shared_frac`).
    pub fn with_cores(cores: u32) -> Self {
        CmpConfig {
            cores,
            ..Default::default()
        }
    }

    /// True when this configuration needs the coherence engine: more
    /// than one core, or any data references directed into the shared
    /// footprint.
    pub fn enabled(&self) -> bool {
        self.cores > 1 || self.shared_frac > 0.0
    }
}

/// Error returned by [`SimConfigBuilder::build`] for inconsistent
/// configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A cache geometry was invalid.
    Geometry(GeometryError),
    /// The dirty-bit bypass requires a policy under which every write
    /// allocates a line (write-only or subblock).
    DirtyBitNeedsWriteAllocate(WritePolicy),
    /// The write-through policies' one-cycle write trick (write the data
    /// array while the tag is checked) only identifies the corrupted way in
    /// a direct-mapped cache.
    WriteThroughNeedsDirectMappedL1(WritePolicy),
    /// Concurrent instruction refill requires a split L2.
    ConcurrentRefillNeedsSplitL2,
    /// The multiprogramming level must be positive.
    ZeroMultiprogramming,
    /// An L2 access time below the 2-cycle latency floor.
    L2AccessBelowLatency(u32),
    /// A fault probability outside `[0, 1]` (or not finite).
    InvalidFaultRate(f64),
    /// An instruction budget of zero (use `None` to disable the watchdog).
    ZeroInstructionBudget,
    /// A write buffer with no slots (every policy needs at least one).
    ZeroWriteBufferDepth,
    /// A page-color count that is zero or not a power of two (the mapper
    /// masks color bits, so only powers of two are meaningful).
    InvalidPageColors(u64),
    /// The differential oracle and fault injection are mutually exclusive:
    /// injected faults corrupt cache state by design, which the reference
    /// model would (correctly) flag as divergence.
    DiffCheckWithFaultInjection,
    /// A seeded canary corruption without the oracle enabled would corrupt
    /// simulator state with nothing watching for it.
    SeededBugWithoutOracle,
    /// Telemetry enabled with a zero instruction window (the windowed
    /// CPI stack needs a positive granularity).
    ZeroTelemetryWindow,
    /// A core count of zero or above [`MAX_CORES`].
    InvalidCoreCount(u32),
    /// A shared-footprint fraction outside `[0, 1]` (or not finite).
    InvalidSharedFraction(f64),
    /// A positive shared fraction with an empty shared footprint.
    ZeroSharedFootprint,
    /// The coherence engine and fault injection are mutually exclusive
    /// (the MESI directory has no recovery model for corrupted lines).
    CmpWithFaultInjection,
    /// The coherence engine does not implement the telemetry hook sites;
    /// CMP runs report through counters and CPI stacks instead.
    CmpWithTelemetry,
    /// The coherence engine does not support mid-run checkpointing.
    CmpWithCheckpointing,
    /// Seeded canary bugs target the single-CPU golden model, not the
    /// coherence oracle.
    CmpWithSeededBug,
    /// A coherence-enabled configuration was handed to the single-CPU
    /// simulator; route it through `gaas-coherence` instead. (Never
    /// returned by validation — only by `Simulator::new`.)
    CmpRequiresCoherenceEngine,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Geometry(e) => write!(f, "{e}"),
            ConfigError::DirtyBitNeedsWriteAllocate(p) => write!(
                f,
                "dirty-bit write-buffer bypass requires a write-allocating write-through policy, got {}",
                p.label()
            ),
            ConfigError::WriteThroughNeedsDirectMappedL1(p) => write!(
                f,
                "the {} policy writes data while checking the tag, which requires a direct-mapped L1-D",
                p.label()
            ),
            ConfigError::ConcurrentRefillNeedsSplitL2 => {
                write!(f, "concurrent instruction refill requires a split L2")
            }
            ConfigError::ZeroMultiprogramming => {
                write!(f, "multiprogramming level must be at least 1")
            }
            ConfigError::L2AccessBelowLatency(t) => {
                write!(f, "L2 access time {t} is below the 2-cycle tag/communication latency")
            }
            ConfigError::InvalidFaultRate(r) => {
                write!(f, "fault probability {r} is not in [0, 1]")
            }
            ConfigError::ZeroInstructionBudget => {
                write!(f, "instruction budget must be positive (use None to disable)")
            }
            ConfigError::ZeroWriteBufferDepth => {
                write!(f, "write buffer needs at least one slot")
            }
            ConfigError::InvalidPageColors(n) => {
                write!(f, "page colors {n} must be a nonzero power of two")
            }
            ConfigError::DiffCheckWithFaultInjection => {
                write!(
                    f,
                    "the differential oracle cannot run with fault injection enabled \
                     (injected faults corrupt state by design)"
                )
            }
            ConfigError::SeededBugWithoutOracle => {
                write!(
                    f,
                    "a seeded canary corruption requires the differential oracle \
                     (nothing else would detect it)"
                )
            }
            ConfigError::ZeroTelemetryWindow => {
                write!(
                    f,
                    "telemetry window must be a positive instruction count"
                )
            }
            ConfigError::InvalidCoreCount(n) => {
                write!(f, "core count {n} must be between 1 and {MAX_CORES}")
            }
            ConfigError::InvalidSharedFraction(r) => {
                write!(f, "shared-footprint fraction {r} is not in [0, 1]")
            }
            ConfigError::ZeroSharedFootprint => {
                write!(f, "a positive shared fraction needs a nonzero shared footprint")
            }
            ConfigError::CmpWithFaultInjection => {
                write!(f, "the coherence engine cannot run with fault injection enabled")
            }
            ConfigError::CmpWithTelemetry => {
                write!(f, "the coherence engine does not implement telemetry hook sites")
            }
            ConfigError::CmpWithCheckpointing => {
                write!(f, "the coherence engine does not support checkpointing")
            }
            ConfigError::CmpWithSeededBug => {
                write!(f, "seeded canary bugs target the single-CPU oracle, not the CMP path")
            }
            ConfigError::CmpRequiresCoherenceEngine => {
                write!(
                    f,
                    "coherence-enabled configurations must run on the gaas-coherence engine, \
                     not the single-CPU simulator"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<GeometryError> for ConfigError {
    fn from(e: GeometryError) -> Self {
        ConfigError::Geometry(e)
    }
}

/// A complete, validated architecture description.
///
/// # Examples
///
/// ```
/// use gaas_sim::{config::{L2Config, SimConfig}, WritePolicy};
///
/// # fn main() -> Result<(), gaas_sim::ConfigError> {
/// // Start from the baseline and apply the paper's §6/§7 decisions.
/// let mut b = SimConfig::builder();
/// b.policy(WritePolicy::WriteOnly).l2(L2Config::split_fast_i());
/// let cfg = b.build()?;
/// assert!(cfg.l2.is_split());
/// assert_eq!(cfg.write_buffer.depth, 8, "write-through buffer derived");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Primary instruction cache.
    pub l1i: L1Config,
    /// Primary data cache.
    pub l1d: L1Config,
    /// Primary data-cache write policy.
    pub policy: WritePolicy,
    /// Secondary cache organization.
    pub l2: L2Config,
    /// Write buffer shape.
    pub write_buffer: WriteBufferConfig,
    /// Concurrency mechanisms.
    pub concurrency: ConcurrencyConfig,
    /// Main-memory penalties.
    pub memory: MainMemory,
    /// Multiprogramming parameters.
    pub mp: MpConfig,
    /// Cycles charged per TLB miss (0 in the paper's accounting).
    pub tlb_miss_penalty: u32,
    /// Page colors for the virtual-to-physical mapper.
    pub page_colors: u64,
    /// Overrides the *effective L2 access time for write-buffer drains*
    /// without changing the read-miss service path. This is the quantity
    /// Fig. 5 sweeps from 2 to 10 cycles ("changes in L2 cache size can be
    /// related to changes in effective L2 cache access time"). `None` uses
    /// the data side's access time.
    pub l2_drain_access_override: Option<u32>,
    /// Soft-error injection and recovery (default: off).
    pub fault: FaultConfig,
    /// Watchdog: abort the run (returning a partial result) once this many
    /// instructions have retired. `None` disables the watchdog.
    pub instruction_budget: Option<u64>,
    /// Checkpoint every this many instructions (counters + scheduler
    /// snapshot), enabling progress reporting and machine-check restart.
    /// `0` disables checkpointing (restart then rolls back to the start of
    /// the current sampling window).
    pub checkpoint_interval: u64,
    /// Lockstep golden-model differential oracle (default: off).
    pub diffcheck: DiffCheckConfig,
    /// Telemetry: counters, spans, windowed CPI stacks (default: off).
    pub telemetry: TelemetryConfig,
    /// Chip-multiprocessor extension: core count and sharing knobs
    /// (default: 1 core, sharing off — the paper's single-CPU machine).
    pub cmp: CmpConfig,
}

impl SimConfig {
    /// The §2 base architecture (Fig. 1).
    pub fn baseline() -> Self {
        SimConfig {
            l1i: L1Config::base(),
            l1d: L1Config::base(),
            policy: WritePolicy::WriteBack,
            l2: L2Config::base(),
            write_buffer: WriteBufferConfig::for_policy(WritePolicy::WriteBack),
            concurrency: ConcurrencyConfig::default(),
            memory: MainMemory::base(),
            mp: MpConfig::base(),
            tlb_miss_penalty: 0,
            page_colors: 256,
            l2_drain_access_override: None,
            fault: FaultConfig::default(),
            instruction_budget: None,
            checkpoint_interval: 0,
            diffcheck: DiffCheckConfig::default(),
            telemetry: TelemetryConfig::default(),
            cmp: CmpConfig::default(),
        }
    }

    /// The §9 optimized architecture (Fig. 11): write-only policy, 8 W L1
    /// lines, fast split L2-I on the MCM, concurrent I-refill, dirty-bit
    /// read bypass, and the L2-D dirty buffer.
    pub fn optimized() -> Self {
        SimConfig {
            l1i: L1Config {
                size_words: 4096,
                line_words: 8,
                assoc: 1,
            },
            l1d: L1Config {
                size_words: 4096,
                line_words: 8,
                assoc: 1,
            },
            policy: WritePolicy::WriteOnly,
            l2: L2Config::split_fast_i(),
            write_buffer: WriteBufferConfig::for_policy(WritePolicy::WriteOnly),
            concurrency: ConcurrencyConfig {
                concurrent_i_refill: true,
                d_read_bypass: WbBypass::DirtyBit,
                l2d_dirty_buffer: true,
            },
            memory: MainMemory::base(),
            mp: MpConfig::base(),
            tlb_miss_penalty: 0,
            page_colors: 256,
            l2_drain_access_override: None,
            fault: FaultConfig::default(),
            instruction_budget: None,
            checkpoint_interval: 0,
            diffcheck: DiffCheckConfig::default(),
            telemetry: TelemetryConfig::default(),
            cmp: CmpConfig::default(),
        }
    }

    /// Starts a builder seeded from this configuration.
    pub fn to_builder(&self) -> SimConfigBuilder {
        SimConfigBuilder { cfg: self.clone() }
    }

    /// Starts a builder seeded from the baseline.
    pub fn builder() -> SimConfigBuilder {
        Self::baseline().to_builder()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.l1i.geometry()?;
        self.l1d.geometry()?;
        // Access times of 1 cycle are admitted for the Fig. 7/8 speed-size
        // what-if sweeps (a hypothetical on-MCM L2 with no communication
        // latency); zero is meaningless.
        for side in [self.l2.i_side(), self.l2.d_side()] {
            side.geometry()?;
            if side.access_cycles < 1 {
                return Err(ConfigError::L2AccessBelowLatency(side.access_cycles));
            }
        }
        if let Some(t) = self.l2_drain_access_override {
            if t < 2 {
                return Err(ConfigError::L2AccessBelowLatency(t));
            }
        }
        if self.policy.is_write_through() && self.l1d.assoc != 1 {
            return Err(ConfigError::WriteThroughNeedsDirectMappedL1(self.policy));
        }
        if self.concurrency.d_read_bypass == WbBypass::DirtyBit
            && !matches!(self.policy, WritePolicy::WriteOnly | WritePolicy::Subblock)
        {
            return Err(ConfigError::DirtyBitNeedsWriteAllocate(self.policy));
        }
        if self.concurrency.concurrent_i_refill && !self.l2.is_split() {
            return Err(ConfigError::ConcurrentRefillNeedsSplitL2);
        }
        if self.mp.level == 0 {
            return Err(ConfigError::ZeroMultiprogramming);
        }
        if !self.fault.rates.is_valid() {
            let bad = gaas_cache::fault::Structure::ALL
                .iter()
                .map(|&s| self.fault.rates.get(s))
                .find(|r| !r.is_finite() || !(0.0..=1.0).contains(r))
                .unwrap_or(f64::NAN);
            return Err(ConfigError::InvalidFaultRate(bad));
        }
        let frac = self.fault.multi_bit_frac;
        if !frac.is_finite() || !(0.0..=1.0).contains(&frac) {
            return Err(ConfigError::InvalidFaultRate(frac));
        }
        if self.instruction_budget == Some(0) {
            return Err(ConfigError::ZeroInstructionBudget);
        }
        if self.write_buffer.depth == 0 {
            return Err(ConfigError::ZeroWriteBufferDepth);
        }
        if self.page_colors == 0 || !self.page_colors.is_power_of_two() {
            return Err(ConfigError::InvalidPageColors(self.page_colors));
        }
        if self.diffcheck.enabled && self.fault.enabled() {
            return Err(ConfigError::DiffCheckWithFaultInjection);
        }
        if self.diffcheck.seeded_bug.is_some() && !self.diffcheck.enabled {
            return Err(ConfigError::SeededBugWithoutOracle);
        }
        if self.telemetry.enabled && self.telemetry.window_instructions == 0 {
            return Err(ConfigError::ZeroTelemetryWindow);
        }
        if self.cmp.cores == 0 || self.cmp.cores > MAX_CORES {
            return Err(ConfigError::InvalidCoreCount(self.cmp.cores));
        }
        let frac = self.cmp.shared_frac;
        if !frac.is_finite() || !(0.0..=1.0).contains(&frac) {
            return Err(ConfigError::InvalidSharedFraction(frac));
        }
        if frac > 0.0 && self.cmp.shared_words == 0 {
            return Err(ConfigError::ZeroSharedFootprint);
        }
        if self.cmp.enabled() {
            if self.fault.enabled() {
                return Err(ConfigError::CmpWithFaultInjection);
            }
            if self.telemetry.enabled {
                return Err(ConfigError::CmpWithTelemetry);
            }
            if self.checkpoint_interval != 0 {
                return Err(ConfigError::CmpWithCheckpointing);
            }
            if self.diffcheck.seeded_bug.is_some() {
                return Err(ConfigError::CmpWithSeededBug);
            }
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::baseline()
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "L1-I {}KW/{}W/{}-way, L1-D {}KW/{}W/{}-way, {} policy",
            self.l1i.size_words / 1024,
            self.l1i.line_words,
            self.l1i.assoc,
            self.l1d.size_words / 1024,
            self.l1d.line_words,
            self.l1d.assoc,
            self.policy.label()
        )?;
        match self.l2 {
            L2Config::Unified(s) => writeln!(
                f,
                "L2 unified {}KW/{}W/{}-way, {} cycles",
                s.size_words / 1024,
                s.line_words,
                s.assoc,
                s.access_cycles
            )?,
            L2Config::Split { i, d } => writeln!(
                f,
                "L2 split: I {}KW/{} cycles, D {}KW/{} cycles ({}W lines, {}-way)",
                i.size_words / 1024,
                i.access_cycles,
                d.size_words / 1024,
                d.access_cycles,
                d.line_words,
                d.assoc
            )?,
        }
        writeln!(
            f,
            "WB {}x{}W; memory {}({}) cycles; MP level {} / slice {} cycles",
            self.write_buffer.depth,
            self.write_buffer.width_words,
            self.memory.clean_miss_cycles,
            self.memory.dirty_miss_cycles,
            self.mp.level,
            self.mp.time_slice_cycles
        )?;
        let c = &self.concurrency;
        write!(
            f,
            "concurrency: I-refill {}, D-read bypass {:?}, dirty buffer {}",
            if c.concurrent_i_refill { "on" } else { "off" },
            c.d_read_bypass,
            if c.l2d_dirty_buffer { "on" } else { "off" }
        )?;
        if self.cmp.enabled() {
            write!(
                f,
                "\nCMP: {} cores, shared {:.0}% of {}KW, migrate/{} refs",
                self.cmp.cores,
                self.cmp.shared_frac * 100.0,
                self.cmp.shared_words / 1024,
                self.cmp.migration_interval
            )?;
        }
        Ok(())
    }
}

/// Non-consuming builder over [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Sets both L1 caches' size in words.
    pub fn l1_size(&mut self, words: u64) -> &mut Self {
        self.cfg.l1i.size_words = words;
        self.cfg.l1d.size_words = words;
        self
    }

    /// Sets both L1 caches' line (= fetch) size in words.
    pub fn l1_line(&mut self, words: u32) -> &mut Self {
        self.cfg.l1i.line_words = words;
        self.cfg.l1d.line_words = words;
        self
    }

    /// Sets both L1 caches' associativity.
    pub fn l1_assoc(&mut self, assoc: u32) -> &mut Self {
        self.cfg.l1i.assoc = assoc;
        self.cfg.l1d.assoc = assoc;
        self
    }

    /// Sets the L1-I configuration.
    pub fn l1i(&mut self, cfg: L1Config) -> &mut Self {
        self.cfg.l1i = cfg;
        self
    }

    /// Sets the L1-D configuration.
    pub fn l1d(&mut self, cfg: L1Config) -> &mut Self {
        self.cfg.l1d = cfg;
        self
    }

    /// Sets the write policy and re-derives the matching write buffer.
    pub fn policy(&mut self, policy: WritePolicy) -> &mut Self {
        self.cfg.policy = policy;
        self.cfg.write_buffer = WriteBufferConfig::for_policy(policy);
        self
    }

    /// Sets the L2 organization.
    pub fn l2(&mut self, l2: L2Config) -> &mut Self {
        self.cfg.l2 = l2;
        self
    }

    /// Overrides both L2 sides' access time (or the unified access time).
    pub fn l2_access(&mut self, cycles: u32) -> &mut Self {
        self.cfg.l2 = match self.cfg.l2 {
            L2Config::Unified(mut s) => {
                s.access_cycles = cycles;
                L2Config::Unified(s)
            }
            L2Config::Split { mut i, mut d } => {
                i.access_cycles = cycles;
                d.access_cycles = cycles;
                L2Config::Split { i, d }
            }
        };
        self
    }

    /// Overrides the write-buffer shape.
    pub fn write_buffer(&mut self, wb: WriteBufferConfig) -> &mut Self {
        self.cfg.write_buffer = wb;
        self
    }

    /// Sets the concurrency switches.
    pub fn concurrency(&mut self, c: ConcurrencyConfig) -> &mut Self {
        self.cfg.concurrency = c;
        self
    }

    /// Sets the main-memory penalties.
    pub fn memory(&mut self, m: MainMemory) -> &mut Self {
        self.cfg.memory = m;
        self
    }

    /// Sets the multiprogramming level.
    pub fn mp_level(&mut self, level: usize) -> &mut Self {
        self.cfg.mp.level = level;
        self
    }

    /// Sets the time slice in cycles.
    pub fn time_slice(&mut self, cycles: u64) -> &mut Self {
        self.cfg.mp.time_slice_cycles = cycles;
        self
    }

    /// Sets the TLB miss penalty in cycles.
    pub fn tlb_miss_penalty(&mut self, cycles: u32) -> &mut Self {
        self.cfg.tlb_miss_penalty = cycles;
        self
    }

    /// Overrides the effective L2 access time seen by write-buffer drains
    /// (the Fig. 5 sweep variable).
    pub fn l2_drain_access(&mut self, cycles: u32) -> &mut Self {
        self.cfg.l2_drain_access_override = Some(cycles);
        self
    }

    /// Sets the soft-error injection and recovery configuration.
    pub fn fault(&mut self, fault: FaultConfig) -> &mut Self {
        self.cfg.fault = fault;
        self
    }

    /// Sets the instruction-budget watchdog (aborts runaway simulations
    /// with a partial result).
    pub fn instruction_budget(&mut self, instructions: u64) -> &mut Self {
        self.cfg.instruction_budget = Some(instructions);
        self
    }

    /// Sets the checkpoint interval in instructions (0 disables).
    pub fn checkpoint_interval(&mut self, instructions: u64) -> &mut Self {
        self.cfg.checkpoint_interval = instructions;
        self
    }

    /// Sets the page-color count of the virtual-to-physical mapper.
    pub fn page_colors(&mut self, colors: u64) -> &mut Self {
        self.cfg.page_colors = colors;
        self
    }

    /// Sets the differential-oracle configuration.
    pub fn diffcheck(&mut self, d: DiffCheckConfig) -> &mut Self {
        self.cfg.diffcheck = d;
        self
    }

    /// Sets the telemetry configuration.
    pub fn telemetry(&mut self, t: TelemetryConfig) -> &mut Self {
        self.cfg.telemetry = t;
        self
    }

    /// Sets the chip-multiprocessor configuration (core count and
    /// sharing knobs).
    pub fn cmp(&mut self, c: CmpConfig) -> &mut Self {
        self.cfg.cmp = c;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the assembled configuration is
    /// inconsistent (see [`SimConfig::validate`]).
    pub fn build(&self) -> Result<SimConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let c = SimConfig::baseline();
        assert_eq!(c.l1i.size_words, 4096);
        assert_eq!(c.l1i.line_words, 4);
        assert_eq!(c.policy, WritePolicy::WriteBack);
        assert_eq!(c.l2, L2Config::base());
        assert_eq!(c.l2.d_side().access_cycles, 6);
        assert_eq!(
            c.write_buffer,
            WriteBufferConfig {
                depth: 4,
                width_words: 4
            }
        );
        assert_eq!(c.memory.clean_miss_cycles, 143);
        assert_eq!(
            c.mp,
            MpConfig {
                level: 8,
                time_slice_cycles: 500_000
            }
        );
        assert!(c.validate().is_ok());
        assert_eq!(SimConfig::default(), c);
    }

    #[test]
    fn optimized_matches_paper() {
        let c = SimConfig::optimized();
        assert_eq!(c.l1i.line_words, 8);
        assert_eq!(c.policy, WritePolicy::WriteOnly);
        assert_eq!(c.l2.i_side().size_words, 32_768);
        assert_eq!(c.l2.i_side().access_cycles, 2);
        assert_eq!(c.l2.d_side().size_words, 262_144);
        assert_eq!(
            c.write_buffer,
            WriteBufferConfig {
                depth: 8,
                width_words: 1
            }
        );
        assert!(c.concurrency.concurrent_i_refill);
        assert_eq!(c.concurrency.d_read_bypass, WbBypass::DirtyBit);
        assert!(c.concurrency.l2d_dirty_buffer);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn split_even_halves_capacity() {
        let l2 = L2Config::split_even(262_144, 1, 6);
        assert!(l2.is_split());
        assert_eq!(l2.i_side().size_words, 131_072);
        assert_eq!(l2.d_side().size_words, 131_072);
    }

    #[test]
    fn builder_round_trip() {
        let mut b = SimConfig::builder();
        b.l1_line(8)
            .policy(WritePolicy::WriteOnly)
            .l2(L2Config::split_fast_i());
        let c = b.build().expect("valid");
        assert_eq!(c.l1d.line_words, 8);
        assert_eq!(
            c.write_buffer.width_words, 1,
            "policy re-derives write buffer"
        );
    }

    #[test]
    fn dirty_bit_requires_write_allocate_policy() {
        let mut b = SimConfig::builder();
        b.l2(L2Config::split_fast_i())
            .concurrency(ConcurrencyConfig {
                d_read_bypass: WbBypass::DirtyBit,
                ..Default::default()
            });
        // Baseline policy is write-back: invalid.
        let err = b.build().unwrap_err();
        assert!(matches!(err, ConfigError::DirtyBitNeedsWriteAllocate(_)));
        b.policy(WritePolicy::WriteOnly);
        assert!(b.build().is_ok());
    }

    #[test]
    fn concurrent_refill_requires_split() {
        let mut b = SimConfig::builder();
        b.concurrency(ConcurrencyConfig {
            concurrent_i_refill: true,
            ..Default::default()
        });
        assert!(matches!(
            b.build().unwrap_err(),
            ConfigError::ConcurrentRefillNeedsSplitL2
        ));
        b.l2(L2Config::split_even(262_144, 1, 6));
        assert!(b.build().is_ok());
    }

    #[test]
    fn l2_access_floor_enforced() {
        let mut b = SimConfig::builder();
        b.l2_access(0);
        assert!(matches!(
            b.build().unwrap_err(),
            ConfigError::L2AccessBelowLatency(0)
        ));
        // 1-cycle access is admitted for the Fig. 7/8 what-if sweeps.
        let mut b1 = SimConfig::builder();
        b1.l2_access(1);
        assert!(b1.build().is_ok());
        // The drain override keeps the 2-cycle latency floor.
        let mut b2 = SimConfig::builder();
        b2.l2_drain_access(1);
        assert!(matches!(
            b2.build().unwrap_err(),
            ConfigError::L2AccessBelowLatency(1)
        ));
    }

    #[test]
    fn zero_mp_rejected() {
        let mut b = SimConfig::builder();
        b.mp_level(0);
        assert!(matches!(
            b.build().unwrap_err(),
            ConfigError::ZeroMultiprogramming
        ));
    }

    #[test]
    fn bad_geometry_reported() {
        let mut b = SimConfig::builder();
        b.l1_size(5000);
        assert!(matches!(b.build().unwrap_err(), ConfigError::Geometry(_)));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ConfigError::DirtyBitNeedsWriteAllocate(WritePolicy::WriteBack),
            ConfigError::WriteThroughNeedsDirectMappedL1(WritePolicy::WriteOnly),
            ConfigError::ConcurrentRefillNeedsSplitL2,
            ConfigError::ZeroMultiprogramming,
            ConfigError::L2AccessBelowLatency(1),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn display_summarizes_both_presets() {
        let base = SimConfig::baseline().to_string();
        assert!(base.contains("unified 256KW"));
        assert!(base.contains("write-back"));
        let opt = SimConfig::optimized().to_string();
        assert!(opt.contains("split: I 32KW/2 cycles"));
        assert!(opt.contains("write-only"));
        assert!(opt.contains("dirty buffer on"));
    }

    #[test]
    fn fault_config_defaults_off() {
        let f = FaultConfig::default();
        assert!(!f.enabled());
        assert_eq!(f.machine_check, MachineCheckPolicy::Halt);
        let mut on = f.clone();
        on.rates.l1d = 1e-6;
        assert!(on.enabled());
        let mut targeted = f;
        targeted.targeted.push(TargetedFault {
            structure: gaas_cache::fault::Structure::L1I,
            access: 0,
            set: 0,
            bit: 0,
        });
        assert!(targeted.enabled());
    }

    #[test]
    fn invalid_fault_rates_rejected() {
        let mut b = SimConfig::builder();
        let mut f = FaultConfig::default();
        f.rates.l2 = 1.5;
        b.fault(f);
        assert!(matches!(
            b.build().unwrap_err(),
            ConfigError::InvalidFaultRate(_)
        ));

        let mut b2 = SimConfig::builder();
        let f2 = FaultConfig {
            multi_bit_frac: f64::NAN,
            ..FaultConfig::default()
        };
        b2.fault(f2);
        assert!(matches!(
            b2.build().unwrap_err(),
            ConfigError::InvalidFaultRate(_)
        ));

        let mut b3 = SimConfig::builder();
        let f3 = FaultConfig {
            rates: FaultRates::uniform(1e-3),
            multi_bit_frac: 0.1,
            ..FaultConfig::default()
        };
        b3.fault(f3);
        assert!(b3.build().is_ok());
    }

    #[test]
    fn zero_instruction_budget_rejected() {
        let mut b = SimConfig::builder();
        b.instruction_budget(0);
        assert!(matches!(
            b.build().unwrap_err(),
            ConfigError::ZeroInstructionBudget
        ));
        let mut b2 = SimConfig::builder();
        b2.instruction_budget(1_000_000).checkpoint_interval(50_000);
        let cfg = b2.build().expect("valid");
        assert_eq!(cfg.instruction_budget, Some(1_000_000));
        assert_eq!(cfg.checkpoint_interval, 50_000);
    }

    #[test]
    fn zero_write_buffer_depth_rejected() {
        let mut b = SimConfig::builder();
        b.write_buffer(WriteBufferConfig {
            depth: 0,
            width_words: 4,
        });
        assert!(matches!(
            b.build().unwrap_err(),
            ConfigError::ZeroWriteBufferDepth
        ));
    }

    #[test]
    fn bad_page_colors_rejected() {
        for colors in [0u64, 3, 100] {
            let mut b = SimConfig::builder();
            b.page_colors(colors);
            assert!(matches!(
                b.build().unwrap_err(),
                ConfigError::InvalidPageColors(c) if c == colors
            ));
        }
        let mut ok = SimConfig::builder();
        ok.page_colors(64);
        assert!(ok.build().is_ok());
    }

    #[test]
    fn diffcheck_excludes_fault_injection() {
        let mut b = SimConfig::builder();
        b.diffcheck(DiffCheckConfig::on()).fault(FaultConfig {
            rates: FaultRates::uniform(1e-4),
            ..FaultConfig::default()
        });
        assert!(matches!(
            b.build().unwrap_err(),
            ConfigError::DiffCheckWithFaultInjection
        ));
        // A *disabled* fault config coexists with the oracle.
        let mut ok = SimConfig::builder();
        ok.diffcheck(DiffCheckConfig::on());
        assert!(ok.build().is_ok());
        assert!(!SimConfig::baseline().diffcheck.enabled, "default off");
    }

    #[test]
    fn new_config_errors_display() {
        for e in [
            ConfigError::ZeroWriteBufferDepth,
            ConfigError::InvalidPageColors(3),
            ConfigError::DiffCheckWithFaultInjection,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn wb_config_per_policy() {
        assert_eq!(
            WriteBufferConfig::for_policy(WritePolicy::WriteBack),
            WriteBufferConfig {
                depth: 4,
                width_words: 4
            }
        );
        for p in [
            WritePolicy::WriteMissInvalidate,
            WritePolicy::WriteOnly,
            WritePolicy::Subblock,
        ] {
            assert_eq!(
                WriteBufferConfig::for_policy(p),
                WriteBufferConfig {
                    depth: 8,
                    width_words: 1
                }
            );
        }
    }
}
