//! `gaas-coherence`: the chip-multiprocessor frontier of the GaAs cache
//! study reproduction.
//!
//! The source paper's design space is a single GaAs CPU in front of a
//! two-level CMOS cache hierarchy. This crate asks the natural follow-on
//! question: what happens to the paper's L2-organization conclusions
//! (unified vs. split, direct-mapped vs. 2-way) when N cores share that
//! L2 through private L1s kept coherent with a MESI invalidation
//! protocol?
//!
//! The crate is organized as four layers:
//!
//! * [`mesi`] — the pure MESI transition table (every legal edge tested
//!   positively, every illegal edge negatively);
//! * [`directory`] — the per-line sharer directory that filters snoop
//!   traffic (disjoint workloads generate zero coherence traffic);
//! * [`oracle`] — a passive version-shadow oracle for the coherence
//!   invariants (SWMR, no stale read, inclusion under invalidation);
//! * [`cmp`] — the [`cmp::CmpSimulator`] engine: N replicas of the
//!   single-CPU simulator's per-core state over the shared L2, with the
//!   **byte-identical 1-core anchor** to [`gaas_sim::Simulator`].
//!
//! Process-wide coherence totals are aggregated across runs (the same
//! pattern as the experiment layer's memo statistics) for the serve
//! daemon's `stats` endpoint: see [`coherence_totals`].

pub mod cmp;
pub mod directory;
pub mod mesi;
pub mod oracle;

pub use cmp::{CmpResult, CmpSimulator};
pub use directory::Directory;
pub use mesi::{next_state, IllegalTransition, MesiEvent, MesiState};
pub use oracle::{CoherenceOracle, Violation};

use std::sync::atomic::{AtomicU64, Ordering};

use gaas_mcm::SnoopBus;
use gaas_sim::Counters;

static RUNS: AtomicU64 = AtomicU64::new(0);
static INVALIDATIONS: AtomicU64 = AtomicU64::new(0);
static C2C_TRANSFERS: AtomicU64 = AtomicU64::new(0);
static UPGRADE_MISSES: AtomicU64 = AtomicU64::new(0);
static COHERENCE_STALL_CYCLES: AtomicU64 = AtomicU64::new(0);
static SNOOP_TRANSACTIONS: AtomicU64 = AtomicU64::new(0);
static SNOOP_WAIT_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Process-wide coherence activity accumulated over every CMP run in
/// this process (monotonic; never reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceTotals {
    /// CMP-engine runs completed.
    pub runs: u64,
    /// Remote copies invalidated by stores.
    pub invalidations: u64,
    /// Lines supplied cache-to-cache by a remote Modified owner.
    pub c2c_transfers: u64,
    /// Stores that hit a Shared copy and needed an ownership upgrade.
    pub upgrade_misses: u64,
    /// Cycles charged to coherence actions.
    pub coherence_stall_cycles: u64,
    /// Snoop-bus transactions issued.
    pub snoop_transactions: u64,
    /// Cycles cores waited for snoop-bus grants.
    pub snoop_wait_cycles: u64,
}

/// Snapshot of the process-wide [`CoherenceTotals`].
pub fn coherence_totals() -> CoherenceTotals {
    CoherenceTotals {
        runs: RUNS.load(Ordering::Relaxed),
        invalidations: INVALIDATIONS.load(Ordering::Relaxed),
        c2c_transfers: C2C_TRANSFERS.load(Ordering::Relaxed),
        upgrade_misses: UPGRADE_MISSES.load(Ordering::Relaxed),
        coherence_stall_cycles: COHERENCE_STALL_CYCLES.load(Ordering::Relaxed),
        snoop_transactions: SNOOP_TRANSACTIONS.load(Ordering::Relaxed),
        snoop_wait_cycles: SNOOP_WAIT_CYCLES.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_run(merged: &Counters, bus: &SnoopBus) {
    RUNS.fetch_add(1, Ordering::Relaxed);
    INVALIDATIONS.fetch_add(merged.invalidations, Ordering::Relaxed);
    C2C_TRANSFERS.fetch_add(merged.c2c_transfers, Ordering::Relaxed);
    UPGRADE_MISSES.fetch_add(merged.upgrade_misses, Ordering::Relaxed);
    COHERENCE_STALL_CYCLES.fetch_add(merged.coherence_stall_cycles, Ordering::Relaxed);
    SNOOP_TRANSACTIONS.fetch_add(bus.transactions(), Ordering::Relaxed);
    SNOOP_WAIT_CYCLES.fetch_add(bus.wait_cycles(), Ordering::Relaxed);
}
