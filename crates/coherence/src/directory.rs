//! The sharing directory over the shared L2: which cores hold which
//! L1-D lines, and in which MESI state.
//!
//! The directory is the snoop *filter* of the CMP design: because every
//! L1 sits in front of one shared L2, the L2 controller can track the
//! per-line sharer set and answer most misses without broadcasting at
//! all. Only references that actually involve a remote copy (a remote
//! Modified owner to demote, Shared copies to invalidate) occupy the
//! snoop bus — a disjoint multiprogrammed workload on N cores therefore
//! generates *zero* coherence traffic, which is what anchors the
//! sharing-sweep figures (the coherence CPI component scales with the
//! sharing knobs, not with core count alone).
//!
//! Directory entries can go stale in one direction only: a core may
//! silently evict a line (capacity victim) that the directory still
//! records as valid. The engine therefore *heals lazily* — every state
//! read cross-checks residency in the owning core's array, and a stale
//! bit is cleared for free (a real directory learns the same thing from
//! the core's no-snoop-hit response).

use std::collections::HashMap;

use gaas_trace::PhysAddr;

use crate::mesi::MesiState;

/// Per-line sharer states for up to [`gaas_sim::MAX_CORES`] cores,
/// keyed by line-aligned base word address.
#[derive(Debug, Default)]
pub struct Directory {
    entries: HashMap<u64, [MesiState; gaas_sim::MAX_CORES as usize]>,
}

impl Directory {
    /// An empty directory (every line Invalid everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded state of `line` in `core`'s L1-D (possibly stale;
    /// see [`Directory::heal`]).
    pub fn state(&self, line: PhysAddr, core: usize) -> MesiState {
        self.entries
            .get(&line.word())
            .map_or(MesiState::Invalid, |e| e[core])
    }

    /// Records `state` for `line` in `core`'s L1-D, dropping the entry
    /// once no core holds the line (keeps the map proportional to the
    /// *live* shared working set).
    pub fn set(&mut self, line: PhysAddr, core: usize, state: MesiState) {
        if state == MesiState::Invalid {
            if let Some(e) = self.entries.get_mut(&line.word()) {
                e[core] = MesiState::Invalid;
                if e.iter().all(|&s| s == MesiState::Invalid) {
                    self.entries.remove(&line.word());
                }
            }
            return;
        }
        self.entries.entry(line.word()).or_default()[core] = state;
    }

    /// Reconciles the recorded state with actual residency: a line the
    /// core no longer holds (silent eviction) is healed to Invalid.
    /// Returns the trustworthy state.
    pub fn heal(&mut self, line: PhysAddr, core: usize, resident: bool) -> MesiState {
        let s = self.state(line, core);
        if s != MesiState::Invalid && !resident {
            self.set(line, core, MesiState::Invalid);
            return MesiState::Invalid;
        }
        s
    }

    /// Number of lines with at least one (possibly stale) valid copy.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(w: u64) -> PhysAddr {
        PhysAddr::new(w)
    }

    #[test]
    fn default_state_is_invalid() {
        let d = Directory::new();
        assert_eq!(d.state(line(64), 0), MesiState::Invalid);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn set_and_read_back() {
        let mut d = Directory::new();
        d.set(line(64), 1, MesiState::Exclusive);
        d.set(line(64), 3, MesiState::Shared);
        assert_eq!(d.state(line(64), 1), MesiState::Exclusive);
        assert_eq!(d.state(line(64), 3), MesiState::Shared);
        assert_eq!(d.state(line(64), 0), MesiState::Invalid);
        assert_eq!(d.tracked_lines(), 1);
    }

    #[test]
    fn entry_dropped_when_last_sharer_invalidates() {
        let mut d = Directory::new();
        d.set(line(128), 0, MesiState::Shared);
        d.set(line(128), 2, MesiState::Shared);
        d.set(line(128), 0, MesiState::Invalid);
        assert_eq!(d.tracked_lines(), 1, "core 2 still holds it");
        d.set(line(128), 2, MesiState::Invalid);
        assert_eq!(d.tracked_lines(), 0, "entry reclaimed");
    }

    #[test]
    fn heal_clears_stale_bits() {
        let mut d = Directory::new();
        d.set(line(64), 0, MesiState::Modified);
        // The core silently evicted the line: residency says gone.
        assert_eq!(d.heal(line(64), 0, false), MesiState::Invalid);
        assert_eq!(d.state(line(64), 0), MesiState::Invalid);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn heal_trusts_resident_lines() {
        let mut d = Directory::new();
        d.set(line(64), 0, MesiState::Shared);
        assert_eq!(d.heal(line(64), 0, true), MesiState::Shared);
        assert_eq!(d.tracked_lines(), 1);
    }
}
