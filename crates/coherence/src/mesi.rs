//! The MESI line-state machine, as a pure transition function.
//!
//! Every per-core L1-D line is in one of four states — Modified,
//! Exclusive, Shared, Invalid — and moves between them on local
//! references, remote (snooped) references, fills and evictions. The
//! table lives here as data-free code so the protocol engine
//! ([`crate::cmp`]) and the tests agree on exactly one source of truth:
//! the engine drives only legal transitions (checked with
//! `debug_assert!`), and the unit tests enumerate the full 4 × 7 event
//! matrix — every legal edge positively, every illegal edge negatively.
//!
//! Read misses are modeled as fills ([`MesiEvent::FillExclusive`] /
//! [`MesiEvent::FillShared`]), so `LocalRead`/`LocalWrite` from
//! `Invalid` are *illegal* by construction: the engine must fill first.
//! (A write-miss-invalidate store that never allocates performs no local
//! transition at all — the line simply stays Invalid while remote copies
//! are invalidated.)

use std::fmt;

/// State of one line in one core's L1-D cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MesiState {
    /// Locally written; the only valid copy anywhere (supplies
    /// cache-to-cache transfers).
    Modified,
    /// Clean, and no other core holds a copy (writes upgrade silently).
    Exclusive,
    /// Clean, possibly held by other cores (writes need an invalidation
    /// round).
    Shared,
    /// Not present (or invalidated by a remote writer).
    #[default]
    Invalid,
}

impl MesiState {
    /// One-letter protocol label (`M`/`E`/`S`/`I`).
    pub fn letter(self) -> char {
        match self {
            MesiState::Modified => 'M',
            MesiState::Exclusive => 'E',
            MesiState::Shared => 'S',
            MesiState::Invalid => 'I',
        }
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// An event observed by one line's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MesiEvent {
    /// The owning core read the (resident) line.
    LocalRead,
    /// The owning core wrote the (resident) line.
    LocalWrite,
    /// A read miss filled the line with no other core holding a copy.
    FillExclusive,
    /// A read miss filled the line while other cores hold copies.
    FillShared,
    /// Another core read the line (snooped bus read).
    RemoteRead,
    /// Another core wrote the line (snooped invalidation).
    RemoteWrite,
    /// The line was evicted (capacity/conflict victim).
    Evict,
}

/// A `(state, event)` pair outside the protocol: the engine never
/// generates it, and the tests assert it is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The state the line was in.
    pub state: MesiState,
    /// The event that is illegal in that state.
    pub event: MesiEvent,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal MESI transition: {:?} in {}",
            self.event, self.state
        )
    }
}

impl std::error::Error for IllegalTransition {}

/// The MESI transition table.
///
/// # Errors
///
/// Returns [`IllegalTransition`] for the nine `(state, event)` pairs the
/// protocol cannot produce: filling an already-valid line, and
/// reading/writing/evicting an invalid one.
pub fn next_state(state: MesiState, event: MesiEvent) -> Result<MesiState, IllegalTransition> {
    use MesiEvent as E;
    use MesiState as S;
    let illegal = Err(IllegalTransition { state, event });
    Ok(match (state, event) {
        // Modified: sole dirty owner.
        (S::Modified, E::LocalRead | E::LocalWrite) => S::Modified,
        (S::Modified, E::RemoteRead) => S::Shared, // supplies C2C, demotes
        (S::Modified, E::RemoteWrite) => S::Invalid,
        (S::Modified, E::Evict) => S::Invalid,
        // Exclusive: sole clean owner.
        (S::Exclusive, E::LocalRead) => S::Exclusive,
        (S::Exclusive, E::LocalWrite) => S::Modified, // silent upgrade
        (S::Exclusive, E::RemoteRead) => S::Shared,
        (S::Exclusive, E::RemoteWrite) => S::Invalid,
        (S::Exclusive, E::Evict) => S::Invalid,
        // Shared: one of possibly many clean copies.
        (S::Shared, E::LocalRead | E::RemoteRead) => S::Shared,
        (S::Shared, E::LocalWrite) => S::Modified, // upgrade + invalidation round
        (S::Shared, E::RemoteWrite) => S::Invalid,
        (S::Shared, E::Evict) => S::Invalid,
        // Invalid: only fills bring the line back; remote traffic on a
        // line we do not hold is a snoop miss (no-op).
        (S::Invalid, E::FillExclusive) => S::Exclusive,
        (S::Invalid, E::FillShared) => S::Shared,
        (S::Invalid, E::RemoteRead | E::RemoteWrite) => S::Invalid,
        // A valid line cannot be filled again, and an invalid line has
        // nothing to read, write, or evict.
        (S::Modified | S::Exclusive | S::Shared, E::FillExclusive | E::FillShared)
        | (S::Invalid, E::LocalRead | E::LocalWrite | E::Evict) => return illegal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use MesiEvent as E;
    use MesiState as S;

    fn legal(from: S, ev: E, to: S) {
        assert_eq!(next_state(from, ev), Ok(to), "{from} --{ev:?}--> {to}");
    }

    fn illegal(from: S, ev: E) {
        assert_eq!(
            next_state(from, ev),
            Err(IllegalTransition {
                state: from,
                event: ev
            }),
            "{from} --{ev:?}--> must be illegal"
        );
    }

    #[test]
    fn modified_transitions() {
        legal(S::Modified, E::LocalRead, S::Modified);
        legal(S::Modified, E::LocalWrite, S::Modified);
        legal(S::Modified, E::RemoteRead, S::Shared);
        legal(S::Modified, E::RemoteWrite, S::Invalid);
        legal(S::Modified, E::Evict, S::Invalid);
    }

    #[test]
    fn exclusive_transitions() {
        legal(S::Exclusive, E::LocalRead, S::Exclusive);
        legal(S::Exclusive, E::LocalWrite, S::Modified);
        legal(S::Exclusive, E::RemoteRead, S::Shared);
        legal(S::Exclusive, E::RemoteWrite, S::Invalid);
        legal(S::Exclusive, E::Evict, S::Invalid);
    }

    #[test]
    fn shared_transitions() {
        legal(S::Shared, E::LocalRead, S::Shared);
        legal(S::Shared, E::LocalWrite, S::Modified);
        legal(S::Shared, E::RemoteRead, S::Shared);
        legal(S::Shared, E::RemoteWrite, S::Invalid);
        legal(S::Shared, E::Evict, S::Invalid);
    }

    #[test]
    fn invalid_transitions() {
        legal(S::Invalid, E::FillExclusive, S::Exclusive);
        legal(S::Invalid, E::FillShared, S::Shared);
        legal(S::Invalid, E::RemoteRead, S::Invalid);
        legal(S::Invalid, E::RemoteWrite, S::Invalid);
    }

    #[test]
    fn refilling_a_valid_line_is_illegal() {
        for s in [S::Modified, S::Exclusive, S::Shared] {
            illegal(s, E::FillExclusive);
            illegal(s, E::FillShared);
        }
    }

    #[test]
    fn touching_an_invalid_line_is_illegal() {
        illegal(S::Invalid, E::LocalRead);
        illegal(S::Invalid, E::LocalWrite);
        illegal(S::Invalid, E::Evict);
    }

    #[test]
    fn the_full_matrix_is_covered() {
        // 4 states x 7 events = 28 pairs: 19 legal, 9 illegal. Guards the
        // per-state tests above against a silently added event.
        let states = [S::Modified, S::Exclusive, S::Shared, S::Invalid];
        let events = [
            E::LocalRead,
            E::LocalWrite,
            E::FillExclusive,
            E::FillShared,
            E::RemoteRead,
            E::RemoteWrite,
            E::Evict,
        ];
        let legal = states
            .iter()
            .flat_map(|&s| events.iter().map(move |&e| next_state(s, e)))
            .filter(Result::is_ok)
            .count();
        assert_eq!(legal, 19);
    }

    #[test]
    fn illegal_transition_displays_the_pair() {
        let err = next_state(S::Invalid, E::Evict).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("Evict") && msg.contains('I'), "{msg}");
    }
}
