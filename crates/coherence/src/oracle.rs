//! Coherence-invariant oracle for CMP runs.
//!
//! The single-CPU simulator's golden-model oracle cross-checks cycle
//! accounting and structure state; it knows nothing about multiple
//! cores. This oracle covers the gap with a *version shadow*: every
//! store to a line bumps a global version number, every fill or store
//! records the version a core last observed, and the invariants are
//! checked at the moments the protocol must enforce them:
//!
//! * **No stale read** — a load *hit* must observe the line's current
//!   global version. If a remote core wrote the line since this core
//!   last filled or wrote it, the copy must have been invalidated and
//!   the load cannot hit.
//! * **Single writer, multiple readers (SWMR)** — immediately after a
//!   store's invalidation round, no remote L1-D may still hold the
//!   line.
//! * **Inclusion under invalidation** — an invalidated copy is actually
//!   gone from the victim core's array.
//!
//! The oracle is *passive*: it never charges cycles and never touches
//! simulated structures, so enabling it cannot perturb results — the
//! same observe-don't-perturb contract as the single-CPU oracle.

use std::collections::HashMap;

use gaas_trace::PhysAddr;

/// The version shadow and its pending verdict.
#[derive(Debug)]
pub struct CoherenceOracle {
    /// Global write version per line (absent = never written).
    versions: HashMap<u64, u64>,
    /// Per-core: the version this core's resident copy reflects.
    observed: Vec<HashMap<u64, u64>>,
    checked: u64,
    violation: Option<Violation>,
}

/// One detected invariant violation (surfaced as
/// [`gaas_sim::SimError::Coherence`] by the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Core on which the violation was observed.
    pub core: u32,
    /// Which invariant failed, with the evidence.
    pub detail: String,
}

impl CoherenceOracle {
    /// An oracle shadowing `cores` cores.
    pub fn new(cores: usize) -> Self {
        CoherenceOracle {
            versions: HashMap::new(),
            observed: vec![HashMap::new(); cores],
            checked: 0,
            violation: None,
        }
    }

    /// Coherence-relevant accesses checked so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// The first violation, if any invariant tripped.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    fn flag(&mut self, core: usize, detail: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                core: core as u32,
                detail,
            });
        }
    }

    /// Notes that `core` filled `line` from the memory hierarchy (which
    /// always supplies current data: a remote Modified owner is demoted
    /// and its data forwarded by the same transaction).
    pub fn note_fill(&mut self, core: usize, line: PhysAddr) {
        let v = self.versions.get(&line.word()).copied().unwrap_or(0);
        self.observed[core].insert(line.word(), v);
    }

    /// Notes that `core` wrote `line`: the global version advances and
    /// the writer observes its own write.
    pub fn note_store(&mut self, core: usize, line: PhysAddr) {
        let v = self.versions.entry(line.word()).or_insert(0);
        *v += 1;
        let v = *v;
        self.observed[core].insert(line.word(), v);
        self.checked += 1;
    }

    /// Notes that `core`'s copy of `line` was invalidated; `still_resident`
    /// is the array's residency *after* the invalidation (the inclusion
    /// check: an invalidated copy must actually be gone).
    pub fn note_invalidate(&mut self, core: usize, line: PhysAddr, still_resident: bool) {
        self.observed[core].remove(&line.word());
        if still_resident {
            self.flag(
                core,
                format!(
                    "inclusion: line {:#x} still resident in core {core}'s L1-D after invalidation",
                    line.word()
                ),
            );
        }
    }

    /// Checks a load *hit* by `core` on `line` against the no-stale-read
    /// invariant.
    pub fn check_load_hit(&mut self, core: usize, line: PhysAddr) {
        self.checked += 1;
        let current = self.versions.get(&line.word()).copied().unwrap_or(0);
        let seen = self.observed[core].get(&line.word()).copied().unwrap_or(0);
        if seen != current {
            self.flag(
                core,
                format!(
                    "stale read: core {core} hit line {:#x} at version {seen}, global version is {current}",
                    line.word()
                ),
            );
        }
    }

    /// Checks SWMR after `writer`'s invalidation round: no core in
    /// `remote_resident` (cores whose L1-D still holds `line`) is legal.
    pub fn check_swmr(&mut self, writer: usize, line: PhysAddr, remote_resident: &[usize]) {
        self.checked += 1;
        if let Some(&offender) = remote_resident.first() {
            self.flag(
                writer,
                format!(
                    "SWMR: core {writer} wrote line {:#x} but core {offender} still holds a copy",
                    line.word()
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(w: u64) -> PhysAddr {
        PhysAddr::new(w)
    }

    #[test]
    fn fresh_reads_pass() {
        let mut o = CoherenceOracle::new(2);
        o.note_store(0, line(64));
        o.note_fill(1, line(64));
        o.check_load_hit(1, line(64));
        assert!(o.violation().is_none());
        assert_eq!(o.checked(), 2);
    }

    #[test]
    fn stale_read_is_flagged() {
        let mut o = CoherenceOracle::new(2);
        o.note_fill(1, line(64)); // core 1 observes version 0
        o.note_store(0, line(64)); // global version -> 1
        o.check_load_hit(1, line(64)); // core 1 still hits: stale
        let v = o.violation().expect("stale read detected");
        assert_eq!(v.core, 1);
        assert!(v.detail.contains("stale read"), "{}", v.detail);
    }

    #[test]
    fn invalidation_clears_the_observation() {
        let mut o = CoherenceOracle::new(2);
        o.note_fill(1, line(64));
        o.note_store(0, line(64));
        o.note_invalidate(1, line(64), false);
        // Core 1 refills before its next hit: fresh again.
        o.note_fill(1, line(64));
        o.check_load_hit(1, line(64));
        assert!(o.violation().is_none());
    }

    #[test]
    fn surviving_copy_violates_inclusion() {
        let mut o = CoherenceOracle::new(2);
        o.note_invalidate(1, line(64), true);
        let v = o.violation().expect("inclusion violation detected");
        assert!(v.detail.contains("inclusion"), "{}", v.detail);
    }

    #[test]
    fn remote_copy_after_write_violates_swmr() {
        let mut o = CoherenceOracle::new(4);
        o.check_swmr(0, line(64), &[2]);
        let v = o.violation().expect("SWMR violation detected");
        assert_eq!(v.core, 0);
        assert!(v.detail.contains("SWMR"), "{}", v.detail);
    }

    #[test]
    fn first_violation_wins() {
        let mut o = CoherenceOracle::new(2);
        o.check_swmr(0, line(64), &[1]);
        o.check_swmr(1, line(128), &[0]);
        assert!(o.violation().unwrap().detail.contains("0x40"));
    }
}
