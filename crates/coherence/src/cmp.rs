//! The CMP engine: N per-core L1 front ends over the shared L2.
//!
//! [`CmpSimulator`] replicates the single-CPU simulator's per-core state
//! (scheduler, L1-I/L1-D, TLBs, write buffer, timing and functional
//! clocks, counters) N times in front of the *shared* structures (the L2
//! arrays, main-memory system, page mapper) and keeps the L1-D copies
//! coherent with a directory-filtered MESI invalidation protocol (see
//! [`crate::mesi`], [`crate::directory`]).
//!
//! ## The 1-core identity anchor
//!
//! A 1-core CMP run is **byte-identical** to [`gaas_sim::Simulator`] on
//! the same configuration and workload (test-enforced). The per-core
//! step functions are line-for-line the single-CPU simulator's full
//! (uninstrumented) paths — the base engine's same-line/same-page memo
//! skips are counter- and LRU-neutral, so always taking the full path
//! reproduces its counters exactly — and every coherence action is gated
//! on a second core existing. That identity pins all CMP results to the
//! validated single-CPU model: whatever a multi-core run shows beyond
//! the 1-core anchor is attributable to sharing, not to engine drift.
//!
//! ## Coherence charging
//!
//! Coherence costs are charged to the requesting core's *timing* clock
//! (`now`) and the dedicated `coherence_stall_cycles` counter — never to
//! the functional clock, which must keep scheduling decisions identical
//! across timing variants:
//!
//! * a miss or upgrade that involves a remote copy occupies the snoop
//!   bus ([`gaas_mcm::SnoopBus`]): bus wait + `snoop_bus_cycles`;
//! * a remote Modified owner supplies the line cache-to-cache
//!   (`c2c_transfer_cycles`, owner demotes M→S, dirty data lands in
//!   L2-D);
//! * each remote copy invalidated by a store costs `invalidate_cycles`.
//!
//! Misses with *no* remote copies are filtered by the directory and
//! never touch the bus: a disjoint multiprogrammed workload generates
//! zero coherence traffic at any core count.
//!
//! L1-I caches are excluded from the protocol: instruction fetches are
//! read-only and the workload model never writes code pages, so
//! instruction lines cannot go stale.

use gaas_cache::{CacheArray, L1DataCache, MemorySystem, PageMapper, Tlb, WriteBuffer};
use gaas_mcm::SnoopBus;
use gaas_sim::config::{ConfigError, L2Config, SimConfig, WbBypass};
use gaas_sim::cpi::{Counters, ProcCounters};
use gaas_sim::sched::Scheduler;
use gaas_sim::sim::{REF_L2_ACCESS, REF_MEM_CLEAN, REF_MEM_DIRTY};
use gaas_sim::{
    CancelToken, SimError, SimResult, Termination, Trace, TraceEvent, VirtAddr, MAX_CORES,
};
use gaas_trace::{AccessKind, PhysAddr, Pid, PAGE_SHIFT};

use crate::directory::Directory;
use crate::mesi::{next_state, MesiEvent, MesiState};
use crate::oracle::CoherenceOracle;

/// Mirrors the single-CPU simulator's cancellation poll interval so the
/// 1-core identity covers cancellation boundaries too.
const CANCEL_CHECK_INTERVAL: u64 = 8192;
/// Mirrors the single-CPU simulator's software translation cache.
const TCACHE_WAYS: usize = 256;

/// Result of a CMP run: the merged [`SimResult`] plus the per-core
/// counter breakdown (warm-up already excluded from both).
#[derive(Debug, Clone)]
pub struct CmpResult {
    /// Merged result over all cores; for a 1-core configuration this is
    /// byte-identical to the single-CPU simulator's result.
    pub result: SimResult,
    /// Per-core counters, index = core id.
    pub per_core: Vec<Counters>,
}

/// One core's private state: everything the single-CPU simulator owns
/// except the shared L2 / memory / page mapper.
struct Core {
    sched: Scheduler,
    now: u64,
    fnow: u64,
    counters: Counters,
    l1i: CacheArray,
    l1d: L1DataCache,
    itlb: Tlb,
    dtlb: Tlb,
    wb: WriteBuffer,
    tcache: Vec<(u64, u64)>,
    per_proc: Vec<ProcCounters>,
    done: bool,
}

enum L2Arrays {
    Unified(CacheArray),
    Split { i: CacheArray, d: CacheArray },
}

/// The chip-multiprocessor simulator (see the module docs).
pub struct CmpSimulator {
    cfg: SimConfig,
    cores: Vec<Core>,
    l2: L2Arrays,
    mem_d: MemorySystem,
    mem_i: MemorySystem,
    mapper: PageMapper,
    dir: Directory,
    bus: SnoopBus,
    oracle: Option<CoherenceOracle>,
    cancel: Option<CancelToken>,

    /// True with two or more cores: the only gate on every coherence
    /// action, so a 1-core run never touches the directory, the bus, the
    /// MESI counters, or the oracle (the identity anchor).
    multi: bool,
    // Config-derived scalars, cached so the per-core step functions can
    // hold a mutable borrow of one core without re-reading `cfg`.
    tlb_penalty: u64,
    concurrent_i_refill: bool,
    d_read_bypass: WbBypass,
    d_line_words: u32,
    split_l2: bool,
    i_hit_cost: u32,
    d_hit_cost: u32,
    ref_i_hit_cost: u32,
    ref_d_hit_cost: u32,
    d_write_access: u32,
    d_write_stream: u32,
    snoop_bus_cycles: u64,
    c2c_cycles: u64,
    inv_cycles: u64,
}

impl CmpSimulator {
    /// Builds a CMP simulator for `cfg`. Accepts non-CMP configurations
    /// too (`cmp.enabled()` false): that is how the identity tests run
    /// the same config through both engines.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid, or
    /// uses a feature the CMP engine does not implement (fault
    /// injection, telemetry, checkpointing, seeded bugs — the same set
    /// `SimConfig::validate` rejects for CMP-enabled configurations).
    pub fn new(cfg: SimConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        // For CMP-enabled configs validate() already rejects these; a
        // plain 1-core config could still carry them, and this engine
        // would silently ignore them — refuse instead.
        if cfg.fault.enabled() {
            return Err(ConfigError::CmpWithFaultInjection);
        }
        if cfg.telemetry.enabled {
            return Err(ConfigError::CmpWithTelemetry);
        }
        if cfg.checkpoint_interval != 0 {
            return Err(ConfigError::CmpWithCheckpointing);
        }
        if cfg.diffcheck.seeded_bug.is_some() {
            return Err(ConfigError::CmpWithSeededBug);
        }
        let n = cfg.cmp.cores as usize;
        let l2 = match cfg.l2 {
            L2Config::Unified(s) => L2Arrays::Unified(CacheArray::new(s.geometry()?)),
            L2Config::Split { i, d } => L2Arrays::Split {
                i: CacheArray::new(i.geometry()?),
                d: CacheArray::new(d.geometry()?),
            },
        };
        let cores = (0..n)
            .map(|_| {
                Ok(Core {
                    // Placeholder; the real schedulers are installed by
                    // `run_warmed` from the per-core trace lists.
                    sched: Scheduler::new(Vec::new(), cfg.mp.level, cfg.mp.time_slice_cycles),
                    now: 0,
                    fnow: 0,
                    counters: Counters::new(),
                    l1i: CacheArray::new(cfg.l1i.geometry()?),
                    l1d: L1DataCache::new(cfg.l1d.geometry()?, cfg.policy),
                    itlb: Tlb::instruction(),
                    dtlb: Tlb::data(),
                    wb: WriteBuffer::new(cfg.write_buffer.depth),
                    tcache: vec![(u64::MAX, 0); TCACHE_WAYS],
                    per_proc: Vec::new(),
                    done: false,
                })
            })
            .collect::<Result<Vec<_>, ConfigError>>()?;

        // Identical cost derivation to the single-CPU simulator.
        let beats = |line_words: u32| line_words.div_ceil(4);
        let i_side = cfg.l2.i_side();
        let d_side = cfg.l2.d_side();
        let i_hit_cost = i_side.access_cycles + beats(cfg.l1i.line_words) - 1;
        let d_hit_cost = d_side.access_cycles + beats(cfg.l1d.line_words) - 1;
        let ref_i_hit_cost = REF_L2_ACCESS as u32 + beats(cfg.l1i.line_words) - 1;
        let ref_d_hit_cost = REF_L2_ACCESS as u32 + beats(cfg.l1d.line_words) - 1;
        let d_write_access = cfg.l2_drain_access_override.unwrap_or(d_side.access_cycles);
        let d_write_stream = d_write_access.saturating_sub(2).max(1);

        let oracle = if cfg.diffcheck.enabled {
            Some(CoherenceOracle::new(n))
        } else {
            None
        };
        Ok(CmpSimulator {
            multi: n > 1,
            tlb_penalty: cfg.tlb_miss_penalty as u64,
            concurrent_i_refill: cfg.concurrency.concurrent_i_refill,
            d_read_bypass: cfg.concurrency.d_read_bypass,
            d_line_words: cfg.l1d.line_words,
            split_l2: cfg.l2.is_split(),
            i_hit_cost,
            d_hit_cost,
            ref_i_hit_cost,
            ref_d_hit_cost,
            d_write_access,
            d_write_stream,
            snoop_bus_cycles: cfg.cmp.snoop_bus_cycles as u64,
            c2c_cycles: cfg.cmp.c2c_transfer_cycles as u64,
            inv_cycles: cfg.cmp.invalidate_cycles as u64,
            cores,
            l2,
            mem_d: MemorySystem::new(cfg.memory, cfg.concurrency.l2d_dirty_buffer),
            mem_i: MemorySystem::new(cfg.memory, false),
            mapper: PageMapper::new(cfg.page_colors),
            dir: Directory::new(),
            bus: SnoopBus::new(cfg.cmp.snoop_bus_cycles),
            oracle,
            cancel: None,
            cfg,
        })
    }

    /// Installs a cooperative-cancellation token (same contract as the
    /// single-CPU simulator's).
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Runs `per_core` workloads (one trace list per core) to
    /// completion, discarding the statistics of the first
    /// `warmup_instructions` instructions *summed over all cores*.
    ///
    /// Cores interleave by functional-clock order (earliest `fnow`
    /// executes next; ties resolve to the lowest core id), which makes
    /// the interleaving deterministic and independent of timing knobs —
    /// the same property the single-CPU scheduler has.
    ///
    /// # Errors
    ///
    /// [`SimError::Cancelled`] when the token fires, and
    /// [`SimError::Coherence`] when the coherence oracle (enabled via
    /// `diffcheck.enabled`) observes an invariant violation.
    ///
    /// # Panics
    ///
    /// Panics when `per_core.len()` differs from the configured core
    /// count.
    pub fn run_warmed(
        mut self,
        per_core: Vec<Vec<Box<dyn Trace>>>,
        warmup_instructions: u64,
    ) -> Result<CmpResult, SimError> {
        assert_eq!(
            per_core.len(),
            self.cores.len(),
            "one trace list per configured core"
        );
        let level = self.cfg.mp.level;
        let slice = self.cfg.mp.time_slice_cycles;
        for (core, traces) in self.cores.iter_mut().zip(per_core) {
            core.sched = Scheduler::new(traces, level, slice);
        }

        let mut total_instructions = 0u64;
        let mut warm_snapshot: Option<Vec<Counters>> = None;
        let mut next_warm = if warmup_instructions > 0 {
            warmup_instructions
        } else {
            u64::MAX
        };
        let budget_limit = self.cfg.instruction_budget.unwrap_or(u64::MAX);
        let mut next_cancel_check = if self.cancel.is_some() {
            CANCEL_CHECK_INTERVAL
        } else {
            u64::MAX
        };
        let mut termination = Termination::Completed;
        let mut next_poll = next_warm.min(budget_limit).min(next_cancel_check);
        let oracle_on = self.multi && self.oracle.is_some();

        loop {
            // Next core by functional-clock order, lowest id on ties
            // (degenerates to strictly sequential execution at 1 core).
            let mut active = usize::MAX;
            let mut best = u64::MAX;
            for (i, core) in self.cores.iter().enumerate() {
                if !core.done && core.fnow < best {
                    best = core.fnow;
                    active = i;
                }
            }
            if active == usize::MAX {
                break;
            }
            let c = active;
            let fnow = self.cores[c].fnow;
            let Some(instr) = self.cores[c].sched.next_instruction(fnow) else {
                self.cores[c].done = true;
                continue;
            };
            self.step_ifetch(c, &instr.ifetch);
            if let Some(data) = instr.data {
                self.step_data(c, &data);
            }
            let fnow = self.cores[c].fnow;
            self.cores[c]
                .sched
                .post_instruction(fnow, instr.ifetch.syscall);
            total_instructions += 1;

            if oracle_on {
                if let Some(err) = self.take_violation() {
                    return Err(err);
                }
            }
            if total_instructions >= next_poll {
                if total_instructions >= next_cancel_check {
                    next_cancel_check = total_instructions + CANCEL_CHECK_INTERVAL;
                    if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                        return Err(SimError::Cancelled);
                    }
                }
                if total_instructions >= next_warm {
                    warm_snapshot = Some(self.cores.iter().map(|core| core.counters).collect());
                    next_warm = u64::MAX;
                }
                if total_instructions >= budget_limit {
                    termination = Termination::BudgetExhausted;
                    break;
                }
                next_poll = next_warm.min(budget_limit).min(next_cancel_check);
            }
        }

        for core in &mut self.cores {
            core.counters.syscall_switches = core.sched.syscall_switches();
            core.counters.slice_switches = core.sched.slice_switches();
            debug_assert_eq!(
                core.now,
                core.counters.total_cycles(),
                "per-core cycle accounting must balance"
            );
        }
        let per_core: Vec<Counters> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| match &warm_snapshot {
                Some(snaps) => core.counters.since(&snaps[i]),
                None => core.counters,
            })
            .collect();
        let merged = per_core.iter().fold(Counters::new(), |acc, c| acc.accum(c));

        // Per-process stats merged by PID across cores (a benchmark runs
        // on exactly one core, but the shared pseudo-process appears on
        // all of them).
        let mut merged_pp: Vec<ProcCounters> = Vec::new();
        for core in &self.cores {
            for (idx, p) in core.per_proc.iter().enumerate() {
                if merged_pp.len() <= idx {
                    merged_pp.resize(idx + 1, ProcCounters::default());
                }
                let m = &mut merged_pp[idx];
                m.instructions += p.instructions;
                m.cycles += p.cycles;
                m.loads += p.loads;
                m.stores += p.stores;
                m.l1i_misses += p.l1i_misses;
                m.l1d_misses += p.l1d_misses;
                m.l2_misses += p.l2_misses;
            }
        }
        let per_process = merged_pp
            .iter()
            .enumerate()
            .filter(|(_, p)| p.instructions > 0 || p.loads > 0 || p.stores > 0)
            .map(|(i, p)| (Pid::new(i as u8), *p))
            .collect();
        let completed = self
            .cores
            .iter()
            .flat_map(|core| core.sched.completed().iter().cloned())
            .collect();

        crate::record_run(&merged, &self.bus);
        let result = SimResult {
            config: self.cfg.clone(),
            counters: merged,
            completed,
            per_process,
            termination,
            checkpoints: Vec::new(),
        };
        Ok(CmpResult { result, per_core })
    }

    /// Accesses the coherence oracle has checked so far (`None` when the
    /// oracle is disabled).
    pub fn oracle_checked(&self) -> Option<u64> {
        self.oracle.as_ref().map(CoherenceOracle::checked)
    }

    fn take_violation(&mut self) -> Option<SimError> {
        let v = self.oracle.as_ref()?.violation()?.clone();
        Some(SimError::Coherence {
            core: v.core,
            cycle: self.cores[v.core as usize].now,
            detail: v.detail,
        })
    }

    // ---- per-core step functions ----
    //
    // These mirror the single-CPU simulator's uninstrumented paths
    // statement for statement; the only additions are the
    // `self.multi`-gated coherence calls, inserted before the write
    // buffer / miss service chain of the data side.

    fn translate(&mut self, c: usize, addr: VirtAddr) -> PhysAddr {
        let key = addr.raw() >> PAGE_SHIFT;
        let idx = (key as usize) & (TCACHE_WAYS - 1);
        let (k, ppn) = self.cores[c].tcache[idx];
        if k == key {
            return PhysAddr::new((ppn << PAGE_SHIFT) | addr.page_offset());
        }
        let p = self.mapper.translate(addr);
        self.cores[c].tcache[idx] = (key, p.ppn());
        p
    }

    /// This core's L1-D line base for `paddr` (the directory's tracking
    /// granularity).
    fn d_line_base(&self, paddr: PhysAddr) -> PhysAddr {
        PhysAddr::new(paddr.word() & !(self.d_line_words as u64 - 1))
    }

    fn step_ifetch(&mut self, c: usize, ev: &TraceEvent) {
        let mut cycles = 1 + ev.stall_cycles as u64;
        let tlb_penalty = self.tlb_penalty;
        let core = &mut self.cores[c];
        let l2_before = core.counters.l2i_misses + core.counters.l2d_misses;
        let mut missed = false;
        core.counters.instructions += 1;
        core.counters.cpu_stall_cycles += ev.stall_cycles as u64;
        core.fnow += 1 + ev.stall_cycles as u64;

        if !core.itlb.access(ev.addr) {
            core.counters.itlb_misses += 1;
            core.counters.tlb_miss_cycles += tlb_penalty;
            cycles += tlb_penalty;
        }
        let paddr = self.translate(c, ev.addr);

        if self.cores[c].l1i.touch(paddr).is_none() {
            self.cores[c].counters.l1i_misses += 1;
            missed = true;
            let mut t = self.cores[c].now + cycles;
            if !self.concurrent_i_refill {
                let empty = self.cores[c].wb.empty_at(t);
                let wait = empty - t;
                self.cores[c].counters.wb_wait_cycles += wait;
                cycles += wait;
                t = empty;
            }
            cycles += self.service_i_miss(c, t, paddr);
        }
        self.cores[c].now += cycles;

        let core = &mut self.cores[c];
        let l2_after = core.counters.l2i_misses + core.counters.l2d_misses;
        let p = proc_entry(&mut core.per_proc, ev.addr.pid());
        p.instructions += 1;
        p.cycles += cycles;
        if missed {
            p.l1i_misses += 1;
        }
        p.l2_misses += l2_after - l2_before;
    }

    fn step_data(&mut self, c: usize, ev: &TraceEvent) {
        match ev.kind {
            AccessKind::Load => self.step_load(c, ev),
            AccessKind::Store => self.step_store(c, ev),
            AccessKind::IFetch => unreachable!("data step on a fetch"),
        }
    }

    fn step_load(&mut self, c: usize, ev: &TraceEvent) {
        let mut cycles = 0u64;
        let tlb_penalty = self.tlb_penalty;
        let core = &mut self.cores[c];
        let l2_before = core.counters.l2i_misses + core.counters.l2d_misses;
        core.counters.loads += 1;
        if !core.dtlb.access(ev.addr) {
            core.counters.dtlb_misses += 1;
            core.counters.tlb_miss_cycles += tlb_penalty;
            cycles += tlb_penalty;
        }
        let paddr = self.translate(c, ev.addr);

        let outcome = self.cores[c].l1d.load(paddr);
        if outcome.hit {
            if self.multi && self.oracle.is_some() {
                let line = self.d_line_base(paddr);
                if let Some(o) = self.oracle.as_mut() {
                    o.check_load_hit(c, line);
                }
            }
        } else {
            self.cores[c].counters.l1d_read_misses += 1;
            let line_base = outcome.fetch.expect("miss implies fetch");
            if self.multi {
                cycles += self.coherence_load_fill(c, self.cores[c].now + cycles, line_base);
            }
            let mut t = self.cores[c].now + cycles;
            let wait = self.wb_wait_for_d_miss(c, t, line_base, outcome.replaced_written_line);
            cycles += wait;
            t += wait;
            if let Some(victim) = outcome.writeback_victim {
                let stall = self.enqueue_write(c, t, victim);
                cycles += stall;
                t += stall;
            }
            cycles += self.service_d_miss(c, t, line_base);
        }
        self.cores[c].now += cycles;

        let core = &mut self.cores[c];
        let l2_after = core.counters.l2i_misses + core.counters.l2d_misses;
        let p = proc_entry(&mut core.per_proc, ev.addr.pid());
        p.loads += 1;
        p.cycles += cycles;
        if !outcome.hit {
            p.l1d_misses += 1;
        }
        p.l2_misses += l2_after - l2_before;
    }

    fn step_store(&mut self, c: usize, ev: &TraceEvent) {
        let mut cycles = 0u64;
        let tlb_penalty = self.tlb_penalty;
        let core = &mut self.cores[c];
        let l2_before = core.counters.l2i_misses + core.counters.l2d_misses;
        core.counters.stores += 1;
        if !core.dtlb.access(ev.addr) {
            core.counters.dtlb_misses += 1;
            core.counters.tlb_miss_cycles += tlb_penalty;
            cycles += tlb_penalty;
        }
        let paddr = self.translate(c, ev.addr);

        // The pre-store MESI state must be read before the array changes
        // (a write-allocate fill would make a stale directory bit look
        // freshly resident).
        let line = self.d_line_base(paddr);
        let prev_local = if self.multi {
            let resident = self.cores[c].l1d.array().contains(line);
            self.dir.heal(line, c, resident)
        } else {
            MesiState::Invalid
        };

        let outcome = self.cores[c].l1d.store(paddr, ev.partial_word);
        if !outcome.hit {
            self.cores[c].counters.l1d_write_misses += 1;
        }
        if outcome.extra_cycle {
            self.cores[c].counters.l1_write_cycles += 1;
            cycles += 1;
            self.cores[c].fnow += 1;
        }
        if self.multi {
            cycles += self.coherence_store(c, self.cores[c].now + cycles, line, prev_local);
        }
        let mut t = self.cores[c].now + cycles;

        if let Some(word) = outcome.wb_word {
            let stall = self.enqueue_write(c, t, word);
            cycles += stall;
            t += stall;
        }
        if let Some(line_base) = outcome.fetch {
            let wait = self.wb_wait_for_d_miss(c, t, line_base, outcome.replaced_written_line);
            cycles += wait;
            t += wait;
            if let Some(victim) = outcome.writeback_victim {
                let stall = self.enqueue_write(c, t, victim);
                cycles += stall;
                t += stall;
            }
            cycles += self.service_d_miss(c, t, line_base);
        } else if let Some(victim) = outcome.writeback_victim {
            let stall = self.enqueue_write(c, t, victim);
            cycles += stall;
        }
        self.cores[c].now += cycles;

        let core = &mut self.cores[c];
        let l2_after = core.counters.l2i_misses + core.counters.l2d_misses;
        let p = proc_entry(&mut core.per_proc, ev.addr.pid());
        p.stores += 1;
        p.cycles += cycles;
        if !outcome.hit {
            p.l1d_misses += 1;
        }
        p.l2_misses += l2_after - l2_before;
    }

    // ---- coherence actions (multi-core only) ----

    /// Collects the healed remote sharers of `line` (cores other than
    /// `c` whose L1-D actually holds it).
    fn remote_sharers(
        &mut self,
        c: usize,
        line: PhysAddr,
    ) -> ([(usize, MesiState); MAX_CORES as usize], usize) {
        let mut remotes = [(0usize, MesiState::Invalid); MAX_CORES as usize];
        let mut nr = 0;
        for m in 0..self.cores.len() {
            if m == c {
                continue;
            }
            let resident = self.cores[m].l1d.array().contains(line);
            let st = self.dir.heal(line, m, resident);
            if st != MesiState::Invalid {
                remotes[nr] = (m, st);
                nr += 1;
            }
        }
        (remotes, nr)
    }

    /// MESI bookkeeping + cost for a load miss that just filled `line`
    /// on core `c` at time `t0`; returns the coherence stall.
    fn coherence_load_fill(&mut self, c: usize, t0: u64, line: PhysAddr) -> u64 {
        let (remotes, nr) = self.remote_sharers(c, line);
        let mut charge = 0u64;
        if nr > 0 {
            // Remote copies exist: the read goes on the snoop bus so the
            // owners can demote (and a Modified owner can supply).
            let g = self.bus.transact(c as u32, t0);
            charge += g.wait + self.snoop_bus_cycles;
            for &(m, st) in &remotes[..nr] {
                match st {
                    MesiState::Modified => {
                        self.cores[c].counters.c2c_transfers += 1;
                        charge += self.c2c_cycles;
                        // The owner's writeback lands in the shared L2-D.
                        self.l2_dirty_d(line);
                        let ns = next_state(st, MesiEvent::RemoteRead)
                            .expect("M -> RemoteRead is legal");
                        self.dir.set(line, m, ns);
                        self.cores[m].counters.mesi_to_s += 1;
                    }
                    MesiState::Exclusive => {
                        let ns = next_state(st, MesiEvent::RemoteRead)
                            .expect("E -> RemoteRead is legal");
                        self.dir.set(line, m, ns);
                        self.cores[m].counters.mesi_to_s += 1;
                    }
                    MesiState::Shared => {}
                    MesiState::Invalid => unreachable!("healed sharers are valid"),
                }
            }
        }
        let fill = if nr > 0 {
            MesiEvent::FillShared
        } else {
            MesiEvent::FillExclusive
        };
        let ns = next_state(MesiState::Invalid, fill).expect("fill from I is legal");
        self.dir.set(line, c, ns);
        match ns {
            MesiState::Shared => self.cores[c].counters.mesi_to_s += 1,
            MesiState::Exclusive => self.cores[c].counters.mesi_to_e += 1,
            _ => unreachable!("fills produce E or S"),
        }
        if let Some(o) = self.oracle.as_mut() {
            o.note_fill(c, line);
        }
        self.cores[c].counters.coherence_stall_cycles += charge;
        charge
    }

    /// MESI bookkeeping + cost for a store by core `c` to `line` at time
    /// `t0` (`prev_local` read before the array changed); returns the
    /// coherence stall.
    fn coherence_store(&mut self, c: usize, t0: u64, line: PhysAddr, prev_local: MesiState) -> u64 {
        let (remotes, nr) = self.remote_sharers(c, line);
        let mut charge = 0u64;
        // The directory filters: only stores that must reach another
        // core's cache (invalidation round) or announce an upgrade of a
        // Shared copy occupy the bus. Stores hitting a local M/E line
        // are silent, and store misses with no sharers are satisfied by
        // the L2 write path alone.
        if nr > 0 || prev_local == MesiState::Shared {
            let g = self.bus.transact(c as u32, t0);
            charge += g.wait + self.snoop_bus_cycles;
            for &(m, st) in &remotes[..nr] {
                debug_assert!(
                    next_state(st, MesiEvent::RemoteWrite).is_ok(),
                    "remote write is legal in every valid state"
                );
                let evicted = self.cores[m].l1d.array_mut().invalidate(line);
                if let Some(victim) = evicted {
                    self.cores[c].counters.invalidations += 1;
                    self.cores[m].counters.mesi_to_i += 1;
                    charge += self.inv_cycles;
                    if victim.dirty {
                        // A Modified copy's data is flushed to L2-D as
                        // part of the invalidation.
                        self.l2_dirty_d(line);
                    }
                }
                self.dir.set(line, m, MesiState::Invalid);
                if let Some(o) = self.oracle.as_mut() {
                    let still = self.cores[m].l1d.array().contains(line);
                    o.note_invalidate(m, line, still);
                }
            }
            if prev_local == MesiState::Shared {
                self.cores[c].counters.upgrade_misses += 1;
            }
        }
        // Final local state: Modified when the line is resident after
        // the store (hit, or write-allocate fill); a non-allocating
        // store miss leaves it Invalid while still having invalidated
        // the remote copies.
        let resident = self.cores[c].l1d.array().contains(line);
        let new_local = if resident {
            MesiState::Modified
        } else {
            MesiState::Invalid
        };
        if resident && prev_local != MesiState::Modified {
            self.cores[c].counters.mesi_to_m += 1;
        }
        self.dir.set(line, c, new_local);
        if let Some(o) = self.oracle.as_mut() {
            o.note_store(c, line);
        }
        if self.oracle.is_some() {
            // SWMR: after the invalidation round no other core may hold
            // the line, whatever state the directory claims.
            let mut offenders = [0usize; MAX_CORES as usize];
            let mut no = 0;
            for m in 0..self.cores.len() {
                if m != c && self.cores[m].l1d.array().contains(line) {
                    offenders[no] = m;
                    no += 1;
                }
            }
            if let Some(o) = self.oracle.as_mut() {
                o.check_swmr(c, line, &offenders[..no]);
            }
        }
        self.cores[c].counters.coherence_stall_cycles += charge;
        charge
    }

    // ---- shared-L2 / memory service (identical to the single-CPU
    // simulator, with counters attributed to the requesting core) ----

    fn l2_touch_i(&mut self, addr: PhysAddr) -> bool {
        match &mut self.l2 {
            L2Arrays::Unified(a) | L2Arrays::Split { i: a, .. } => a.touch(addr).is_some(),
        }
    }

    fn l2_touch_d(&mut self, addr: PhysAddr) -> bool {
        match &mut self.l2 {
            L2Arrays::Unified(a) | L2Arrays::Split { d: a, .. } => a.touch(addr).is_some(),
        }
    }

    fn l2_fill_i(&mut self, addr: PhysAddr) -> bool {
        match &mut self.l2 {
            L2Arrays::Unified(a) | L2Arrays::Split { i: a, .. } => {
                a.fill(addr).is_some_and(|e| e.dirty)
            }
        }
    }

    fn l2_fill_d(&mut self, addr: PhysAddr) -> bool {
        match &mut self.l2 {
            L2Arrays::Unified(a) | L2Arrays::Split { d: a, .. } => {
                a.fill(addr).is_some_and(|e| e.dirty)
            }
        }
    }

    fn l2_dirty_d(&mut self, addr: PhysAddr) {
        let (L2Arrays::Unified(a) | L2Arrays::Split { d: a, .. }) = &mut self.l2;
        if let Some(mut line) = a.touch(addr) {
            line.set_dirty(true);
        }
    }

    fn service_i_miss(&mut self, c: usize, start: u64, paddr: PhysAddr) -> u64 {
        self.cores[c].counters.l2i_accesses += 1;
        let hit_cost = self.i_hit_cost as u64;
        if self.l2_touch_i(paddr) {
            self.cores[c].counters.l1i_miss_cycles += hit_cost;
            self.cores[c].fnow += self.ref_i_hit_cost as u64;
            self.cores[c].l1i.fill(paddr);
            return hit_cost;
        }
        self.cores[c].counters.l2i_misses += 1;
        let dirty_victim = self.l2_fill_i(paddr);
        self.cores[c].fnow += if dirty_victim {
            REF_MEM_DIRTY
        } else {
            REF_MEM_CLEAN
        };
        let svc = if self.split_l2 {
            self.mem_i.service_miss(start, dirty_victim)
        } else {
            self.mem_d.service_miss(start, dirty_victim)
        };
        let service = svc.stall_cycles - svc.dirty_buffer_wait;
        let l1_share = service.min(hit_cost);
        let counters = &mut self.cores[c].counters;
        counters.l1i_miss_cycles += l1_share;
        counters.l2i_miss_cycles += service - l1_share;
        counters.dirty_buffer_wait_cycles += svc.dirty_buffer_wait;
        self.cores[c].l1i.fill(paddr);
        svc.stall_cycles
    }

    fn service_d_miss(&mut self, c: usize, start: u64, line_base: PhysAddr) -> u64 {
        self.cores[c].counters.l2d_accesses += 1;
        let hit_cost = self.d_hit_cost as u64;
        if self.l2_touch_d(line_base) {
            self.cores[c].counters.l1d_miss_cycles += hit_cost;
            self.cores[c].fnow += self.ref_d_hit_cost as u64;
            return hit_cost;
        }
        self.cores[c].counters.l2d_misses += 1;
        let dirty_victim = self.l2_fill_d(line_base);
        self.cores[c].fnow += if dirty_victim {
            REF_MEM_DIRTY
        } else {
            REF_MEM_CLEAN
        };
        let svc = self.mem_d.service_miss(start, dirty_victim);
        let service = svc.stall_cycles - svc.dirty_buffer_wait;
        let l1_share = service.min(hit_cost);
        let counters = &mut self.cores[c].counters;
        counters.l1d_miss_cycles += l1_share;
        counters.l2d_miss_cycles += service - l1_share;
        counters.dirty_buffer_wait_cycles += svc.dirty_buffer_wait;
        svc.stall_cycles
    }

    fn wb_wait_for_d_miss(
        &mut self,
        c: usize,
        start: u64,
        line_base: PhysAddr,
        replaced_written: bool,
    ) -> u64 {
        let line_words = self.d_line_words;
        let core = &mut self.cores[c];
        let until = match self.d_read_bypass {
            WbBypass::Wait => core.wb.empty_at(start),
            WbBypass::DirtyBit => {
                if replaced_written {
                    core.wb.empty_at(start)
                } else {
                    start
                }
            }
            WbBypass::Associative => core
                .wb
                .match_line(start, line_base, line_words)
                .map_or(start, |t| t.max(start)),
        };
        let wait = until - start;
        core.counters.wb_wait_cycles += wait;
        wait
    }

    fn enqueue_write(&mut self, c: usize, start: u64, addr: PhysAddr) -> u64 {
        let free_at = self.cores[c].wb.slot_free_at(start);
        let stall = free_at - start;
        self.cores[c].counters.wb_wait_cycles += stall;
        let extra = self.drain_l2_penalty(c, addr);
        let core = &mut self.cores[c];
        let busy_from = free_at.max(core.wb.last_completion());
        let completes = core.wb.enqueue(
            free_at,
            addr,
            self.d_write_access,
            self.d_write_stream,
            extra,
        );
        core.counters.l2_drain_busy_cycles += completes - busy_from;
        stall
    }

    fn drain_l2_penalty(&mut self, c: usize, addr: PhysAddr) -> u32 {
        self.cores[c].counters.l2_drain_writes += 1;
        if self.l2_touch_d(addr) {
            self.l2_dirty_d(addr);
            return 0;
        }
        self.cores[c].counters.l2_drain_misses += 1;
        let dirty_victim = self.l2_fill_d(addr);
        self.l2_dirty_d(addr);
        self.mem_d.service_miss_raw(dirty_victim).stall_cycles as u32
    }
}

fn proc_entry(per_proc: &mut Vec<ProcCounters>, pid: Pid) -> &mut ProcCounters {
    let idx = pid.raw() as usize;
    if per_proc.len() <= idx {
        per_proc.resize(idx + 1, ProcCounters::default());
    }
    &mut per_proc[idx]
}
