//! `fig_cmp` — the CMP frontier: the paper's L2-organization question
//! re-asked with 1/2/4/8 cores sharing the L2.
//!
//! The source study picks an L2 organization for *one* GaAs CPU. This
//! figure family re-runs the Fig. 6 contenders — unified/split ×
//! direct-mapped/2-way, at the paper's preferred 256 KW total — as the
//! shared L2 of a small chip multiprocessor with private per-core L1s
//! kept coherent by a MESI invalidation protocol.
//!
//! Three grids over cores × organization:
//!
//! * **CPI** — does the single-CPU winner survive sharing-induced
//!   invalidation and snoop-bus time?
//! * **coherence CPI** — cycles per instruction charged to coherence
//!   (bus waits, invalidations, cache-to-cache transfers); zero in the
//!   1-core anchor column by construction.
//! * **invalidations per 1000 instructions** — protocol traffic
//!   intensity, the quantity the directory filter keeps proportional to
//!   *sharing* rather than core count.
//!
//! The 1-core row runs on the validated single-CPU engine (byte-identity
//! is test-enforced), so every multi-core delta is attributable to
//! sharing, not engine drift.

use gaas_sim::config::SimConfig;
use gaas_sim::CmpConfig;

use crate::campaign::{cross_core_counts, CellResult};
use crate::fig6::Org;
use crate::runner::run_standard_cells;
use crate::tablefmt::{f3, Table, GAP};

/// Core counts swept (1 = the paper's machine, the anchor column).
pub const CORES: [u32; 4] = [1, 2, 4, 8];

/// Total L2 size for every cell: the paper's preferred 256 KW point.
pub const L2_TOTAL_WORDS: u64 = 262_144;

/// Sharing intensity of the multi-core cells: a moderate 10 % of data
/// references into a 16 KW shared footprint whose per-core affinity
/// windows rotate every 256 shared references. Cores consume shared
/// references at different rates, so rotations desynchronize and the
/// hot windows genuinely overlap while both cores run — enough live
/// cross-core traffic to separate the organizations without drowning
/// the cache behavior the paper studies.
pub fn sharing() -> CmpConfig {
    CmpConfig {
        shared_frac: 0.10,
        shared_words: 16_384,
        migration_interval: 256,
        ..CmpConfig::default()
    }
}

/// One (organization, cores) cell.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// L2 organization (shared by all cores).
    pub org: Org,
    /// Core count.
    pub cores: u32,
    /// Total CPI.
    pub cpi: f64,
    /// Coherence component of the CPI stack.
    pub coherence_cpi: f64,
    /// Invalidations per 1000 instructions.
    pub inval_per_ki: f64,
}

/// Runs the 4 × 4 sweep (organizations × core counts).
pub fn run(scale: f64) -> Vec<Row> {
    let mut points = Vec::new();
    let mut bases = Vec::new();
    for org in Org::all() {
        let mut b = SimConfig::builder();
        b.l2(org.l2(L2_TOTAL_WORDS));
        bases.push(b.build().expect("valid"));
        for &n in &CORES {
            points.push((org, n));
        }
    }
    let cfgs = cross_core_counts(&bases, &CORES, &sharing());
    let mut rows = Vec::new();
    for (res, (org, cores)) in run_standard_cells(&cfgs, scale).into_iter().zip(points) {
        match res {
            CellResult::Done(r) => {
                let instr = r.counters.instructions.max(1) as f64;
                rows.push(Row {
                    org,
                    cores,
                    cpi: r.cpi(),
                    coherence_cpi: r.counters.coherence_stall_cycles as f64 / instr,
                    inval_per_ki: r.counters.invalidations as f64 * 1000.0 / instr,
                });
            }
            CellResult::Failed { error, attempts } => eprintln!(
                "fig_cmp: cell {}x{} failed after {attempts} attempt(s): {error}",
                org.label(),
                cores
            ),
        }
    }
    rows
}

fn grid(rows: &[Row], title: &str, value: impl Fn(&Row) -> String) -> Table {
    let mut t = Table::new(
        title,
        &[
            "cores",
            "unified 1-way",
            "unified 2-way",
            "split 1-way",
            "split 2-way",
        ],
    );
    for &n in &CORES {
        let mut cells = vec![n.to_string()];
        for org in Org::all() {
            let row = rows.iter().find(|r| r.cores == n && r.org == org);
            cells.push(row.map(&value).unwrap_or_else(|| GAP.to_string()));
        }
        t.push_row(cells);
    }
    t
}

/// Renders the CPI grid.
pub fn table(rows: &[Row]) -> Table {
    grid(
        rows,
        "fig_cmp — CPI of the Fig. 6 L2 organizations, 1-8 cores sharing the L2",
        |r| f3(r.cpi),
    )
}

/// Renders the coherence-CPI grid.
pub fn table_coherence(rows: &[Row]) -> Table {
    grid(
        rows,
        "fig_cmp — coherence CPI component (bus wait + invalidation + C2C time)",
        |r| f3(r.coherence_cpi),
    )
}

/// Renders the invalidation-traffic grid.
pub fn table_traffic(rows: &[Row]) -> Table {
    grid(
        rows,
        "fig_cmp — invalidations per 1000 instructions",
        |r| f3(r.inval_per_ki),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_configs_cross_orgs_and_cores() {
        let mut bases = Vec::new();
        for org in Org::all() {
            let mut b = SimConfig::builder();
            b.l2(org.l2(L2_TOTAL_WORDS));
            bases.push(b.build().expect("valid"));
        }
        let cfgs = cross_core_counts(&bases, &CORES, &sharing());
        assert_eq!(cfgs.len(), 16);
        // The anchor cells stay on the single-CPU engine.
        assert!(cfgs
            .iter()
            .filter(|c| c.cmp.cores == 1)
            .all(|c| !c.cmp.enabled()));
        // Every multi-core cell carries the sharing knobs.
        assert!(cfgs
            .iter()
            .filter(|c| c.cmp.cores > 1)
            .all(|c| c.cmp.enabled() && c.cmp.shared_frac == sharing().shared_frac));
        assert!(cfgs.iter().all(|c| c.validate().is_ok()));
    }

    #[test]
    fn small_sweep_produces_the_expected_shape() {
        let rows = run(5e-5);
        assert_eq!(rows.len(), 16, "all cells complete");
        for r in &rows {
            assert!(r.cpi > 1.0, "{}x{}: CPI sane", r.org.label(), r.cores);
            if r.cores == 1 {
                assert_eq!(r.coherence_cpi, 0.0, "anchor column has no coherence time");
            }
        }
        // At least one genuinely sharing configuration pays coherence time.
        assert!(
            rows.iter().any(|r| r.cores > 1 && r.coherence_cpi > 0.0),
            "multi-core cells must exercise the protocol"
        );
    }
}
