//! Per-benchmark behaviour under multiprogramming.
//!
//! The paper discusses individual benchmarks qualitatively (integer codes
//! vs. streaming FP codes); this experiment makes that visible: the base
//! architecture runs the full level-8 workload and the simulator's
//! per-process attribution reports each benchmark's CPI and miss ratios
//! *as experienced inside the multiprogram mix*.

use gaas_sim::config::SimConfig;
use gaas_trace::bench_model::suite;

use crate::runner::run_standard;
use crate::tablefmt::{f3, f4, Table};

/// One benchmark's slice of the multiprogrammed run.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// FP class tag.
    pub class: &'static str,
    /// Instructions executed (scaled).
    pub instructions: u64,
    /// CPI experienced by this benchmark.
    pub cpi: f64,
    /// L1-I miss ratio.
    pub l1i: f64,
    /// L1-D miss ratio.
    pub l1d: f64,
    /// L2 demand misses per 1000 instructions.
    pub l2_mpki: f64,
}

/// Runs the base architecture and splits the result per benchmark.
pub fn run(scale: f64) -> Vec<Row> {
    let specs = suite();
    let result = run_standard(SimConfig::baseline(), scale);
    result
        .per_process
        .iter()
        .map(|(pid, p)| {
            let spec = &specs[pid.raw() as usize];
            Row {
                name: spec.name.to_string(),
                class: spec.fp_class.tag(),
                instructions: p.instructions,
                cpi: p.cpi(),
                l1i: p.l1i_miss_ratio(),
                l1d: p.l1d_miss_ratio(),
                l2_mpki: 1000.0 * p.l2_misses as f64 / p.instructions.max(1) as f64,
            }
        })
        .collect()
}

/// Renders the per-benchmark table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Per-benchmark behaviour inside the level-8 multiprogram mix (base arch)",
        &[
            "benchmark",
            "class",
            "instr",
            "CPI",
            "L1-I miss",
            "L1-D miss",
            "L2 MPKI",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.name.clone(),
            r.class.to_string(),
            r.instructions.to_string(),
            f3(r.cpi),
            f4(r.l1i),
            f4(r.l1d),
            format!("{:.2}", r.l2_mpki),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_benchmark_rows_cover_the_suite() {
        let rows = run(3e-4);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.cpi >= 1.0, "{}: CPI {}", r.name, r.cpi);
            assert!(r.instructions > 0);
        }
        // Streaming FP codes must show higher L1-D miss than the tight
        // integer codes.
        let tomcatv = rows.iter().find(|r| r.name == "tomcatv").expect("present");
        let li = rows.iter().find(|r| r.name == "li").expect("present");
        assert!(
            tomcatv.l1d > li.l1d * 0.3,
            "tomcatv {} vs li {}",
            tomcatv.l1d,
            li.l1d
        );
    }
}
