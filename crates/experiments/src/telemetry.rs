//! The `gaas-telemetry` export pipeline over a standard experiment cell.
//!
//! `repro --telemetry <dir>` (and the `telemetry` experiment keyword)
//! runs one Fig. 7 cell — the split-L2 instruction side at
//! [`CELL_SIZE_WORDS`] words / [`CELL_ACCESS`] cycles — with the
//! instrumentation core enabled and exports three artifacts into the
//! directory:
//!
//! * `trace.json` — Chrome `trace_event` JSON (load it in Perfetto or
//!   `chrome://tracing`): refill, write-buffer, TLB-walk, scheduler,
//!   fault and oracle spans on one timeline thread per component;
//! * `cpi_stacks.csv` / `cpi_stacks.json` — windowed CPI stacks, one row
//!   per [`TelemetryConfig::window_instructions`] instructions, integer
//!   cycle columns per Fig. 4 component;
//! * `summary.txt` — every registered counter and histogram, the pool's
//!   campaign counters, and the memoization trace (which cells were
//!   priced vs simulated) from a small Fig. 7 mini-grid run first to
//!   exercise the two-phase sweep.
//!
//! The run self-validates before writing: the Chrome JSON must re-parse,
//! every window's component cycles must sum to the window's total
//! exactly, and the cycle-weighted average of the windows must equal the
//! final CPI to 1e-9 (the telemetry cell runs with **zero warm-up** so
//! the windows partition the whole run). CI's `telemetry-smoke` job runs
//! this pipeline and fails on any validation error.
//!
//! [`TelemetryConfig::window_instructions`]: gaas_sim::config::TelemetryConfig

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use gaas_sim::config::TelemetryConfig;
use gaas_sim::{workload, Counters, SimError, Simulator};
use gaas_telemetry::{chrome_trace_json, stack_csv, stack_json, weighted_cpi, WindowRow};

use crate::campaign::{self, MemoTraceEntry};
use crate::durability;
use crate::fig78::{self, Side};
use crate::json;
use crate::pool;

/// L2-I size (words) of the instrumented Fig. 7 cell.
pub const CELL_SIZE_WORDS: u64 = 65_536;

/// L2-I access time (cycles) of the instrumented Fig. 7 cell.
pub const CELL_ACCESS: u32 = 3;

/// Mini-grid axes used to populate the memoization trace in the summary:
/// 2 sizes × 3 access times → 2 functional runs + 4 priced cells.
const GRID_SIZES: [u64; 2] = [32_768, 262_144];
const GRID_TIMES: [u32; 3] = [2, 4, 6];

/// Failure of the telemetry pipeline.
#[derive(Debug)]
pub enum TelemetryError {
    /// The instrumented simulation failed.
    Sim(SimError),
    /// An artifact could not be written.
    Io(io::Error),
    /// A self-validation invariant did not hold.
    Validation(String),
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Sim(e) => write!(f, "telemetry cell failed: {e}"),
            TelemetryError::Io(e) => write!(f, "telemetry artifact write failed: {e}"),
            TelemetryError::Validation(msg) => write!(f, "telemetry validation failed: {msg}"),
        }
    }
}

impl std::error::Error for TelemetryError {}

impl From<SimError> for TelemetryError {
    fn from(e: SimError) -> Self {
        TelemetryError::Sim(e)
    }
}

impl From<io::Error> for TelemetryError {
    fn from(e: io::Error) -> Self {
        TelemetryError::Io(e)
    }
}

/// What a telemetry run produced (the `repro` binary prints this).
#[derive(Debug)]
pub struct TelemetryRun {
    /// Final CPI of the instrumented cell.
    pub cpi: f64,
    /// Number of CPI-stack windows exported (including the tail).
    pub windows: usize,
    /// Spans retained in the trace.
    pub spans: usize,
    /// Spans evicted because the ring buffer filled.
    pub spans_dropped: u64,
    /// Artifact paths written, in write order.
    pub files: Vec<PathBuf>,
}

/// Converts windowed counter deltas plus the run total into
/// [`WindowRow`]s: one row per full window and one tail row covering the
/// instructions after the last full window (omitted when the run length
/// is an exact multiple of the window). With zero warm-up the rows
/// partition the run, so their cycle-weighted CPI equals the final CPI
/// exactly.
pub fn window_rows(windows: &[Counters], total: &Counters) -> Vec<WindowRow> {
    let mut rows: Vec<WindowRow> = Vec::with_capacity(windows.len() + 1);
    let mut acc = Counters::default();
    for w in windows {
        rows.push(WindowRow {
            index: rows.len(),
            instructions: w.instructions,
            cycles: w.total_cycles(),
            components: w.stack_components(),
        });
        acc = acc.accum(w);
    }
    let tail = total.since(&acc);
    if tail.instructions > 0 {
        rows.push(WindowRow {
            index: rows.len(),
            instructions: tail.instructions,
            cycles: tail.total_cycles(),
            components: tail.stack_components(),
        });
    }
    rows
}

/// Validates the exported rows against the final result: integer
/// component sums and the weighted-average identity.
fn validate_rows(rows: &[WindowRow], cpi: f64) -> Result<(), TelemetryError> {
    if rows.is_empty() {
        return Err(TelemetryError::Validation("no CPI-stack windows".into()));
    }
    for r in rows {
        if r.component_cycles() != r.cycles {
            return Err(TelemetryError::Validation(format!(
                "window {}: components sum to {} cycles, window total is {}",
                r.index,
                r.component_cycles(),
                r.cycles
            )));
        }
    }
    let avg = weighted_cpi(rows);
    if (avg - cpi).abs() > 1e-9 {
        return Err(TelemetryError::Validation(format!(
            "weighted window CPI {avg} != final CPI {cpi}"
        )));
    }
    Ok(())
}

fn render_memo_trace(trace: &[MemoTraceEntry]) -> String {
    let mut out = String::from("memoization trace (priced vs simulated)\n");
    if trace.is_empty() {
        out.push_str("  (no grouped sweep ran)\n");
        return out;
    }
    for e in trace {
        let fp = match e.fingerprint {
            Some(k) => format!("{k:016x}"),
            None => "-".repeat(16),
        };
        let mode = if e.priced {
            "lead simulated, rest priced"
        } else if e.members.len() == 1 {
            "simulated (singleton)"
        } else {
            "all simulated (fallback)"
        };
        out.push_str(&format!(
            "  batch {} group {fp} cells {:?}: {mode}\n",
            e.batch, e.members
        ));
    }
    out
}

/// Runs the telemetry pipeline: the mini-grid (for the memoization
/// trace), then the instrumented Fig. 7 cell, then validation and
/// artifact export into `dir` (created if needed).
///
/// # Errors
///
/// Returns [`TelemetryError`] when the simulation fails, a validation
/// invariant does not hold, or an artifact cannot be written.
pub fn run(scale: f64, dir: &Path) -> Result<TelemetryRun, TelemetryError> {
    fs::create_dir_all(dir)?;

    // Phase 1 — a small Fig. 7 mini-grid through the campaign layer with
    // memo tracing on, so the summary can show exactly which cells were
    // priced from a memoized profile and which were simulated.
    let t0 = std::time::Instant::now();
    campaign::set_memo_trace(true);
    let mut grid = Vec::new();
    for &size in &GRID_SIZES {
        for &access in &GRID_TIMES {
            grid.push(fig78::cell_config(Side::Instruction, size, access));
        }
    }
    campaign::run_cells(&grid, scale);
    let memo_trace = campaign::take_memo_trace();
    campaign::set_memo_trace(false);
    eprintln!(
        "[telemetry: mini-grid ({} cells) in {:.1}s]",
        grid.len(),
        t0.elapsed().as_secs_f64()
    );

    // Phase 2 — the instrumented cell. Zero warm-up so the exported
    // windows partition the whole run (the weighted-average identity
    // below depends on it).
    let t0 = std::time::Instant::now();
    let mut b = fig78::cell_config(Side::Instruction, CELL_SIZE_WORDS, CELL_ACCESS).to_builder();
    b.telemetry(TelemetryConfig::on());
    let cfg = b.build().map_err(SimError::from)?;
    let sim = Simulator::new(cfg).map_err(SimError::from)?;
    let (result, windows, report) = sim.run_telemetry(workload::standard(scale), 0)?;
    eprintln!(
        "[telemetry: instrumented cell in {:.1}s]",
        t0.elapsed().as_secs_f64()
    );

    let t0 = std::time::Instant::now();
    let rows = window_rows(&windows, &result.counters);
    validate_rows(&rows, result.cpi())?;

    let trace = chrome_trace_json("gaas-sim fig7 cell", &report.spans);
    json::parse(&trace).map_err(|e| {
        TelemetryError::Validation(format!("chrome trace JSON does not parse: {e}"))
    })?;
    let stacks = stack_json(&rows);
    json::parse(&stacks)
        .map_err(|e| TelemetryError::Validation(format!("CPI-stack JSON does not parse: {e}")))?;
    eprintln!(
        "[telemetry: export validated in {:.1}s]",
        t0.elapsed().as_secs_f64()
    );

    let mut summary = String::new();
    summary.push_str(&format!(
        "telemetry summary — fig7 cell (L2-I {} KW, {} cycles), scale {scale}\n\
         cpi {:.6}, {} windows, {} spans retained, {} dropped\n\n",
        CELL_SIZE_WORDS / 1024,
        CELL_ACCESS,
        result.cpi(),
        rows.len(),
        report.spans.len(),
        report.spans_dropped,
    ));
    summary.push_str(&report.registry.summary_table());
    summary.push('\n');
    let pool_reg = pool::take_telemetry();
    if !pool_reg.is_empty() {
        summary.push_str("worker-pool counters (merged across workers)\n");
        summary.push_str(&pool_reg.summary_table());
        summary.push('\n');
    }
    summary.push_str(&render_memo_trace(&memo_trace));

    let mut files = Vec::new();
    for (name, contents) in [
        ("trace.json", trace),
        ("cpi_stacks.csv", stack_csv(&rows)),
        ("cpi_stacks.json", stacks),
        ("summary.txt", summary),
    ] {
        let path = dir.join(name);
        // Durable atomic commit (temp + fsync + rename): a crash mid-export
        // leaves the previous artifact intact, never a half-written one.
        durability::write_atomic(&path, contents.as_bytes())?;
        files.push(path);
    }

    Ok(TelemetryRun {
        cpi: result.cpi(),
        windows: rows.len(),
        spans: report.spans.len(),
        spans_dropped: report.spans_dropped,
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_rows_partition_the_run() {
        let cfg = fig78::cell_config(Side::Instruction, CELL_SIZE_WORDS, CELL_ACCESS)
            .to_builder()
            .telemetry(TelemetryConfig {
                window_instructions: 20_000,
                ..TelemetryConfig::on()
            })
            .build()
            .expect("valid");
        let sim = Simulator::new(cfg).expect("constructs");
        let (result, windows, report) = sim
            .run_telemetry(workload::standard(2e-4), 0)
            .expect("runs");
        let rows = window_rows(&windows, &result.counters);
        assert!(rows.len() > 1, "scale must span several windows");
        validate_rows(&rows, result.cpi()).expect("invariants hold");
        assert!(!report.spans.is_empty(), "hot paths must emit spans");
        let total: u64 = rows.iter().map(|r| r.instructions).sum();
        assert_eq!(total, result.counters.instructions);
    }

    #[test]
    fn pipeline_writes_all_artifacts() {
        let dir = std::env::temp_dir().join(format!("gaas-telemetry-test-{}", std::process::id()));
        let run = run(2e-4, &dir).expect("pipeline succeeds");
        assert_eq!(run.files.len(), 4);
        for f in &run.files {
            assert!(f.exists(), "{} missing", f.display());
        }
        let summary = fs::read_to_string(dir.join("summary.txt")).unwrap();
        assert!(summary.contains("memoization trace"));
        let _ = fs::remove_dir_all(&dir);
    }
}
