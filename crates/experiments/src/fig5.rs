//! Fig. 5 — write policy vs. effective L2 access time.
//!
//! Four L1-D write policies (write-back, write-miss-invalidate, the new
//! write-only, subblock placement) are compared while the *effective L2
//! access time seen by write-buffer drains* sweeps from 2 to 10 cycles
//! (the paper relates larger L2 sizes to larger effective access times).
//! Expected shape: the write-back curve is nearly flat (its constant
//! ≈ 0.07 CPI of two-cycle write hits dominates); the write-through curves
//! rise with the drain time (write-buffer-empty waits before read misses)
//! and cross write-back at ≈ 8 cycles; write-only tracks subblock placement
//! closely without its extra valid bits.

use gaas_cache::WritePolicy;
use gaas_sim::config::SimConfig;

use crate::runner::run_standard_cells;
use crate::tablefmt::{f3_opt, f4, Table};

/// Effective drain access times swept (cycles).
pub const ACCESS_TIMES: [u32; 5] = [2, 4, 6, 8, 10];

/// One (policy, access time) cell.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The write policy.
    pub policy: WritePolicy,
    /// Effective L2 access time for drains (cycles).
    pub access: u32,
    /// Total CPI.
    pub cpi: f64,
    /// CPI lost to multi-cycle writes ("Write hits" in the figure).
    pub write_cpi: f64,
    /// CPI lost waiting on the write buffer.
    pub wb_cpi: f64,
}

/// The `(policy, access)` points and matching configurations of the
/// 4 × 5 sweep, in submission order. Public so `--list-cells` can
/// preview the geometry grouping without running the sweep.
pub fn cell_configs() -> (Vec<(WritePolicy, u32)>, Vec<SimConfig>) {
    let mut points = Vec::new();
    let mut cfgs = Vec::new();
    for policy in WritePolicy::all() {
        for &access in &ACCESS_TIMES {
            let mut b = SimConfig::builder();
            b.policy(policy).l2_drain_access(access);
            points.push((policy, access));
            cfgs.push(b.build().expect("valid"));
        }
    }
    (points, cfgs)
}

/// Runs the 4 × 5 sweep on the base architecture. A cell that fails
/// every isolation attempt is reported to stderr and skipped; the tables
/// render it as a gap.
pub fn run(scale: f64) -> Vec<Row> {
    let (points, cfgs) = cell_configs();
    let mut rows = Vec::new();
    for (res, (policy, access)) in run_standard_cells(&cfgs, scale).into_iter().zip(points) {
        match res {
            crate::campaign::CellResult::Done(r) => {
                let bd = r.breakdown();
                rows.push(Row {
                    policy,
                    access,
                    cpi: r.cpi(),
                    write_cpi: bd.l1_writes,
                    wb_cpi: bd.wb_wait,
                });
            }
            crate::campaign::CellResult::Failed { error, attempts } => eprintln!(
                "fig5: cell {}/{access} failed after {attempts} attempt(s): {error}",
                policy.label()
            ),
        }
    }
    rows
}

/// Renders the Fig. 5 series (one row per access time, one column pair per
/// policy).
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Fig. 5 — write policy vs. effective L2 access time (CPI)",
        &[
            "access",
            "write-back",
            "write-miss-inv",
            "write-only",
            "subblock",
        ],
    );
    for &access in &ACCESS_TIMES {
        let mut cells = vec![access.to_string()];
        for policy in WritePolicy::all() {
            let row = rows
                .iter()
                .find(|r| r.policy == policy && r.access == access);
            cells.push(f3_opt(row.map(|r| r.cpi)));
        }
        t.push_row(cells);
    }
    t
}

/// Renders the write-hit / WB-wait component split the paper discusses.
pub fn component_table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Fig. 5 components — write cycles and WB waits per policy",
        &["policy", "access", "write CPI", "WB CPI"],
    );
    for r in rows {
        t.push_row(vec![
            r.policy.label().to_string(),
            r.access.to_string(),
            f4(r.write_cpi),
            f4(r.wb_cpi),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_complete() {
        let rows = run(3e-4);
        assert_eq!(rows.len(), 4 * ACCESS_TIMES.len());
        let t = table(&rows);
        assert_eq!(t.n_rows(), ACCESS_TIMES.len());
    }
}
